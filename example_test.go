package tempriv_test

import (
	"fmt"
	"log"

	"tempriv"
)

// Example runs the paper's three buffering cases on a 15-hop line and
// prints the baseline adversary's estimation error for each — the shape of
// Figure 2(a) in eight lines of code.
func Example() {
	topo, err := tempriv.NewLineTopology(15)
	if err != nil {
		log.Fatal(err)
	}
	traffic, err := tempriv.PeriodicTraffic(2)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := tempriv.ExponentialDelay(30)
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []struct {
		name      string
		policy    tempriv.PolicyKind
		delay     tempriv.DelayDistribution
		knownMean float64
	}{
		{"no-delay", tempriv.PolicyForward, nil, 0},
		{"unlimited", tempriv.PolicyUnlimited, dist, 30},
		{"rcad", tempriv.PolicyRCAD, dist, 30},
	} {
		res, err := tempriv.Run(tempriv.Config{
			Topology: topo,
			Sources:  []tempriv.Source{{Node: 15, Process: traffic, Count: 500}},
			Policy:   c.policy,
			Delay:    c.delay,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		adv, err := tempriv.NewBaselineAdversary(1, c.knownMean)
		if err != nil {
			log.Fatal(err)
		}
		mse, err := tempriv.ScoreAdversary(adv, res)
		if err != nil {
			log.Fatal(err)
		}
		// Bucket the MSE so the example output is robust to expected
		// statistical variation across Go versions.
		bucket := "none"
		switch {
		case mse.Value() > 20000:
			bucket = "high"
		case mse.Value() > 5000:
			bucket = "moderate"
		}
		fmt.Printf("%s: adversary error %s\n", c.name, bucket)
	}
	// Output:
	// no-delay: adversary error none
	// unlimited: adversary error moderate
	// rcad: adversary error high
}

// ExampleErlangLoss plans a node's mean buffering delay from the §4 design
// rule: pick µ so that a 10-slot buffer overflows 10% of the time.
func ExampleErlangLoss() {
	loss, err := tempriv.ErlangLoss(15, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E(15, 10) = %.3f\n", loss)

	mu, err := tempriv.PlanMu(0.5, 10, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned mean delay 1/µ = %.1f\n", 1/mu)
	// Output:
	// E(15, 10) = 0.410
	// planned mean delay 1/µ = 15.0
}

// ExamplePlanDelays provisions per-node delays across a merge tree: nodes
// nearer the sink carry more flows and get shorter delays.
func ExamplePlanDelays() {
	topo, sources, err := tempriv.NewMergeTreeTopology([]int{5, 6}, 2)
	if err != nil {
		log.Fatal(err)
	}
	rates := map[tempriv.NodeID]float64{sources[0]: 0.5, sources[1]: 0.5}
	plan, err := tempriv.PlanDelays(topo, rates, 10, 0.1, 120)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trunk 1/µ = %.1f, leaf 1/µ = %.1f\n", plan[1], plan[sources[0]])
	// Output:
	// trunk 1/µ = 7.5, leaf 1/µ = 15.0
}
