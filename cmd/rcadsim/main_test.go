package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestDefaultRun(t *testing.T) {
	if err := run([]string{"-packets", "100"}); err != nil {
		t.Fatal(err)
	}
}

func TestAllPoliciesRun(t *testing.T) {
	for _, policy := range []string{"no-delay", "delay-unlimited", "delay-droptail", "rcad"} {
		if err := run([]string{"-policy", policy, "-packets", "50", "-topo", "line", "-hops", "5"}); err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
	}
}

func TestAllAdversariesRun(t *testing.T) {
	for _, adv := range []string{"baseline", "adaptive", "path-aware"} {
		if err := run([]string{"-adversary", adv, "-packets", "50", "-topo", "line", "-hops", "4"}); err != nil {
			t.Fatalf("adversary %s: %v", adv, err)
		}
	}
}

func TestAdversaryAgainstNoDelayFallsBack(t *testing.T) {
	// adaptive/path-aware degrade to baseline when there is no buffering
	// delay to model.
	for _, adv := range []string{"adaptive", "path-aware"} {
		if err := run([]string{"-policy", "no-delay", "-adversary", adv, "-packets", "30", "-topo", "line", "-hops", "3"}); err != nil {
			t.Fatalf("adversary %s vs no-delay: %v", adv, err)
		}
	}
}

func TestGridTopologyRun(t *testing.T) {
	if err := run([]string{"-topo", "grid", "-grid-w", "5", "-grid-h", "5", "-packets", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestRateControlRun(t *testing.T) {
	if err := run([]string{"-rate-control", "-packets", "100", "-topo", "line", "-hops", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestSealedRun(t *testing.T) {
	if err := run([]string{"-seal", "-packets", "40", "-topo", "line", "-hops", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestVictimAndDistFlags(t *testing.T) {
	if err := run([]string{"-victim", "oldest", "-delay-dist", "uniform", "-packets", "50", "-topo", "line", "-hops", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidFlags(t *testing.T) {
	cases := [][]string{
		{"-topo", "torus"},
		{"-policy", "teleport"},
		{"-adversary", "psychic"},
		{"-victim", "newest"},
		{"-delay-dist", "levy"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestTraceFlagWritesJSONL(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	if err := run([]string{"-packets", "30", "-topo", "line", "-hops", "3", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// 30 packets × (1 created + 3 admitted + 3 released/preempted + 1 delivered).
	if len(lines) != 30*8 {
		t.Fatalf("trace has %d lines, want 240", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev["kind"] != "created" {
		t.Fatalf("first event = %v, want created", ev)
	}
}

func TestRandomTopologyRun(t *testing.T) {
	if err := run([]string{"-topo", "random", "-field-nodes", "80", "-field-radius", "2.2", "-packets", "40"}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsInvalidFlagValues(t *testing.T) {
	cases := map[string][]string{
		"zero interarrival":    {"-interarrival", "0"},
		"zero packets":         {"-packets", "0"},
		"negative mean delay":  {"-mean-delay", "-3"},
		"zero capacity":        {"-capacity", "0"},
		"zero tau":             {"-tau", "0"},
		"threshold at one":     {"-threshold", "1"},
		"threshold above one":  {"-threshold", "1.5"},
		"bad target loss":      {"-policy", "rcad-adaptive", "-target-loss", "0"},
		"zero hops":            {"-topo", "line", "-hops", "0"},
		"tiny grid":            {"-topo", "grid", "-grid-w", "1"},
		"one field node":       {"-topo", "random", "-field-nodes", "1"},
		"zero field radius":    {"-topo", "random", "-field-radius", "0"},
		"loss above one":       {"-link-loss", "1.5"},
		"negative loss":        {"-link-loss", "-0.1"},
		"ack loss without arq": {"-link-loss", "0.1", "-ack-loss", "0.1"},
		"negative arq retries": {"-arq", "-arq-retries", "-1"},
		"bad arq backoff":      {"-arq", "-arq-backoff", "0.5"},
		"zero sample every":    {"-sample-every", "0"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: args %v accepted", name, args)
		}
	}
}

func TestReplicateFlagRunsMultipleSeeds(t *testing.T) {
	if err := run([]string{"-packets", "50", "-topo", "line", "-hops", "4", "-replicate", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicateFlagValidation(t *testing.T) {
	if err := run([]string{"-packets", "20", "-replicate", "0"}); err == nil {
		t.Fatal("-replicate 0 accepted")
	}
	tmp := t.TempDir()
	if err := run([]string{"-packets", "20", "-replicate", "2", "-trace", tmp + "/t.jsonl"}); err == nil {
		t.Fatal("-replicate with -trace accepted")
	}
}
