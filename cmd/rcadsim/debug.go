package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"tempriv"
)

// debugServer serves the run's introspection endpoints for long simulations:
// net/http/pprof profiles, expvar (including the live metric registry under
// the "tempriv" var), and the registry's Prometheus text format at /metrics.
type debugServer struct {
	ln  net.Listener
	srv *http.Server
}

// startDebugServer listens on addr (pass port 0 for an ephemeral port) and
// serves in the background until Close.
func startDebugServer(addr string, reg *tempriv.TelemetryRegistry) (*debugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/metrics", reg)
		publishExpvar(reg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug server: %w", err)
	}
	d := &debugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = d.srv.Serve(ln) }() // Serve returns when Close fires
	return d, nil
}

// Addr returns the server's actual listen address (resolving port 0).
func (d *debugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server and its listener down.
func (d *debugServer) Close() error { return d.srv.Close() }

// expvarReg backs the process-wide "tempriv" expvar with the most recent
// registry. expvar.Publish panics on re-registration, so the var is
// published once and re-pointed on later runs (tests run many).
var expvarReg *tempriv.TelemetryRegistry

func publishExpvar(reg *tempriv.TelemetryRegistry) {
	expvarReg = reg
	if expvar.Get("tempriv") == nil {
		expvar.Publish("tempriv", expvar.Func(func() any { return expvarReg.Snapshot() }))
	}
}
