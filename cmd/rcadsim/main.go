// Command rcadsim runs one temporal-privacy simulation and reports the
// privacy (adversary MSE), performance (latency) and buffer metrics the
// paper evaluates.
//
// Examples:
//
//	rcadsim                                     # Figure-1 topology, RCAD, 1/λ=2
//	rcadsim -policy delay-unlimited -interarrival 10
//	rcadsim -topo line -hops 15 -adversary adaptive
//	rcadsim -rate-control -target-loss 0.1      # §4 per-node µ planning
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tempriv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcadsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rcadsim", flag.ContinueOnError)
	var (
		topoKind     = fs.String("topo", "figure1", "topology: figure1 | line | grid | random")
		hops         = fs.Int("hops", 15, "line topology: hops from source to sink")
		gridW        = fs.Int("grid-w", 10, "grid topology: width")
		gridH        = fs.Int("grid-h", 10, "grid topology: height")
		fieldNodes   = fs.Int("field-nodes", 150, "random topology: node count")
		fieldSide    = fs.Float64("field-side", 10, "random topology: field side length")
		fieldRadius  = fs.Float64("field-radius", 1.6, "random topology: radio radius")
		policyName   = fs.String("policy", "rcad", "buffering: no-delay | delay-unlimited | delay-droptail | rcad")
		interarrival = fs.Float64("interarrival", 2, "packet interarrival time 1/λ per source")
		packets      = fs.Int("packets", 1000, "packets per source")
		meanDelay    = fs.Float64("mean-delay", 30, "mean per-hop buffering delay 1/µ")
		capacity     = fs.Int("capacity", 10, "buffer slots k")
		victimName   = fs.String("victim", "shortest-remaining", "RCAD victim rule: shortest-remaining | longest-remaining | oldest | random")
		distName     = fs.String("delay-dist", "exponential", "delay distribution: exponential | uniform | constant | pareto")
		advName      = fs.String("adversary", "baseline", "adversary: baseline | adaptive | path-aware")
		threshold    = fs.Float64("threshold", 0.1, "adaptive adversary Erlang-loss threshold")
		tau          = fs.Float64("tau", 1, "per-hop transmission delay τ")
		seed         = fs.Uint64("seed", 1, "random seed")
		sealed       = fs.Bool("seal", false, "encrypt payloads end-to-end (AES-CTR+HMAC)")
		rateControl  = fs.Bool("rate-control", false, "enable the §4 per-node delay planner")
		targetLoss   = fs.Float64("target-loss", 0.1, "rate controller's Erlang-loss target α")
		traceFile    = fs.String("trace", "", "write per-packet lifecycle events as JSON Lines to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, sources, err := buildTopology(*topoKind, *hops, *gridW, *gridH, *fieldNodes, *fieldSide, *fieldRadius, *seed)
	if err != nil {
		return err
	}

	policy, err := parsePolicy(*policyName)
	if err != nil {
		return err
	}
	victim, err := tempriv.VictimByName(*victimName)
	if err != nil {
		return err
	}
	var dist tempriv.DelayDistribution
	if policy != tempriv.PolicyForward {
		dist, err = tempriv.DelayByName(*distName, *meanDelay)
		if err != nil {
			return err
		}
	}
	proc, err := tempriv.PeriodicTraffic(*interarrival)
	if err != nil {
		return err
	}

	cfg := tempriv.Config{
		Topology:          topo,
		Policy:            policy,
		Delay:             dist,
		Capacity:          *capacity,
		Victim:            victim,
		TransmissionDelay: *tau,
		Seed:              *seed,
		Seal:              *sealed,
	}
	for _, s := range sources {
		cfg.Sources = append(cfg.Sources, tempriv.Source{Node: s, Process: proc, Count: *packets})
	}
	if *rateControl {
		cfg.RateControl = &tempriv.RateControl{TargetLoss: *targetLoss, Smoothing: 0.3}
	}
	var tracer *tempriv.JSONLTracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		defer func() { _ = f.Close() }()
		tracer, err = tempriv.NewJSONLTracer(f)
		if err != nil {
			return err
		}
		cfg.Tracer = tracer
	}

	res, err := tempriv.Run(cfg)
	if err != nil {
		return err
	}

	est, err := buildAdversary(*advName, topo, *tau, *meanDelay, *capacity, *threshold, policy)
	if err != nil {
		return err
	}
	perFlow, err := tempriv.ScoreAdversaryPerFlow(est, res)
	if err != nil {
		return err
	}

	printReport(res, sources, perFlow, est.Name())
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("\nlifecycle trace written to %s\n", *traceFile)
	}
	return nil
}

func buildTopology(kind string, hops, w, h, fieldNodes int, fieldSide, fieldRadius float64, seed uint64) (*tempriv.Topology, []tempriv.NodeID, error) {
	switch kind {
	case "figure1":
		return tempriv.Figure1Topology()
	case "line":
		topo, err := tempriv.NewLineTopology(hops)
		if err != nil {
			return nil, nil, err
		}
		return topo, topo.Sources(), nil
	case "grid":
		topo, err := tempriv.NewGridTopology(w, h)
		if err != nil {
			return nil, nil, err
		}
		// Use the far corner as the single source.
		far := tempriv.GridNodeID(w, w-1, h-1)
		if err := topo.MarkSource(far); err != nil {
			return nil, nil, err
		}
		return topo, topo.Sources(), nil
	case "random":
		// Retry a few placements: sparse samples can be disconnected.
		var topo *tempriv.Topology
		var err error
		for attempt := 0; attempt < 10; attempt++ {
			topo, err = tempriv.NewRandomGeometricTopology(fieldNodes, fieldSide, fieldRadius, seed+uint64(attempt))
			if err == nil {
				break
			}
		}
		if err != nil {
			return nil, nil, fmt.Errorf("random field stayed disconnected after 10 placements: %w", err)
		}
		// The node farthest from the sink becomes the source.
		far := tempriv.NodeID(0)
		best := -1.0
		for _, id := range topo.Nodes() {
			p, err := topo.PositionOf(id)
			if err != nil {
				return nil, nil, err
			}
			if d := p.Distance(tempriv.Position{}); d > best {
				best, far = d, id
			}
		}
		if err := topo.MarkSource(far); err != nil {
			return nil, nil, err
		}
		return topo, topo.Sources(), nil
	default:
		return nil, nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func parsePolicy(name string) (tempriv.PolicyKind, error) {
	switch name {
	case "no-delay":
		return tempriv.PolicyForward, nil
	case "delay-unlimited":
		return tempriv.PolicyUnlimited, nil
	case "delay-droptail":
		return tempriv.PolicyDropTail, nil
	case "rcad":
		return tempriv.PolicyRCAD, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

func buildAdversary(name string, topo *tempriv.Topology, tau, meanDelay float64, capacity int, threshold float64, policy tempriv.PolicyKind) (tempriv.Estimator, error) {
	known := meanDelay
	if policy == tempriv.PolicyForward {
		known = 0 // the adversary knows there is no buffering delay
	}
	switch name {
	case "baseline":
		return tempriv.NewBaselineAdversary(tau, known)
	case "adaptive":
		if known == 0 {
			return tempriv.NewBaselineAdversary(tau, 0)
		}
		return tempriv.NewAdaptiveAdversary(tau, known, capacity, threshold)
	case "path-aware":
		if known == 0 {
			return tempriv.NewBaselineAdversary(tau, 0)
		}
		paths, err := tempriv.FlowPaths(topo)
		if err != nil {
			return nil, err
		}
		return tempriv.NewPathAwareAdversary(tau, known, capacity, threshold, paths)
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}

func printReport(res *tempriv.Result, sources []tempriv.NodeID, perFlow map[tempriv.NodeID]*tempriv.MSE, advName string) {
	fmt.Printf("simulated %.1f time units, %d events, %d deliveries\n\n",
		res.Duration, res.Events, len(res.Deliveries))

	fmt.Printf("%-8s %-5s %-8s %-9s %-8s %-10s %-10s %-12s\n",
		"flow", "hops", "created", "delivered", "dropped", "lat-mean", "lat-p95", advName+"-MSE")
	for i, s := range sources {
		f := res.Flows[s]
		mse := 0.0
		if m, ok := perFlow[s]; ok {
			mse = m.Value()
		}
		fmt.Printf("S%-7d %-5d %-8d %-9d %-8d %-10.1f %-10.1f %-12.4g\n",
			i+1, f.HopCount, f.Created, f.Delivered, f.Dropped(),
			f.Latency.Mean, f.Latency.P95, mse)
	}

	ids := make([]tempriv.NodeID, 0, len(res.Nodes))
	for id := range res.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var busiest *tempriv.NodeStats
	var drops, preempts uint64
	for _, id := range ids {
		ns := res.Nodes[id]
		drops += ns.Drops
		preempts += ns.Preemptions
		if busiest == nil || ns.AvgOccupancy > busiest.AvgOccupancy {
			busiest = ns
		}
	}
	fmt.Printf("\nnetwork: %d buffering nodes, %d drops, %d preemptions\n", len(ids), drops, preempts)
	if busiest != nil {
		fmt.Printf("busiest node: %v (%d hops from sink) avg occupancy %.2f, peak %.0f, mean hold %.1f\n",
			busiest.ID, busiest.HopsToSink, busiest.AvgOccupancy, busiest.MaxOccupancy, busiest.MeanHeldDelay)
	}
	if res.SealFailures > 0 {
		fmt.Printf("WARNING: %d payload authentication failures\n", res.SealFailures)
	}
}
