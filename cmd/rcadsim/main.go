// Command rcadsim runs one temporal-privacy simulation and reports the
// privacy (adversary MSE), performance (latency) and buffer metrics the
// paper evaluates.
//
// Examples:
//
//	rcadsim                                     # Figure-1 topology, RCAD, 1/λ=2
//	rcadsim -policy delay-unlimited -interarrival 10
//	rcadsim -topo line -hops 15 -adversary adaptive
//	rcadsim -rate-control -target-loss 0.1      # §4 per-node µ planning
//	rcadsim -link-loss 0.1 -arq                 # lossy links, per-hop ARQ
//	rcadsim -topo grid -fail 11@500 -route-repair
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"tempriv"
	"tempriv/internal/buildinfo"
	"tempriv/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcadsim:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("rcadsim", flag.ContinueOnError)
	var (
		topoKind     = fs.String("topo", "figure1", "topology: figure1 | line | grid | random")
		hops         = fs.Int("hops", 15, "line topology: hops from source to sink")
		gridW        = fs.Int("grid-w", 10, "grid topology: width")
		gridH        = fs.Int("grid-h", 10, "grid topology: height")
		fieldNodes   = fs.Int("field-nodes", 150, "random topology: node count")
		fieldSide    = fs.Float64("field-side", 10, "random topology: field side length")
		fieldRadius  = fs.Float64("field-radius", 1.6, "random topology: radio radius")
		policyName   = fs.String("policy", "rcad", "buffering: no-delay | delay-unlimited | delay-droptail | rcad")
		interarrival = fs.Float64("interarrival", 2, "packet interarrival time 1/λ per source")
		packets      = fs.Int("packets", 1000, "packets per source")
		meanDelay    = fs.Float64("mean-delay", 30, "mean per-hop buffering delay 1/µ")
		capacity     = fs.Int("capacity", 10, "buffer slots k")
		victimName   = fs.String("victim", "shortest-remaining", "RCAD victim rule: shortest-remaining | longest-remaining | oldest | random")
		distName     = fs.String("delay-dist", "exponential", "delay distribution: exponential | uniform | constant | pareto")
		advName      = fs.String("adversary", "baseline", "adversary: baseline | adaptive | path-aware")
		threshold    = fs.Float64("threshold", 0.1, "adaptive adversary Erlang-loss threshold")
		tau          = fs.Float64("tau", 1, "per-hop transmission delay τ")
		seed         = fs.Uint64("seed", 1, "random seed")
		replicate    = fs.Int("replicate", 1, "run seeds seed..seed+n-1 through one reused engine and append a replicate summary")
		sealed       = fs.Bool("seal", false, "encrypt payloads end-to-end (AES-CTR+HMAC)")
		rateControl  = fs.Bool("rate-control", false, "enable the §4 per-node delay planner")
		targetLoss   = fs.Float64("target-loss", 0.1, "rate controller's Erlang-loss target α")
		traceFile    = fs.String("trace", "", "write per-packet lifecycle events as JSON Lines to this file")
		linkLoss     = fs.Float64("link-loss", 0, "per-link frame-loss probability p (Bernoulli, or good-state under -burst)")
		burst        = fs.Bool("burst", false, "use the Gilbert–Elliott burst-loss channel")
		burstLoss    = fs.Float64("burst-loss", 0.5, "bad-state frame-loss probability (with -burst)")
		burstLen     = fs.Float64("burst-len", 0, "mean burst length in transmissions (with -burst; 0 = default)")
		goodRun      = fs.Float64("good-run", 0, "mean good-state run in transmissions (with -burst; 0 = default)")
		ackLoss      = fs.Float64("ack-loss", 0, "ACK-loss probability (requires -arq; provokes duplicates)")
		arq          = fs.Bool("arq", false, "enable link-layer ARQ (per-hop ACK + retransmission)")
		arqRetries   = fs.Int("arq-retries", 3, "ARQ retransmission budget per hop")
		arqTimeout   = fs.Float64("arq-timeout", 0, "ARQ retransmission timeout (0 = 3τ)")
		arqBackoff   = fs.Float64("arq-backoff", 0, "ARQ timeout backoff multiplier (0 = 2)")
		failSpec     = fs.String("fail", "", "node failures as node@time[,node@time...] e.g. 11@500,14@800")
		routeRepair  = fs.Bool("route-repair", false, "rebuild routes around failed nodes and re-home their buffers")
		telemetryOut = fs.String("telemetry", "", "stream sim-time queue-state samples as JSON Lines to this file")
		sampleEvery  = fs.Float64("sample-every", 1, "sim-time units between telemetry samples (with -telemetry/-prom)")
		promOut      = fs.String("prom", "", "rewrite this file with a Prometheus text snapshot on every sample")
		pprofAddr    = fs.String("pprof-addr", "", "serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060)")
		manifestOut  = fs.String("manifest", "", "write the run manifest as JSON to this file")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		version      = fs.Bool("version", false, "print build identity and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.String("rcadsim"))
		return nil
	}

	// Flag validation happens before any output or side effect: bad flags
	// produce one stderr diagnostic and a non-zero exit, never a partial
	// stdout report or a half-created artifact file.
	if err := validateFlags(flagValues{
		policy: *policyName, interarrival: *interarrival, packets: *packets,
		meanDelay: *meanDelay, capacity: *capacity, tau: *tau,
		threshold: *threshold, targetLoss: *targetLoss,
		hops: *hops, gridW: *gridW, gridH: *gridH,
		fieldNodes: *fieldNodes, fieldSide: *fieldSide, fieldRadius: *fieldRadius,
		linkLoss: *linkLoss, burstLoss: *burstLoss, ackLoss: *ackLoss,
		burstLen: *burstLen, goodRun: *goodRun,
		arq: *arq, arqRetries: *arqRetries, arqTimeout: *arqTimeout, arqBackoff: *arqBackoff,
		sampleEvery: *sampleEvery,
	}); err != nil {
		return err
	}
	if *replicate < 1 {
		return fmt.Errorf("-replicate must be >= 1, got %d", *replicate)
	}
	if *replicate > 1 && (*traceFile != "" || *telemetryOut != "" || *promOut != "") {
		return errors.New("-replicate > 1 cannot be combined with -trace, -telemetry or -prom (observers would interleave runs)")
	}

	// Buffered outputs are flushed and closed on every exit path, error
	// returns included; their errors surface rather than vanish. Cleanups
	// run in reverse registration order, so a writer's flush always
	// precedes its file's close.
	var cleanups []func() error
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			err = errors.Join(err, cleanups[i]())
		}
	}()

	// Profiles are registered first so they cover everything after flag
	// validation and are flushed on every exit path, error returns included.
	profCleanups, err := profiling.Start(*cpuProfile, *memProfile)
	cleanups = append(cleanups, profCleanups...)
	if err != nil {
		return err
	}

	topo, sources, err := buildTopology(*topoKind, *hops, *gridW, *gridH, *fieldNodes, *fieldSide, *fieldRadius, *seed)
	if err != nil {
		return err
	}

	policy, err := parsePolicy(*policyName)
	if err != nil {
		return err
	}
	victim, err := tempriv.VictimByName(*victimName)
	if err != nil {
		return err
	}
	var dist tempriv.DelayDistribution
	if policy != tempriv.PolicyForward {
		dist, err = tempriv.DelayByName(*distName, *meanDelay)
		if err != nil {
			return err
		}
	}
	proc, err := tempriv.PeriodicTraffic(*interarrival)
	if err != nil {
		return err
	}

	cfg := tempriv.Config{
		Topology:          topo,
		Policy:            policy,
		Delay:             dist,
		Capacity:          *capacity,
		Victim:            victim,
		TransmissionDelay: *tau,
		Seed:              *seed,
		Seal:              *sealed,
	}
	for _, s := range sources {
		cfg.Sources = append(cfg.Sources, tempriv.Source{Node: s, Process: proc, Count: *packets})
	}
	if *rateControl {
		cfg.RateControl = &tempriv.RateControl{TargetLoss: *targetLoss, Smoothing: 0.3}
	}
	if *linkLoss > 0 || *burst || *ackLoss > 0 {
		cfg.Channel = &tempriv.ChannelConfig{
			LossP:        *linkLoss,
			Burst:        *burst,
			BurstLossP:   *burstLoss,
			MeanGoodRun:  *goodRun,
			MeanBurstLen: *burstLen,
			AckLossP:     *ackLoss,
		}
	}
	if *arq {
		cfg.ARQ = &tempriv.ARQConfig{MaxRetries: *arqRetries, Timeout: *arqTimeout, Backoff: *arqBackoff}
	}
	failures, err := parseFailures(*failSpec)
	if err != nil {
		return err
	}
	cfg.NodeFailures = failures
	cfg.RouteRepair = *routeRepair
	var tracer *tempriv.JSONLTracer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		bw := bufio.NewWriter(f)
		cleanups = append(cleanups, f.Close, bw.Flush)
		tracer, err = tempriv.NewJSONLTracer(bw)
		if err != nil {
			return err
		}
		cfg.Tracer = tracer
	}

	// Any telemetry flag turns on the live registry; the sampler needs an
	// emitter too.
	var reg *tempriv.TelemetryRegistry
	if *telemetryOut != "" || *promOut != "" || *pprofAddr != "" {
		reg = tempriv.NewTelemetryRegistry()
	}
	var emitters []tempriv.TelemetryEmitter
	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			return fmt.Errorf("creating telemetry file: %w", err)
		}
		em, err := tempriv.NewJSONLEmitter(f)
		if err != nil {
			return err
		}
		cleanups = append(cleanups, f.Close, em.Close)
		emitters = append(emitters, em)
	}
	if *promOut != "" {
		em, err := tempriv.NewPromFileEmitter(reg, *promOut)
		if err != nil {
			return err
		}
		emitters = append(emitters, em)
	}
	if reg != nil {
		tcfg := &tempriv.TelemetryConfig{Registry: reg, SampleHeap: true}
		if len(emitters) > 0 {
			tcfg.SampleEvery = *sampleEvery
			tcfg.Emitter = tempriv.MultiTelemetryEmitter(emitters...)
		}
		cfg.Telemetry = tcfg
	}
	if *pprofAddr != "" {
		srv, err := startDebugServer(*pprofAddr, reg)
		if err != nil {
			return err
		}
		cleanups = append(cleanups, srv.Close)
		fmt.Printf("debug server listening on http://%s (pprof, /debug/vars, /metrics)\n", srv.Addr())
	}

	// With -replicate, all seeds run through one reused engine: topology,
	// routes, buffers, scheduler and packet arena are built once. Engine
	// reuse is byte-identical to fresh runs, so the base seed's report is
	// unchanged; the extra seeds only feed the replicate summary.
	var eng *tempriv.Engine
	if *replicate > 1 {
		if eng, err = tempriv.NewEngine(cfg); err != nil {
			return err
		}
	}
	runOnce := func(s uint64) (*tempriv.Result, error) {
		c := cfg
		c.Seed = s
		if eng != nil {
			return eng.Run(c)
		}
		return tempriv.Run(c)
	}
	res, err := runOnce(*seed)
	if err != nil {
		return err
	}

	est, err := buildAdversary(*advName, topo, *tau, *meanDelay, *capacity, *threshold, policy)
	if err != nil {
		return err
	}
	perFlow, err := tempriv.ScoreAdversaryPerFlow(est, res)
	if err != nil {
		return err
	}

	printReport(res, sources, perFlow, est.Name())
	if *replicate > 1 {
		if err := printReplicateSummary(runOnce, est, res, perFlow, sources, *seed, *replicate); err != nil {
			return err
		}
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("\nlifecycle trace written to %s\n", *traceFile)
	}
	if *telemetryOut != "" {
		fmt.Printf("telemetry time series written to %s\n", *telemetryOut)
	}
	if *manifestOut != "" {
		if err := res.Manifest.WriteJSON(*manifestOut); err != nil {
			return err
		}
	}
	// Stdout stays byte-identical across identical-flag runs, so only the
	// deterministic manifest fields are printed; wall-clock and heap live in
	// the -manifest file.
	m := res.Manifest
	fmt.Printf("\nrun manifest: fingerprint=%s seed=%d events=%d deliveries=%d sim-duration=%g\n",
		m.ConfigFingerprint, m.Seed, m.Events, m.Deliveries, m.SimDuration)
	return nil
}

// maxPlacementAttempts bounds how many consecutive seeds the random-topology
// builder tries before concluding the requested density is unworkable.
const maxPlacementAttempts = 10

// flagValues carries the numeric flags through validation.
type flagValues struct {
	policy                              string
	interarrival                        float64
	packets, capacity                   int
	meanDelay, tau, threshold           float64
	targetLoss                          float64
	hops, gridW, gridH, fieldNodes      int
	fieldSide, fieldRadius              float64
	linkLoss, burstLoss, ackLoss        float64
	burstLen, goodRun                   float64
	arq                                 bool
	arqRetries                          int
	arqTimeout, arqBackoff, sampleEvery float64
}

// validateFlags range-checks every numeric flag up front, so misuse fails
// before the simulator, the trace file or the debug server produce any
// output.
func validateFlags(v flagValues) error {
	if !(v.interarrival > 0) {
		return fmt.Errorf("-interarrival must be > 0, got %v", v.interarrival)
	}
	if v.packets < 1 {
		return fmt.Errorf("-packets must be >= 1, got %d", v.packets)
	}
	if v.policy != "no-delay" && !(v.meanDelay > 0) {
		return fmt.Errorf("-mean-delay must be > 0 for policy %q, got %v", v.policy, v.meanDelay)
	}
	if v.capacity < 1 {
		return fmt.Errorf("-capacity must be >= 1, got %d", v.capacity)
	}
	if !(v.tau > 0) {
		return fmt.Errorf("-tau must be > 0, got %v", v.tau)
	}
	if !(v.threshold > 0) || v.threshold >= 1 {
		return fmt.Errorf("-threshold must be in (0, 1), got %v", v.threshold)
	}
	if !(v.targetLoss > 0) || v.targetLoss >= 1 {
		return fmt.Errorf("-target-loss must be in (0, 1), got %v", v.targetLoss)
	}
	if v.hops < 1 {
		return fmt.Errorf("-hops must be >= 1, got %d", v.hops)
	}
	if v.gridW < 2 || v.gridH < 2 {
		return fmt.Errorf("-grid-w and -grid-h must be >= 2, got %dx%d", v.gridW, v.gridH)
	}
	if v.fieldNodes < 2 {
		return fmt.Errorf("-field-nodes must be >= 2, got %d", v.fieldNodes)
	}
	if !(v.fieldSide > 0) || !(v.fieldRadius > 0) {
		return fmt.Errorf("-field-side and -field-radius must be > 0, got %v and %v", v.fieldSide, v.fieldRadius)
	}
	for name, p := range map[string]float64{
		"-link-loss": v.linkLoss, "-burst-loss": v.burstLoss, "-ack-loss": v.ackLoss,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("%s must be in [0, 1], got %v", name, p)
		}
	}
	if v.ackLoss > 0 && !v.arq {
		return fmt.Errorf("-ack-loss requires -arq (ACKs only exist with ARQ)")
	}
	if v.burstLen < 0 || v.goodRun < 0 {
		return fmt.Errorf("-burst-len and -good-run must be >= 0, got %v and %v", v.burstLen, v.goodRun)
	}
	if v.arqRetries < 0 {
		return fmt.Errorf("-arq-retries must be >= 0, got %d", v.arqRetries)
	}
	if v.arqTimeout < 0 {
		return fmt.Errorf("-arq-timeout must be >= 0, got %v", v.arqTimeout)
	}
	if v.arqBackoff != 0 && v.arqBackoff < 1 {
		return fmt.Errorf("-arq-backoff must be 0 (default) or >= 1, got %v", v.arqBackoff)
	}
	if !(v.sampleEvery > 0) {
		return fmt.Errorf("-sample-every must be > 0, got %v", v.sampleEvery)
	}
	return nil
}

// parseFailures parses -fail's node@time list into failure injections.
func parseFailures(spec string) ([]tempriv.NodeFailure, error) {
	if spec == "" {
		return nil, nil
	}
	var out []tempriv.NodeFailure
	for _, part := range strings.Split(spec, ",") {
		node, at, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("bad -fail entry %q, want node@time", part)
		}
		id, err := strconv.ParseUint(node, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad -fail node in %q: %w", part, err)
		}
		t, err := strconv.ParseFloat(at, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -fail time in %q: %w", part, err)
		}
		out = append(out, tempriv.NodeFailure{Node: tempriv.NodeID(id), At: t})
	}
	return out, nil
}

func buildTopology(kind string, hops, w, h, fieldNodes int, fieldSide, fieldRadius float64, seed uint64) (*tempriv.Topology, []tempriv.NodeID, error) {
	switch kind {
	case "figure1":
		return tempriv.Figure1Topology()
	case "line":
		topo, err := tempriv.NewLineTopology(hops)
		if err != nil {
			return nil, nil, err
		}
		return topo, topo.Sources(), nil
	case "grid":
		topo, err := tempriv.NewGridTopology(w, h)
		if err != nil {
			return nil, nil, err
		}
		// Use the far corner as the single source.
		far := tempriv.GridNodeID(w, w-1, h-1)
		if err := topo.MarkSource(far); err != nil {
			return nil, nil, err
		}
		return topo, topo.Sources(), nil
	case "random":
		// Retry a few placements: sparse samples can be disconnected. The
		// bound keeps a hopeless density (radius far below the connectivity
		// threshold) from looping forever on ever-new seeds.
		var topo *tempriv.Topology
		var err error
		for attempt := 0; attempt < maxPlacementAttempts; attempt++ {
			topo, err = tempriv.NewRandomGeometricTopology(fieldNodes, fieldSide, fieldRadius, seed+uint64(attempt))
			if err == nil {
				break
			}
		}
		if err != nil {
			return nil, nil, fmt.Errorf(
				"random field stayed disconnected after %d placements (%d nodes, side %g, radius %g — raise -field-radius or -field-nodes): %w",
				maxPlacementAttempts, fieldNodes, fieldSide, fieldRadius, err)
		}
		// The node farthest from the sink becomes the source.
		far := tempriv.NodeID(0)
		best := -1.0
		for _, id := range topo.Nodes() {
			p, err := topo.PositionOf(id)
			if err != nil {
				return nil, nil, err
			}
			if d := p.Distance(tempriv.Position{}); d > best {
				best, far = d, id
			}
		}
		if err := topo.MarkSource(far); err != nil {
			return nil, nil, err
		}
		return topo, topo.Sources(), nil
	default:
		return nil, nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func parsePolicy(name string) (tempriv.PolicyKind, error) {
	switch name {
	case "no-delay":
		return tempriv.PolicyForward, nil
	case "delay-unlimited":
		return tempriv.PolicyUnlimited, nil
	case "delay-droptail":
		return tempriv.PolicyDropTail, nil
	case "rcad":
		return tempriv.PolicyRCAD, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

func buildAdversary(name string, topo *tempriv.Topology, tau, meanDelay float64, capacity int, threshold float64, policy tempriv.PolicyKind) (tempriv.Estimator, error) {
	known := meanDelay
	if policy == tempriv.PolicyForward {
		known = 0 // the adversary knows there is no buffering delay
	}
	switch name {
	case "baseline":
		return tempriv.NewBaselineAdversary(tau, known)
	case "adaptive":
		if known == 0 {
			return tempriv.NewBaselineAdversary(tau, 0)
		}
		return tempriv.NewAdaptiveAdversary(tau, known, capacity, threshold)
	case "path-aware":
		if known == 0 {
			return tempriv.NewBaselineAdversary(tau, 0)
		}
		paths, err := tempriv.FlowPaths(topo)
		if err != nil {
			return nil, err
		}
		return tempriv.NewPathAwareAdversary(tau, known, capacity, threshold, paths)
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}

func printReport(res *tempriv.Result, sources []tempriv.NodeID, perFlow map[tempriv.NodeID]*tempriv.MSE, advName string) {
	fmt.Printf("simulated %.1f time units, %d events, %d deliveries\n\n",
		res.Duration, res.Events, len(res.Deliveries))

	fmt.Printf("%-8s %-5s %-8s %-9s %-8s %-10s %-10s %-12s\n",
		"flow", "hops", "created", "delivered", "dropped", "lat-mean", "lat-p95", advName+"-MSE")
	for i, s := range sources {
		f := res.Flows[s]
		mse := 0.0
		if m, ok := perFlow[s]; ok {
			mse = m.Value()
		}
		fmt.Printf("S%-7d %-5d %-8d %-9d %-8d %-10.1f %-10.1f %-12.4g\n",
			i+1, f.HopCount, f.Created, f.Delivered, f.Dropped(),
			f.Latency.Mean, f.Latency.P95, mse)
	}

	ids := make([]tempriv.NodeID, 0, len(res.Nodes))
	for id := range res.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var busiest *tempriv.NodeStats
	var drops, preempts uint64
	for _, id := range ids {
		ns := res.Nodes[id]
		drops += ns.Drops
		preempts += ns.Preemptions
		if busiest == nil || ns.AvgOccupancy > busiest.AvgOccupancy {
			busiest = ns
		}
	}
	fmt.Printf("\nnetwork: %d buffering nodes, %d drops, %d preemptions\n", len(ids), drops, preempts)
	if busiest != nil {
		fmt.Printf("busiest node: %v (%d hops from sink) avg occupancy %.2f, peak %.0f, mean hold %.1f\n",
			busiest.ID, busiest.HopsToSink, busiest.AvgOccupancy, busiest.MaxOccupancy, busiest.MeanHeldDelay)
	}
	if res.LinkDrops > 0 || res.Retransmissions > 0 || res.DuplicatesSuppressed > 0 {
		fmt.Printf("link layer: delivery ratio %.4f, %d retransmissions, %d link drops, %d duplicates suppressed\n",
			res.DeliveryRatio(), res.Retransmissions, res.LinkDrops, res.DuplicatesSuppressed)
	}
	if res.LostToFailures > 0 || res.Reroutes > 0 {
		fmt.Printf("failures: %d packets lost at dead nodes, %d parents rerouted\n",
			res.LostToFailures, res.Reroutes)
	}
	if res.SealFailures > 0 {
		fmt.Printf("WARNING: %d payload authentication failures\n", res.SealFailures)
	}
}

// meanStd is a Welford accumulator for the replicate summary.
type meanStd struct {
	n    int
	mean float64
	m2   float64
}

func (w *meanStd) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *meanStd) std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// printReplicateSummary runs seeds base+1..base+n-1 through runOnce (which
// reuses the engine built for the base seed), scores each against the same
// adversary, and prints per-flow mean ± sample stddev of the headline
// metrics across all n seeds.
func printReplicateSummary(runOnce func(uint64) (*tempriv.Result, error), est tempriv.Estimator,
	first *tempriv.Result, firstMSE map[tempriv.NodeID]*tempriv.MSE, sources []tempriv.NodeID, base uint64, n int) error {
	lat := make([]meanStd, len(sources))
	mse := make([]meanStd, len(sources))
	var delivered, dropped meanStd
	fold := func(res *tempriv.Result, perFlow map[tempriv.NodeID]*tempriv.MSE) {
		var del, drop float64
		for i, s := range sources {
			f := res.Flows[s]
			lat[i].add(f.Latency.Mean)
			if m, ok := perFlow[s]; ok {
				mse[i].add(m.Value())
			}
			del += float64(f.Delivered)
			drop += float64(f.Dropped())
		}
		delivered.add(del)
		dropped.add(drop)
	}
	fold(first, firstMSE)
	for i := 1; i < n; i++ {
		res, err := runOnce(base + uint64(i))
		if err != nil {
			return fmt.Errorf("replicate seed %d: %w", base+uint64(i), err)
		}
		perFlow, err := tempriv.ScoreAdversaryPerFlow(est, res)
		if err != nil {
			return err
		}
		fold(res, perFlow)
	}
	fmt.Printf("\nreplicates: %d seeds (%d..%d), one engine reused across runs\n", n, base, base+uint64(n)-1)
	for i := range sources {
		fmt.Printf("S%-7d lat-mean %.1f ± %.1f   %s-MSE %.4g ± %.3g\n",
			i+1, lat[i].mean, lat[i].std(), est.Name(), mse[i].mean, mse[i].std())
	}
	fmt.Printf("totals: delivered %.1f ± %.1f, dropped %.1f ± %.1f per run\n",
		delivered.mean, delivered.std(), dropped.mean, dropped.std())
	return nil
}
