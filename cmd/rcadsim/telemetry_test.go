package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tempriv"
)

func TestTelemetryFlagWritesParseableSeries(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	if err := run([]string{"-packets", "60", "-topo", "line", "-hops", "4",
		"-telemetry", out, "-sample-every", "1.0"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 {
		t.Fatalf("telemetry series has %d samples, want a dense series", len(lines))
	}
	var last tempriv.TelemetrySample
	for i, line := range lines {
		var s tempriv.TelemetrySample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("sample %d not parseable: %v", i, err)
		}
		if i > 0 && s.At <= last.At {
			t.Fatalf("sample times not increasing at %d", i)
		}
		last = s
	}
	if last.Created != 60 || last.Delivered == 0 {
		t.Fatalf("final sample %+v, want 60 created and some delivered", last)
	}
}

func TestManifestStableAcrossIdenticalSeedRuns(t *testing.T) {
	dir := t.TempDir()
	read := func(name string) tempriv.RunManifest {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := run([]string{"-packets", "50", "-topo", "line", "-hops", "3",
			"-seed", "7", "-manifest", path}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var m tempriv.RunManifest
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := read("a.json"), read("b.json")
	if a.ConfigFingerprint != b.ConfigFingerprint {
		t.Fatalf("identical-seed runs fingerprinted differently:\n%s\n%s",
			a.ConfigFingerprint, b.ConfigFingerprint)
	}
	if a.Seed != 7 || a.GoVersion == "" || a.Events == 0 || a.Deliveries == 0 {
		t.Fatalf("manifest missing fields: %+v", a)
	}
	// The simulated outcome is deterministic even though wall-clock isn't.
	if a.SimDuration != b.SimDuration || a.Events != b.Events || a.Deliveries != b.Deliveries {
		t.Fatalf("identical-seed runs disagree: %+v vs %+v", a, b)
	}
}

func TestPromFlagWritesSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.prom")
	if err := run([]string{"-packets", "40", "-topo", "line", "-hops", "3",
		"-prom", out, "-sample-every", "2"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		"# TYPE tempriv_packets_created_total counter",
		"tempriv_packets_created_total 40",
		"# TYPE tempriv_delivery_latency histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prom snapshot missing %q:\n%s", want, text)
		}
	}
}

func TestDebugServerServesEndpoints(t *testing.T) {
	reg := tempriv.NewTelemetryRegistry()
	reg.Counter("tempriv_test_total").Add(5)
	srv, err := startDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "tempriv_test_total 5") {
		t.Fatalf("/metrics = %q", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "tempriv") {
		t.Fatalf("/debug/vars missing the tempriv var: %q", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ index unexpected: %q", body)
	}
}

func TestPprofFlagRuns(t *testing.T) {
	if err := run([]string{"-packets", "30", "-topo", "line", "-hops", "3",
		"-pprof-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryUnwritablePathFails(t *testing.T) {
	if err := run([]string{"-packets", "10", "-topo", "line", "-hops", "2",
		"-telemetry", "/nonexistent-dir/out.jsonl"}); err == nil {
		t.Fatal("unwritable telemetry path accepted")
	}
}
