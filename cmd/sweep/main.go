// Command sweep regenerates the paper's evaluation artifacts: every figure
// (2a, 2b, 3), the analytic validations, and the ablations indexed in
// DESIGN.md.
//
// Usage:
//
//	sweep -exp fig2a                 # one experiment to stdout
//	sweep -exp all -out results/     # everything, plus CSV files
//	sweep -list                      # show the registry
//
// Reduced-size runs for quick iteration:
//
//	sweep -exp fig3 -packets 200 -interarrivals 2,10,20
//
// Replication across seeds is partitioned over worker goroutines — one per
// CPU by default — each reusing a pool of arena-backed simulation engines,
// with a deterministic merge so the output is byte-identical to the serial
// -j 1 form (and to -fresh-engines, which disables engine reuse):
//
//	sweep -exp fig2b -replicate 8        # -j defaults to all CPUs
//	sweep -exp fig2b -replicate 8 -j 1   # force the serial path
//
// Result caching — repeated sweeps of identical scenarios reuse the
// fingerprint-keyed result cache (the same engine and cache cmd/temprivd
// serves over HTTP) instead of re-simulating:
//
//	sweep -exp all -cache ~/.cache/tempriv
//
// Crash-resumable sweeps — with -resume, every replicate is persisted to a
// checksummed chunk store as it completes, and a re-run of the same command
// (same directory) resumes from the surviving replicates instead of
// recomputing them, with byte-identical output:
//
//	sweep -exp fig2b -replicate 32 -resume ./chunks
//
// With -out, every experiment also gets an <id>.manifest.json recording
// its configuration fingerprint, seed and wall-clock, and the whole sweep
// a summary.json aggregating them (cache hit/miss counts included).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tempriv"
	"tempriv/internal/buildinfo"
	"tempriv/internal/profiling"
	"tempriv/internal/resultcache"
	"tempriv/internal/resultstream"
	"tempriv/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		exp           = fs.String("exp", "all", "experiment id to run, or \"all\"")
		list          = fs.Bool("list", false, "list registered experiments and exit")
		out           = fs.String("out", "", "directory to write <id>.txt, <id>.csv and <id>.manifest.json into (optional)")
		cacheDir      = fs.String("cache", "", "result-cache directory: identical scenarios replay cached tables instead of re-simulating")
		resumeDir     = fs.String("resume", "", "result-chunk directory: persist each replicate as it completes and resume interrupted sweeps from the surviving chunks")
		seed          = fs.Uint64("seed", 0, "random seed (0 = paper default)")
		packets       = fs.Int("packets", 0, "packets per source (0 = paper default 1000)")
		interarrivals = fs.String("interarrivals", "", "comma-separated 1/λ sweep (default 2..20)")
		meanDelay     = fs.Float64("mean-delay", 0, "mean per-hop buffering delay 1/µ (0 = paper default 30)")
		capacity      = fs.Int("capacity", 0, "buffer slots k (0 = paper default 10)")
		workers       = fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		replicate     = fs.Int("replicate", 1, "run each experiment under N consecutive seeds and report mean ± 95% CI")
		repWorkers    = fs.Int("j", 0, "replication worker goroutines (0 = one per CPU; output stays byte-identical to -j 1)")
		freshEngines  = fs.Bool("fresh-engines", false, "build every simulation engine from scratch instead of reusing pooled engines (slower; bytes identical)")
		keepChunks    = fs.Bool("keep-chunks", false, "with -resume, keep each experiment's replicate chunks after it completes instead of removing them")
		cpuProfile    = fs.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
		memProfile    = fs.String("memprofile", "", "write a heap profile to this file on exit")
		version       = fs.Bool("version", false, "print build identity and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.String("sweep"))
		return nil
	}

	if *list {
		for _, e := range tempriv.Experiments() {
			fmt.Printf("%-11s %-22s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}

	// Everything below validates before the first byte of stdout: bad flags
	// produce one stderr diagnostic and a non-zero exit, never a partial
	// table.
	if *repWorkers < 0 {
		return fmt.Errorf("-j must be >= 0, got %d", *repWorkers)
	}
	if *repWorkers == 0 {
		*repWorkers = runtime.GOMAXPROCS(0)
	}
	if *replicate < 1 {
		return fmt.Errorf("-replicate must be >= 1, got %d", *replicate)
	}
	if *packets < 0 {
		return fmt.Errorf("-packets must be >= 0, got %d", *packets)
	}
	if *meanDelay < 0 {
		return fmt.Errorf("-mean-delay must be >= 0, got %v", *meanDelay)
	}
	if *capacity < 0 {
		return fmt.Errorf("-capacity must be >= 0, got %d", *capacity)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	var ias []float64
	if *interarrivals != "" {
		var err error
		if ias, err = parseFloats(*interarrivals); err != nil {
			return fmt.Errorf("parsing -interarrivals: %w", err)
		}
	}

	// Profiles are registered after validation and flushed on every exit
	// path, error returns included; cleanups run in reverse registration
	// order, so the profile writes always precede their files' closes.
	cleanups, profErr := profiling.Start(*cpuProfile, *memProfile)
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			err = errors.Join(err, cleanups[i]())
		}
	}()
	if profErr != nil {
		return profErr
	}

	var selected []tempriv.Experiment
	if *exp == "all" {
		selected = tempriv.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := tempriv.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	// Each experiment becomes a scenario spec — the same document the
	// temprivd server accepts — validated up front and executed through the
	// shared scenario engine, so CLI results and served results are
	// interchangeable cache citizens.
	specs := make([]scenario.Spec, len(selected))
	for i, e := range selected {
		spec := scenario.Spec{
			Version: scenario.CurrentVersion,
			Experiment: &scenario.ExperimentSpec{
				ID:            e.ID,
				Seed:          *seed,
				Packets:       *packets,
				Interarrivals: ias,
				MeanDelay:     *meanDelay,
				Capacity:      *capacity,
				Replicates:    *replicate,
			},
		}
		normalized, err := spec.Normalize()
		if err != nil {
			return fmt.Errorf("scenario for %s: %w", e.ID, err)
		}
		specs[i] = normalized
	}

	var cache *resultcache.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = resultcache.Open(*cacheDir, 0); err != nil {
			return err
		}
	}
	var chunks *resultstream.Store
	if *resumeDir != "" {
		var err error
		if chunks, err = resultstream.Open(*resumeDir, resultstream.Options{}); err != nil {
			return err
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("creating output directory: %w", err)
		}
	}

	// p mirrors the normalized scenario parameters for the legacy
	// (seed-free) config fingerprint the per-run manifests record.
	p := tempriv.DefaultParams()
	first := specs[0].Experiment
	p.Seed = first.Seed
	p.Packets = first.Packets
	p.Interarrivals = first.Interarrivals
	p.MeanDelay = first.MeanDelay
	p.Capacity = first.Capacity

	var manifests []runManifest
	var hits, misses, resumedReps int
	sweepStart := time.Now()
	for i, e := range selected {
		spec := specs[i]
		fp, err := spec.Fingerprint()
		if err != nil {
			return fmt.Errorf("fingerprinting %s: %w", e.ID, err)
		}
		fmt.Printf("== %s (%s) ==\n", e.ID, e.Paper)
		start := time.Now()
		var text, csv, scenarioManifest []byte
		cacheState := ""
		if cache != nil {
			entry, ok, err := cache.Get(fp)
			if err != nil {
				return fmt.Errorf("result cache get %s: %w", e.ID, err)
			}
			if ok {
				text, csv, scenarioManifest = entry.TableText, entry.TableCSV, entry.Manifest
				cacheState = "hit"
				hits++
			} else {
				cacheState = "miss"
				misses++
			}
		}
		if text == nil {
			runOpts := scenario.Options{
				ReplicateWorkers:   *repWorkers,
				SweepWorkers:       *workers,
				DisableEngineReuse: *freshEngines,
			}
			var sink *resultstream.Sink
			if chunks != nil {
				var err error
				sink, err = chunks.Sink(fp, spec.Replicates(), resultstream.SinkHooks{
					Quarantined: func(n int) {
						fmt.Fprintf(os.Stderr, "sweep: %s: %d corrupt chunk(s) quarantined; recomputing their replicates\n", e.ID, n)
					},
					AppendError: func(err error) {
						fmt.Fprintf(os.Stderr, "sweep: %s: chunk append failed (resume degraded): %v\n", e.ID, err)
					},
				})
				if err != nil {
					return fmt.Errorf("opening chunk store for %s: %w", e.ID, err)
				}
				// Assigned only when non-nil: a typed-nil sink would pass the
				// engine's interface check and then panic on use.
				runOpts.Sink = sink
				if n := sink.Persisted(); n > 0 {
					fmt.Fprintf(os.Stderr, "sweep: %s: resuming, %d of %d replicate(s) already persisted\n", e.ID, n, spec.Replicates())
				}
			}
			outcome, err := scenario.Run(context.Background(), spec, runOpts)
			if sink != nil {
				resumedReps += sink.Skipped()
				if cerr := sink.Close(); cerr != nil {
					fmt.Fprintf(os.Stderr, "sweep: %s: closing chunk writer: %v\n", e.ID, cerr)
				}
			}
			if err != nil {
				return fmt.Errorf("running %s: %w", e.ID, err)
			}
			if chunks != nil && !*keepChunks {
				// The experiment completed; its per-replicate chunks have
				// served their purpose.
				if err := chunks.Remove(fp); err != nil {
					fmt.Fprintf(os.Stderr, "sweep: %s: removing finished chunks: %v\n", e.ID, err)
				}
			}
			text, csv = outcome.TableText, outcome.TableCSV
			if scenarioManifest, err = outcome.ManifestJSON(); err != nil {
				return err
			}
			if cache != nil {
				if err := cache.Put(&resultcache.Entry{
					Fingerprint: fp, TableText: text, TableCSV: csv, Manifest: scenarioManifest,
				}); err != nil {
					// A failed store costs the next sweep a re-run, nothing
					// more; warn and keep sweeping.
					fmt.Fprintf(os.Stderr, "sweep: caching %s: %v\n", e.ID, err)
				}
			}
		}
		wall := time.Since(start).Seconds()
		if _, err := os.Stdout.Write(text); err != nil {
			return fmt.Errorf("rendering %s: %w", e.ID, err)
		}
		fmt.Println()
		if *out != "" {
			if err := writeArtifacts(*out, e.ID, text, csv); err != nil {
				return err
			}
			m, err := newRunManifest(e.ID, p, *replicate, wall)
			if err != nil {
				return fmt.Errorf("fingerprinting %s: %w", e.ID, err)
			}
			m.SpecFingerprint = fp
			m.Cache = cacheState
			if err := writeJSON(filepath.Join(*out, e.ID+".manifest.json"), m); err != nil {
				return fmt.Errorf("writing %s manifest: %w", e.ID, err)
			}
			manifests = append(manifests, m)
		}
	}

	if cache != nil {
		fmt.Printf("result cache: %d hit(s), %d miss(es)\n", hits, misses)
	}
	if chunks != nil && resumedReps > 0 {
		fmt.Printf("resume: %d replicate(s) served from surviving chunks\n", resumedReps)
	}
	if *out != "" && len(manifests) > 0 {
		summary := sweepSummary{
			GoVersion:        runtime.Version(),
			TotalWallSeconds: time.Since(sweepStart).Seconds(),
			CacheHits:        hits,
			CacheMisses:      misses,
			Runs:             manifests,
		}
		if err := writeJSON(filepath.Join(*out, "summary.json"), summary); err != nil {
			return fmt.Errorf("writing sweep summary: %w", err)
		}
	}
	return nil
}

// runManifest records one experiment run's provenance, mirroring the
// per-simulation manifests network.Run produces: what configuration ran
// (fingerprinted without the seed, which labels the replicate series), the
// seed-inclusive scenario fingerprint the result cache is keyed by, and how
// long it took.
type runManifest struct {
	Experiment        string  `json:"experiment"`
	ConfigFingerprint string  `json:"config_fingerprint"`
	SpecFingerprint   string  `json:"spec_fingerprint,omitempty"`
	Cache             string  `json:"cache,omitempty"`
	Seed              uint64  `json:"seed"`
	Replicates        int     `json:"replicates,omitempty"`
	GoVersion         string  `json:"go_version"`
	WallSeconds       float64 `json:"wall_seconds"`
}

// sweepSummary aggregates a whole sweep's manifests into one artifact.
type sweepSummary struct {
	GoVersion        string        `json:"go_version"`
	TotalWallSeconds float64       `json:"total_wall_seconds"`
	CacheHits        int           `json:"cache_hits"`
	CacheMisses      int           `json:"cache_misses"`
	Runs             []runManifest `json:"runs"`
}

func newRunManifest(id string, p tempriv.Params, replicates int, wall float64) (runManifest, error) {
	// Seed and Workers are execution labels, not configuration: two runs
	// differing only there fingerprint identically.
	fp, err := tempriv.ConfigFingerprint(map[string]any{
		"experiment":    id,
		"packets":       p.Packets,
		"interarrivals": p.Interarrivals,
		"mean_delay":    p.MeanDelay,
		"capacity":      p.Capacity,
		"tau":           p.Tau,
		"threshold":     p.Threshold,
		"replicates":    replicates,
	})
	if err != nil {
		return runManifest{}, err
	}
	m := runManifest{
		Experiment:        id,
		ConfigFingerprint: fp,
		Seed:              p.Seed,
		GoVersion:         runtime.Version(),
		WallSeconds:       wall,
	}
	if replicates > 1 {
		m.Replicates = replicates
	}
	return m, nil
}

func writeArtifacts(dir, id string, text, csv []byte) error {
	if err := os.WriteFile(filepath.Join(dir, id+".txt"), text, 0o644); err != nil {
		return fmt.Errorf("writing %s.txt: %w", id, err)
	}
	if err := os.WriteFile(filepath.Join(dir, id+".csv"), csv, 0o644); err != nil {
		return fmt.Errorf("writing %s.csv: %w", id, err)
	}
	return nil
}

func writeJSON(path string, v any) (err error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
