// Command sweep regenerates the paper's evaluation artifacts: every figure
// (2a, 2b, 3), the analytic validations, and the ablations indexed in
// DESIGN.md.
//
// Usage:
//
//	sweep -exp fig2a                 # one experiment to stdout
//	sweep -exp all -out results/     # everything, plus CSV files
//	sweep -list                      # show the registry
//
// Reduced-size runs for quick iteration:
//
//	sweep -exp fig3 -packets 200 -interarrivals 2,10,20
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tempriv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		exp           = fs.String("exp", "all", "experiment id to run, or \"all\"")
		list          = fs.Bool("list", false, "list registered experiments and exit")
		out           = fs.String("out", "", "directory to write <id>.txt and <id>.csv into (optional)")
		seed          = fs.Uint64("seed", 0, "random seed (0 = paper default)")
		packets       = fs.Int("packets", 0, "packets per source (0 = paper default 1000)")
		interarrivals = fs.String("interarrivals", "", "comma-separated 1/λ sweep (default 2..20)")
		meanDelay     = fs.Float64("mean-delay", 0, "mean per-hop buffering delay 1/µ (0 = paper default 30)")
		capacity      = fs.Int("capacity", 0, "buffer slots k (0 = paper default 10)")
		workers       = fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		replicate     = fs.Int("replicate", 1, "run each experiment under N consecutive seeds and report mean ± 95% CI")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range tempriv.Experiments() {
			fmt.Printf("%-11s %-22s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}

	p := tempriv.DefaultParams()
	if *seed != 0 {
		p.Seed = *seed
	}
	if *packets != 0 {
		p.Packets = *packets
	}
	if *meanDelay != 0 {
		p.MeanDelay = *meanDelay
	}
	if *capacity != 0 {
		p.Capacity = *capacity
	}
	if *workers != 0 {
		p.Workers = *workers
	}
	if *interarrivals != "" {
		values, err := parseFloats(*interarrivals)
		if err != nil {
			return fmt.Errorf("parsing -interarrivals: %w", err)
		}
		p.Interarrivals = values
	}

	var selected []tempriv.Experiment
	if *exp == "all" {
		selected = tempriv.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := tempriv.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("creating output directory: %w", err)
		}
	}

	for _, e := range selected {
		fmt.Printf("== %s (%s) ==\n", e.ID, e.Paper)
		var tab *tempriv.Table
		var err error
		if *replicate > 1 {
			tab, err = tempriv.ReplicateExperiment(e, p, *replicate)
		} else {
			tab, err = e.Run(p)
		}
		if err != nil {
			return fmt.Errorf("running %s: %w", e.ID, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return fmt.Errorf("rendering %s: %w", e.ID, err)
		}
		fmt.Println()
		if *out != "" {
			if err := writeArtifacts(*out, e.ID, tab); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeArtifacts(dir, id string, tab *tempriv.Table) error {
	txt, err := os.Create(filepath.Join(dir, id+".txt"))
	if err != nil {
		return fmt.Errorf("creating %s.txt: %w", id, err)
	}
	defer func() { _ = txt.Close() }()
	if err := tab.Render(txt); err != nil {
		return fmt.Errorf("writing %s.txt: %w", id, err)
	}

	csv, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return fmt.Errorf("creating %s.csv: %w", id, err)
	}
	defer func() { _ = csv.Close() }()
	if err := tab.RenderCSV(csv); err != nil {
		return fmt.Errorf("writing %s.csv: %w", id, err)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
