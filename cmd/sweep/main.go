// Command sweep regenerates the paper's evaluation artifacts: every figure
// (2a, 2b, 3), the analytic validations, and the ablations indexed in
// DESIGN.md.
//
// Usage:
//
//	sweep -exp fig2a                 # one experiment to stdout
//	sweep -exp all -out results/     # everything, plus CSV files
//	sweep -list                      # show the registry
//
// Reduced-size runs for quick iteration:
//
//	sweep -exp fig3 -packets 200 -interarrivals 2,10,20
//
// Replication across seeds, parallelised over 4 worker goroutines (the
// output is byte-identical to the serial -j 1 form):
//
//	sweep -exp fig2b -replicate 8 -j 4
//
// With -out, every experiment also gets an <id>.manifest.json recording
// its configuration fingerprint, seed and wall-clock, and the whole sweep
// a summary.json aggregating them.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tempriv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		exp           = fs.String("exp", "all", "experiment id to run, or \"all\"")
		list          = fs.Bool("list", false, "list registered experiments and exit")
		out           = fs.String("out", "", "directory to write <id>.txt, <id>.csv and <id>.manifest.json into (optional)")
		seed          = fs.Uint64("seed", 0, "random seed (0 = paper default)")
		packets       = fs.Int("packets", 0, "packets per source (0 = paper default 1000)")
		interarrivals = fs.String("interarrivals", "", "comma-separated 1/λ sweep (default 2..20)")
		meanDelay     = fs.Float64("mean-delay", 0, "mean per-hop buffering delay 1/µ (0 = paper default 30)")
		capacity      = fs.Int("capacity", 0, "buffer slots k (0 = paper default 10)")
		workers       = fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
		replicate     = fs.Int("replicate", 1, "run each experiment under N consecutive seeds and report mean ± 95% CI")
		repWorkers    = fs.Int("j", 1, "replication worker goroutines (with -replicate; output stays byte-identical to -j 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range tempriv.Experiments() {
			fmt.Printf("%-11s %-22s %s\n", e.ID, e.Paper, e.Title)
		}
		return nil
	}
	if *repWorkers < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", *repWorkers)
	}

	p := tempriv.DefaultParams()
	if *seed != 0 {
		p.Seed = *seed
	}
	if *packets != 0 {
		p.Packets = *packets
	}
	if *meanDelay != 0 {
		p.MeanDelay = *meanDelay
	}
	if *capacity != 0 {
		p.Capacity = *capacity
	}
	if *workers != 0 {
		p.Workers = *workers
	}
	if *interarrivals != "" {
		values, err := parseFloats(*interarrivals)
		if err != nil {
			return fmt.Errorf("parsing -interarrivals: %w", err)
		}
		p.Interarrivals = values
	}

	var selected []tempriv.Experiment
	if *exp == "all" {
		selected = tempriv.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := tempriv.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("creating output directory: %w", err)
		}
	}

	var manifests []runManifest
	sweepStart := time.Now()
	for _, e := range selected {
		fmt.Printf("== %s (%s) ==\n", e.ID, e.Paper)
		start := time.Now()
		var tab *tempriv.Table
		var err error
		if *replicate > 1 {
			tab, err = tempriv.ReplicateExperimentParallel(e, p, *replicate, *repWorkers)
		} else {
			tab, err = e.Run(p)
		}
		wall := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("running %s: %w", e.ID, err)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return fmt.Errorf("rendering %s: %w", e.ID, err)
		}
		fmt.Println()
		if *out != "" {
			if err := writeArtifacts(*out, e.ID, tab); err != nil {
				return err
			}
			m, err := newRunManifest(e.ID, p, *replicate, wall)
			if err != nil {
				return fmt.Errorf("fingerprinting %s: %w", e.ID, err)
			}
			if err := writeJSON(filepath.Join(*out, e.ID+".manifest.json"), m); err != nil {
				return fmt.Errorf("writing %s manifest: %w", e.ID, err)
			}
			manifests = append(manifests, m)
		}
	}

	if *out != "" && len(manifests) > 0 {
		summary := sweepSummary{
			GoVersion:        runtime.Version(),
			TotalWallSeconds: time.Since(sweepStart).Seconds(),
			Runs:             manifests,
		}
		if err := writeJSON(filepath.Join(*out, "summary.json"), summary); err != nil {
			return fmt.Errorf("writing sweep summary: %w", err)
		}
	}
	return nil
}

// runManifest records one experiment run's provenance, mirroring the
// per-simulation manifests network.Run produces: what configuration ran
// (fingerprinted without the seed, which labels the replicate series) and
// how long it took.
type runManifest struct {
	Experiment        string  `json:"experiment"`
	ConfigFingerprint string  `json:"config_fingerprint"`
	Seed              uint64  `json:"seed"`
	Replicates        int     `json:"replicates,omitempty"`
	GoVersion         string  `json:"go_version"`
	WallSeconds       float64 `json:"wall_seconds"`
}

// sweepSummary aggregates a whole sweep's manifests into one artifact.
type sweepSummary struct {
	GoVersion        string        `json:"go_version"`
	TotalWallSeconds float64       `json:"total_wall_seconds"`
	Runs             []runManifest `json:"runs"`
}

func newRunManifest(id string, p tempriv.Params, replicates int, wall float64) (runManifest, error) {
	// Seed and Workers are execution labels, not configuration: two runs
	// differing only there fingerprint identically.
	fp, err := tempriv.ConfigFingerprint(map[string]any{
		"experiment":    id,
		"packets":       p.Packets,
		"interarrivals": p.Interarrivals,
		"mean_delay":    p.MeanDelay,
		"capacity":      p.Capacity,
		"tau":           p.Tau,
		"threshold":     p.Threshold,
		"replicates":    replicates,
	})
	if err != nil {
		return runManifest{}, err
	}
	m := runManifest{
		Experiment:        id,
		ConfigFingerprint: fp,
		Seed:              p.Seed,
		GoVersion:         runtime.Version(),
		WallSeconds:       wall,
	}
	if replicates > 1 {
		m.Replicates = replicates
	}
	return m, nil
}

func writeArtifacts(dir, id string, tab *tempriv.Table) error {
	if err := writeFile(filepath.Join(dir, id+".txt"), tab.Render); err != nil {
		return fmt.Errorf("writing %s.txt: %w", id, err)
	}
	if err := writeFile(filepath.Join(dir, id+".csv"), tab.RenderCSV); err != nil {
		return fmt.Errorf("writing %s.csv: %w", id, err)
	}
	return nil
}

// writeFile renders into a buffered writer and surfaces flush and close
// errors — a plain deferred Close would silently drop a full disk.
func writeFile(path string, render func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, f.Close()) }()
	bw := bufio.NewWriter(f)
	if err := render(bw); err != nil {
		return err
	}
	return bw.Flush()
}

func writeJSON(path string, v any) (err error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
