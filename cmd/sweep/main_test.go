package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tempriv/internal/resultstream"
	"tempriv/internal/scenario"
)

func TestListMode(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleExperimentReducedSize(t *testing.T) {
	err := run([]string{"-exp", "erlang", "-packets", "100"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-exp", "fig2b",
		"-packets", "100",
		"-interarrivals", "2,20",
		"-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2b.txt", "fig2b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		if !strings.Contains(string(data), "NoDelay") {
			t.Fatalf("artifact %s missing expected column:\n%s", name, data)
		}
	}
}

func TestCommaSeparatedExperiments(t *testing.T) {
	err := run([]string{"-exp", "eq2-epi,eq4-bound"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplicateFlag(t *testing.T) {
	err := run([]string{
		"-exp", "fig2b",
		"-packets", "60",
		"-interarrivals", "5",
		"-replicate", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplicateParallelFlag(t *testing.T) {
	err := run([]string{
		"-exp", "fig2b",
		"-packets", "60",
		"-interarrivals", "5",
		"-replicate", "3",
		"-j", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadWorkerCount(t *testing.T) {
	if err := run([]string{"-exp", "fig2b", "-replicate", "2", "-j", "-1"}); err == nil {
		t.Fatal("-j -1 accepted")
	}
}

func TestWritesManifestsAndSummary(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-exp", "eq2-epi,eq4-bound",
		"-packets", "80",
		"-seed", "9",
		"-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	var first runManifest
	for i, id := range []string{"eq2-epi", "eq4-bound"} {
		b, err := os.ReadFile(filepath.Join(dir, id+".manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		var m runManifest
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("%s manifest not parseable: %v", id, err)
		}
		if m.Experiment != id || m.ConfigFingerprint == "" || m.Seed != 9 || m.GoVersion == "" {
			t.Fatalf("%s manifest incomplete: %+v", id, m)
		}
		if i == 0 {
			first = m
		} else if m.ConfigFingerprint == first.ConfigFingerprint {
			t.Fatal("different experiments share a config fingerprint")
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	var s sweepSummary
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Runs) != 2 || s.GoVersion == "" || s.TotalWallSeconds <= 0 {
		t.Fatalf("summary incomplete: %+v", s)
	}
}

func TestManifestFingerprintIgnoresSeed(t *testing.T) {
	read := func(seed string) runManifest {
		t.Helper()
		dir := t.TempDir()
		if err := run([]string{"-exp", "eq2-epi", "-packets", "50",
			"-seed", seed, "-out", dir}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "eq2-epi.manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		var m runManifest
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := read("3"), read("4")
	if a.ConfigFingerprint != b.ConfigFingerprint {
		t.Fatal("seed change altered the config fingerprint")
	}
	if a.Seed == b.Seed {
		t.Fatal("manifests lost the seed label")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadInterarrivals(t *testing.T) {
	if err := run([]string{"-exp", "fig2a", "-interarrivals", "2,banana"}); err == nil {
		t.Fatal("unparseable interarrivals accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats(" 2, 4.5 ,20")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4.5, 20}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRejectsBadFlagValues(t *testing.T) {
	cases := [][]string{
		{"-exp", "fig2a", "-replicate", "0"},
		{"-exp", "fig2a", "-packets", "-5"},
		{"-exp", "fig2a", "-mean-delay", "-1"},
		{"-exp", "fig2a", "-capacity", "-2"},
		{"-exp", "fig2a", "-workers", "-1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestCacheHitsSecondSweep(t *testing.T) {
	cacheDir := t.TempDir()
	args := func(out string) []string {
		return []string{
			"-exp", "eq2-epi,eq4-bound",
			"-packets", "60",
			"-interarrivals", "4,8",
			"-cache", cacheDir,
			"-out", out,
		}
	}
	out1, out2 := t.TempDir(), t.TempDir()
	if err := run(args(out1)); err != nil {
		t.Fatal(err)
	}
	if err := run(args(out2)); err != nil {
		t.Fatal(err)
	}

	readSummary := func(dir string) sweepSummary {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, "summary.json"))
		if err != nil {
			t.Fatal(err)
		}
		var s sweepSummary
		if err := json.Unmarshal(b, &s); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := readSummary(out1), readSummary(out2)
	if s1.CacheHits != 0 || s1.CacheMisses != 2 {
		t.Fatalf("first sweep cache counts: %+v", s1)
	}
	if s2.CacheHits != 2 || s2.CacheMisses != 0 {
		t.Fatalf("second sweep not fully cached: %+v", s2)
	}
	for _, m := range s2.Runs {
		if m.Cache != "hit" || m.SpecFingerprint == "" {
			t.Fatalf("run manifest missing cache provenance: %+v", m)
		}
	}

	// The cached replay is byte-identical to the fresh artifacts.
	for _, name := range []string{"eq2-epi.txt", "eq2-epi.csv", "eq4-bound.txt", "eq4-bound.csv"} {
		a, err := os.ReadFile(filepath.Join(out1, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(out2, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("cached artifact %s differs from fresh run", name)
		}
	}
}

func TestCacheSeedChangeMisses(t *testing.T) {
	cacheDir := t.TempDir()
	base := []string{"-exp", "eq2-epi", "-packets", "50", "-cache", cacheDir}
	if err := run(append(base, "-seed", "1", "-out", t.TempDir())); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if err := run(append(base, "-seed", "2", "-out", out)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(out, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	var s sweepSummary
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.CacheHits != 0 || s.CacheMisses != 1 {
		t.Fatalf("changed seed should miss: %+v", s)
	}
}

func TestResumeFlagServesSurvivingChunks(t *testing.T) {
	// Baseline: an uninterrupted replicated sweep.
	baseDir := t.TempDir()
	args := []string{"-exp", "fig2b", "-packets", "60", "-interarrivals", "5", "-replicate", "4"}
	if err := run(append(args, "-out", baseDir)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(baseDir, "fig2b.txt"))
	if err != nil {
		t.Fatal(err)
	}

	// Fake an interrupted -resume sweep: persist all four replicates the
	// way sweep would (same spec, same fingerprint), then drop the last
	// two frames as a crash would have.
	spec := scenario.Spec{
		Version: scenario.CurrentVersion,
		Experiment: &scenario.ExperimentSpec{
			ID: "fig2b", Packets: 60, Interarrivals: []float64{5}, Replicates: 4,
		},
	}
	spec, err = spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	chunksDir := t.TempDir()
	store, err := resultstream.Open(chunksDir, resultstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := store.Sink(fp, spec.Replicates(), resultstream.SinkHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Run(context.Background(), spec, scenario.Options{Sink: sink}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	chunkPath := filepath.Join(chunksDir, fp+".chunks.jsonl")
	data, err := os.ReadFile(chunkPath)
	if err != nil {
		t.Fatal(err)
	}
	frames := bytes.SplitAfter(data, []byte("\n"))
	if len(frames) < 4 {
		t.Fatalf("expected 4 chunk frames, got %d", len(frames))
	}
	if err := os.WriteFile(chunkPath, bytes.Join(frames[:2], nil), 0o644); err != nil {
		t.Fatal(err)
	}

	// The resumed sweep must produce byte-identical artifacts and clean up
	// the spent chunks.
	resumeOut := t.TempDir()
	if err := run(append(args, "-out", resumeOut, "-resume", chunksDir)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(resumeOut, "fig2b.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed sweep differs from uninterrupted sweep:\n%s\nvs\n%s", got, want)
	}
	if _, err := os.Stat(chunkPath); !os.IsNotExist(err) {
		t.Fatalf("chunk file survives after a finished sweep: %v", err)
	}
}
