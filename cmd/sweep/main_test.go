package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListMode(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleExperimentReducedSize(t *testing.T) {
	err := run([]string{"-exp", "erlang", "-packets", "100"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-exp", "fig2b",
		"-packets", "100",
		"-interarrivals", "2,20",
		"-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2b.txt", "fig2b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		if !strings.Contains(string(data), "NoDelay") {
			t.Fatalf("artifact %s missing expected column:\n%s", name, data)
		}
	}
}

func TestCommaSeparatedExperiments(t *testing.T) {
	err := run([]string{"-exp", "eq2-epi,eq4-bound"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplicateFlag(t *testing.T) {
	err := run([]string{
		"-exp", "fig2b",
		"-packets", "60",
		"-interarrivals", "5",
		"-replicate", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadInterarrivals(t *testing.T) {
	if err := run([]string{"-exp", "fig2a", "-interarrivals", "2,banana"}); err == nil {
		t.Fatal("unparseable interarrivals accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats(" 2, 4.5 ,20")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4.5, 20}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
