package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListMode(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleExperimentReducedSize(t *testing.T) {
	err := run([]string{"-exp", "erlang", "-packets", "100"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-exp", "fig2b",
		"-packets", "100",
		"-interarrivals", "2,20",
		"-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2b.txt", "fig2b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		if !strings.Contains(string(data), "NoDelay") {
			t.Fatalf("artifact %s missing expected column:\n%s", name, data)
		}
	}
}

func TestCommaSeparatedExperiments(t *testing.T) {
	err := run([]string{"-exp", "eq2-epi,eq4-bound"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplicateFlag(t *testing.T) {
	err := run([]string{
		"-exp", "fig2b",
		"-packets", "60",
		"-interarrivals", "5",
		"-replicate", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplicateParallelFlag(t *testing.T) {
	err := run([]string{
		"-exp", "fig2b",
		"-packets", "60",
		"-interarrivals", "5",
		"-replicate", "3",
		"-j", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadWorkerCount(t *testing.T) {
	if err := run([]string{"-exp", "fig2b", "-replicate", "2", "-j", "0"}); err == nil {
		t.Fatal("-j 0 accepted")
	}
}

func TestWritesManifestsAndSummary(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-exp", "eq2-epi,eq4-bound",
		"-packets", "80",
		"-seed", "9",
		"-out", dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	var first runManifest
	for i, id := range []string{"eq2-epi", "eq4-bound"} {
		b, err := os.ReadFile(filepath.Join(dir, id+".manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		var m runManifest
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatalf("%s manifest not parseable: %v", id, err)
		}
		if m.Experiment != id || m.ConfigFingerprint == "" || m.Seed != 9 || m.GoVersion == "" {
			t.Fatalf("%s manifest incomplete: %+v", id, m)
		}
		if i == 0 {
			first = m
		} else if m.ConfigFingerprint == first.ConfigFingerprint {
			t.Fatal("different experiments share a config fingerprint")
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	var s sweepSummary
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Runs) != 2 || s.GoVersion == "" || s.TotalWallSeconds <= 0 {
		t.Fatalf("summary incomplete: %+v", s)
	}
}

func TestManifestFingerprintIgnoresSeed(t *testing.T) {
	read := func(seed string) runManifest {
		t.Helper()
		dir := t.TempDir()
		if err := run([]string{"-exp", "eq2-epi", "-packets", "50",
			"-seed", seed, "-out", dir}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "eq2-epi.manifest.json"))
		if err != nil {
			t.Fatal(err)
		}
		var m runManifest
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := read("3"), read("4")
	if a.ConfigFingerprint != b.ConfigFingerprint {
		t.Fatal("seed change altered the config fingerprint")
	}
	if a.Seed == b.Seed {
		t.Fatal("manifests lost the seed label")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadInterarrivals(t *testing.T) {
	if err := run([]string{"-exp", "fig2a", "-interarrivals", "2,banana"}); err == nil {
		t.Fatal("unparseable interarrivals accepted")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats(" 2, 4.5 ,20")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4.5, 20}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
