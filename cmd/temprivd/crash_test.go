package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// slowScenario runs long enough (replicated) to be caught mid-flight by a
// SIGKILL while staying cheap to finish during recovery.
const slowScenario = `{"version":1,"experiment":{"id":"fig3","packets":400,"interarrivals":[2,4],"replicates":8,"seed":7}}`

// TestHelperDaemon is not a test: it is the subprocess body for the crash
// e2e. The parent re-execs this binary with TEMPRIVD_HELPER=1 and SIGKILLs
// it mid-run — exactly the failure the journal exists for.
func TestHelperDaemon(t *testing.T) {
	if os.Getenv("TEMPRIVD_HELPER") != "1" {
		t.Skip("helper subprocess body, not a test")
	}
	ready := make(chan string, 1)
	go func() {
		// The parent scans stdout for this marker to learn the port.
		fmt.Printf("DAEMON_ADDR=%s\n", <-ready)
	}()
	args := []string{
		"-addr", "localhost:0", "-workers", "1",
		"-cache", os.Getenv("TEMPRIVD_CACHE"),
		"-journal", os.Getenv("TEMPRIVD_JOURNAL"),
	}
	if dir := os.Getenv("TEMPRIVD_CHUNKS"); dir != "" {
		args = append(args, "-chunks", dir)
	}
	if err := run(context.Background(), args, ready); err != nil {
		fmt.Fprintln(os.Stderr, "helper daemon:", err)
		os.Exit(1)
	}
}

// TestCrashRecovery is the durability e2e from the issue: boot the daemon
// as a real process, accept jobs (one finished, one running, one queued),
// SIGKILL it, restart on the same journal and cache, and require
//
//   - /readyz to answer 503 while the journal replays, then 200,
//   - every accepted job to reach "done" with its result retrievable,
//   - the pre-crash result to be served byte-identical after the restart.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	cacheDir := t.TempDir()
	journalDir := t.TempDir()

	// --- Phase 1: real subprocess, killed without warning. ---
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperDaemon$", "-test.v")
	cmd.Env = append(os.Environ(),
		"TEMPRIVD_HELPER=1",
		"TEMPRIVD_CACHE="+cacheDir,
		"TEMPRIVD_JOURNAL="+journalDir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "DAEMON_ADDR="); ok {
				addrCh <- rest
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("subprocess daemon never reported its address")
	}
	// Wait out the replay window (empty journal, so it is brief).
	waitReady(t, base)

	// One job runs to completion before the crash...
	doneJob := postJob(t, base, testScenario)
	if v := awaitJob(t, base, doneJob.ID); v.State != "done" {
		t.Fatalf("pre-crash job: %+v", v)
	}
	status, preCrashResult := getBody(t, base+"/v1/jobs/"+doneJob.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("pre-crash result status %d", status)
	}
	// ...one is mid-run when the axe falls (1 worker: the first slow job
	// occupies it)...
	runningJob := postJob(t, base, slowScenario)
	waitJobState(t, base, runningJob.ID, "running")
	// ...and one is still queued behind it.
	queuedJob := postJob(t, base, strings.Replace(slowScenario, `"seed":7`, `"seed":8`, 1))

	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// --- Phase 2: restart in-process on the same state. ---
	gate := make(chan struct{})
	replayObserved := make(chan string, 1)
	testHookReplaying = func() { replayObserved <- "at-hook"; <-gate }
	defer func() { testHookReplaying = nil }()

	base2, shutdown := startDaemon(t, "-cache", cacheDir, "-journal", journalDir)
	select {
	case <-replayObserved:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never entered the replay window")
	}
	// The listener is up but replay has not finished: not ready, alive.
	st, body := getBody(t, base2+"/readyz")
	if st != http.StatusServiceUnavailable || !strings.Contains(string(body), "replaying") {
		t.Fatalf("readyz during replay: %d %s", st, body)
	}
	if st, _ := getBody(t, base2+"/healthz"); st != http.StatusOK {
		t.Fatalf("healthz during replay: %d", st)
	}
	close(gate)
	waitReady(t, base2)

	// Every accepted job survived the crash and reaches done.
	for _, id := range []string{doneJob.ID, runningJob.ID, queuedJob.ID} {
		if v := awaitJob(t, base2, id); v.State != "done" {
			t.Fatalf("job %s after recovery: %+v", id, v)
		}
	}
	// The pre-crash result is re-served byte-identical (from the cache, by
	// fingerprint — the in-memory copy died with the process).
	status, postCrashResult := getBody(t, base2+"/v1/jobs/"+doneJob.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("post-crash result status %d: %s", status, postCrashResult)
	}
	if string(preCrashResult) != string(postCrashResult) {
		t.Fatalf("recovered result not byte-identical:\n%s\nvs\n%s", preCrashResult, postCrashResult)
	}
	// The interrupted jobs' results are real (they re-ran to completion).
	for _, id := range []string{runningJob.ID, queuedJob.ID} {
		if st, body := getBody(t, base2+"/v1/jobs/"+id+"/result"); st != http.StatusOK || len(body) == 0 {
			t.Fatalf("recovered job %s result: %d %s", id, st, body)
		}
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// --- Phase 3: a third boot replays the compacted journal cleanly and
	// still serves the finished population. ---
	base3, shutdown3 := startDaemon(t, "-cache", cacheDir, "-journal", journalDir)
	waitReady(t, base3)
	for _, id := range []string{doneJob.ID, runningJob.ID, queuedJob.ID} {
		if v := awaitJob(t, base3, id); v.State != "done" {
			t.Fatalf("job %s after second restart: %+v", id, v)
		}
	}
	if err := shutdown3(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

func waitJobState(t *testing.T, base, id, want string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		if err := decodeInto(resp, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}
