// Command temprivd serves the simulator as a long-running service: clients
// POST versioned scenario specs to /v1/jobs, a bounded worker pool executes
// them, and a fingerprint-keyed on-disk result cache answers repeated
// scenarios without re-simulating (byte-identical to a fresh run — every
// scenario is seed-deterministic).
//
//	temprivd -addr localhost:7077 -cache ./cache -journal ./journal
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id}, /result, /events
// (JSONL progress stream), DELETE /v1/jobs/{id}, GET /v1/traces/{jobID}
// (end-to-end span tree), GET /v1/cache, /healthz, /readyz, /metrics
// (Prometheus text), /debug/pprof (disable with -debug-endpoints=false).
//
// Observability: every accepted job is traced end to end (ingress → queue →
// attempts/backoff → cache → engine replicates → chunk persistence); the
// most recent traces stay queryable at /v1/traces/{jobID} and, with
// -trace-dir set, every finished trace appends to trace-dir/traces.jsonl.
// Logs are structured (log/slog; -log-format text|json, -log-level) and
// carry trace_id/job_id automatically. /metrics additionally exports
// tempriv_slo_* burn-rate series for the request-latency and cached-result
// objectives, and tempriv_build_info identifies the running build
// (-version prints the same identity).
//
// Durability: with -journal set, every accepted job and every state change
// is appended (fsynced) to a write-ahead journal before the HTTP response
// goes out. After a crash — SIGKILL included — the next boot replays the
// journal: finished jobs stay queryable (results re-served from the cache
// by fingerprint), interrupted jobs re-enqueue and run to completion.
// /readyz answers 503 until replay finishes, then flips to 200; /healthz
// is pure liveness and stays 200 throughout.
//
// SIGTERM/SIGINT drains gracefully: /readyz goes not-ready, no new
// submissions, in-flight jobs finish (up to -drain-timeout, then they are
// canceled), live /events streams are closed, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"tempriv/internal/buildinfo"
	"tempriv/internal/cluster/chaostransport"
	"tempriv/internal/cluster/peering"
	"tempriv/internal/cluster/registry"
	"tempriv/internal/cluster/ring"
	"tempriv/internal/jobs"
	"tempriv/internal/jobstore"
	"tempriv/internal/obs"
	"tempriv/internal/resultcache"
	"tempriv/internal/resultstream"
	"tempriv/internal/scenario"
	"tempriv/internal/server"
	"tempriv/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "temprivd:", err)
		os.Exit(1)
	}
}

// testHookReplaying, when non-nil, runs while the listener is up but
// /readyz still reports "replaying" — tests use it to observe the
// not-ready window deterministically.
var testHookReplaying func()

// run starts the daemon and blocks until ctx is canceled and the drain
// completes. When ready is non-nil it receives the resolved listen address
// once the server is accepting (tests listen on port 0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("temprivd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "localhost:7077", "listen address (port 0 picks an ephemeral port)")
		cacheDir     = fs.String("cache", "", "result-cache directory (empty = caching disabled)")
		cacheMaxMB   = fs.Int64("cache-max-mb", 256, "result-cache size bound in MiB (-1 = unbounded)")
		journalDir   = fs.String("journal", "", "job journal directory (empty = no crash durability)")
		chunksDir    = fs.String("chunks", "", "result-chunk directory for streaming/resumable replicates (empty = disabled)")
		workers      = fs.Int("workers", 0, "job worker goroutines (0 = GOMAXPROCS)")
		queueDepth   = fs.Int("queue-depth", 64, "max queued jobs before 429")
		retries      = fs.Int("retries", 2, "transient-failure retries per job")
		runTimeout   = fs.Duration("run-timeout", 10*time.Minute, "per-job wall-clock deadline across all attempts (0 = none)")
		repWorkers   = fs.Int("j", 1, "replication worker goroutines per job (0 = one per CPU)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		traceDir     = fs.String("trace-dir", "", "directory for the finished-trace JSONL stream (empty = ring buffer only)")
		traceCap     = fs.Int("trace-cap", obs.DefaultCapacity, "how many recent traces /v1/traces retains")
		logFormat    = fs.String("log-format", "text", "log output format: text or json")
		logLevel     = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		debugEps     = fs.Bool("debug-endpoints", true, "serve /debug/pprof and /debug/vars (disable when exposed to untrusted networks)")
		version      = fs.Bool("version", false, "print build identity and exit")

		// Cluster mode: register with a temprivgw gateway and heartbeat so
		// the gateway shards jobs here by fingerprint and hands our jobs to
		// a ring successor if this process dies. Workers in one cluster
		// should share -chunks (crash handoff resumes from persisted
		// replicate chunks) while keeping per-worker -cache and -journal.
		clusterRegistry  = fs.String("cluster-registry", "", "gateway base URL to register with (empty = standalone)")
		clusterID        = fs.String("cluster-id", "", "stable worker ID within the cluster (required with -cluster-registry)")
		clusterURL       = fs.String("cluster-url", "", "advertised base URL for this worker (default http://<listen addr>)")
		clusterCapacity  = fs.Int("cluster-capacity", 0, "advertised capacity (default: -workers)")
		clusterHeartbeat = fs.Duration("cluster-heartbeat", 0, "heartbeat interval (0 = a third of the granted lease TTL)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.String("temprivd"))
		return nil
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *traceCap < 1 {
		return fmt.Errorf("-trace-cap must be >= 1, got %d", *traceCap)
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *repWorkers == 0 {
		*repWorkers = runtime.GOMAXPROCS(0)
	}
	if *workers < 1 || *queueDepth < 1 || *repWorkers < 0 {
		return fmt.Errorf("-workers, -queue-depth and -j must be >= 1 (or 0 for auto)")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}
	if *runTimeout < 0 {
		return fmt.Errorf("-run-timeout must be >= 0, got %v", *runTimeout)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout)
	}
	if *clusterRegistry != "" && *clusterID == "" {
		return fmt.Errorf("-cluster-registry requires -cluster-id")
	}
	if *clusterRegistry == "" && *clusterID != "" {
		return fmt.Errorf("-cluster-id requires -cluster-registry")
	}

	reg := telemetry.NewRegistry()
	buildinfo.Register(reg)

	// Tracing is always on: the flight-recorder ring is cheap, and a crash
	// investigation is exactly when the recent traces matter. -trace-dir
	// additionally streams every finished trace to an append-only JSONL
	// file that survives the process.
	traceOpts := obs.Options{Capacity: *traceCap}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fmt.Errorf("creating trace dir: %w", err)
		}
		f, err := os.OpenFile(filepath.Join(*traceDir, "traces.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening trace stream: %w", err)
		}
		defer f.Close()
		traceOpts.Sink = f
	}
	tracer := obs.New(traceOpts)

	// Two latency objectives share the span clock: every API request is
	// fast, and cache hits specifically answer near-instantly (a cached
	// result that takes as long as a fresh run means the cache is sick).
	requestSLO, err := obs.NewSLO(reg, obs.SLOOptions{
		Name: "request", Objective: 0.99, Threshold: 250 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	cachedSLO, err := obs.NewSLO(reg, obs.SLOOptions{
		Name: "cached_result", Objective: 0.99, Threshold: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	var cache *resultcache.Cache
	if *cacheDir != "" {
		maxBytes := *cacheMaxMB
		if maxBytes > 0 {
			maxBytes <<= 20
		}
		quarantined := reg.Counter("temprivd_cache_quarantined_total")
		cacheIO := reg.Counter("temprivd_cache_io_errors_total")
		breakerGauge := reg.Gauge("temprivd_cache_breaker_open")
		var err error
		cache, err = resultcache.OpenConfig(resultcache.Config{
			Dir:      *cacheDir,
			MaxBytes: maxBytes,
			Hooks: resultcache.Hooks{
				Quarantine: func(string) { quarantined.Inc() },
				IOError:    func(error) { cacheIO.Inc() },
				BreakerChange: func(_, to resultcache.BreakerState) {
					if to == resultcache.BreakerOpen {
						breakerGauge.Set(1)
					} else {
						breakerGauge.Set(0)
					}
				},
			},
		})
		if err != nil {
			return err
		}
	}

	// Open the journal and replay whatever the last process life left
	// behind, before the queue exists and before the listener accepts.
	var journal *jobstore.Journal
	var restored []jobs.RestoredJob
	if *journalDir != "" {
		journalErrs := reg.Counter("temprivd_journal_append_errors_total")
		var err error
		journal, err = jobstore.Open(*journalDir, jobstore.Options{
			OnAppendError: func(error) { journalErrs.Inc() },
		})
		if err != nil {
			return fmt.Errorf("opening journal: %w", err)
		}
		defer journal.Close()
		var skipped int
		for _, rj := range journal.Jobs() {
			spec, err := scenario.Parse(rj.SpecJSON)
			if err != nil {
				// The spec validated when it was accepted; a journal entry
				// that no longer parses is damage — drop it rather than
				// refuse to boot.
				skipped++
				continue
			}
			restored = append(restored, jobs.RestoredJob{
				ID: rj.ID, Spec: spec, Fingerprint: rj.Fingerprint,
				State: rj.State, Attempts: rj.Attempt, CacheHit: rj.CacheHit,
				Error: rj.Error, Submitted: rj.Submitted, Finished: rj.Finished,
				ChunkHWM: rj.ChunkHWM,
			})
		}
		st := journal.Stats()
		reg.Gauge("temprivd_journal_replayed_jobs").Set(float64(len(restored)))
		reg.Gauge("temprivd_journal_corrupt_lines").Set(float64(st.CorruptLines + skipped))
	}

	opts := jobs.Options{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		MaxRetries: *retries,
		RunTimeout: *runTimeout,
		Restore:    restored,
		Log:        log,
	}
	if journal != nil {
		// Assigned only when non-nil: a typed-nil JournalSink would pass
		// the queue's interface check and then panic on use.
		opts.Journal = journal
	}
	var chunks *resultstream.Store
	if *chunksDir != "" {
		var err error
		chunks, err = resultstream.Open(*chunksDir, resultstream.Options{})
		if err != nil {
			return fmt.Errorf("opening chunk store: %w", err)
		}
	}

	// In cluster mode the heartbeat responses carry the membership list;
	// the worker mirrors it into a local ring so the API can flag
	// misdirected submissions (advisory — they still run here).
	var clusterRing atomic.Pointer[ring.Ring]
	var clusterOwns func(fp string) (string, bool)
	var peerStore *peering.Store
	var replicator *peering.Replicator
	if *clusterRegistry != "" {
		clusterOwns = func(fp string) (string, bool) {
			r := clusterRing.Load()
			if r == nil || r.Len() == 0 {
				return "", false
			}
			return r.Owner(fp)
		}

		// Result peering: hold replicas peers push to us, and push every
		// result we finish to our ring successor (write-behind, retried)
		// so the gateway can serve our jobs from the replica — zero
		// recompute — if this process dies. TEMPRIV_CHAOS optionally
		// injects partitions/latency into the worker→worker replication
		// path for fault drills.
		peerStore = peering.NewStore(peering.StoreOptions{})
		peerClient := &http.Client{Timeout: 10 * time.Second}
		if spec := os.Getenv("TEMPRIV_CHAOS"); spec != "" {
			rt, err := chaostransport.Wrap(http.DefaultTransport, spec)
			if err != nil {
				return fmt.Errorf("TEMPRIV_CHAOS: %w", err)
			}
			peerClient.Transport = rt
			log.Warn("chaos transport armed on peer replication", "spec", spec)
		}
		replicator = peering.NewReplicator(peering.ReplicatorOptions{
			SelfID:    *clusterID,
			Client:    peerClient,
			Log:       log,
			Telemetry: reg,
		})
		opts.OnDone = func(snap jobs.Snapshot, res *jobs.Result) {
			replicator.Offer(peering.Replica{
				Fingerprint: snap.Fingerprint,
				TableText:   res.TableText,
				TableCSV:    res.TableCSV,
				Manifest:    res.Manifest,
			})
		}
		go replicator.Run(ctx)
	}

	runner := server.NewRunnerConfig(server.RunnerConfig{
		Cache:            cache,
		Registry:         reg,
		ReplicateWorkers: *repWorkers,
		Chunks:           chunks,
		CachedResultSLO:  cachedSLO,
	})
	queue := jobs.New(runner, opts)

	api := server.NewConfig(server.Config{
		Queue:                 queue,
		Cache:                 cache,
		Chunks:                chunks,
		Registry:              reg,
		Tracer:                tracer,
		SLOs:                  obs.SLOSet{requestSLO, cachedSLO},
		RequestSLO:            requestSLO,
		Log:                   log,
		DisableDebugEndpoints: !*debugEps,
		ClusterID:             *clusterID,
		ClusterOwns:           clusterOwns,
		Peers:                 peerStore,
	})
	api.SetReady(server.ReadyReplaying)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	srv := &http.Server{Handler: api}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.LogAttrs(ctx, slog.LevelInfo, "temprivd listening",
		slog.String("addr", "http://"+ln.Addr().String()),
		slog.Int("workers", *workers),
		slog.String("cache", dirLabel(*cacheDir)),
		slog.String("journal", dirLabel(*journalDir)),
		slog.String("chunks", dirLabel(*chunksDir)),
		slog.Int("restored", len(restored)))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// Join the cluster once the listener is up (the advertised URL must be
	// reachable before the gateway can route to it). The heartbeat loop
	// retries through gateway outages and deregisters on shutdown.
	if *clusterRegistry != "" {
		selfURL := *clusterURL
		if selfURL == "" {
			selfURL = "http://" + ln.Addr().String()
		}
		capacity := *clusterCapacity
		if capacity <= 0 {
			capacity = *workers
		}
		beats := reg.Counter("tempriv_cluster_heartbeats_total")
		beatErrs := reg.Counter("tempriv_cluster_heartbeat_errors_total")
		epochGauge := reg.Gauge("tempriv_cluster_epoch")
		client, err := registry.NewClient(*clusterRegistry, registry.Worker{
			ID: *clusterID, URL: selfURL, Capacity: capacity,
		}, registry.ClientOptions{
			Interval: *clusterHeartbeat,
			OnMembers: func(ws []registry.Worker, epoch uint64) {
				clusterRing.Store(ring.New(registry.IDs(ws), 0))
				epochGauge.Set(float64(epoch))
				if replicator != nil {
					replicator.SetMembers(ws)
				}
			},
			OnHeartbeat: func() { beats.Inc() },
			OnError: func(err error) {
				beatErrs.Inc()
				log.Warn("cluster heartbeat failed", "registry", *clusterRegistry, "error", err)
			},
		})
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		go client.Run(ctx)
		log.Info("cluster mode enabled", "registry", *clusterRegistry,
			"id", *clusterID, "url", selfURL, "capacity", capacity)
	}

	// Finish the replay phase while already listening (so probes can watch
	// it): compact the journal down to live state, then go ready.
	if testHookReplaying != nil {
		testHookReplaying()
	}
	if journal != nil {
		if err := journal.Compact(); err != nil {
			// Compaction is an optimization; a sick disk must not stop boot.
			log.Warn("journal compaction failed", "error", err)
		}
	}
	api.SetReady(server.ReadyServing)

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: go not-ready, stop accepting submissions, let
	// in-flight jobs finish (bounded), close live event streams, then close
	// the HTTP side — /v1/jobs/{id} stays queryable during the drain window.
	log.Info("temprivd draining", "timeout", *drainTimeout)
	api.SetReady(server.ReadyDraining)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := queue.Drain(drainCtx)
	api.Stop()
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		drainErr = errors.Join(drainErr, err)
	}
	<-serveErr // Serve has returned http.ErrServerClosed by now
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return fmt.Errorf("draining: %w", drainErr)
	}
	log.Info("temprivd stopped")
	return nil
}

func dirLabel(dir string) string {
	if dir == "" {
		return "disabled"
	}
	return dir
}
