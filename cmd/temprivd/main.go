// Command temprivd serves the simulator as a long-running service: clients
// POST versioned scenario specs to /v1/jobs, a bounded worker pool executes
// them, and a fingerprint-keyed on-disk result cache answers repeated
// scenarios without re-simulating (byte-identical to a fresh run — every
// scenario is seed-deterministic).
//
//	temprivd -addr localhost:7077 -cache ./cache
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id}, /result, /events
// (JSONL progress stream), DELETE /v1/jobs/{id}, GET /v1/cache, /healthz,
// /metrics (Prometheus text), /debug/pprof. SIGTERM/SIGINT drains
// gracefully: no new submissions, in-flight jobs finish (up to
// -drain-timeout, then they are canceled), then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tempriv/internal/jobs"
	"tempriv/internal/resultcache"
	"tempriv/internal/server"
	"tempriv/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "temprivd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is canceled and the drain
// completes. When ready is non-nil it receives the resolved listen address
// once the server is accepting (tests listen on port 0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("temprivd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "localhost:7077", "listen address (port 0 picks an ephemeral port)")
		cacheDir     = fs.String("cache", "", "result-cache directory (empty = caching disabled)")
		cacheMaxMB   = fs.Int64("cache-max-mb", 256, "result-cache size bound in MiB (-1 = unbounded)")
		workers      = fs.Int("workers", 0, "job worker goroutines (0 = GOMAXPROCS)")
		queueDepth   = fs.Int("queue-depth", 64, "max queued jobs before 429")
		retries      = fs.Int("retries", 2, "transient-failure retries per job")
		repWorkers   = fs.Int("j", 1, "replication worker goroutines per job")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *workers < 1 || *queueDepth < 1 || *repWorkers < 1 {
		return fmt.Errorf("-workers, -queue-depth and -j must be >= 1")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout)
	}

	var cache *resultcache.Cache
	if *cacheDir != "" {
		maxBytes := *cacheMaxMB
		if maxBytes > 0 {
			maxBytes <<= 20
		}
		var err error
		if cache, err = resultcache.Open(*cacheDir, maxBytes); err != nil {
			return err
		}
	}

	reg := telemetry.NewRegistry()
	queue := jobs.New(server.NewRunner(cache, reg, *repWorkers), jobs.Options{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		MaxRetries: *retries,
	})
	api := server.New(queue, cache, reg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	srv := &http.Server{Handler: api}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("temprivd listening on http://%s (workers=%d, cache=%s)\n",
		ln.Addr(), *workers, cacheLabel(*cacheDir))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight jobs finish (bounded),
	// then close the HTTP side so /v1/jobs/{id} stays queryable during the
	// drain window.
	fmt.Println("temprivd draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := queue.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		drainErr = errors.Join(drainErr, err)
	}
	<-serveErr // Serve has returned http.ErrServerClosed by now
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return fmt.Errorf("draining: %w", drainErr)
	}
	fmt.Println("temprivd stopped")
	return nil
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "disabled"
	}
	return dir
}
