package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

const testScenario = `{"version":1,"experiment":{"id":"fig2a","packets":10,"interarrivals":[4],"seed":1}}`

// startDaemon runs the daemon against an ephemeral port and returns its base
// URL plus a shutdown func that triggers the drain and waits for run to
// return.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	args := append([]string{"-addr", "localhost:0", "-workers", "2", "-drain-timeout", "10s"}, extraArgs...)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return "http://" + addr, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(15 * time.Second):
			return context.DeadlineExceeded
		}
	}
}

type jobView struct {
	ID              string `json:"id"`
	Fingerprint     string `json:"fingerprint"`
	State           string `json:"state"`
	CacheHit        bool   `json:"cache_hit"`
	Error           string `json:"error"`
	ChunksPersisted int    `json:"chunks_persisted"`
}

func postJob(t *testing.T, base, doc string) jobView {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func awaitJob(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case "done", "failed", "canceled":
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobView{}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestEndToEndCacheHit is the full service loop from the issue: boot the
// daemon with a cache, submit the same scenario twice over HTTP, and require
// the second submission to be a cache hit with a byte-identical result body.
func TestEndToEndCacheHit(t *testing.T) {
	base, shutdown := startDaemon(t, "-cache", t.TempDir())

	first := postJob(t, base, testScenario)
	f1 := awaitJob(t, base, first.ID)
	if f1.State != "done" || f1.CacheHit {
		t.Fatalf("first job: %+v", f1)
	}
	status, body1 := getBody(t, base+"/v1/jobs/"+first.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("first result status %d", status)
	}

	second := postJob(t, base, testScenario)
	f2 := awaitJob(t, base, second.ID)
	if f2.State != "done" {
		t.Fatalf("second job: %+v", f2)
	}
	if !f2.CacheHit {
		t.Fatal("second identical submission was not a cache hit")
	}
	if f2.Fingerprint != f1.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", f1.Fingerprint, f2.Fingerprint)
	}
	status, body2 := getBody(t, base+"/v1/jobs/"+second.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("second result status %d", status)
	}
	if string(body1) != string(body2) {
		t.Fatalf("cache hit result not byte-identical:\n%s\nvs\n%s", body1, body2)
	}

	// Different seed: new fingerprint, fresh run.
	third := postJob(t, base, strings.Replace(testScenario, `"seed":1`, `"seed":3`, 1))
	if third.Fingerprint == first.Fingerprint {
		t.Fatal("seed change did not change the fingerprint")
	}
	if f3 := awaitJob(t, base, third.ID); f3.State != "done" || f3.CacheHit {
		t.Fatalf("third job: %+v", f3)
	}

	status, stats := getBody(t, base+"/v1/cache")
	if status != http.StatusOK || !strings.Contains(string(stats), `"enabled": true`) {
		t.Fatalf("cache stats (%d): %s", status, stats)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestGracefulShutdown boots, checks health and metrics, then cancels the
// daemon context and requires run() to return cleanly without leaking the
// worker goroutines.
func TestGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	base, shutdown := startDaemon(t)

	if status, _ := getBody(t, base+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if _, metrics := getBody(t, base+"/metrics"); !strings.Contains(string(metrics), "temprivd_runs_total") {
		t.Fatalf("metrics missing counters:\n%s", metrics)
	}

	job := postJob(t, base, testScenario)
	awaitJob(t, base, job.ID)

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The listener is closed after the drain.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after shutdown")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-workers", "-1"},
		{"-queue-depth", "0"},
		{"-retries", "-1"},
		{"-j", "-1"},
		{"-run-timeout", "-1s"},
		{"-drain-timeout", "0s"},
	}
	for _, args := range cases {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := run(ctx, append([]string{"-addr", "localhost:0"}, args...), nil)
		cancel()
		if err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
