package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// resumeScenario is sized so each replicate takes long enough (~150ms) that
// the parent can observe persisted chunks and SIGKILL mid-run, while the
// recovery pass still finishes quickly.
const resumeScenario = `{"version":1,"experiment":{"id":"fig3","packets":1000,"interarrivals":[2,4],"replicates":8,"seed":11}}`

// promCounter extracts a counter's value from Prometheus text format.
func promCounter(t *testing.T, base, name string) uint64 {
	t.Helper()
	status, body := getBody(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseUint(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestResumeAfterCrash is the streaming-durability e2e: a real daemon
// process is SIGKILLed mid-replication, and the restart must resume from
// the persisted replicate chunks — skipping recomputation of what survived
// — and serve a result byte-identical to an uninterrupted run.
func TestResumeAfterCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}

	// Baseline: the same spec run to completion with no interruption (and
	// no chunk store — the monolithic path is the oracle).
	base0, shutdown0 := startDaemon(t)
	baseJob := postJob(t, base0, resumeScenario)
	if v := awaitJob(t, base0, baseJob.ID); v.State != "done" {
		t.Fatalf("baseline job: %+v", v)
	}
	status, wantResult := getBody(t, base0+"/v1/jobs/"+baseJob.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("baseline result status %d", status)
	}
	if err := shutdown0(); err != nil {
		t.Fatalf("baseline shutdown: %v", err)
	}

	cacheDir := t.TempDir()
	journalDir := t.TempDir()
	chunksDir := t.TempDir()

	// --- Phase 1: subprocess daemon, killed once >=2 chunks persist. ---
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperDaemon$", "-test.v")
	cmd.Env = append(os.Environ(),
		"TEMPRIVD_HELPER=1",
		"TEMPRIVD_CACHE="+cacheDir,
		"TEMPRIVD_JOURNAL="+journalDir,
		"TEMPRIVD_CHUNKS="+chunksDir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "DAEMON_ADDR="); ok {
				addrCh <- rest
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("subprocess daemon never reported its address")
	}
	waitReady(t, base)

	job := postJob(t, base, resumeScenario)
	// Kill the moment at least two replicate chunks are on disk but the job
	// is still mid-run: exactly the torn state resume exists for.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never persisted 2 chunks while running")
		}
		st, body := getBody(t, base+"/v1/jobs/"+job.ID)
		if st != http.StatusOK {
			t.Fatalf("status poll %d: %s", st, body)
		}
		if strings.Contains(string(body), `"state":"done"`) {
			t.Fatal("job finished before the kill — grow the scenario")
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.ChunksPersisted >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// The chunk file survives the kill (possibly with a torn tail).
	fp := job.Fingerprint
	chunkPath := filepath.Join(chunksDir, fp+".chunks.jsonl")
	if _, err := os.Stat(chunkPath); err != nil {
		t.Fatalf("chunk file missing after kill: %v", err)
	}

	// --- Phase 2: restart on the same journal + chunks. ---
	base2, shutdown2 := startDaemon(t, "-cache", cacheDir, "-journal", journalDir, "-chunks", chunksDir)
	waitReady(t, base2)
	if v := awaitJob(t, base2, job.ID); v.State != "done" {
		t.Fatalf("job after recovery: %+v", v)
	}

	// The surviving replicates were served from chunks, not recomputed.
	if skipped := promCounter(t, base2, "tempriv_replicates_skipped_on_resume_total"); skipped < 2 {
		t.Fatalf("replicates skipped on resume = %d, want >= 2", skipped)
	}
	if written := promCounter(t, base2, "tempriv_chunks_written_total"); written == 0 || written >= 8 {
		t.Fatalf("chunks written after resume = %d, want 1..7 (only the missing replicates)", written)
	}

	// The recovered result is byte-identical to the uninterrupted run.
	status, gotResult := getBody(t, base2+"/v1/jobs/"+job.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("recovered result status %d: %s", status, gotResult)
	}
	if string(gotResult) != string(wantResult) {
		t.Fatalf("recovered result not byte-identical:\n%s\nvs\n%s", gotResult, wantResult)
	}

	// Once the result is cached the chunks have served their purpose.
	if _, err := os.Stat(chunkPath); !os.IsNotExist(err) {
		t.Fatalf("chunk file survives after completion: %v", err)
	}
	if err := shutdown2(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
