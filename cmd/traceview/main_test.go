package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	lines := `{"at":0,"kind":"created","node":3,"flow":3,"seq":0}
{"at":0,"kind":"admitted","node":3,"flow":3,"seq":0}
{"at":12,"kind":"released","node":3,"flow":3,"seq":0}
{"at":13,"kind":"admitted","node":2,"flow":3,"seq":0}
{"at":15,"kind":"preempted","node":2,"flow":3,"seq":0}
{"at":16,"kind":"admitted","node":1,"flow":3,"seq":0}
{"at":30,"kind":"released","node":1,"flow":3,"seq":0}
{"at":31,"kind":"delivered","node":0,"flow":3,"seq":0}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummary(t *testing.T) {
	if err := run([]string{"-in", writeTrace(t)}); err != nil {
		t.Fatal(err)
	}
}

func TestJourney(t *testing.T) {
	if err := run([]string{"-in", writeTrace(t), "-flow", "3", "-seq", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestJourneyUnknownPacket(t *testing.T) {
	if err := run([]string{"-in", writeTrace(t), "-flow", "9", "-seq", "4"}); err == nil {
		t.Fatal("unknown packet accepted")
	}
}

func TestMissingInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/trace.jsonl"}); err == nil {
		t.Fatal("unreadable file accepted")
	}
}

func TestRejectsMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{not json}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err == nil {
		t.Fatal("empty trace accepted")
	}
}
