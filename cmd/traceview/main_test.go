package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	lines := `{"at":0,"kind":"created","node":3,"flow":3,"seq":0}
{"at":0,"kind":"admitted","node":3,"flow":3,"seq":0}
{"at":12,"kind":"released","node":3,"flow":3,"seq":0}
{"at":13,"kind":"admitted","node":2,"flow":3,"seq":0}
{"at":15,"kind":"preempted","node":2,"flow":3,"seq":0}
{"at":16,"kind":"admitted","node":1,"flow":3,"seq":0}
{"at":30,"kind":"released","node":1,"flow":3,"seq":0}
{"at":31,"kind":"delivered","node":0,"flow":3,"seq":0}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummary(t *testing.T) {
	if err := run([]string{"-in", writeTrace(t)}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestJourney(t *testing.T) {
	if err := run([]string{"-in", writeTrace(t), "-flow", "3", "-seq", "0"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestJourneyUnknownPacket(t *testing.T) {
	if err := run([]string{"-in", writeTrace(t), "-flow", "9", "-seq", "4"}, io.Discard); err == nil {
		t.Fatal("unknown packet accepted")
	}
}

func TestMissingInput(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/trace.jsonl"}, io.Discard); err == nil {
		t.Fatal("unreadable file accepted")
	}
}

func TestRejectsMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{not json}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}, io.Discard); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}, io.Discard); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// golden compares run's output for args against testdata/<name>.golden.
// Regenerate with -update after an intentional format change.
var update = os.Getenv("UPDATE_GOLDEN") != ""

func golden(t *testing.T, name string, args []string) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name+".golden")
	if update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
	}
}

func TestSummaryGoldenLinkLayer(t *testing.T) {
	golden(t, "summary_linklayer", []string{"-in", filepath.Join("testdata", "linklayer.jsonl")})
}

func TestJourneyGoldenLinkLayer(t *testing.T) {
	golden(t, "journey_linklayer", []string{"-in", filepath.Join("testdata", "linklayer.jsonl"), "-flow", "5", "-seq", "0"})
}

func TestStatsGoldenLinkLayer(t *testing.T) {
	golden(t, "stats_linklayer", []string{"-in", filepath.Join("testdata", "linklayer.jsonl"), "-stats"})
}

func TestStatsOccupancyPeaks(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-in", writeTrace(t), "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Each node in the fixture holds at most one packet at a time.
	for _, want := range []string{"8 events", "admitted     3", "n1     1", "n2     1", "n3     1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}
