// Command traceview analyses a packet-lifecycle trace written by
// `rcadsim -trace` (JSON Lines, see package trace): per-node buffering
// summaries, preemption hot-spots, and — with -flow/-seq — a single
// packet's full journey.
//
// Examples:
//
//	rcadsim -packets 200 -trace run.jsonl
//	traceview -in run.jsonl                  # per-node summary
//	traceview -in run.jsonl -flow 15 -seq 3  # one packet's journey
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// event mirrors trace.Event's wire format.
type event struct {
	At   float64 `json:"at"`
	Kind string  `json:"kind"`
	Node uint16  `json:"node"`
	Flow uint16  `json:"flow"`
	Seq  uint32  `json:"seq"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "trace file (JSON Lines) written by rcadsim -trace")
		flow = fs.Int("flow", -1, "show one packet: its flow (origin node) id")
		seq  = fs.Int("seq", -1, "show one packet: its per-flow sequence number")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in trace file")
	}

	events, err := load(*in)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("trace %s contains no events", *in)
	}

	if *flow >= 0 && *seq >= 0 {
		return showJourney(events, uint16(*flow), uint32(*seq))
	}
	return showSummary(events)
}

func load(path string) ([]event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening trace: %w", err)
	}
	defer func() { _ = f.Close() }()

	var events []event
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		var e event
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("reading trace: %w", err)
	}
	return events, nil
}

// nodeAgg accumulates per-node buffering behaviour.
type nodeAgg struct {
	admitted   int
	released   int
	preempted  int
	lost       int
	admitTimes map[uint64]float64 // (flow,seq) → admit time
	holdSum    float64
	holdCount  int
}

func key(flow uint16, seq uint32) uint64 { return uint64(flow)<<32 | uint64(seq) }

func showSummary(events []event) error {
	nodes := make(map[uint16]*nodeAgg)
	get := func(id uint16) *nodeAgg {
		a, ok := nodes[id]
		if !ok {
			a = &nodeAgg{admitTimes: make(map[uint64]float64)}
			nodes[id] = a
		}
		return a
	}
	created, delivered, lost := 0, 0, 0
	for _, e := range events {
		switch e.Kind {
		case "created":
			created++
		case "delivered":
			delivered++
		case "lost":
			lost++
			get(e.Node).lost++
		case "admitted":
			a := get(e.Node)
			a.admitted++
			a.admitTimes[key(e.Flow, e.Seq)] = e.At
		case "released", "preempted":
			a := get(e.Node)
			if e.Kind == "released" {
				a.released++
			} else {
				a.preempted++
			}
			if at, ok := a.admitTimes[key(e.Flow, e.Seq)]; ok {
				a.holdSum += e.At - at
				a.holdCount++
				delete(a.admitTimes, key(e.Flow, e.Seq))
			}
		}
	}

	fmt.Printf("%d events: %d created, %d delivered, %d lost\n\n", len(events), created, delivered, lost)
	ids := make([]uint16, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("%-6s %-9s %-9s %-10s %-13s %-10s\n",
		"node", "admitted", "released", "preempted", "preempt-rate", "mean-hold")
	for _, id := range ids {
		a := nodes[id]
		rate := 0.0
		if a.admitted > 0 {
			rate = float64(a.preempted) / float64(a.admitted)
		}
		hold := 0.0
		if a.holdCount > 0 {
			hold = a.holdSum / float64(a.holdCount)
		}
		fmt.Printf("n%-5d %-9d %-9d %-10d %-13.3f %-10.1f\n",
			id, a.admitted, a.released, a.preempted, rate, hold)
	}
	return nil
}

func showJourney(events []event, flow uint16, seq uint32) error {
	var journey []event
	for _, e := range events {
		if e.Flow == flow && e.Seq == seq {
			journey = append(journey, e)
		}
	}
	if len(journey) == 0 {
		return fmt.Errorf("no events for flow %d seq %d", flow, seq)
	}
	sort.SliceStable(journey, func(i, j int) bool { return journey[i].At < journey[j].At })
	fmt.Printf("packet flow=%d seq=%d — %d events\n", flow, seq, len(journey))
	prev := journey[0].At
	for _, e := range journey {
		fmt.Printf("  t=%-10.2f +%-8.2f %-10s at n%d\n", e.At, e.At-prev, e.Kind, e.Node)
		prev = e.At
	}
	fmt.Printf("total: %.2f time units from creation to final event\n", prev-journey[0].At)
	return nil
}
