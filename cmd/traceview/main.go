// Command traceview analyses a packet-lifecycle trace written by
// `rcadsim -trace` (JSON Lines, see package trace): per-node buffering
// summaries, preemption hot-spots, link-layer loss/retransmission activity,
// route repairs, and — with -flow/-seq — a single packet's full journey.
//
// Examples:
//
//	rcadsim -packets 200 -trace run.jsonl
//	traceview -in run.jsonl                  # per-node summary
//	traceview -in run.jsonl -flow 15 -seq 3  # one packet's journey
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// event mirrors trace.Event's wire format. Dest is a pointer because the
// field is omitted for events without a link destination, and node 0 (the
// sink) is a legal destination.
type event struct {
	At   float64 `json:"at"`
	Kind string  `json:"kind"`
	Node uint16  `json:"node"`
	Dest *uint16 `json:"dest"`
	Flow uint16  `json:"flow"`
	Seq  uint32  `json:"seq"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	var (
		in    = fs.String("in", "", "trace file (JSON Lines) written by rcadsim -trace")
		flow  = fs.Int("flow", -1, "show one packet: its flow (origin node) id")
		seq   = fs.Int("seq", -1, "show one packet: its per-flow sequence number")
		stats = fs.Bool("stats", false, "print per-kind event counts and per-node occupancy peaks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in trace file")
	}

	events, err := load(*in)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("trace %s contains no events", *in)
	}

	if *stats {
		return showStats(out, events)
	}
	if *flow >= 0 && *seq >= 0 {
		return showJourney(out, events, uint16(*flow), uint32(*seq))
	}
	return showSummary(out, events)
}

// showStats prints per-kind event counts and, for every node that buffers
// packets, the peak number it held at once (reconstructed by replaying
// admissions against releases, preemptions and in-buffer losses).
func showStats(out io.Writer, events []event) error {
	kinds := make(map[string]int)
	type occ struct{ cur, peak int }
	nodes := make(map[uint16]*occ)
	for _, e := range events {
		kinds[e.Kind]++
		switch e.Kind {
		case "admitted":
			o, ok := nodes[e.Node]
			if !ok {
				o = &occ{}
				nodes[e.Node] = o
			}
			o.cur++
			if o.cur > o.peak {
				o.peak = o.cur
			}
		case "released", "preempted":
			if o, ok := nodes[e.Node]; ok && o.cur > 0 {
				o.cur--
			}
		case "lost":
			// A failure evacuation destroys packets the node still buffered.
			if o, ok := nodes[e.Node]; ok && o.cur > 0 {
				o.cur--
			}
		}
	}

	fmt.Fprintf(out, "%d events\n\n", len(events))
	fmt.Fprintf(out, "%-12s %s\n", "kind", "count")
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(out, "%-12s %d\n", k, kinds[k])
	}

	if len(nodes) == 0 {
		return nil
	}
	ids := make([]uint16, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(out, "\n%-6s %s\n", "node", "peak-occupancy")
	for _, id := range ids {
		fmt.Fprintf(out, "n%-5d %d\n", id, nodes[id].peak)
	}
	return nil
}

func load(path string) ([]event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening trace: %w", err)
	}
	defer func() { _ = f.Close() }()

	var events []event
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		var e event
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("reading trace: %w", err)
	}
	return events, nil
}

// nodeAgg accumulates per-node buffering and link-layer behaviour.
type nodeAgg struct {
	admitted   int
	released   int
	preempted  int
	lost       int
	linkLosses int
	retransmit int
	linkDrops  int
	admitTimes map[uint64]float64 // (flow,seq) → admit time
	holdSum    float64
	holdCount  int
}

func key(flow uint16, seq uint32) uint64 { return uint64(flow)<<32 | uint64(seq) }

func showSummary(out io.Writer, events []event) error {
	nodes := make(map[uint16]*nodeAgg)
	get := func(id uint16) *nodeAgg {
		a, ok := nodes[id]
		if !ok {
			a = &nodeAgg{admitTimes: make(map[uint64]float64)}
			nodes[id] = a
		}
		return a
	}
	created, delivered, lost := 0, 0, 0
	linkLoss, retransmits, linkDrops, duplicates := 0, 0, 0, 0
	var reroutes []event
	for _, e := range events {
		switch e.Kind {
		case "created":
			created++
		case "delivered":
			delivered++
		case "lost":
			lost++
			get(e.Node).lost++
		case "admitted":
			a := get(e.Node)
			a.admitted++
			a.admitTimes[key(e.Flow, e.Seq)] = e.At
		case "released", "preempted":
			a := get(e.Node)
			if e.Kind == "released" {
				a.released++
			} else {
				a.preempted++
			}
			if at, ok := a.admitTimes[key(e.Flow, e.Seq)]; ok {
				a.holdSum += e.At - at
				a.holdCount++
				delete(a.admitTimes, key(e.Flow, e.Seq))
			}
		case "link-loss":
			linkLoss++
			get(e.Node).linkLosses++
		case "retransmit":
			retransmits++
			get(e.Node).retransmit++
		case "link-drop":
			linkDrops++
			get(e.Node).linkDrops++
		case "rerouted":
			reroutes = append(reroutes, e)
		case "duplicate":
			duplicates++
		}
	}

	fmt.Fprintf(out, "%d events: %d created, %d delivered, %d lost\n", len(events), created, delivered, lost)
	hasLink := linkLoss+retransmits+linkDrops+duplicates > 0
	if hasLink {
		fmt.Fprintf(out, "link layer: %d frame/ACK losses, %d retransmissions, %d drops, %d duplicates suppressed\n",
			linkLoss, retransmits, linkDrops, duplicates)
	}
	fmt.Fprintln(out)

	ids := make([]uint16, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(out, "%-6s %-9s %-9s %-10s %-13s %-10s",
		"node", "admitted", "released", "preempted", "preempt-rate", "mean-hold")
	if hasLink {
		fmt.Fprintf(out, " %-9s %-6s %-6s", "link-loss", "retx", "drops")
	}
	fmt.Fprintln(out)
	for _, id := range ids {
		a := nodes[id]
		rate := 0.0
		if a.admitted > 0 {
			rate = float64(a.preempted) / float64(a.admitted)
		}
		hold := 0.0
		if a.holdCount > 0 {
			hold = a.holdSum / float64(a.holdCount)
		}
		fmt.Fprintf(out, "n%-5d %-9d %-9d %-10d %-13.3f %-10.1f",
			id, a.admitted, a.released, a.preempted, rate, hold)
		if hasLink {
			fmt.Fprintf(out, " %-9d %-6d %-6d", a.linkLosses, a.retransmit, a.linkDrops)
		}
		fmt.Fprintln(out)
	}

	if len(reroutes) > 0 {
		fmt.Fprintf(out, "\nroute repairs: %d\n", len(reroutes))
		for _, e := range reroutes {
			fmt.Fprintf(out, "  t=%-10.2f n%d → %s\n", e.At, e.Node, destLabel(e))
		}
	}
	return nil
}

// destLabel renders an event's link destination ("n3"); an absent dest field
// means the sink (node 0, elided on the wire).
func destLabel(e event) string {
	if e.Dest == nil {
		return "n0"
	}
	return fmt.Sprintf("n%d", *e.Dest)
}

func showJourney(out io.Writer, events []event, flow uint16, seq uint32) error {
	var journey []event
	for _, e := range events {
		if e.Flow == flow && e.Seq == seq {
			journey = append(journey, e)
		}
	}
	if len(journey) == 0 {
		return fmt.Errorf("no events for flow %d seq %d", flow, seq)
	}
	sort.SliceStable(journey, func(i, j int) bool { return journey[i].At < journey[j].At })
	fmt.Fprintf(out, "packet flow=%d seq=%d — %d events\n", flow, seq, len(journey))
	prev := journey[0].At
	for _, e := range journey {
		where := fmt.Sprintf("at n%d", e.Node)
		switch e.Kind {
		case "link-loss", "retransmit", "link-drop":
			where = fmt.Sprintf("n%d → %s", e.Node, destLabel(e))
		}
		fmt.Fprintf(out, "  t=%-10.2f +%-8.2f %-10s %s\n", e.At, e.At-prev, e.Kind, where)
		prev = e.At
	}
	fmt.Fprintf(out, "total: %.2f time units from creation to final event\n", prev-journey[0].At)
	return nil
}
