// Command erlangcalc is a queueing calculator for the §4 analysis: Erlang
// loss probabilities, buffer-occupancy distributions, and the µ-planning
// rule that holds a target drop rate as traffic aggregates near the sink.
//
// Modes:
//
//	erlangcalc -mode loss -rho 15 -k 10
//	    → E(ρ, k), the blocking/preemption probability.
//
//	erlangcalc -mode plan -lambda 0.5 -k 10 -alpha 0.1
//	    → the delay rate µ (and mean delay 1/µ) meeting the loss target.
//
//	erlangcalc -mode occupancy -lambda 0.5 -mean-delay 30 -k 10
//	    → side-by-side M/M/∞ and M/M/k/k occupancy distributions.
package main

import (
	"flag"
	"fmt"
	"os"

	"tempriv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "erlangcalc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("erlangcalc", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "loss", "loss | plan | occupancy")
		rho       = fs.Float64("rho", 15, "utilization ρ = λ/µ (loss mode)")
		k         = fs.Int("k", 10, "buffer slots")
		lambda    = fs.Float64("lambda", 0.5, "arrival rate λ (plan and occupancy modes)")
		alpha     = fs.Float64("alpha", 0.1, "target loss probability (plan mode)")
		meanDelay = fs.Float64("mean-delay", 30, "mean buffering delay 1/µ (occupancy mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "loss":
		e, err := tempriv.ErlangLoss(*rho, *k)
		if err != nil {
			return err
		}
		fmt.Printf("E(ρ=%g, k=%d) = %.6g\n", *rho, *k, e)
		fmt.Printf("a k-slot buffer at this load blocks (or, under RCAD, preempts for) %.2f%% of arrivals\n", 100*e)
		return nil

	case "plan":
		mu, err := tempriv.PlanMu(*lambda, *k, *alpha)
		if err != nil {
			return err
		}
		fmt.Printf("λ=%g, k=%d, target loss α=%g\n", *lambda, *k, *alpha)
		fmt.Printf("planned delay rate µ = %.6g  (mean buffering delay 1/µ = %.4g time units)\n", mu, 1/mu)
		fmt.Printf("planned utilization ρ = λ/µ = %.4g\n", *lambda/mu)
		fmt.Println("as λ grows toward the sink, re-run with the aggregated rate: 1/µ shrinks linearly (§4)")
		return nil

	case "occupancy":
		mu := 1 / *meanDelay
		rhoVal := *lambda * *meanDelay
		fmt.Printf("λ=%g, 1/µ=%g → ρ=%g, k=%d\n\n", *lambda, *meanDelay, rhoVal, *k)
		fmt.Printf("%-4s %-12s %-12s\n", "n", "M/M/∞", fmt.Sprintf("M/M/%d/%d", *k, *k))
		limit := int(rhoVal*2) + 5
		if limit < *k {
			limit = *k
		}
		for n := 0; n <= limit; n++ {
			pInf, err := tempriv.MMInfOccupancyPMF(*lambda, mu, n)
			if err != nil {
				return err
			}
			kkCell := "-"
			if n <= *k {
				pKK, err := tempriv.MMkkOccupancyPMF(rhoVal, *k, n)
				if err != nil {
					return err
				}
				kkCell = fmt.Sprintf("%.6f", pKK)
			}
			fmt.Printf("%-4d %-12.6f %-12s\n", n, pInf, kkCell)
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q (want loss, plan, or occupancy)", *mode)
	}
}
