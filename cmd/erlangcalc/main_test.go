package main

import "testing"

func TestLossMode(t *testing.T) {
	if err := run([]string{"-mode", "loss", "-rho", "15", "-k", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanMode(t *testing.T) {
	if err := run([]string{"-mode", "plan", "-lambda", "0.5", "-k", "10", "-alpha", "0.1"}); err != nil {
		t.Fatal(err)
	}
}

func TestOccupancyMode(t *testing.T) {
	if err := run([]string{"-mode", "occupancy", "-lambda", "0.5", "-mean-delay", "30", "-k", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownMode(t *testing.T) {
	if err := run([]string{"-mode", "divination"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestInvalidParameters(t *testing.T) {
	if err := run([]string{"-mode", "loss", "-rho", "-1"}); err == nil {
		t.Fatal("negative rho accepted")
	}
	if err := run([]string{"-mode", "plan", "-alpha", "2"}); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
}
