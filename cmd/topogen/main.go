// Command topogen builds and inspects the deployments the simulator runs
// on: the paper's Figure-1 evaluation network, lines, grids, and custom
// merge trees. It prints the routing tree, per-flow paths, and — given a
// per-source packet rate — the aggregate load and planned mean delay at
// every node (§4).
//
// Examples:
//
//	topogen -topo figure1
//	topogen -topo merge -hops 15,22,9,11 -trunk 8
//	topogen -topo figure1 -rate 0.5 -k 10 -alpha 0.1   # load + delay plan
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tempriv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		kind  = fs.String("topo", "figure1", "figure1 | line | grid | merge")
		hops  = fs.String("hops", "15,22,9,11", "line: single hop count; merge: comma-separated hop counts")
		trunk = fs.Int("trunk", 8, "merge: shared hops before the sink")
		gridW = fs.Int("grid-w", 10, "grid width")
		gridH = fs.Int("grid-h", 10, "grid height")
		rate  = fs.Float64("rate", 0, "per-source packet rate λ; > 0 prints load + delay plan")
		k     = fs.Int("k", 10, "buffer slots for the delay plan")
		alpha = fs.Float64("alpha", 0.1, "target loss for the delay plan")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, sources, err := build(*kind, *hops, *trunk, *gridW, *gridH)
	if err != nil {
		return err
	}

	fmt.Printf("topology: %s — %d nodes, %d links, %d sources, connected=%v\n",
		*kind, topo.NodeCount(), topo.LinkCount(), len(sources), topo.Connected())

	hopsBySource, err := tempriv.HopCounts(topo)
	if err != nil {
		return err
	}
	paths, err := tempriv.FlowPaths(topo)
	if err != nil {
		return err
	}
	for i, s := range sources {
		fmt.Printf("flow %d: source %v, %d hops, path %v → sink\n", i+1, s, hopsBySource[s], paths[s])
	}

	if *rate > 0 {
		rates := make(map[tempriv.NodeID]float64, len(sources))
		for _, s := range sources {
			rates[s] = *rate
		}
		plan, err := tempriv.PlanDelays(topo, rates, *k, *alpha, 1e9)
		if err != nil {
			return err
		}
		fmt.Printf("\ndelay plan (λ=%g per source, k=%d, α=%g):\n", *rate, *k, *alpha)
		fmt.Printf("%-8s %-14s\n", "node", "mean delay 1/µ")
		for _, s := range sources {
			for _, n := range paths[s] {
				if mean, ok := plan[n]; ok {
					fmt.Printf("%-8v %-14.4g\n", n, mean)
					delete(plan, n) // print each node once
				}
			}
		}
	}
	return nil
}

func build(kind, hopsSpec string, trunk, w, h int) (*tempriv.Topology, []tempriv.NodeID, error) {
	switch kind {
	case "figure1":
		return tempriv.Figure1Topology()
	case "line":
		n, err := strconv.Atoi(strings.Split(hopsSpec, ",")[0])
		if err != nil {
			return nil, nil, fmt.Errorf("parsing -hops: %w", err)
		}
		topo, err := tempriv.NewLineTopology(n)
		if err != nil {
			return nil, nil, err
		}
		return topo, topo.Sources(), nil
	case "grid":
		topo, err := tempriv.NewGridTopology(w, h)
		if err != nil {
			return nil, nil, err
		}
		far := tempriv.GridNodeID(w, w-1, h-1)
		if err := topo.MarkSource(far); err != nil {
			return nil, nil, err
		}
		return topo, topo.Sources(), nil
	case "merge":
		var counts []int
		for _, part := range strings.Split(hopsSpec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, fmt.Errorf("parsing -hops: %w", err)
			}
			counts = append(counts, n)
		}
		return tempriv.NewMergeTreeTopology(counts, trunk)
	default:
		return nil, nil, fmt.Errorf("unknown topology %q", kind)
	}
}
