package main

import "testing"

func TestFigure1(t *testing.T) {
	if err := run([]string{"-topo", "figure1"}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1WithPlan(t *testing.T) {
	if err := run([]string{"-topo", "figure1", "-rate", "0.5", "-k", "10", "-alpha", "0.1"}); err != nil {
		t.Fatal(err)
	}
}

func TestLine(t *testing.T) {
	if err := run([]string{"-topo", "line", "-hops", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid(t *testing.T) {
	if err := run([]string{"-topo", "grid", "-grid-w", "4", "-grid-h", "6"}); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	if err := run([]string{"-topo", "merge", "-hops", "6,8,10", "-trunk", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidInputs(t *testing.T) {
	cases := [][]string{
		{"-topo", "moebius"},
		{"-topo", "line", "-hops", "zero"},
		{"-topo", "merge", "-hops", "3", "-trunk", "5"},
		{"-topo", "merge", "-hops", "3,x"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
