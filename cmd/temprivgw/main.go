// Command temprivgw is the cluster gateway: one public job API in front
// of a fleet of temprivd workers sharded by spec fingerprint on a
// consistent-hash ring.
//
//	temprivgw -addr localhost:7070 &
//	temprivd -addr localhost:7081 -cluster-registry http://localhost:7070 -cluster-id w1 -chunks ./chunks &
//	temprivd -addr localhost:7082 -cluster-registry http://localhost:7070 -cluster-id w2 -chunks ./chunks &
//
// Workers register and heartbeat against POST /v1/cluster/register; the
// gateway expires silent workers after the lease TTL, re-dispatches their
// unfinished jobs to the ring successor (X-Tempriv-Origin: handoff, same
// X-Trace-Id), and the successor resumes from whatever replicate chunks
// the dead worker persisted when the fleet shares a -chunks directory.
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id} (+ /result with
// ?partial=1, /events with synthetic seq:-1 handoff lines), DELETE
// /v1/jobs/{id}, GET /v1/cluster (membership + ring + per-worker
// health), POST /v1/cluster/register, GET /v1/cluster/workers,
// /healthz, /readyz (503 until a worker registers), /metrics
// (tempriv_cluster_* series).
//
// Partition tolerance: the gateway scores every worker from its own
// request outcomes, ejects a worker whose rolling error rate crosses the
// threshold (re-admitting it through a half-open probe), hedges slow
// full-result reads against a peer replica, and sheds submissions with
// 503 + Retry-After when every candidate is ejected, backpressured, or
// saturated past its advertised capacity. Finished results are served
// from ring-successor replicas after a crash when available (zero
// recompute), falling back to chunk-resume re-dispatch.
//
// -chaos (or TEMPRIV_CHAOS) arms a deterministic fault-injecting
// transport on the gateway's worker requests for drills:
// "partition=host:port;latency=host:port:300ms;slow=host:port:50ms".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tempriv/internal/buildinfo"
	"tempriv/internal/cluster/chaostransport"
	"tempriv/internal/cluster/gateway"
	"tempriv/internal/cluster/registry"
	"tempriv/internal/obs"
	"tempriv/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "temprivgw:", err)
		os.Exit(1)
	}
}

// run starts the gateway and blocks until ctx is canceled. When ready is
// non-nil it receives the resolved listen address (tests use port 0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("temprivgw", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", "localhost:7070", "listen address (port 0 picks an ephemeral port)")
		leaseTTL       = fs.Duration("lease-ttl", registry.DefaultLeaseTTL, "worker lease; a worker silent this long is dead and its jobs move")
		vnodes         = fs.Int("vnodes", 0, "virtual nodes per worker on the ring (0 = default)")
		reconcileEvery = fs.Duration("reconcile-every", 2*time.Second, "how often to sweep leases and hand off orphaned jobs")
		submitAttempts = fs.Int("submit-attempts", 4, "max worker POSTs per dispatch across backpressure retries and failovers")
		retryAfterMax  = fs.Duration("retry-after-max", 5*time.Second, "cap on honoring a worker's Retry-After")
		ejectThreshold = fs.Float64("eject-threshold", 0, "rolling error rate that ejects a worker (0 = default 0.5)")
		ejectCooldown  = fs.Duration("eject-cooldown", 0, "wait before an ejected worker gets a half-open probe (0 = default 10s)")
		hedgeDelay     = fs.Duration("hedge-delay", 0, "fixed hedged-read delay for full results (0 = auto from cluster p99; negative disables)")
		shedFactor     = fs.Float64("shed-factor", 0, "outstanding-routes-per-worker bound as a multiple of advertised capacity (0 = default 4)")
		chaos          = fs.String("chaos", os.Getenv("TEMPRIV_CHAOS"), "fault-injection spec for worker requests (default $TEMPRIV_CHAOS)")
		traceCap       = fs.Int("trace-cap", obs.DefaultCapacity, "how many recent gateway traces to retain")
		logFormat      = fs.String("log-format", "text", "log output format: text or json")
		logLevel       = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		version        = fs.Bool("version", false, "print build identity and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.String("temprivgw"))
		return nil
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *leaseTTL <= 0 || *reconcileEvery <= 0 {
		return fmt.Errorf("-lease-ttl and -reconcile-every must be positive")
	}
	if *submitAttempts < 1 {
		return fmt.Errorf("-submit-attempts must be >= 1, got %d", *submitAttempts)
	}

	reg := telemetry.NewRegistry()
	buildinfo.Register(reg)
	tracer := obs.New(obs.Options{Capacity: *traceCap})

	// No global timeout: /events and ?partial=1 proxies are long-lived
	// streams. -chaos wraps the transport so drills can partition or slow
	// the gateway→worker path deterministically.
	client := &http.Client{}
	if *chaos != "" {
		rt, err := chaostransport.Wrap(http.DefaultTransport, *chaos)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		client.Transport = rt
		log.Warn("chaos transport armed on worker requests", "spec", *chaos)
	}

	members := registry.New(registry.Options{LeaseTTL: *leaseTTL})
	gw := gateway.New(gateway.Config{
		Registry:       members,
		Telemetry:      reg,
		Tracer:         tracer,
		Log:            log,
		Client:         client,
		Vnodes:         *vnodes,
		SubmitAttempts: *submitAttempts,
		RetryAfterMax:  *retryAfterMax,
		ReconcileEvery: *reconcileEvery,
		EjectThreshold: *ejectThreshold,
		EjectCooldown:  *ejectCooldown,
		HedgeDelay:     *hedgeDelay,
		ShedFactor:     *shedFactor,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", *addr, err)
	}
	srv := &http.Server{Handler: gw}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	go gw.Run(ctx)
	log.LogAttrs(ctx, slog.LevelInfo, "temprivgw listening",
		slog.String("addr", "http://"+ln.Addr().String()),
		slog.Duration("lease_ttl", *leaseTTL),
		slog.Duration("reconcile_every", *reconcileEvery))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}

	log.Info("temprivgw stopping")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-serveErr
	log.Info("temprivgw stopped")
	return nil
}
