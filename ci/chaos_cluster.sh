#!/usr/bin/env bash
# Chaos drill for the cluster: the gateway and workers run under real
# fault injection (kill -9, chaostransport partitions and latency) and
# must not lose a single job.
#
# Part 1 — crash + peer-served handoff: gateway + 3 workers, a batch of
#   finished jobs replicated to ring successors, then kill -9 of a
#   job-owning worker. The gateway must serve that worker's results from
#   the peer replica: tempriv_cluster_peer_served_total >= 1 with zero
#   peer fallbacks, no recompute on the survivors, and bytes identical
#   to a standalone single-node run.
#
# Part 2 — partition + latency: a fresh cluster where the gateway's
#   transport cannot reach one worker at all (partition) and sees 200ms
#   added to every request to another (latency), with hedged result
#   reads armed. Every submission must still complete (zero lost), the
#   partitioned worker must be ejected, and at least one result read
#   must hedge to a peer replica.
#
# Part 3 — total partition: a 1-worker cluster whose only worker is
#   unreachable from the gateway. After the error-rate breaker ejects
#   it, the next submission must be shed at the gateway with 503 +
#   Retry-After, not burned against a worker the gateway knows is gone.
#
# Env: TEMPRIVD/TEMPRIVGW (prebuilt binaries; otherwise built).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -z "${TEMPRIVD:-}" ]; then
  go build -o /tmp/chaos_temprivd ./cmd/temprivd
  TEMPRIVD=/tmp/chaos_temprivd
fi
if [ -z "${TEMPRIVGW:-}" ]; then
  go build -o /tmp/chaos_temprivgw ./cmd/temprivgw
  TEMPRIVGW=/tmp/chaos_temprivgw
fi

PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

field() { python3 -c "import sys,json; print(json.load(sys.stdin).get('$1') or '')"; }
submit() { curl -sf "$1/v1/jobs" -d "$2"; }
await() { # $1 = base URL, $2 = job id, [$3 = extra field that must be truthy]
  for i in $(seq 1 600); do
    SNAP=$(curl -s "$1/v1/jobs/$2")
    STATE=$(echo "$SNAP" | field state || true)
    case "$STATE" in failed|canceled) echo "job $2 $STATE" >&2; return 1;; esac
    if [ "$STATE" = done ]; then
      [ -z "${3:-}" ] && return 0
      [ -n "$(echo "$SNAP" | field "$3")" ] && return 0
    fi
    sleep 0.1
  done
  echo "job $2 never reached done${3:+ with $3}" >&2
  return 1
}
wait_workers() { # $1 = gateway URL, $2 = expected count
  local N=0
  for i in $(seq 1 100); do
    N=$(curl -sf "$1/v1/cluster" | python3 -c 'import sys,json; print(len(json.load(sys.stdin)["workers"]))' 2>/dev/null || echo 0)
    [ "$N" = "$2" ] && return 0
    sleep 0.2
  done
  echo "only $N/$2 workers registered on $1" >&2
  return 1
}
metric() { # $1 = base URL, $2 = metric name -> value (0 when absent)
  curl -sf "$1/metrics" | awk -v m="$2" '$1 == m {print $2; found=1} END {if (!found) print 0}'
}
spec() { echo '{"version":1,"experiment":{"id":"fig2a","packets":200,"interarrivals":[2,10,20],"seed":'"$1"'}}'; }

echo "=== part 1: kill -9 with peer-served handoff ==="
GW1=http://localhost:7370
"$TEMPRIVGW" -addr localhost:7370 -lease-ttl 2s -reconcile-every 500ms -log-level warn &
PIDS+=("$!")
declare -A WPID
for i in 1 2 3; do
  "$TEMPRIVD" -addr "localhost:$((7370 + i))" -workers 2 -log-level warn \
    -cluster-registry $GW1 -cluster-id "w$i" -cluster-url "http://127.0.0.1:$((7370 + i))" &
  WPID[w$i]=$!
  PIDS+=("$!")
done
"$TEMPRIVD" -addr localhost:7399 -workers 2 -log-level warn &
SOLO=$!
PIDS+=("$SOLO")
wait_workers $GW1 3
for i in $(seq 1 50); do curl -sf localhost:7399/readyz >/dev/null && break; sleep 0.2; done

declare -A OWNER SEEDOF
IDS=()
for s in 1 2 3 4 5 6; do
  SNAP=$(submit $GW1 "$(spec "$s")")
  ID=$(echo "$SNAP" | field id)
  OWNER[$ID]=$(echo "$SNAP" | field worker)
  SEEDOF[$ID]=$s
  IDS+=("$ID")
  await $GW1 "$ID"
done

# Every finished job must be replicated to its ring successor before the
# crash — otherwise the handoff test races the write-behind queue.
REP=0
for i in $(seq 1 100); do
  REP=0
  for p in 7371 7372 7373; do
    R=$(metric "http://localhost:$p" tempriv_cluster_peer_replicated_total)
    REP=$((REP + R))
  done
  [ "$REP" -ge 6 ] && break
  sleep 0.2
done
[ "$REP" -ge 6 ] || { echo "only $REP/6 results replicated to peers" >&2; exit 1; }

VICTIMID=${IDS[0]}
VICTIM=${OWNER[$VICTIMID]}
kill -9 "${WPID[$VICTIM]}"
wait "${WPID[$VICTIM]}" 2>/dev/null || true
echo "killed $VICTIM (owner of job $VICTIMID)"

# Every job the victim owned must come back peer-served after the lease
# expires — state done, no recompute, bytes from the replica.
for ID in "${IDS[@]}"; do
  if [ "${OWNER[$ID]}" = "$VICTIM" ]; then
    await $GW1 "$ID" peer_served
  else
    await $GW1 "$ID"
  fi
done

PS=$(metric $GW1 tempriv_cluster_peer_served_total)
PF=$(metric $GW1 tempriv_cluster_peer_fallbacks_total)
[ "$PS" -ge 1 ] || { echo "no peer-served handoff recorded" >&2; exit 1; }
[ "$PF" -eq 0 ] || { echo "$PF peer fallbacks — handoff recomputed instead of serving the replica" >&2; exit 1; }

# Zero recompute: the survivors never ran the victim's jobs.
for p in 7371 7372 7373; do
  [ "w$((p - 7370))" = "$VICTIM" ] && continue
  curl -sf "http://localhost:$p/v1/jobs" 2>/dev/null | python3 -c '
import sys, json
jobs = json.load(sys.stdin)["jobs"]
handed = [j for j in jobs if j.get("origin") == "handoff"]
assert not handed, f"survivor recomputed handed-off jobs: {handed}"
' || exit 1
done

# Byte-identical to a standalone run of the same specs.
for ID in "${IDS[@]}"; do
  S=${SEEDOF[$ID]}
  SOLOID=$(submit http://localhost:7399 "$(spec "$S")" | field id)
  await http://localhost:7399 "$SOLOID"
  curl -sf "localhost:7399/v1/jobs/$SOLOID/result" > /tmp/chaos_solo.json
  curl -sf "$GW1/v1/jobs/$ID/result" > /tmp/chaos_clustered.json
  cmp /tmp/chaos_solo.json /tmp/chaos_clustered.json || { echo "job $ID (seed $S) differs from solo run" >&2; exit 1; }
done
echo "part 1 OK: peer_served=$PS fallbacks=$PF, all results byte-identical, zero recompute"

echo "=== part 2: partition + latency under load ==="
GW2=http://localhost:7470
TEMPRIV_CHAOS="partition=127.0.0.1:7473;latency=127.0.0.1:7472:200ms" \
  "$TEMPRIVGW" -addr localhost:7470 -lease-ttl 5s -reconcile-every 1s \
  -hedge-delay 100ms -log-level warn &
PIDS+=("$!")
for i in 1 2 3; do
  "$TEMPRIVD" -addr "localhost:$((7470 + i))" -workers 2 -log-level warn \
    -cluster-registry $GW2 -cluster-id "w$i" -cluster-url "http://127.0.0.1:$((7470 + i))" &
  PIDS+=("$!")
done
wait_workers $GW2 3

# Zero lost jobs: every submission completes even though w3 is dark to
# the gateway (dispatch fails over to ring successors, the breaker
# ejects w3) and w2 answers 200ms late.
IDS2=()
for s in $(seq 11 25); do
  ID=$(submit $GW2 "$(spec "$s")" | field id)
  [ -n "$ID" ] || { echo "submit of seed $s failed" >&2; exit 1; }
  IDS2+=("$ID")
done
for ID in "${IDS2[@]}"; do
  await $GW2 "$ID"
done

# Result reads: w2-owned results arrive 200ms late, past the 100ms hedge
# delay, so at least one read must race a peer replica.
sleep 2 # let write-behind replication land so hedges have a target
for ID in "${IDS2[@]}"; do
  curl -sf "$GW2/v1/jobs/$ID/result" > /dev/null
done

EJ=$(metric $GW2 tempriv_cluster_ejections_total)
HEDGED=$(metric $GW2 tempriv_cluster_hedged_reads_total)
[ "$EJ" -ge 1 ] || { echo "partitioned worker was never ejected" >&2; exit 1; }
[ "$HEDGED" -ge 1 ] || { echo "no hedged result read fired despite 200ms latency" >&2; exit 1; }
curl -sf "$GW2/v1/cluster" | python3 -c '
import sys, json
doc = json.load(sys.stdin)
health = doc.get("health") or {}
w3 = health.get("w3") or {}
assert w3.get("state") in ("ejected", "probing"), f"w3 health = {w3}"
'
echo "part 2 OK: ${#IDS2[@]} jobs done, ejections=$EJ hedged_reads=$HEDGED"

echo "=== part 3: total partition sheds at the gateway ==="
GW3=http://localhost:7570
TEMPRIV_CHAOS="partition=127.0.0.1:7571" \
  "$TEMPRIVGW" -addr localhost:7570 -lease-ttl 30s -reconcile-every 1s -log-level warn &
PIDS+=("$!")
"$TEMPRIVD" -addr localhost:7571 -workers 2 -log-level warn \
  -cluster-registry $GW3 -cluster-id w1 -cluster-url "http://127.0.0.1:7571" &
PIDS+=("$!")
wait_workers $GW3 1

# Three failed dispatches trip the breaker...
for s in 31 32 33; do
  CODE=$(curl -s -o /dev/null -w '%{http_code}' "$GW3/v1/jobs" -d "$(spec "$s")")
  [ "$CODE" = 502 ] || [ "$CODE" = 503 ] || { echo "submit $s returned $CODE, want 502/503" >&2; exit 1; }
done
# ...and the next submission is shed before any worker round-trip, with
# an honest Retry-After.
HDRS=$(curl -s -D - -o /dev/null "$GW3/v1/jobs" -d "$(spec 34)")
echo "$HDRS" | head -1 | grep -q 503 || { echo "post-ejection submit not shed with 503" >&2; echo "$HDRS" >&2; exit 1; }
echo "$HDRS" | grep -qi '^retry-after:' || { echo "shed response missing Retry-After" >&2; echo "$HDRS" >&2; exit 1; }
SHEDS=$(metric $GW3 tempriv_sheds_total)
EJ3=$(metric $GW3 tempriv_cluster_ejections_total)
[ "$SHEDS" -ge 1 ] || { echo "tempriv_sheds_total is $SHEDS, want >= 1" >&2; exit 1; }
[ "$EJ3" -ge 1 ] || { echo "no ejection before the shed" >&2; exit 1; }
echo "part 3 OK: ejections=$EJ3 sheds=$SHEDS with Retry-After"

echo "chaos_cluster: OK"
