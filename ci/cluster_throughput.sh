#!/usr/bin/env bash
# Cluster scaling proof: the same batch of CPU-heavy sweep jobs through a
# 1-worker cluster and then a fresh 3-worker cluster, all through the
# gateway. Sharding by fingerprint must spread distinct seeds across the
# ring, so three single-lane workers (-workers 1) should finish the batch
# close to 3x faster than one — and every result must be byte-identical
# between the two runs (same spec, same tables, regardless of placement).
#
# On machines with >= 3 CPUs the measured ratio must clear MIN_RATIO
# (default 1.5; near-linear would be ~3.0, the floor leaves room for ring
# imbalance and submit/poll overhead). With fewer cores the ratio is
# recorded but not gated: three workers timesharing one core cannot speed
# up CPU-bound work, and pretending otherwise would gate on scheduler
# noise. The byte-identity and zero-lost-jobs checks always apply.
#
# Env: JOBS (default 16), MIN_RATIO (default 1.5), OUT (default
# bench_cluster.json), TEMPRIVD/TEMPRIVGW (prebuilt binaries; otherwise
# built from the repo).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-16}
MIN_RATIO=${MIN_RATIO:-1.5}
OUT=${OUT:-bench_cluster.json}
CPUS=$(nproc)

if [ -z "${TEMPRIVD:-}" ]; then
  go build -o /tmp/tpt_temprivd ./cmd/temprivd
  TEMPRIVD=/tmp/tpt_temprivd
fi
if [ -z "${TEMPRIVGW:-}" ]; then
  go build -o /tmp/tpt_temprivgw ./cmd/temprivgw
  TEMPRIVGW=/tmp/tpt_temprivgw
fi

PIDS=()
cleanup() {
  for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

field() { python3 -c "import sys,json; print(json.load(sys.stdin).get('$1') or '')"; }
now() { python3 -c 'import time; print(time.time())'; }

spec() { # $1 = seed
  echo '{"version":1,"experiment":{"id":"fig3","packets":400,"interarrivals":[2,4],"replicates":8,"seed":'"$1"'}}'
}

# run_batch <workers> <gateway port> <checksum file> -> elapsed seconds on stdout
run_batch() {
  local W=$1 PORT=$2 SUMS=$3
  local GWURL="http://localhost:$PORT"

  "$TEMPRIVGW" -addr "localhost:$PORT" -lease-ttl 5s -reconcile-every 1s \
    -shed-factor 64 -log-level warn &
  local GWPID=$!
  PIDS+=("$GWPID")
  local WPIDS=()
  for i in $(seq 1 "$W"); do
    "$TEMPRIVD" -addr "localhost:$((PORT + i))" -workers 1 \
      -cluster-registry "$GWURL" -cluster-id "w$i" -log-level warn &
    WPIDS+=("$!")
    PIDS+=("$!")
  done

  local N=0
  for i in $(seq 1 100); do
    N=$(curl -sf "$GWURL/v1/cluster" | python3 -c 'import sys,json; print(len(json.load(sys.stdin)["workers"]))' 2>/dev/null || echo 0)
    [ "$N" = "$W" ] && break
    sleep 0.2
  done
  [ "$N" = "$W" ] || { echo "only $N/$W workers registered on :$PORT" >&2; return 1; }

  # Batch-submit the whole sweep, then await everything: elapsed time is
  # submit-to-last-done, i.e. batch throughput, not per-job latency.
  local T0 IDS=() SEEDS=()
  T0=$(now)
  for s in $(seq 1 "$JOBS"); do
    local ID
    ID=$(curl -sf "$GWURL/v1/jobs" -d "$(spec "$s")" | field id)
    [ -n "$ID" ] || { echo "submit of seed $s failed" >&2; return 1; }
    IDS+=("$ID")
    SEEDS+=("$s")
  done
  for ID in "${IDS[@]}"; do
    local STATE=""
    for i in $(seq 1 1200); do
      STATE=$(curl -s "$GWURL/v1/jobs/$ID" | field state || true)
      [ "$STATE" = done ] && break
      case "$STATE" in failed|canceled) echo "job $ID $STATE" >&2; return 1;; esac
      sleep 0.1
    done
    [ "$STATE" = done ] || { echo "job $ID never finished (lost job)" >&2; return 1; }
  done
  local T1
  T1=$(now)

  : > "$SUMS"
  for i in "${!IDS[@]}"; do
    curl -sf "$GWURL/v1/jobs/${IDS[$i]}/result" > "/tmp/tpt_result.$$"
    echo "seed ${SEEDS[$i]} $(sha256sum < "/tmp/tpt_result.$$" | awk '{print $1}')" >> "$SUMS"
  done
  rm -f "/tmp/tpt_result.$$"

  for p in "${WPIDS[@]}" "$GWPID"; do kill "$p" 2>/dev/null || true; done
  python3 -c "print(f'{$T1 - $T0:.2f}')"
}

echo "cluster_throughput: $JOBS jobs, $CPUS cpu(s)"
S1=$(run_batch 1 7170 /tmp/tpt_sums_1w)
echo "  1 worker:  ${S1}s"
S3=$(run_batch 3 7270 /tmp/tpt_sums_3w)
echo "  3 workers: ${S3}s"

diff /tmp/tpt_sums_1w /tmp/tpt_sums_3w || {
  echo "cluster_throughput: FAIL: results differ between 1- and 3-worker runs" >&2
  exit 1
}
echo "  results byte-identical across both runs ($JOBS jobs, zero lost)"

RATIO=$(python3 -c "print(f'{$S1 / $S3:.2f}')")
GATED=$([ "$CPUS" -ge 3 ] && echo true || echo false)
python3 - "$OUT" <<EOF
import json, sys
doc = {
    "bench": "cluster_throughput",
    "jobs": $JOBS,
    "cpus": $CPUS,
    "workers_1_seconds": $S1,
    "workers_3_seconds": $S3,
    "scaling_ratio": $RATIO,
    "ratio_gated": $CPUS >= 3,
    "min_ratio": $MIN_RATIO,
}
with open(sys.argv[1], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
echo "  wrote $OUT"

if [ "$GATED" = true ]; then
  python3 -c "import sys; sys.exit(0 if $RATIO >= $MIN_RATIO else 1)" || {
    echo "cluster_throughput: FAIL: 1->3 worker scaling ${RATIO}x < floor ${MIN_RATIO}x" >&2
    exit 1
  }
  echo "cluster_throughput: OK: 1->3 worker scaling ${RATIO}x (floor ${MIN_RATIO}x)"
else
  echo "cluster_throughput: OK: ratio ${RATIO}x recorded, not gated ($CPUS cpu(s) < 3)"
fi
