#!/usr/bin/env python3
"""Benchmark regression gate.

Reads `go test -bench` output on stdin and enforces the performance
invariants this repo commits to (BENCH_4.json, BENCH_6.json, BENCH_9.json,
BENCH_10.json).

Same-machine relative gates (always on):

  1. The engine fast paths stay allocation-free: the kernel schedule/fire,
     drain, and churn benchmarks and the lossless forwarding hop must
     report 0 allocs/op.
  2. The typed event kernel stays faster than the legacy container/heap
     kernel kept as a test double (same machine, same run).
  3. Streaming durability stays cheap: a replicated run with a chunk-store
     sink attached must stay within STREAM_OVERHEAD_MAX of the nil-sink
     (monolithic) path.

History gates (with --history BENCH_*.json ...): the committed BENCH files
are walked recursively for {"name", "ns_per_op", "allocs_per_op"} leaves.
For every gated fast path that appears in the history:

  4. allocs/op may never exceed the committed number (allocations are
     machine-independent — any increase is a real regression).
  5. ns/op may not exceed the best committed number by more than
     HISTORY_SLOWDOWN_MAX. Wall-clock comparisons across machines are
     noisy, so this margin is generous and only the *fast paths* — tight
     loops whose cost is dominated by instruction count, not memory or I/O
     — are held to it.
  6. Committed {"bench": "cluster_throughput"} leaves (ci/cluster_throughput.sh
     output) with ratio_gated=true must keep the 1->3 worker scaling_ratio
     at or above CLUSTER_SCALING_MIN. Ratios measured on machines with
     fewer than 3 CPUs are recorded but exempt — timesharing one core
     cannot demonstrate scaling.

Usage:  go test -run '^$' -bench ... -benchmem ./... \
          | python3 ci/benchgate.py [--history BENCH_4.json BENCH_6.json ...]
"""

import json
import re
import sys

STREAM_OVERHEAD_MAX = 1.50  # chunk-sink path may cost at most +50%
HISTORY_SLOWDOWN_MAX = 1.20  # fast paths may cost at most +20% vs best committed
CLUSTER_SCALING_MIN = 1.5  # 1->3 worker throughput floor (near-linear would be ~3x)

# name -> (ns_per_op, bytes_per_op, allocs_per_op)
BENCH_RE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op"
    r"(?:.*?\s([\d.]+) B/op\s+(\d+) allocs/op)?"
)

ZERO_ALLOC = [
    "BenchmarkKernelScheduleFire",
    "BenchmarkKernelScheduleDrain",
    "BenchmarkKernelChurn",
    "BenchmarkForwardHop",
    "BenchmarkSpanDisabled",
]

FASTER_THAN_LEGACY = [
    ("BenchmarkKernelScheduleFire", "BenchmarkLegacyScheduleFire"),
    ("BenchmarkKernelScheduleDrain", "BenchmarkLegacyScheduleDrain"),
    ("BenchmarkKernelChurn", "BenchmarkLegacyChurn"),
]

# Fast paths gated against committed history: kernel and forwarding only.
# Everything else in the BENCH files (chunk I/O, replication end-to-end) is
# dominated by fsync or workload size and is covered by the relative gates.
HISTORY_GATED = set(ZERO_ALLOC)


def walk_history(node, out, cluster):
    """Collect {"name", "ns_per_op"[, "allocs_per_op"]} leaves and
    {"bench": "cluster_throughput", ...} leaves recursively."""
    if isinstance(node, dict):
        if "name" in node and "ns_per_op" in node:
            out.append(node)
        if node.get("bench") == "cluster_throughput" and "scaling_ratio" in node:
            cluster.append(node)
        for v in node.values():
            walk_history(v, out, cluster)
    elif isinstance(node, list):
        for v in node:
            walk_history(v, out, cluster)
    return out


def load_history(paths, failures):
    """best committed numbers per gated benchmark: name -> (min ns, min allocs);
    plus every committed cluster_throughput leaf as (path, leaf) pairs."""
    best = {}
    cluster_leaves = []
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            failures.append(f"history file {path}: {e}")
            continue
        cluster = []
        leaves = []
        walk_history(doc, leaves, cluster)
        cluster_leaves.extend((path, leaf) for leaf in cluster)
        for leaf in leaves:
            name = leaf["name"]
            if name not in HISTORY_GATED:
                continue
            ns = float(leaf["ns_per_op"])
            allocs = leaf.get("allocs_per_op")
            prev_ns, prev_allocs = best.get(name, (float("inf"), None))
            ns = min(ns, prev_ns)
            if allocs is not None:
                allocs = int(allocs) if prev_allocs is None else min(int(allocs), prev_allocs)
            else:
                allocs = prev_allocs
            best[name] = (ns, allocs)
    return best, cluster_leaves


def gate_cluster(cluster_leaves, failures):
    """Committed 1->3 worker scaling ratios must clear CLUSTER_SCALING_MIN.

    Only leaves marked ratio_gated=true count: ci/cluster_throughput.sh
    sets that flag when the measuring machine had >= 3 CPUs. A ratio from
    a 1-core box measures scheduler timesharing, not scaling, and is
    committed for the record but exempt.
    """
    gated, before = 0, len(failures)
    for path, leaf in cluster_leaves:
        ratio = float(leaf["scaling_ratio"])
        if not leaf.get("ratio_gated", leaf.get("cpus", 0) >= 3):
            print(
                f"benchgate: cluster_throughput in {path}: ratio {ratio:.2f}x "
                f"not gated ({leaf.get('cpus', '?')} cpu(s))"
            )
            continue
        gated += 1
        if ratio < CLUSTER_SCALING_MIN:
            failures.append(
                f"cluster_throughput in {path}: 1->3 worker scaling {ratio:.2f}x "
                f"below floor {CLUSTER_SCALING_MIN:.2f}x"
            )
    if gated and len(failures) == before:
        print(f"benchgate: cluster scaling OK ({gated} gated ratio(s) >= {CLUSTER_SCALING_MIN:.2f}x)")


def main():
    args = sys.argv[1:]
    history_paths = []
    if args and args[0] == "--history":
        history_paths = args[1:]
    elif args:
        print(f"benchgate: unknown arguments {args}", file=sys.stderr)
        sys.exit(2)

    results = {}
    for line in sys.stdin:
        m = BENCH_RE.match(line.strip())
        if not m:
            continue
        name, ns = m.group(1), float(m.group(2))
        allocs = int(m.group(4)) if m.group(4) is not None else None
        # Keep the slowest observation if a benchmark appears twice.
        if name not in results or ns > results[name][0]:
            results[name] = (ns, allocs)

    failures = []

    def need(name):
        if name not in results:
            failures.append(f"missing benchmark in input: {name}")
            return None
        return results[name]

    for name in ZERO_ALLOC:
        r = need(name)
        if r and r[1] not in (0, None):
            failures.append(f"{name}: {r[1]} allocs/op, fast path must stay 0")
        if r and r[1] is None:
            failures.append(f"{name}: no allocs/op reported (run with -benchmem)")

    for fast, slow in FASTER_THAN_LEGACY:
        rf, rs = need(fast), need(slow)
        if rf and rs and rf[0] >= rs[0]:
            failures.append(
                f"{fast} ({rf[0]:.1f} ns/op) is not faster than {slow} ({rs[0]:.1f} ns/op)"
            )

    nil_sink = need("BenchmarkReplicateStreamNilSink")
    chunk_sink = need("BenchmarkReplicateStreamChunkSink")
    if nil_sink and chunk_sink:
        ratio = chunk_sink[0] / nil_sink[0]
        if ratio > STREAM_OVERHEAD_MAX:
            failures.append(
                f"chunk-sink replication costs {ratio:.2f}x the monolithic path "
                f"(limit {STREAM_OVERHEAD_MAX:.2f}x)"
            )
        else:
            print(f"benchgate: streaming overhead {ratio:.2f}x (limit {STREAM_OVERHEAD_MAX:.2f}x)")

    if history_paths:
        best, cluster_leaves = load_history(history_paths, failures)
        gate_cluster(cluster_leaves, failures)
        if not best:
            failures.append(f"no gated benchmarks found in history files {history_paths}")
        for name, (best_ns, best_allocs) in sorted(best.items()):
            r = results.get(name)
            if r is None:
                # The relative gates already report missing fast paths.
                continue
            ns, allocs = r
            if best_allocs is not None and allocs is not None and allocs > best_allocs:
                failures.append(
                    f"{name}: {allocs} allocs/op vs {best_allocs} committed — "
                    f"allocations are machine-independent, this is a real regression"
                )
            if ns > best_ns * HISTORY_SLOWDOWN_MAX:
                failures.append(
                    f"{name}: {ns:.1f} ns/op vs best committed {best_ns:.1f} "
                    f"(limit {HISTORY_SLOWDOWN_MAX:.2f}x = {best_ns * HISTORY_SLOWDOWN_MAX:.1f})"
                )
        if not failures:
            print(f"benchgate: history OK ({len(best)} fast paths vs {len(history_paths)} committed files)")

    if failures:
        for f in failures:
            print(f"benchgate: FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"benchgate: OK ({len(results)} benchmarks checked)")


if __name__ == "__main__":
    main()
