#!/usr/bin/env python3
"""Benchmark regression gate.

Reads `go test -bench` output on stdin and enforces the performance
invariants this repo commits to (BENCH_4.json, BENCH_6.json). All
comparisons are *relative, same-machine* — CI hardware varies run to run,
so the gate never compares against wall-clock numbers measured elsewhere:

  1. The engine fast paths stay allocation-free: the kernel schedule/fire,
     drain, and churn benchmarks and the lossless forwarding hop must
     report 0 allocs/op.
  2. The typed event kernel stays faster than the legacy container/heap
     kernel kept as a test double (same machine, same run).
  3. Streaming durability stays cheap: a replicated run with a chunk-store
     sink attached must stay within STREAM_OVERHEAD_MAX of the nil-sink
     (monolithic) path.

Usage:  go test -run '^$' -bench ... -benchmem ./... | python3 ci/benchgate.py
"""

import re
import sys

STREAM_OVERHEAD_MAX = 1.50  # chunk-sink path may cost at most +50%

# name -> (ns_per_op, bytes_per_op, allocs_per_op)
BENCH_RE = re.compile(
    r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op"
    r"(?:.*?\s([\d.]+) B/op\s+(\d+) allocs/op)?"
)

ZERO_ALLOC = [
    "BenchmarkKernelScheduleFire",
    "BenchmarkKernelScheduleDrain",
    "BenchmarkKernelChurn",
    "BenchmarkForwardHop",
    "BenchmarkSpanDisabled",
]

FASTER_THAN_LEGACY = [
    ("BenchmarkKernelScheduleFire", "BenchmarkLegacyScheduleFire"),
    ("BenchmarkKernelScheduleDrain", "BenchmarkLegacyScheduleDrain"),
    ("BenchmarkKernelChurn", "BenchmarkLegacyChurn"),
]


def main():
    results = {}
    for line in sys.stdin:
        m = BENCH_RE.match(line.strip())
        if not m:
            continue
        name, ns = m.group(1), float(m.group(2))
        allocs = int(m.group(4)) if m.group(4) is not None else None
        # Keep the slowest observation if a benchmark appears twice.
        if name not in results or ns > results[name][0]:
            results[name] = (ns, allocs)

    failures = []

    def need(name):
        if name not in results:
            failures.append(f"missing benchmark in input: {name}")
            return None
        return results[name]

    for name in ZERO_ALLOC:
        r = need(name)
        if r and r[1] not in (0, None) :
            failures.append(f"{name}: {r[1]} allocs/op, fast path must stay 0")
        if r and r[1] is None:
            failures.append(f"{name}: no allocs/op reported (run with -benchmem)")

    for fast, slow in FASTER_THAN_LEGACY:
        rf, rs = need(fast), need(slow)
        if rf and rs and rf[0] >= rs[0]:
            failures.append(
                f"{fast} ({rf[0]:.1f} ns/op) is not faster than {slow} ({rs[0]:.1f} ns/op)"
            )

    nil_sink = need("BenchmarkReplicateStreamNilSink")
    chunk_sink = need("BenchmarkReplicateStreamChunkSink")
    if nil_sink and chunk_sink:
        ratio = chunk_sink[0] / nil_sink[0]
        if ratio > STREAM_OVERHEAD_MAX:
            failures.append(
                f"chunk-sink replication costs {ratio:.2f}x the monolithic path "
                f"(limit {STREAM_OVERHEAD_MAX:.2f}x)"
            )
        else:
            print(f"benchgate: streaming overhead {ratio:.2f}x (limit {STREAM_OVERHEAD_MAX:.2f}x)")

    if failures:
        for f in failures:
            print(f"benchgate: FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print(f"benchgate: OK ({len(results)} benchmarks checked)")


if __name__ == "__main__":
    main()
