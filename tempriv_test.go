package tempriv

import (
	"math"
	"strings"
	"testing"
)

// TestQuickstartFlow exercises the facade end-to-end the way the README's
// quickstart does: build, run, attack, score.
func TestQuickstartFlow(t *testing.T) {
	topo, err := NewLineTopology(15)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := PeriodicTraffic(2)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ExponentialDelay(30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: topo,
		Sources:  []Source{{Node: 15, Process: proc, Count: 500}},
		Policy:   PolicyRCAD,
		Delay:    dist,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deliveries) != 500 {
		t.Fatalf("delivered %d packets, want 500", len(res.Deliveries))
	}
	adv, err := NewBaselineAdversary(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	mse, err := ScoreAdversary(adv, res)
	if err != nil {
		t.Fatal(err)
	}
	if mse.Value() <= 0 {
		t.Fatal("RCAD produced zero adversary error under load")
	}
}

func TestFigure1TopologyFacade(t *testing.T) {
	topo, sources, err := Figure1Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 4 {
		t.Fatalf("sources = %v", sources)
	}
	hops, err := HopCounts(topo)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{15, 22, 9, 11}
	for i, s := range sources {
		if hops[s] != want[i] {
			t.Fatalf("S%d hops = %d, want %d", i+1, hops[s], want[i])
		}
	}
}

func TestFlowPathsFacade(t *testing.T) {
	topo, err := NewLineTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := FlowPaths(topo)
	if err != nil {
		t.Fatal(err)
	}
	path := paths[NodeID(4)]
	if len(path) != 4 {
		t.Fatalf("path = %v, want 4 buffering nodes", path)
	}
	if path[0] != 4 || path[len(path)-1] != 1 {
		t.Fatalf("path = %v, want source first and sink excluded", path)
	}
}

func TestPlanDelaysFacade(t *testing.T) {
	topo, sources, err := NewMergeTreeTopology([]int{5, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[NodeID]float64{sources[0]: 0.5, sources[1]: 0.5}
	plan, err := PlanDelays(topo, rates, 10, 0.1, 120)
	if err != nil {
		t.Fatal(err)
	}
	// Trunk node 1 carries both flows (λ=1.0) and must get a shorter delay
	// than either source (λ=0.5 each).
	if plan[1] >= plan[sources[0]] {
		t.Fatalf("trunk delay %v not shorter than source delay %v", plan[1], plan[sources[0]])
	}
	dists, err := DelaysFromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != len(plan) {
		t.Fatalf("converted %d of %d plans", len(dists), len(plan))
	}
	for id, d := range dists {
		if math.Abs(d.Mean()-plan[id]) > 1e-12 {
			t.Fatalf("node %v distribution mean %v != plan %v", id, d.Mean(), plan[id])
		}
	}
}

func TestVictimAndDelayFactories(t *testing.T) {
	for _, name := range []string{"shortest-remaining", "longest-remaining", "oldest", "random"} {
		v, err := VictimByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if v.Name() != name {
			t.Fatalf("VictimByName(%q).Name() = %q", name, v.Name())
		}
	}
	for _, name := range []string{"exponential", "uniform", "constant", "pareto", "none"} {
		d, err := DelayByName(name, 10)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name() != name {
			t.Fatalf("DelayByName(%q).Name() = %q", name, d.Name())
		}
	}
	if ShortestRemainingVictim.Name() != "shortest-remaining" {
		t.Fatal("default victim selector wrong")
	}
}

func TestTrafficFactories(t *testing.T) {
	if _, err := PeriodicTraffic(2); err != nil {
		t.Fatal(err)
	}
	if _, err := PoissonTraffic(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := OnOffTraffic(1, 10, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := TraceTraffic([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := PeriodicTraffic(0); err == nil {
		t.Fatal("invalid traffic accepted")
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != len(Experiments()) {
		t.Fatal("IDs and registry disagree")
	}
	e, err := ExperimentByID("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Packets = 100
	p.Interarrivals = []float64{5}
	tab, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 2(a)") {
		t.Fatalf("render missing title:\n%s", b.String())
	}
}

func TestAdversaryFactoriesValidate(t *testing.T) {
	if _, err := NewBaselineAdversary(-1, 0); err == nil {
		t.Fatal("invalid baseline accepted")
	}
	if _, err := NewAdaptiveAdversary(1, 30, 0, 0.1); err == nil {
		t.Fatal("invalid adaptive accepted")
	}
	if _, err := NewPathAwareAdversary(1, 30, 10, 0.1, nil); err == nil {
		t.Fatal("invalid path-aware accepted")
	}
}

func TestGridFacade(t *testing.T) {
	topo, err := NewGridTopology(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	id := GridNodeID(6, 5, 3)
	if !topo.HasNode(id) {
		t.Fatalf("grid missing node %v", id)
	}
	if err := topo.MarkSource(id); err != nil {
		t.Fatal(err)
	}
	hops, err := HopCounts(topo)
	if err != nil {
		t.Fatal(err)
	}
	if hops[id] != 8 {
		t.Fatalf("corner-to-corner hops = %d, want 8", hops[id])
	}
}

func TestCustomMixPolicyThroughFacade(t *testing.T) {
	topo, err := NewLineTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := PeriodicTraffic(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology:     topo,
		Sources:      []Source{{Node: 4, Process: proc, Count: 200}},
		Policy:       PolicyCustom,
		CustomPolicy: ThresholdMixPolicy(10, 0),
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[4].Delivered != 200 {
		t.Fatalf("threshold mix delivered %d/200", res.Flows[4].Delivered)
	}
	genie, err := BestConstantOffsetMSE(res)
	if err != nil {
		t.Fatal(err)
	}
	if genie[4] < 0 {
		t.Fatalf("genie MSE = %v", genie[4])
	}
}

func TestNodeFailureThroughFacade(t *testing.T) {
	topo, err := NewLineTopology(3)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := PeriodicTraffic(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology:     topo,
		Sources:      []Source{{Node: 3, Process: proc, Count: 50}},
		Policy:       PolicyForward,
		NodeFailures: []NodeFailure{{Node: 2, At: 100}},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Flows[3]
	if fs.Delivered == fs.Created || res.LostToFailures == 0 {
		t.Fatalf("failure had no effect: %+v, lost %d", fs, res.LostToFailures)
	}
}

func TestRandomGeometricFacade(t *testing.T) {
	topo, err := NewRandomGeometricTopology(120, 10, 1.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NodeCount() != 121 || !topo.Connected() {
		t.Fatalf("deployment: %d nodes, connected=%v", topo.NodeCount(), topo.Connected())
	}
	// And it simulates end-to-end: pick the node farthest from the sink.
	far := NodeID(0)
	best := -1.0
	for _, id := range topo.Nodes() {
		p, err := topo.PositionOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if d := p.Distance(Position{}); d > best {
			best, far = d, id
		}
	}
	if err := topo.MarkSource(far); err != nil {
		t.Fatal(err)
	}
	proc, err := PeriodicTraffic(5)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ExponentialDelay(20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: topo,
		Sources:  []Source{{Node: far, Process: proc, Count: 100}},
		Policy:   PolicyRCAD,
		Delay:    dist,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[far].Delivered != 100 {
		t.Fatalf("delivered %d/100 on random field", res.Flows[far].Delivered)
	}
}

func TestBatchMeansFacade(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64(i % 10)
	}
	r, err := BatchMeans(samples, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Mean-4.5) > 1e-9 {
		t.Fatalf("batch mean = %v, want 4.5", r.Mean)
	}
}

func TestMMInfTransientFacade(t *testing.T) {
	v, err := MMInfTransientMean(0.5, 1.0/30, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := 15 * (1 - math.Exp(-1))
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("transient mean = %v, want %v", v, want)
	}
}
