package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Created:    "created",
		Admitted:   "admitted",
		Released:   "released",
		Preempted:  "preempted",
		Delivered:  "delivered",
		Lost:       "lost",
		LinkLoss:   "link-loss",
		Retransmit: "retransmit",
		LinkDrop:   "link-drop",
		Rerouted:   "rerouted",
		Duplicate:  "duplicate",
		Kind(99):   "kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestMemoryRecorder(t *testing.T) {
	var m Memory
	events := []Event{
		{At: 0, Kind: Created, Node: 5, Flow: 5, Seq: 0},
		{At: 0, Kind: Admitted, Node: 5, Flow: 5, Seq: 0},
		{At: 12, Kind: Released, Node: 5, Flow: 5, Seq: 0},
		{At: 13, Kind: Admitted, Node: 3, Flow: 5, Seq: 0},
		{At: 20, Kind: Preempted, Node: 3, Flow: 5, Seq: 0},
		{At: 21, Kind: Delivered, Node: 0, Flow: 5, Seq: 0},
		{At: 5, Kind: Created, Node: 9, Flow: 9, Seq: 0},
	}
	for _, e := range events {
		m.Record(e)
	}
	if m.Len() != len(events) {
		t.Fatalf("Len = %d", m.Len())
	}
	journey := m.Journey(5, 0)
	if len(journey) != 6 {
		t.Fatalf("journey has %d events, want 6", len(journey))
	}
	for i := 1; i < len(journey); i++ {
		if journey[i].At < journey[i-1].At {
			t.Fatal("journey not time-ordered")
		}
	}
	if got := m.CountKind(Created); got != 2 {
		t.Fatalf("CountKind(Created) = %d", got)
	}
}

func TestMemoryHopDelays(t *testing.T) {
	var m Memory
	for _, e := range []Event{
		{At: 0, Kind: Created, Node: 5, Flow: 5, Seq: 3},
		{At: 0, Kind: Admitted, Node: 5, Flow: 5, Seq: 3},
		{At: 12, Kind: Released, Node: 5, Flow: 5, Seq: 3},
		{At: 13, Kind: Admitted, Node: 3, Flow: 5, Seq: 3},
		{At: 20, Kind: Preempted, Node: 3, Flow: 5, Seq: 3},
	} {
		m.Record(e)
	}
	hops := m.HopDelays(5, 3)
	if len(hops) != 2 {
		t.Fatalf("hop delays = %+v, want 2 hops", hops)
	}
	if hops[0].Node != 5 || hops[0].Delay != 12 || hops[0].Preempted {
		t.Fatalf("hop 0 = %+v", hops[0])
	}
	if hops[1].Node != 3 || hops[1].Delay != 7 || !hops[1].Preempted {
		t.Fatalf("hop 1 = %+v", hops[1])
	}
}

func TestMemoryEventsIsCopy(t *testing.T) {
	var m Memory
	m.Record(Event{At: 1, Kind: Created})
	events := m.Events()
	events[0].At = 999
	if m.Events()[0].At != 1 {
		t.Fatal("Events exposed internal slice")
	}
}

func TestJSONLRecorder(t *testing.T) {
	var b strings.Builder
	j, err := NewJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Event{At: 1.5, Kind: Created, Node: 5, Flow: 5, Seq: 7})
	j.Record(Event{At: 2, Kind: Delivered, Node: 0, Flow: 5, Seq: 7})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []map[string]any
	for scanner.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(scanner.Bytes(), &obj); err != nil {
			t.Fatalf("invalid JSON line: %v", err)
		}
		lines = append(lines, obj)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0]["kind"] != "created" || lines[0]["at"] != 1.5 || lines[0]["seq"] != 7.0 {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[1]["kind"] != "delivered" {
		t.Fatalf("line 1 = %v", lines[1])
	}
}

func TestNewJSONLValidation(t *testing.T) {
	if _, err := NewJSONL(nil); err == nil {
		t.Fatal("nil writer accepted")
	}
}

type failingWriter struct{ calls int }

func (f *failingWriter) Write([]byte) (int, error) {
	f.calls++
	return 0, errWrite
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "disk full" }

func TestJSONLRetainsFirstError(t *testing.T) {
	w := &failingWriter{}
	j, err := NewJSONL(w)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Event{})
	j.Record(Event{})
	if j.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if w.calls != 1 {
		t.Fatalf("recorder kept writing after error: %d calls", w.calls)
	}
}

func TestMultiFansOut(t *testing.T) {
	var a, b Memory
	m := Multi(&a, nil, &b)
	m.Record(Event{At: 1, Kind: Created})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out lens = %d, %d", a.Len(), b.Len())
	}
}

func TestJSONLLinkLayerEvents(t *testing.T) {
	var b strings.Builder
	j, err := NewJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Event{At: 3, Kind: LinkLoss, Node: 4, Dest: 3, Flow: 5, Seq: 1})
	j.Record(Event{At: 4, Kind: Retransmit, Node: 4, Dest: 3, Flow: 5, Seq: 1})
	j.Record(Event{At: 9, Kind: LinkDrop, Node: 4, Dest: 3, Flow: 5, Seq: 1})
	j.Record(Event{At: 10, Kind: Rerouted, Node: 4, Dest: 2})
	j.Record(Event{At: 11, Kind: Duplicate, Node: 0, Flow: 5, Seq: 1})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []map[string]any
	for scanner.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(scanner.Bytes(), &obj); err != nil {
			t.Fatalf("invalid JSON line: %v", err)
		}
		lines = append(lines, obj)
	}
	wantKinds := []string{"link-loss", "retransmit", "link-drop", "rerouted", "duplicate"}
	if len(lines) != len(wantKinds) {
		t.Fatalf("got %d lines, want %d", len(lines), len(wantKinds))
	}
	for i, k := range wantKinds {
		if lines[i]["kind"] != k {
			t.Fatalf("line %d kind = %v, want %q", i, lines[i]["kind"], k)
		}
	}
	if lines[0]["dest"] != 3.0 || lines[3]["dest"] != 2.0 {
		t.Fatalf("dest fields wrong: %v / %v", lines[0]["dest"], lines[3]["dest"])
	}
	// A duplicate suppressed at the sink has no destination; the field is
	// omitted rather than emitted as 0 (node 0 is the sink itself).
	if _, present := lines[4]["dest"]; present {
		t.Fatalf("sink event carries a dest: %v", lines[4])
	}
}
