// Package trace records per-packet lifecycle events from a simulation run:
// creation, admission to each hop's buffer, release (normal or preempted),
// delivery at the sink, loss to node failures, and the link-layer events of
// an unreliable channel (frame loss, ARQ retransmission, retry-budget
// exhaustion, route repair, duplicate suppression). It is the simulator's
// observability layer — useful both for debugging buffering policies and
// for teaching: a single packet's journey through RCAD shows exactly where
// its delay came from and which hop preempted it.
//
// Recorders are pluggable: Memory keeps events in-process for analysis;
// JSONL streams one JSON object per line to any io.Writer (the rcadsim
// -trace flag). Both are driven by network.Config.Tracer.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"tempriv/internal/packet"
)

// Kind classifies a lifecycle event.
type Kind int

const (
	// Created: the source sensed a phenomenon and generated the packet.
	Created Kind = iota + 1
	// Admitted: a node's buffering policy accepted the packet.
	Admitted
	// Released: the packet left a buffer after its full sampled delay.
	Released
	// Preempted: the packet was forced out early by RCAD preemption.
	Preempted
	// Delivered: the packet reached the sink.
	Delivered
	// Lost: the packet died at a failed node (in-buffer or on arrival).
	Lost
	// LinkLoss: the channel destroyed a data frame (or a dead receiver
	// never acknowledged it) on the hop from Node toward Dest.
	LinkLoss
	// Retransmit: the link-layer ARQ resent the packet from Node toward
	// Dest after a loss or a missing acknowledgement.
	Retransmit
	// LinkDrop: the link layer abandoned the packet at Node after
	// exhausting its retransmission budget.
	LinkDrop
	// Rerouted: route repair gave Node the new parent Dest after a failure.
	// The event carries no packet; Flow and Seq are zero.
	Rerouted
	// Duplicate: the sink discarded an ARQ-induced copy of an already
	// delivered (origin, seq) packet.
	Duplicate
)

// String returns the event kind's wire name.
func (k Kind) String() string {
	switch k {
	case Created:
		return "created"
	case Admitted:
		return "admitted"
	case Released:
		return "released"
	case Preempted:
		return "preempted"
	case Delivered:
		return "delivered"
	case Lost:
		return "lost"
	case LinkLoss:
		return "link-loss"
	case Retransmit:
		return "retransmit"
	case LinkDrop:
		return "link-drop"
	case Rerouted:
		return "rerouted"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one lifecycle record.
type Event struct {
	// At is the simulated time of the event.
	At float64 `json:"at"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Node is where the event happened.
	Node packet.NodeID `json:"node"`
	// Flow identifies the packet's source flow.
	Flow packet.NodeID `json:"flow"`
	// Seq is the packet's per-flow sequence number.
	Seq uint32 `json:"seq"`
	// Dest names the far end of the link for LinkLoss, Retransmit and
	// LinkDrop, and the new parent for Rerouted. It is zero (and omitted
	// from JSON) for the packet-lifecycle kinds that happen at one node.
	Dest packet.NodeID `json:"dest,omitempty"`
}

// Recorder consumes lifecycle events. Implementations must tolerate being
// called once per event for the whole run (hundreds of thousands of calls).
type Recorder interface {
	Record(e Event)
}

// Memory retains every event in order. The zero value is ready to use.
type Memory struct {
	events []Event
}

var _ Recorder = (*Memory)(nil)

// Record implements Recorder.
func (m *Memory) Record(e Event) { m.events = append(m.events, e) }

// Len returns the number of recorded events.
func (m *Memory) Len() int { return len(m.events) }

// Events returns the recorded events in record order. The returned slice is
// a copy.
func (m *Memory) Events() []Event {
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Journey returns the events of one packet (flow, seq) in time order.
func (m *Memory) Journey(flow packet.NodeID, seq uint32) []Event {
	var out []Event
	for _, e := range m.events {
		if e.Flow == flow && e.Seq == seq {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// HopDelays returns, for one packet, the time spent buffered at each node
// on its path, keyed in path order. A packet still buffered (or dropped)
// contributes only completed hops.
func (m *Memory) HopDelays(flow packet.NodeID, seq uint32) []HopDelay {
	journey := m.Journey(flow, seq)
	var out []HopDelay
	var pending *Event
	for i := range journey {
		e := journey[i]
		switch e.Kind {
		case Admitted:
			pending = &journey[i]
		case Released, Preempted:
			if pending != nil && pending.Node == e.Node {
				out = append(out, HopDelay{
					Node:      e.Node,
					Delay:     e.At - pending.At,
					Preempted: e.Kind == Preempted,
				})
				pending = nil
			}
		}
	}
	return out
}

// HopDelay is the buffering time a packet spent at one node.
type HopDelay struct {
	// Node is the buffering node.
	Node packet.NodeID
	// Delay is the realised holding time.
	Delay float64
	// Preempted reports whether the hold ended by preemption.
	Preempted bool
}

// CountKind returns how many recorded events have the given kind.
func (m *Memory) CountKind(k Kind) int {
	n := 0
	for _, e := range m.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// JSONL streams events as JSON Lines. Create with NewJSONL; check Err after
// the run.
type JSONL struct {
	enc *json.Encoder
	err error
}

var _ Recorder = (*JSONL)(nil)

// NewJSONL returns a recorder writing one JSON object per event to w.
func NewJSONL(w io.Writer) (*JSONL, error) {
	if w == nil {
		return nil, errors.New("trace: nil writer")
	}
	return &JSONL{enc: json.NewEncoder(w)}, nil
}

// Record implements Recorder. The first write error is retained and
// subsequent events are dropped; check Err after the run.
func (j *JSONL) Record(e Event) {
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(e); err != nil {
		j.err = fmt.Errorf("trace: encoding event: %w", err)
	}
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error { return j.err }

// Multi fans events out to several recorders.
func Multi(recorders ...Recorder) Recorder {
	return multi(recorders)
}

type multi []Recorder

// Record implements Recorder.
func (m multi) Record(e Event) {
	for _, r := range m {
		if r != nil {
			r.Record(e)
		}
	}
}
