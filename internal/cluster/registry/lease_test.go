package registry

// Lease-protocol property test: a worker heartbeating at TTL/3 — the
// client's cadence — must never be expired by the registry, even when
// the heartbeat timing jitters and the shared clock jumps forward in
// bounded skips. And the membership epoch must move only on real
// membership changes (join, leave, expiry), never on a steady-state
// heartbeat — the gateway rebuilds its ring on every epoch bump, so a
// chatty epoch would churn placement for no reason.

import (
	"math/rand"
	"testing"
	"time"
)

func TestLeaseNeverExpiresUnderHeartbeatJitter(t *testing.T) {
	const ttl = 30 * time.Second
	for _, seed := range []int64{1, 2, 3, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(seed))
		now := time.Unix(1_700_000_000, 0)
		clock := func() time.Time { return now }
		r := New(Options{LeaseTTL: ttl, Clock: clock})

		if _, _, err := r.Register(Worker{ID: "w1", URL: "http://w1", Capacity: 2}); err != nil {
			t.Fatal(err)
		}
		_, epochAfterJoin := r.Alive()

		// 500 heartbeat rounds. Each round advances the clock by the
		// TTL/3 base interval plus bounded jitter (at most TTL/6, so the
		// effective gap never reaches TTL/2), and occasionally injects an
		// extra clock skip — skewed wall clocks, GC pauses, a VM freeze —
		// still bounded well inside the remaining lease headroom.
		for round := 0; round < 500; round++ {
			gap := ttl/3 + time.Duration(rng.Int63n(int64(ttl/6)))
			now = now.Add(gap)
			if rng.Intn(10) == 0 {
				// Clock skip: up to another TTL/3. Worst case total gap
				// is TTL/3 + TTL/6 + TTL/3 = 5/6 TTL — inside the lease.
				now = now.Add(time.Duration(rng.Int63n(int64(ttl / 3))))
			}

			// The registry may sweep at any moment relative to the
			// heartbeat; model the adversarial order (sweep first).
			if expired := r.Sweep(); len(expired) != 0 {
				t.Fatalf("seed %d round %d: lease expired after %v gap (expired %v)", seed, round, gap, expired)
			}
			if _, _, err := r.Register(Worker{ID: "w1", URL: "http://w1", Capacity: 2}); err != nil {
				t.Fatalf("seed %d round %d: heartbeat rejected: %v", seed, round, err)
			}

			alive, epoch := r.Alive()
			if len(alive) != 1 || alive[0].ID != "w1" {
				t.Fatalf("seed %d round %d: alive = %v, want [w1]", seed, round, alive)
			}
			if epoch != epochAfterJoin {
				t.Fatalf("seed %d round %d: epoch moved %d -> %d on steady-state heartbeats", seed, round, epochAfterJoin, epoch)
			}
		}
	}
}

func TestEpochBumpsOnlyOnMembershipChange(t *testing.T) {
	const ttl = 30 * time.Second
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	r := New(Options{LeaseTTL: ttl, Clock: clock})

	_, e1, err := r.Register(Worker{ID: "w1", URL: "http://w1", Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := r.Register(Worker{ID: "w2", URL: "http://w2", Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatalf("join did not bump epoch: %d -> %d", e1, e2)
	}

	// Steady heartbeats: epoch frozen.
	for i := 0; i < 10; i++ {
		now = now.Add(ttl / 3)
		if _, e, err := r.Register(Worker{ID: "w1", URL: "http://w1", Capacity: 2}); err != nil || e != e2 {
			t.Fatalf("heartbeat bumped epoch to %d (want %d), err=%v", e, e2, err)
		}
		if _, e, err := r.Register(Worker{ID: "w2", URL: "http://w2", Capacity: 2}); err != nil || e != e2 {
			t.Fatalf("heartbeat bumped epoch to %d (want %d), err=%v", e, e2, err)
		}
	}

	// A worker moving to a new dispatch address is a real change.
	_, e3, err := r.Register(Worker{ID: "w2", URL: "http://w2-new", Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e3 <= e2 {
		t.Fatalf("address change did not bump epoch: %d -> %d", e2, e3)
	}

	// Expiry is a real change: silence w1 past the TTL.
	for i := 0; i < 5; i++ {
		now = now.Add(ttl / 3)
		if _, _, err := r.Register(Worker{ID: "w2", URL: "http://w2-new", Capacity: 2}); err != nil {
			t.Fatal(err)
		}
		r.Sweep()
	}
	alive, e4 := r.Alive()
	if len(alive) != 1 || alive[0].ID != "w2" {
		t.Fatalf("alive = %v, want [w2] after w1 went silent", alive)
	}
	if e4 <= e3 {
		t.Fatalf("expiry did not bump epoch: %d -> %d", e3, e4)
	}

	// Deregister too.
	r.Deregister("w2")
	if _, e5 := r.Alive(); e5 <= e4 {
		t.Fatalf("deregister did not bump epoch: %d -> %d", e4, e5)
	}
}
