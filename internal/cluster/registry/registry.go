// Package registry is the cluster's bulletin board: the membership
// authority where temprivd workers register with their capacity and keep
// their registration alive by heartbeating, and from which the gateway
// (internal/cluster/gateway) and the workers themselves derive the
// consistent-hash ring (internal/cluster/ring).
//
// The design follows the Π_t bulletin-board shape: there is no global
// clock and no gossip — every worker periodically re-posts its own
// record, the board stamps it with a lease, and a record whose lease
// expires without renewal is swept from the membership. Each change to
// the alive set (a new worker, a departure, an expiry) bumps a
// monotonically increasing epoch, so consumers can rebuild their ring
// exactly when membership actually changed and not on every poll.
//
// The registry itself is pure in-memory state behind a mutex with an
// injectable clock; the HTTP surface (http.go) and the worker-side lease
// client (client.go) wrap it for cross-process use. Losing the registry
// process loses only liveness bookkeeping — workers re-register on their
// next heartbeat, which is why the board needs no journal of its own.
package registry

import (
	"fmt"
	"net/url"
	"regexp"
	"sort"
	"sync"
	"time"
)

// DefaultLeaseTTL is how long a registration stays alive without a
// heartbeat. Workers heartbeat at TTL/3, so one lost heartbeat never
// expires a healthy worker.
const DefaultLeaseTTL = 10 * time.Second

// validWorkerID constrains worker IDs to something that can appear in
// URLs, metrics labels and ring vnode labels without escaping.
var validWorkerID = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// Worker is one member's bulletin-board record.
type Worker struct {
	// ID is the worker's stable cluster identity — the unit the ring
	// shards over. Restarting a worker under the same ID reclaims its
	// shard (and its caches).
	ID string `json:"id"`
	// URL is the worker's advertised base URL ("http://host:port"), the
	// address the gateway dispatches to.
	URL string `json:"url"`
	// Capacity is the worker's advertised parallelism (its job-worker
	// pool size); informational today, a weighting input tomorrow.
	Capacity int `json:"capacity"`

	// RegisteredAt is when this ID first joined the current alive set;
	// LastHeartbeat and ExpiresAt describe the current lease.
	RegisteredAt  time.Time `json:"registered_at"`
	LastHeartbeat time.Time `json:"last_heartbeat"`
	ExpiresAt     time.Time `json:"expires_at"`
}

// Options configure a Registry.
type Options struct {
	// LeaseTTL is the heartbeat lease duration (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Clock supplies the registry's notion of now (default time.Now).
	// Tests drive lease expiry deterministically through it.
	Clock func() time.Time
}

// Registry is the in-memory bulletin board. Safe for concurrent use.
type Registry struct {
	ttl   time.Duration
	clock func() time.Time

	mu      sync.Mutex
	workers map[string]*Worker
	epoch   uint64
}

// New builds a Registry.
func New(opts Options) *Registry {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Registry{
		ttl:     opts.LeaseTTL,
		clock:   opts.Clock,
		workers: make(map[string]*Worker),
	}
}

// LeaseTTL returns the configured lease duration.
func (r *Registry) LeaseTTL() time.Duration { return r.ttl }

// Register records (or renews — a heartbeat is just a re-registration)
// a worker and returns the lease TTL plus the membership epoch after the
// call. The epoch bumps only when the alive set or a worker's dispatch
// address actually changes, so a steady-state heartbeat is epoch-neutral.
func (r *Registry) Register(w Worker) (ttl time.Duration, epoch uint64, err error) {
	if !validWorkerID.MatchString(w.ID) {
		return 0, 0, fmt.Errorf("registry: invalid worker id %q", w.ID)
	}
	u, err := url.Parse(w.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return 0, 0, fmt.Errorf("registry: worker %s: invalid base URL %q", w.ID, w.URL)
	}
	if w.Capacity < 1 {
		w.Capacity = 1
	}
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(now)
	cur, known := r.workers[w.ID]
	if !known {
		r.workers[w.ID] = &Worker{
			ID: w.ID, URL: w.URL, Capacity: w.Capacity,
			RegisteredAt: now, LastHeartbeat: now, ExpiresAt: now.Add(r.ttl),
		}
		r.epoch++
	} else {
		if cur.URL != w.URL {
			// A re-registration under the same ID from a new address is a
			// restart/move: routable state changed, consumers must rebuild.
			cur.URL = w.URL
			r.epoch++
		}
		cur.Capacity = w.Capacity
		cur.LastHeartbeat = now
		cur.ExpiresAt = now.Add(r.ttl)
	}
	return r.ttl, r.epoch, nil
}

// Deregister removes a worker immediately (graceful shutdown). Reports
// whether the worker was registered.
func (r *Registry) Deregister(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.workers[id]; !ok {
		return false
	}
	delete(r.workers, id)
	r.epoch++
	return true
}

// Sweep removes workers whose lease has expired and returns them (the
// gateway's reconciliation loop hands their jobs off to ring successors).
func (r *Registry) Sweep() []Worker {
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sweepLocked(now)
}

func (r *Registry) sweepLocked(now time.Time) []Worker {
	var expired []Worker
	for id, w := range r.workers {
		if now.After(w.ExpiresAt) {
			expired = append(expired, *w)
			delete(r.workers, id)
		}
	}
	if len(expired) > 0 {
		r.epoch++
		sort.Slice(expired, func(a, b int) bool { return expired[a].ID < expired[b].ID })
	}
	return expired
}

// Alive sweeps expired leases and returns the live membership (sorted by
// ID) together with the current epoch.
func (r *Registry) Alive() ([]Worker, uint64) {
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(now)
	out := make([]Worker, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, r.epoch
}

// Epoch returns the current membership epoch without sweeping.
func (r *Registry) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// IDs extracts the member IDs from a Worker slice — the ring's input.
func IDs(ws []Worker) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.ID
	}
	return out
}
