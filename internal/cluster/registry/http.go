// HTTP surface of the bulletin board. The gateway mounts Handler on its
// mux; workers talk to it through Client (client.go).
//
//	POST   /v1/cluster/register      register or heartbeat (body: Worker)
//	GET    /v1/cluster/workers       live membership + epoch
//	DELETE /v1/cluster/workers/{id}  immediate deregistration
//
// Register doubles as the heartbeat so a worker needs exactly one
// request shape, and every response carries the full live membership —
// that is what lets each worker derive the same consistent-hash ring the
// gateway routes by, without a second discovery protocol.

package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxRegisterBytes bounds a registration document.
const maxRegisterBytes = 16 << 10

// RegisterResponse answers both registrations and membership queries.
type RegisterResponse struct {
	// TTLMillis is the lease duration; the worker must heartbeat well
	// within it (the client uses TTL/3).
	TTLMillis int64 `json:"ttl_ms"`
	// Epoch is the membership epoch after this request; it changes iff
	// the alive set changed.
	Epoch uint64 `json:"epoch"`
	// Workers is the full live membership, sorted by ID.
	Workers []Worker `json:"workers"`
}

// Mount registers the bulletin-board routes on mux.
func (r *Registry) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/register", r.handleRegister)
	mux.HandleFunc("GET /v1/cluster/workers", r.handleWorkers)
	mux.HandleFunc("DELETE /v1/cluster/workers/{id}", r.handleDeregister)
}

func (r *Registry) handleRegister(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxRegisterBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxRegisterBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("registration exceeds %d bytes", maxRegisterBytes))
		return
	}
	var worker Worker
	if err := json.Unmarshal(body, &worker); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing registration: %w", err))
		return
	}
	ttl, _, err := r.Register(worker)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	alive, epoch := r.Alive()
	writeJSON(w, http.StatusOK, RegisterResponse{
		TTLMillis: ttl.Milliseconds(),
		Epoch:     epoch,
		Workers:   alive,
	})
}

func (r *Registry) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	alive, epoch := r.Alive()
	writeJSON(w, http.StatusOK, RegisterResponse{
		TTLMillis: r.ttl.Milliseconds(),
		Epoch:     epoch,
		Workers:   alive,
	})
}

func (r *Registry) handleDeregister(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if !r.Deregister(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such worker %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deregistered": id})
}

// writeJSON and writeError mirror internal/server's uniform JSON error
// contract so cluster endpoints answer exactly like job endpoints.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}{err.Error(), status})
}

// errStatus extracts the error message from a non-2xx registry response.
func errStatus(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Errorf("registry: %s (HTTP %d)", body.Error, resp.StatusCode)
	}
	return errors.New("registry: HTTP " + resp.Status)
}
