package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for lease-expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func w(id, url string, cap int) Worker { return Worker{ID: id, URL: url, Capacity: cap} }

func TestRegisterHeartbeatEpochs(t *testing.T) {
	clk := newFakeClock()
	r := New(Options{LeaseTTL: 10 * time.Second, Clock: clk.Now})

	ttl, epoch, err := r.Register(w("w1", "http://localhost:7181", 4))
	if err != nil || ttl != 10*time.Second || epoch != 1 {
		t.Fatalf("first register: ttl=%v epoch=%d err=%v", ttl, epoch, err)
	}
	// A steady-state heartbeat renews the lease without bumping the epoch.
	clk.Advance(3 * time.Second)
	_, epoch, err = r.Register(w("w1", "http://localhost:7181", 4))
	if err != nil || epoch != 1 {
		t.Fatalf("heartbeat bumped epoch: epoch=%d err=%v", epoch, err)
	}
	alive, _ := r.Alive()
	if len(alive) != 1 || !alive[0].ExpiresAt.Equal(clk.Now().Add(10*time.Second)) {
		t.Fatalf("lease not renewed: %+v", alive)
	}
	// A new member bumps it.
	_, epoch, _ = r.Register(w("w2", "http://localhost:7182", 2))
	if epoch != 2 {
		t.Fatalf("new member epoch = %d, want 2", epoch)
	}
	// Same ID from a new address (restart elsewhere) bumps it.
	_, epoch, _ = r.Register(w("w1", "http://localhost:9999", 4))
	if epoch != 3 {
		t.Fatalf("address change epoch = %d, want 3", epoch)
	}
	if alive, _ := r.Alive(); len(alive) != 2 || alive[0].URL != "http://localhost:9999" {
		t.Fatalf("alive after address change: %+v", alive)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New(Options{})
	for _, bad := range []Worker{
		{ID: "", URL: "http://x"},
		{ID: "has space", URL: "http://x"},
		{ID: "ok", URL: ""},
		{ID: "ok", URL: "ftp://x"},
		{ID: "ok", URL: "http://"},
	} {
		if _, _, err := r.Register(bad); err == nil {
			t.Fatalf("registration %+v accepted, want error", bad)
		}
	}
	// Capacity is defaulted, not rejected.
	if _, _, err := r.Register(w("ok", "http://localhost:1", 0)); err != nil {
		t.Fatal(err)
	}
	alive, _ := r.Alive()
	if alive[0].Capacity != 1 {
		t.Fatalf("capacity not defaulted: %+v", alive[0])
	}
}

func TestLeaseExpirySweep(t *testing.T) {
	clk := newFakeClock()
	r := New(Options{LeaseTTL: 5 * time.Second, Clock: clk.Now})
	r.Register(w("w1", "http://localhost:7181", 1))
	r.Register(w("w2", "http://localhost:7182", 1))
	epochBefore := r.Epoch()

	// w2 keeps heartbeating, w1 goes silent.
	clk.Advance(3 * time.Second)
	r.Register(w("w2", "http://localhost:7182", 1))
	clk.Advance(3 * time.Second) // w1's lease (5s) is now 6s stale

	expired := r.Sweep()
	if len(expired) != 1 || expired[0].ID != "w1" {
		t.Fatalf("expired = %+v, want [w1]", expired)
	}
	if r.Epoch() != epochBefore+1 {
		t.Fatalf("epoch after expiry = %d, want %d", r.Epoch(), epochBefore+1)
	}
	alive, _ := r.Alive()
	if len(alive) != 1 || alive[0].ID != "w2" {
		t.Fatalf("alive after expiry: %+v", alive)
	}
	// Sweeping again finds nothing and keeps the epoch stable.
	if again := r.Sweep(); len(again) != 0 || r.Epoch() != epochBefore+1 {
		t.Fatalf("second sweep: %+v epoch=%d", again, r.Epoch())
	}
	// The expired worker can rejoin (restart with the same identity).
	if _, _, err := r.Register(w("w1", "http://localhost:7181", 1)); err != nil {
		t.Fatal(err)
	}
}

func TestDeregister(t *testing.T) {
	r := New(Options{})
	r.Register(w("w1", "http://localhost:7181", 1))
	if !r.Deregister("w1") {
		t.Fatal("deregister reported unknown worker")
	}
	if r.Deregister("w1") {
		t.Fatal("double deregister reported success")
	}
	if alive, _ := r.Alive(); len(alive) != 0 {
		t.Fatalf("alive after deregister: %+v", alive)
	}
}

// TestHTTPRegisterRoundTrip drives the mounted handler over real HTTP:
// register answers the lease TTL, the epoch and the full membership, and
// DELETE removes the record.
func TestHTTPRegisterRoundTrip(t *testing.T) {
	r := New(Options{LeaseTTL: 7 * time.Second})
	mux := http.NewServeMux()
	r.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	body, _ := json.Marshal(w("w1", "http://localhost:7181", 3))
	resp, err := http.Post(ts.URL+"/v1/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rr.TTLMillis != 7000 || rr.Epoch != 1 || len(rr.Workers) != 1 || rr.Workers[0].ID != "w1" {
		t.Fatalf("register response: %+v", rr)
	}

	// Membership query sees the same state.
	resp, err = http.Get(ts.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	var listed RegisterResponse
	json.NewDecoder(resp.Body).Decode(&listed)
	resp.Body.Close()
	if len(listed.Workers) != 1 || listed.Workers[0].Capacity != 3 {
		t.Fatalf("workers response: %+v", listed)
	}

	// Invalid registrations answer the JSON error contract with a 400.
	resp, err = http.Post(ts.URL+"/v1/cluster/register", "application/json", bytes.NewReader([]byte(`{"id":"bad id"}`)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid registration: HTTP %d", resp.StatusCode)
	}
	var errBody struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&errBody)
	resp.Body.Close()
	if errBody.Status != 400 || errBody.Error == "" {
		t.Fatalf("error body: %+v", errBody)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cluster/workers/w1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: HTTP %d", resp.StatusCode)
	}
	if alive, _ := r.Alive(); len(alive) != 0 {
		t.Fatalf("alive after HTTP deregister: %+v", alive)
	}
}

// TestClientHeartbeatLoop runs the worker-side lease client against a
// real registry server: it must register, heartbeat repeatedly within
// the TTL, surface membership to OnMembers, and deregister on shutdown.
func TestClientHeartbeatLoop(t *testing.T) {
	r := New(Options{LeaseTTL: 300 * time.Millisecond})
	mux := http.NewServeMux()
	r.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var beats atomic.Int64
	var lastMembers atomic.Value
	c, err := NewClient(ts.URL, w("w1", "http://localhost:7181", 2), ClientOptions{
		OnHeartbeat: func() { beats.Add(1) },
		OnMembers:   func(ws []Worker, _ uint64) { lastMembers.Store(len(ws)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { c.Run(ctx); close(done) }()

	// Over one second a 100ms heartbeat cadence (TTL/3) must land several
	// beats and the worker must stay continuously registered.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		if alive, _ := r.Alive(); len(alive) != 1 {
			if beats.Load() > 0 {
				t.Fatalf("worker fell off the board mid-run (beats=%d)", beats.Load())
			}
		}
	}
	if beats.Load() < 3 {
		t.Fatalf("only %d heartbeats in 1s at TTL 300ms", beats.Load())
	}
	if got, _ := lastMembers.Load().(int); got != 1 {
		t.Fatalf("OnMembers saw %d members, want 1", got)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("client did not stop")
	}
	if alive, _ := r.Alive(); len(alive) != 0 {
		t.Fatalf("worker still on the board after shutdown deregister: %+v", alive)
	}
}

// TestClientRetriesThroughOutage: a dead registry makes the client retry
// (surfacing errors), and a later revival re-registers without restart.
func TestClientRetriesThroughOutage(t *testing.T) {
	r := New(Options{LeaseTTL: 200 * time.Millisecond})
	mux := http.NewServeMux()
	r.Mount(mux)
	var down atomic.Bool
	down.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if down.Load() {
			http.Error(w, "registry down", http.StatusBadGateway)
			return
		}
		mux.ServeHTTP(w, req)
	}))
	defer ts.Close()

	var errs atomic.Int64
	c, err := NewClient(ts.URL, w("w1", "http://localhost:7181", 1), ClientOptions{
		RetryBackoff: 20 * time.Millisecond,
		OnError:      func(error) { errs.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { c.Run(ctx); close(done) }()

	waitFor(t, time.Second, func() bool { return errs.Load() >= 2 })
	down.Store(false)
	waitFor(t, time.Second, func() bool {
		alive, _ := r.Alive()
		return len(alive) == 1
	})
	cancel()
	<-done
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("", w("w1", "http://x", 1), ClientOptions{}); err == nil {
		t.Fatal("empty registry URL accepted")
	}
	if _, err := NewClient("localhost:7171", w("w1", "http://x", 1), ClientOptions{}); err == nil {
		t.Fatal("schemeless registry URL accepted")
	}
	if _, err := NewClient("http://localhost:7171", w("bad id", "http://x", 1), ClientOptions{}); err == nil {
		t.Fatal("invalid worker ID accepted")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
