// Worker-side lease client: registers this worker with the bulletin
// board, heartbeats at a third of the granted lease TTL, and keeps
// retrying through registry outages — a worker must keep serving (and
// keep trying to rejoin) even when the gateway is down, because the
// registry holds no state the worker cannot re-create by re-registering.

package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// ClientOptions configure a lease client.
type ClientOptions struct {
	// HTTPClient overrides the default client (2s timeout — heartbeats
	// must fail fast so a wedged registry never blocks worker shutdown).
	HTTPClient *http.Client
	// Interval overrides the heartbeat cadence (default: lease TTL / 3
	// as granted by the registry, re-read on every heartbeat).
	Interval time.Duration
	// RetryBackoff is the delay after a failed registration attempt
	// (default 1s).
	RetryBackoff time.Duration
	// OnMembers observes every successful response's membership list and
	// epoch. The worker wires this to its local ring rebuild (the
	// ownership check in internal/server).
	OnMembers func(workers []Worker, epoch uint64)
	// OnError observes failed registration/heartbeat attempts.
	OnError func(error)
	// OnHeartbeat observes successful registrations/heartbeats.
	OnHeartbeat func()
}

// Client keeps one worker registered with a remote bulletin board.
type Client struct {
	base string
	self Worker
	opts ClientOptions
	hc   *http.Client
}

// NewClient builds a lease client for the registry at base (the gateway
// base URL, e.g. "http://gw:7171"). self must carry ID, URL and Capacity.
func NewClient(base string, self Worker, opts ClientOptions) (*Client, error) {
	base = strings.TrimRight(base, "/")
	if base == "" {
		return nil, fmt.Errorf("registry client: empty registry URL")
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("registry client: registry URL %q must be http(s)", base)
	}
	if !validWorkerID.MatchString(self.ID) {
		return nil, fmt.Errorf("registry client: invalid worker id %q", self.ID)
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = time.Second
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Second}
	}
	return &Client{base: base, self: self, opts: opts, hc: hc}, nil
}

// register posts one registration/heartbeat and returns the granted TTL.
func (c *Client) register(ctx context.Context) (time.Duration, error) {
	payload, err := json.Marshal(c.self)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/cluster/register", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, errStatus(resp)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return 0, fmt.Errorf("registry client: decoding response: %w", err)
	}
	if c.opts.OnHeartbeat != nil {
		c.opts.OnHeartbeat()
	}
	if c.opts.OnMembers != nil {
		c.opts.OnMembers(rr.Workers, rr.Epoch)
	}
	return time.Duration(rr.TTLMillis) * time.Millisecond, nil
}

// Deregister removes this worker from the board (graceful shutdown).
// Best effort: the lease expires on its own if this never arrives.
func (c *Client) Deregister(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/v1/cluster/workers/"+c.self.ID, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("registry client: deregister: HTTP %s", resp.Status)
	}
	return nil
}

// Run keeps the worker registered until ctx is canceled, then
// best-effort deregisters. Registration failures retry on RetryBackoff
// forever — registry unavailability must degrade cluster routing, never
// worker serving.
func (c *Client) Run(ctx context.Context) {
	registered := false
	goodbye := func() {
		if !registered {
			return // never made it onto the board; nothing to remove
		}
		// ctx is dead; give the goodbye its own short deadline.
		dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = c.Deregister(dctx)
		cancel()
	}
	for {
		ttl, err := c.register(ctx)
		var wait time.Duration
		if err != nil {
			if ctx.Err() != nil {
				// Canceled mid-request — but an earlier heartbeat may have
				// registered us, and that record must not linger for a full
				// lease after a graceful shutdown.
				goodbye()
				return
			}
			if c.opts.OnError != nil {
				c.opts.OnError(err)
			}
			wait = c.opts.RetryBackoff
		} else {
			registered = true
			wait = c.opts.Interval
			if wait <= 0 {
				wait = ttl / 3
			}
			if wait <= 0 {
				wait = time.Second
			}
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			goodbye()
			return
		case <-timer.C:
		}
	}
}
