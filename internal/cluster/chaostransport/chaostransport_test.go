package chaostransport

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, client *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		t.Fatalf("reading body: %v", rerr)
	}
	return resp, string(body), nil
}

func TestPartitionRefusesMatchingHost(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "other")
	}))
	defer other.Close()

	tr := New(nil)
	host := strings.TrimPrefix(srv.URL, "http://")
	tr.Set(Rule{Match: host, Mode: ModePartition})
	client := &http.Client{Transport: tr}

	if _, _, err := get(t, client, srv.URL); err == nil {
		t.Fatal("partitioned host answered")
	} else if !strings.Contains(err.Error(), "partition") {
		t.Fatalf("error does not name the partition: %v", err)
	}
	if _, body, err := get(t, client, other.URL); err != nil || body != "other" {
		t.Fatalf("non-matching host affected: body=%q err=%v", body, err)
	}
	if n := tr.Injected(host, ModePartition); n != 1 {
		t.Fatalf("Injected = %d, want 1", n)
	}
}

func TestAfterLetsRequestsThroughFirst(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	tr := New(nil)
	host := strings.TrimPrefix(srv.URL, "http://")
	tr.Set(Rule{Match: host, Mode: ModePartition, After: 2})
	client := &http.Client{Transport: tr}

	for i := 0; i < 2; i++ {
		if _, _, err := get(t, client, srv.URL); err != nil {
			t.Fatalf("request %d should pass: %v", i+1, err)
		}
	}
	if _, _, err := get(t, client, srv.URL); err == nil {
		t.Fatal("third request should hit the partition")
	}
	if n := tr.Injected(host, ModePartition); n != 1 {
		t.Fatalf("Injected = %d, want 1", n)
	}
}

func TestLatencySleepsBeforeForwarding(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	tr := New(nil)
	var slept []time.Duration
	tr.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	host := strings.TrimPrefix(srv.URL, "http://")
	tr.Set(Rule{Match: host, Mode: ModeLatency, Delay: 250 * time.Millisecond})
	client := &http.Client{Transport: tr}

	if _, body, err := get(t, client, srv.URL); err != nil || body != "ok" {
		t.Fatalf("latency rule broke the request: body=%q err=%v", body, err)
	}
	if len(slept) != 1 || slept[0] != 250*time.Millisecond {
		t.Fatalf("slept %v, want one 250ms sleep", slept)
	}
}

func TestSlowDripsBodyInChunks(t *testing.T) {
	payload := strings.Repeat("x", 3*slowChunk)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()
	tr := New(nil)
	var sleeps int
	tr.SetSleep(func(time.Duration) { sleeps++ })
	host := strings.TrimPrefix(srv.URL, "http://")
	tr.Set(Rule{Match: host, Mode: ModeSlow, Delay: 50 * time.Millisecond})
	client := &http.Client{Transport: tr}

	_, body, err := get(t, client, srv.URL)
	if err != nil {
		t.Fatalf("slow rule broke the request: %v", err)
	}
	if body != payload {
		t.Fatalf("body corrupted: got %d bytes, want %d", len(body), len(payload))
	}
	if sleeps < 2 {
		t.Fatalf("body arrived in %d sleeps, want >= 2 (dripped)", sleeps)
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("partition=127.0.0.1:7183; latency=127.0.0.1:7182:300ms ;slow=:7184:50ms;partition=10.0.0.9:after2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Match: "127.0.0.1:7183", Mode: ModePartition},
		{Match: "127.0.0.1:7182", Mode: ModeLatency, Delay: 300 * time.Millisecond},
		{Match: ":7184", Mode: ModeSlow, Delay: 50 * time.Millisecond},
		{Match: "10.0.0.9", Mode: ModePartition, After: 2},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d: %+v", len(rules), len(want), rules)
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"nonsense",
		"teleport=127.0.0.1:7183",
		"latency=127.0.0.1:7182", // missing required delay
		"partition=",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted garbage", spec)
		}
	}
}

func TestWrapEmptySpecIsInert(t *testing.T) {
	inner := http.DefaultTransport
	rt, err := Wrap(inner, "")
	if err != nil {
		t.Fatal(err)
	}
	if rt != inner {
		t.Fatal("empty spec should return the inner transport unchanged")
	}
	if _, err := Wrap(inner, "latency=x"); err == nil {
		t.Fatal("bad spec should fail Wrap")
	}
}
