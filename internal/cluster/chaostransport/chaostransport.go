// Package chaostransport is internal/faultfs for the network: an
// http.RoundTripper seam that injects partitions, added latency, and
// slow-loris (dripping) responses into gateway↔worker and worker↔worker
// calls, deterministically.
//
// Like faultfs, rules are explicit and countable: a Rule names the hosts
// it applies to (substring match on host:port), the failure mode, and how
// many matching requests pass untouched before it starts firing. Tests
// set rules programmatically; multi-process chaos (the chaos-cluster CI
// job) sets them via the TEMPRIV_CHAOS environment variable, which both
// temprivgw and temprivd consult at boot:
//
//	TEMPRIV_CHAOS="partition=127.0.0.1:7183;latency=127.0.0.1:7182:300ms;slow=127.0.0.1:7184:50ms"
//
// A partitioned host refuses every connection (the dial never happens —
// the transport synthesizes the error, so the fault is exact and
// instantaneous). A latency rule sleeps before forwarding. A slow rule
// forwards the request but drips the response body chunk by chunk with a
// delay between reads, the way a thin pipe or a wedged peer would.
package chaostransport

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Mode is a failure mode a Rule injects.
type Mode string

const (
	// ModePartition fails every matching request with a connection error
	// before any bytes leave the process.
	ModePartition Mode = "partition"
	// ModeLatency sleeps Rule.Delay before forwarding the request.
	ModeLatency Mode = "latency"
	// ModeSlow forwards the request but drips the response body in
	// slowChunk-byte reads with Rule.Delay between them (slow-loris).
	ModeSlow Mode = "slow"
)

// slowChunk is how many bytes one read of a slow-loris body yields.
const slowChunk = 512

// Rule is one deterministic injection: requests whose URL host contains
// Match are subjected to Mode, starting with the After-th matching
// request (After=0 fires immediately; After=2 lets two through first).
type Rule struct {
	Match string
	Mode  Mode
	Delay time.Duration
	After int
}

func (r Rule) key() string { return string(r.Mode) + "=" + r.Match }

// Transport wraps an inner RoundTripper with rule-driven chaos. The zero
// value is not usable; call New.
type Transport struct {
	inner http.RoundTripper
	sleep func(time.Duration)

	mu       sync.Mutex
	rules    []Rule
	seen     map[string]int // rule key -> matching requests observed
	injected map[string]int // rule key -> faults actually fired
}

// New wraps inner (http.DefaultTransport when nil) with no rules set.
func New(inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner:    inner,
		sleep:    time.Sleep,
		seen:     make(map[string]int),
		injected: make(map[string]int),
	}
}

// SetSleep replaces the latency sleeper (tests observe delays without
// waiting them out). Not safe to call concurrently with RoundTrip.
func (t *Transport) SetSleep(f func(time.Duration)) { t.sleep = f }

// Set installs or replaces the rule for (Mode, Match).
func (t *Transport) Set(r Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.rules {
		if t.rules[i].key() == r.key() {
			t.rules[i] = r
			return
		}
	}
	t.rules = append(t.rules, r)
}

// Clear removes the rule for (mode, match); counters are retained.
func (t *Transport) Clear(match string, mode Mode) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := Rule{Match: match, Mode: mode}.key()
	out := t.rules[:0]
	for _, r := range t.rules {
		if r.key() != key {
			out = append(out, r)
		}
	}
	t.rules = out
}

// ClearAll removes every rule; counters are retained.
func (t *Transport) ClearAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = nil
}

// Injected reports how many faults the (mode, match) rule has fired —
// the observability half of the seam, mirroring faultfs.Injected.
func (t *Transport) Injected(match string, mode Mode) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected[Rule{Match: match, Mode: mode}.key()]
}

// match finds the first armed rule for the host and advances counters.
func (t *Transport) match(host string) (Rule, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.rules {
		if !strings.Contains(host, r.Match) {
			continue
		}
		key := r.key()
		t.seen[key]++
		if t.seen[key] <= r.After {
			continue
		}
		t.injected[key]++
		return r, true
	}
	return Rule{}, false
}

// RoundTrip applies the first armed matching rule, then (except for
// partitions) forwards to the inner transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	rule, ok := t.match(req.URL.Host)
	if !ok {
		return t.inner.RoundTrip(req)
	}
	switch rule.Mode {
	case ModePartition:
		return nil, fmt.Errorf("chaostransport: partition: %s is unreachable", req.URL.Host)
	case ModeLatency:
		t.sleep(rule.Delay)
		return t.inner.RoundTrip(req)
	case ModeSlow:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &slowBody{inner: resp.Body, delay: rule.Delay, sleep: t.sleep}
		return resp, nil
	default:
		return nil, fmt.Errorf("chaostransport: unknown mode %q", rule.Mode)
	}
}

// slowBody drips an upstream body slowChunk bytes per read with a sleep
// between reads.
type slowBody struct {
	inner   io.ReadCloser
	delay   time.Duration
	sleep   func(time.Duration)
	started bool
}

func (b *slowBody) Read(p []byte) (int, error) {
	if b.started {
		b.sleep(b.delay)
	}
	b.started = true
	if len(p) > slowChunk {
		p = p[:slowChunk]
	}
	return b.inner.Read(p)
}

func (b *slowBody) Close() error { return b.inner.Close() }

// Parse turns a TEMPRIV_CHAOS-style spec into rules. The grammar is
// semicolon-separated clauses, each "mode=match[:delay][:afterN]":
//
//	partition=127.0.0.1:7183
//	latency=127.0.0.1:7182:300ms
//	slow=127.0.0.1:7184:50ms
//	partition=127.0.0.1:7183:after2   (two requests pass, then partition)
//
// Matching is substring on the request's host:port, so a bare port
// (":7183") or a bare host ("10.0.0.3") both work. Latency and slow
// require a delay. Empty spec parses to no rules.
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		mode, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("chaostransport: clause %q: want mode=match[:delay][:afterN]", clause)
		}
		r := Rule{Mode: Mode(strings.TrimSpace(mode))}
		switch r.Mode {
		case ModePartition, ModeLatency, ModeSlow:
		default:
			return nil, fmt.Errorf("chaostransport: clause %q: unknown mode %q", clause, mode)
		}
		// The match may itself contain a colon (host:port), so options are
		// peeled off the right end only when they parse as an option.
		parts := strings.Split(rest, ":")
		for len(parts) > 1 {
			last := parts[len(parts)-1]
			if n, err := fmt.Sscanf(last, "after%d", &r.After); n == 1 && err == nil {
				parts = parts[:len(parts)-1]
				continue
			}
			if d, err := time.ParseDuration(last); err == nil {
				r.Delay = d
				parts = parts[:len(parts)-1]
				continue
			}
			break
		}
		r.Match = strings.Join(parts, ":")
		if r.Match == "" {
			return nil, fmt.Errorf("chaostransport: clause %q: empty match", clause)
		}
		if (r.Mode == ModeLatency || r.Mode == ModeSlow) && r.Delay <= 0 {
			return nil, fmt.Errorf("chaostransport: clause %q: %s requires a delay (e.g. %s=%s:100ms)", clause, r.Mode, r.Mode, r.Match)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// Wrap applies a parsed spec to inner: the unmodified inner transport
// when spec is empty, a rule-loaded Transport otherwise. This is the one
// call sites use at boot with os.Getenv("TEMPRIV_CHAOS").
func Wrap(inner http.RoundTripper, spec string) (http.RoundTripper, error) {
	rules, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	if len(rules) == 0 {
		return inner, nil
	}
	t := New(inner)
	for _, r := range rules {
		t.Set(r)
	}
	return t, nil
}
