// Package ring implements the consistent-hash ring that shards jobs
// across a temprivd cluster by their seed-inclusive scenario fingerprint
// (internal/scenario), so that repeated submissions of the same spec land
// on the same worker — and its result cache — even as membership churns.
//
// The ring is a classic virtual-node construction: every member
// contributes Vnodes points on a 64-bit circle, a key is owned by the
// first point clockwise from its own hash, and each point's position is
// the SHA-256 of a member/vnode label — a pure function of the member
// set, so two processes that agree on membership agree on every
// placement without exchanging any state beyond the member list (the
// bulletin-board model: internal/cluster/registry distributes the list,
// every node derives the ring locally).
//
// The construction gives the bounded-churn invariant the result cache
// depends on: when one member leaves, the only keys that move are the
// ones it owned (they shift to their ring successors); when one member
// joins, the only keys that move are the ones it now owns (in
// expectation 1/N of the population). Everything else keeps its owner,
// so membership churn invalidates at most ~1/N of the cluster's cache
// locality instead of reshuffling all of it. See TestRingBoundedChurn.
//
// A Ring is immutable after New: membership changes build a new Ring
// (cheap — a sort of members·vnodes points) and swap it in atomically,
// which keeps concurrent readers lock-free.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVnodes is the per-member virtual-node count used when New is
// given a non-positive vnodes argument. 128 points per member keeps the
// expected load imbalance within a few percent for small clusters while
// costing only a few KiB per member.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring over a set of member IDs.
// The zero value is an empty ring (Owner always reports false).
type Ring struct {
	points  []point
	members []string // sorted, deduplicated
	vnodes  int
}

type point struct {
	hash   uint64
	member string
}

// hash64 maps a label onto the ring circle. SHA-256 (truncated to the
// first 8 bytes, big-endian) is overkill for balance but is available
// everywhere, has no seed, and — critically — is stable across
// processes, architectures and Go versions, which the cross-process
// determinism contract requires.
func hash64(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// New builds a ring over members with the given number of virtual nodes
// per member (vnodes <= 0 selects DefaultVnodes). Member order and
// duplicates do not matter: the ring is a pure function of the member
// set. An empty member set yields an empty ring.
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if m == "" {
			continue
		}
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		points:  make([]point, 0, len(uniq)*vnodes),
		members: uniq,
		vnodes:  vnodes,
	}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			// The label couples member and vnode index unambiguously: a
			// member named "w1#2" cannot collide with vnode 2 of "w1"
			// because the member part is length-prefixed.
			label := strconv.Itoa(len(m)) + ":" + m + "#" + strconv.Itoa(i)
			r.points = append(r.points, point{hash: hash64(label), member: m})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit hash collision is vanishingly rare, but ties must
		// still break deterministically or two processes could disagree.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Members returns the ring's member IDs, sorted. The caller must not
// mutate the returned slice.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return r.members
}

// Len returns the number of distinct members.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// search returns the index of the first point at or clockwise from the
// key's hash (wrapping past the top of the circle).
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member that owns key. ok is false on an empty ring.
func (r *Ring) Owner(key string) (owner string, ok bool) {
	if r == nil || len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(key)].member, true
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner — the dispatch preference list: index 0 is the owner,
// index 1 is where the key moves if the owner leaves, and so on. n <= 0
// (or n > Len) returns every member.
func (r *Ring) Successors(key string, n int) []string {
	if r == nil || len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		out = append(out, m)
	}
	return out
}
