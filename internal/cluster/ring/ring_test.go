package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// keys returns a deterministic pseudo-fingerprint population.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("worker-%d", i)
	}
	return out
}

// TestRingDeterministicAcrossBuilds is the cross-process placement
// property: two rings built independently from the same member set — in
// different orders, with duplicates — agree on every key's owner and on
// the full successor order. Placement must be a pure function of the
// member set, because every gateway and every worker derives the ring
// locally from the registry's member list.
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := members(7)
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		// Duplicates and empty IDs must not perturb placement.
		shuffled = append(shuffled, base[rng.Intn(len(base))], "")
		a := New(base, 64)
		b := New(shuffled, 64)
		for _, k := range keys(500) {
			ao, aok := a.Owner(k)
			bo, bok := b.Owner(k)
			if !aok || !bok || ao != bo {
				t.Fatalf("trial %d: owner(%s) differs: %q vs %q", trial, k[:12], ao, bo)
			}
			as, bs := a.Successors(k, 0), b.Successors(k, 0)
			if len(as) != len(bs) {
				t.Fatalf("successor count differs: %v vs %v", as, bs)
			}
			for i := range as {
				if as[i] != bs[i] {
					t.Fatalf("successor order differs at %d: %v vs %v", i, as, bs)
				}
			}
		}
	}
}

// TestRingLeaveOnlyMovesDepartedKeys is the strict half of the
// bounded-churn invariant: removing one member moves exactly the keys
// that member owned — every other key keeps its owner.
func TestRingLeaveOnlyMovesDepartedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	population := keys(2000)
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(6) // 3..8 members
		ms := members(n)
		before := New(ms, 0)
		departed := ms[rng.Intn(n)]
		var survivors []string
		for _, m := range ms {
			if m != departed {
				survivors = append(survivors, m)
			}
		}
		after := New(survivors, 0)
		moved := 0
		for _, k := range population {
			ob, _ := before.Owner(k)
			oa, _ := after.Owner(k)
			if ob == oa {
				continue
			}
			moved++
			if ob != departed {
				t.Fatalf("trial %d: key %s moved %q -> %q but %q did not leave", trial, k[:12], ob, oa, departed)
			}
			// The key's new owner must be its pre-departure successor:
			// that is what lets the gateway hand a dead worker's jobs to
			// ring successors and find them again by pure recomputation.
			succ := before.Successors(k, 2)
			if len(succ) < 2 || succ[1] != oa {
				t.Fatalf("trial %d: key %s moved to %q, want pre-departure successor %q", trial, k[:12], oa, succ)
			}
		}
		if moved == 0 {
			t.Fatalf("trial %d: nothing moved when %q left (expected ~1/%d of %d keys)", trial, departed, n, len(population))
		}
	}
}

// TestRingBoundedChurn is the probabilistic half: one join moves roughly
// 1/N of a fixed key population, and everything that moves lands on the
// joiner. The bound is 2x the expectation — loose enough to be stable
// across hash functions, tight enough to catch a broken ring (a modulo
// shard moves ~(N-1)/N of the keys on a membership change).
func TestRingBoundedChurn(t *testing.T) {
	population := keys(4000)
	for _, n := range []int{3, 5, 8} {
		ms := members(n)
		before := New(ms, 0)
		joiner := "worker-joiner"
		after := New(append(append([]string(nil), ms...), joiner), 0)
		moved := 0
		for _, k := range population {
			ob, _ := before.Owner(k)
			oa, _ := after.Owner(k)
			if ob == oa {
				continue
			}
			moved++
			if oa != joiner {
				t.Fatalf("n=%d: key %s moved %q -> %q, but only moves onto the joiner are allowed", n, k[:12], ob, oa)
			}
		}
		expected := float64(len(population)) / float64(n+1)
		if got := float64(moved); got > 2*expected {
			t.Fatalf("n=%d: join moved %d keys, want <= 2x expectation %.0f", n, moved, expected)
		}
		if moved == 0 {
			t.Fatalf("n=%d: join moved nothing", n)
		}
	}
}

// TestRingBalance sanity-checks the virtual-node count: with the default
// vnodes every member owns a non-trivial share of a large population.
func TestRingBalance(t *testing.T) {
	ms := members(5)
	r := New(ms, 0)
	counts := map[string]int{}
	population := keys(5000)
	for _, k := range population {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("owner not found on a populated ring")
		}
		counts[o]++
	}
	for _, m := range ms {
		share := float64(counts[m]) / float64(len(population))
		if share < 0.05 {
			t.Fatalf("member %s owns %.1f%% of keys — ring is badly unbalanced: %v", m, 100*share, counts)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	var nilRing *Ring
	if _, ok := nilRing.Owner("abc"); ok {
		t.Fatal("nil ring reported an owner")
	}
	if nilRing.Len() != 0 || nilRing.Successors("abc", 3) != nil {
		t.Fatal("nil ring not empty")
	}
	empty := New(nil, 0)
	if _, ok := empty.Owner("abc"); ok {
		t.Fatal("empty ring reported an owner")
	}
	one := New([]string{"solo"}, 0)
	o, ok := one.Owner("abc")
	if !ok || o != "solo" {
		t.Fatalf("single-member ring: owner %q ok=%v", o, ok)
	}
	if s := one.Successors("abc", 5); len(s) != 1 || s[0] != "solo" {
		t.Fatalf("single-member successors: %v", s)
	}
	// Successors: index 0 is the owner, all entries distinct.
	r := New(members(4), 0)
	for _, k := range keys(50) {
		s := r.Successors(k, 0)
		o, _ := r.Owner(k)
		if len(s) != 4 || s[0] != o {
			t.Fatalf("successors %v, owner %q", s, o)
		}
		seen := map[string]bool{}
		for _, m := range s {
			if seen[m] {
				t.Fatalf("duplicate member in successors: %v", s)
			}
			seen[m] = true
		}
	}
}
