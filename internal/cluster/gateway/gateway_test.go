package gateway

// In-process cluster e2e: real temprivd API servers behind a real
// gateway, with the registry clock and the gateway's retry sleep both
// injectable so lease expiry and Retry-After handling run deterministic.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tempriv/internal/cluster/peering"
	"tempriv/internal/cluster/registry"
	"tempriv/internal/cluster/ring"
	"tempriv/internal/jobs"
	"tempriv/internal/obs"
	"tempriv/internal/resultstream"
	"tempriv/internal/scenario"
	"tempriv/internal/server"
	"tempriv/internal/telemetry"
)

func specDoc(seed int) string {
	return fmt.Sprintf(`{"version":1,"experiment":{"id":"fig2a","packets":20,"interarrivals":[4],"replicates":4,"seed":%d}}`, seed)
}

func fingerprintOf(t *testing.T, doc string) string {
	t.Helper()
	spec, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// worker is one in-process temprivd API instance.
type worker struct {
	id    string
	ts    *httptest.Server
	q     *jobs.Queue
	reg   *telemetry.Registry
	peers *peering.Store
}

func (w *worker) close(t *testing.T) {
	t.Helper()
	w.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = w.q.Drain(ctx)
}

// newWorker builds a real worker. chunksDir, when non-empty, is the
// shared replicate-chunk directory (the crash-handoff resume substrate).
func newWorker(t *testing.T, id, chunksDir string) *worker {
	t.Helper()
	reg := telemetry.NewRegistry()
	var chunks *resultstream.Store
	if chunksDir != "" {
		var err error
		chunks, err = resultstream.Open(chunksDir, resultstream.Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	runner := server.NewRunnerConfig(server.RunnerConfig{
		Registry: reg, ReplicateWorkers: 1, Chunks: chunks,
	})
	q := jobs.New(runner, jobs.Options{Workers: 2})
	peers := peering.NewStore(peering.StoreOptions{})
	api := server.NewConfig(server.Config{
		Queue: q, Chunks: chunks, Registry: reg,
		Tracer: obs.New(obs.Options{}), ClusterID: id, Peers: peers,
	})
	w := &worker{id: id, ts: httptest.NewServer(api), q: q, reg: reg, peers: peers}
	t.Cleanup(func() { w.close(t) })
	return w
}

// cluster bundles a gateway with its registry and instrumentation.
type cluster struct {
	gw     *Gateway
	ts     *httptest.Server
	reg    *registry.Registry
	tel    *telemetry.Registry
	clk    *fakeClock
	mu     sync.Mutex
	sleeps []time.Duration
}

func newCluster(t *testing.T, ttl time.Duration) *cluster {
	return newClusterWith(t, ttl, nil)
}

// newClusterWith builds the gateway with an optional Config mutation so
// resilience tests can pin hedge delays, cooldowns, and shed factors.
func newClusterWith(t *testing.T, ttl time.Duration, mut func(*Config)) *cluster {
	t.Helper()
	c := &cluster{clk: newFakeClock(), tel: telemetry.NewRegistry()}
	c.reg = registry.New(registry.Options{LeaseTTL: ttl, Clock: c.clk.Now})
	cfg := Config{
		Registry:  c.reg,
		Telemetry: c.tel,
		Tracer:    obs.New(obs.Options{}),
		Clock:     c.clk.Now,
		Sleep: func(d time.Duration) {
			c.mu.Lock()
			c.sleeps = append(c.sleeps, d)
			c.mu.Unlock()
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	c.gw = New(cfg)
	c.ts = httptest.NewServer(c.gw)
	t.Cleanup(c.ts.Close)
	return c
}

func (c *cluster) register(t *testing.T, id, url string) {
	t.Helper()
	if _, _, err := c.reg.Register(registry.Worker{ID: id, URL: url, Capacity: 2}); err != nil {
		t.Fatal(err)
	}
}

func (c *cluster) recordedSleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// gwSubmit posts a spec through the gateway and decodes the snapshot.
func gwSubmit(t *testing.T, c *cluster, doc string, hdr map[string]string) (map[string]any, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, c.ts.URL+"/v1/jobs", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("gateway submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap, resp
}

// gwWait polls the gateway until the job reaches a terminal state.
func gwWait(t *testing.T, c *cluster, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap map[string]any
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch stringField(snap, "state") {
		case "done":
			return snap
		case "failed", "canceled":
			t.Fatalf("job %s ended %s: %v", id, snap["state"], snap["error"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestClusterFanOut: jobs land on their ring owner, results served
// through the gateway are byte-identical to a standalone worker's, and
// the merged listing (with ?state= pushdown) covers every job.
func TestClusterFanOut(t *testing.T) {
	c := newCluster(t, time.Minute)
	workers := map[string]*worker{}
	for _, id := range []string{"w1", "w2", "w3"} {
		w := newWorker(t, id, "")
		workers[id] = w
		c.register(t, id, w.ts.URL)
	}
	rg := ring.New([]string{"w1", "w2", "w3"}, 0)

	standalone := newWorker(t, "solo", "")

	ids := make([]string, 0, 4)
	for seed := 1; seed <= 4; seed++ {
		doc := specDoc(seed)
		fp := fingerprintOf(t, doc)
		snap, _ := gwSubmit(t, c, doc, nil)
		id := stringField(snap, "id")
		ids = append(ids, id)
		owner, _ := rg.Owner(fp)
		if got := stringField(snap, "worker"); got != owner {
			t.Fatalf("seed %d placed on %s, ring owner is %s", seed, got, owner)
		}
		gwWait(t, c, id)

		// Byte-identical to a standalone run of the same spec.
		soloResp, err := http.Post(standalone.ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		var soloSnap map[string]any
		if err := json.NewDecoder(soloResp.Body).Decode(&soloSnap); err != nil {
			t.Fatal(err)
		}
		soloResp.Body.Close()
		waitWorkerDone(t, standalone, stringField(soloSnap, "id"))
		_, soloBody := getBody(t, standalone.ts.URL+"/v1/jobs/"+stringField(soloSnap, "id")+"/result")
		status, gwBody := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
		if status != http.StatusOK {
			t.Fatalf("gateway result: HTTP %d: %s", status, gwBody)
		}
		if string(gwBody) != string(soloBody) {
			t.Fatalf("seed %d: gateway result differs from standalone\ngateway: %s\nsolo: %s", seed, gwBody, soloBody)
		}
	}

	// Merged listing covers all jobs; the terminal pushdown matches.
	for _, q := range []string{"", "?state=done", "?state=done,failed,canceled"} {
		status, body := getBody(t, c.ts.URL+"/v1/jobs"+q)
		if status != http.StatusOK {
			t.Fatalf("list%s: HTTP %d", q, status)
		}
		var list struct {
			Jobs []map[string]any `json:"jobs"`
		}
		if err := json.Unmarshal(body, &list); err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) != len(ids) {
			t.Fatalf("list%s returned %d jobs, want %d", q, len(list.Jobs), len(ids))
		}
	}
	if status, _ := getBody(t, c.ts.URL+"/v1/jobs?state=nope"); status != http.StatusBadRequest {
		t.Fatalf("bad state filter: HTTP %d, want 400", status)
	}

	// /v1/cluster reflects the fleet.
	status, body := getBody(t, c.ts.URL+"/v1/cluster")
	var view clusterView
	if err := json.Unmarshal(body, &view); err != nil || status != http.StatusOK {
		t.Fatalf("cluster view: HTTP %d err %v", status, err)
	}
	if len(view.Workers) != 3 || view.Jobs != 4 {
		t.Fatalf("cluster view = %+v", view)
	}
}

func waitWorkerDone(t *testing.T, w *worker, id string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if snap, ok := w.q.Get(id); ok && snap.State == jobs.StateDone {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker job %s never finished", id)
}

// TestClusterTracePropagation: the gateway forwards the client's
// X-Trace-Id on the worker POST and the worker adopts it instead of
// minting its own — one trace ID names the job end to end.
func TestClusterTracePropagation(t *testing.T) {
	c := newCluster(t, time.Minute)
	w := newWorker(t, "w1", "")
	c.register(t, "w1", w.ts.URL)

	const traceID = "e2e-trace-000001"
	snap, resp := gwSubmit(t, c, specDoc(1), map[string]string{"X-Trace-Id": traceID})
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("gateway echoed X-Trace-Id %q, want %q", got, traceID)
	}
	gwWait(t, c, stringField(snap, "id"))

	// The worker's flight recorder has the job under the same trace ID.
	workerJob := stringField(snap, "worker_job")
	status, body := getBody(t, w.ts.URL+"/v1/traces/"+workerJob)
	if status != http.StatusOK {
		t.Fatalf("worker trace: HTTP %d: %s", status, body)
	}
	var tree struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatal(err)
	}
	if tree.TraceID != traceID {
		t.Fatalf("worker adopted trace %q, want %q (reminted instead of adopting)", tree.TraceID, traceID)
	}
}

// TestGatewayHonorsRetryAfter: a worker shedding load with 503 +
// Retry-After gets exactly the wait it asked for before the retry, and
// the job still lands once the worker recovers.
func TestGatewayHonorsRetryAfter(t *testing.T) {
	c := newCluster(t, time.Minute)

	var mu sync.Mutex
	rejections := 2
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			mu.Lock()
			shed := rejections > 0
			if shed {
				rejections--
			}
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			if shed {
				w.Header().Set("Retry-After", "3")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":"draining","status":503}`)
				return
			}
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"wjob-1","state":"queued","fingerprint":"abc"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"jobs":[]}`)
	}))
	defer fake.Close()
	c.register(t, "w1", fake.URL)

	snap, _ := gwSubmit(t, c, specDoc(1), nil)
	if stringField(snap, "worker_job") != "wjob-1" {
		t.Fatalf("snapshot = %+v", snap)
	}
	sleeps := c.recordedSleeps()
	if len(sleeps) != 2 || sleeps[0] != 3*time.Second || sleeps[1] != 3*time.Second {
		t.Fatalf("gateway slept %v, want [3s 3s] (Retry-After not honored)", sleeps)
	}
	if got := c.tel.Counter("tempriv_cluster_retry_after_waits_total").Value(); got != 2 {
		t.Fatalf("retry_after_waits_total = %d, want 2", got)
	}
}

// TestGatewayRetryAfterCapped: an abusive Retry-After is clamped to
// RetryAfterMax rather than stalling dispatch for minutes.
func TestGatewayRetryAfterCapped(t *testing.T) {
	c := newCluster(t, time.Minute)
	rejected := false
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if !rejected {
			rejected = true
			w.Header().Set("Retry-After", "600")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"full","status":429}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"wjob-1","state":"queued"}`)
	}))
	defer fake.Close()
	c.register(t, "w1", fake.URL)

	gwSubmit(t, c, specDoc(1), nil)
	sleeps := c.recordedSleeps()
	if len(sleeps) != 1 || sleeps[0] != 5*time.Second {
		t.Fatalf("gateway slept %v, want [5s] (RetryAfterMax cap)", sleeps)
	}
}

// TestClusterCrashHandoff is the tentpole e2e: a worker dies mid-job,
// the reconcile loop re-dispatches to the ring successor, and — because
// the fleet shares the chunk directory — the successor resumes from the
// dead worker's persisted replicates instead of recomputing them.
func TestClusterCrashHandoff(t *testing.T) {
	chunksDir := t.TempDir()

	// Pick a spec the ring {wa, wb} places on wa (the worker that dies).
	var doc, fp string
	rg := ring.New([]string{"wa", "wb"}, 0)
	for seed := 1; ; seed++ {
		doc = specDoc(seed)
		fp = fingerprintOf(t, doc)
		if owner, _ := rg.Owner(fp); owner == "wa" {
			break
		}
		if seed > 100 {
			t.Fatal("no seed maps to wa")
		}
	}

	// Seed the shared chunk store with the replicates "wa" would have
	// persisted before dying: run the same spec on a throwaway worker
	// that shares the chunk directory (no result cache, so the chunks
	// survive the run).
	seeder := newWorker(t, "seeder", chunksDir)
	resp, err := http.Post(seeder.ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var seedSnap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&seedSnap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitWorkerDone(t, seeder, stringField(seedSnap, "id"))
	_, wantResult := getBody(t, seeder.ts.URL+"/v1/jobs/"+stringField(seedSnap, "id")+"/result")

	// "wa" accepts the job and then wedges: it answers like a worker
	// whose process froze — submissions park forever in "running".
	wa := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			if r.Header.Get("X-Trace-Id") == "" {
				t.Error("worker POST missing X-Trace-Id")
			}
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":"wa-job-1","state":"queued","fingerprint":%q}`, fp)
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs":
			fmt.Fprint(w, `{"jobs":[]}`)
		default:
			fmt.Fprintf(w, `{"id":"wa-job-1","state":"running","fingerprint":%q}`, fp)
		}
	}))
	defer wa.Close()

	wb := newWorker(t, "wb", chunksDir)

	ttl := 10 * time.Second
	c := newCluster(t, ttl)
	c.register(t, "wa", wa.URL)
	c.register(t, "wb", wb.ts.URL)

	const traceID = "handoff-trace-0001"
	snap, _ := gwSubmit(t, c, doc, map[string]string{"X-Trace-Id": traceID})
	id := stringField(snap, "id")
	if got := stringField(snap, "worker"); got != "wa" {
		t.Fatalf("job placed on %s, want wa", got)
	}

	// No handoff while wa's lease is alive.
	if n := c.gw.ReconcileOnce(context.Background()); n != 0 {
		t.Fatalf("reconcile handed off %d jobs with all leases live", n)
	}

	// wa goes silent; wb keeps heartbeating. Past the TTL, one reconcile
	// pass must move the job.
	c.clk.Advance(ttl + time.Second)
	c.register(t, "wb", wb.ts.URL) // heartbeat
	if n := c.gw.ReconcileOnce(context.Background()); n != 1 {
		t.Fatalf("reconcile handed off %d jobs, want 1", n)
	}
	if got := c.tel.Counter("tempriv_cluster_handoffs_total").Value(); got != 1 {
		t.Fatalf("handoffs_total = %d, want 1", got)
	}

	final := gwWait(t, c, id)
	if got := stringField(final, "worker"); got != "wb" {
		t.Fatalf("job finished on %s, want wb", got)
	}
	if h, _ := final["handoffs"].(float64); h != 1 {
		t.Fatalf("snapshot handoffs = %v, want 1", final["handoffs"])
	}
	if got := stringField(final, "origin"); got != string(jobs.OriginHandoff) {
		t.Fatalf("snapshot origin = %q, want handoff", got)
	}

	// The successor resumed from the shared chunks: every replicate was
	// served from disk, none recomputed.
	if got := wb.reg.Counter("tempriv_replicates_skipped_on_resume_total").Value(); got == 0 {
		t.Fatal("successor recomputed all replicates; expected chunk resume")
	}

	// And the result is byte-identical to an uninterrupted run.
	status, gotResult := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
	if status != http.StatusOK {
		t.Fatalf("result after handoff: HTTP %d: %s", status, gotResult)
	}
	if string(gotResult) != string(wantResult) {
		t.Fatalf("handoff result differs from uninterrupted run\ngot: %s\nwant: %s", gotResult, wantResult)
	}

	// The event stream narrates the handoff: a synthetic seq -1 line
	// precedes the successor's own history.
	status, events := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/events")
	if status != http.StatusOK {
		t.Fatalf("events: HTTP %d", status)
	}
	firstLine := strings.SplitN(string(events), "\n", 2)[0]
	var ev jobs.Event
	if err := json.Unmarshal([]byte(firstLine), &ev); err != nil {
		t.Fatalf("first event line %q: %v", firstLine, err)
	}
	if ev.Seq != -1 || ev.Stage != "handoff" || !strings.Contains(ev.Message, "wa") || !strings.Contains(ev.Message, "wb") {
		t.Fatalf("first event = %+v, want synthetic handoff note", ev)
	}
}

// TestClusterDeadWorkerResultRevived: a job that FINISHED on a worker
// that later dies is re-dispatched too — its result bytes lived only in
// the dead worker's cache, and determinism plus the shared chunk
// directory make the successor's revival cheap and byte-identical.
func TestClusterDeadWorkerResultRevived(t *testing.T) {
	chunksDir := t.TempDir()
	rg := ring.New([]string{"wa", "wb"}, 0)
	var doc string
	for seed := 1; ; seed++ {
		doc = specDoc(seed)
		if owner, _ := rg.Owner(fingerprintOf(t, doc)); owner == "wa" {
			break
		}
		if seed > 100 {
			t.Fatal("no seed maps to wa")
		}
	}

	wa := newWorker(t, "wa", chunksDir)
	wb := newWorker(t, "wb", chunksDir)
	ttl := 10 * time.Second
	c := newCluster(t, ttl)
	c.register(t, "wa", wa.ts.URL)
	c.register(t, "wb", wb.ts.URL)

	snap, _ := gwSubmit(t, c, doc, nil)
	id := stringField(snap, "id")
	if got := stringField(snap, "worker"); got != "wa" {
		t.Fatalf("job placed on %s, want wa", got)
	}
	gwWait(t, c, id)
	status, before := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
	if status != http.StatusOK {
		t.Fatalf("result before crash: HTTP %d", status)
	}

	// wa dies after finishing the job; the reconcile pass revives it.
	wa.ts.Close()
	c.clk.Advance(ttl + time.Second)
	c.register(t, "wb", wb.ts.URL) // heartbeat
	if n := c.gw.ReconcileOnce(context.Background()); n != 1 {
		t.Fatalf("reconcile revived %d jobs, want 1", n)
	}
	final := gwWait(t, c, id)
	if got := stringField(final, "worker"); got != "wb" {
		t.Fatalf("revived on %s, want wb", got)
	}
	status, after := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
	if status != http.StatusOK {
		t.Fatalf("result after revival: HTTP %d", status)
	}
	if string(before) != string(after) {
		t.Fatalf("revived result differs\nbefore: %s\nafter: %s", before, after)
	}
	if got := wb.reg.Counter("tempriv_replicates_skipped_on_resume_total").Value(); got == 0 {
		t.Fatal("revival recomputed all replicates; expected chunk resume")
	}
}

// TestGatewayNoWorkers: submissions are refused cleanly (503 +
// Retry-After) when the fleet is empty, and /readyz agrees.
func TestGatewayNoWorkers(t *testing.T) {
	c := newCluster(t, time.Minute)
	resp, err := http.Post(c.ts.URL+"/v1/jobs", "application/json", strings.NewReader(specDoc(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with no workers: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if status, _ := getBody(t, c.ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with no workers: HTTP %d, want 503", status)
	}
}
