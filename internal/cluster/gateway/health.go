package gateway

import (
	"sort"
	"sync"
	"time"
)

// Per-worker health scoring: every worker request the gateway makes
// feeds a rolling window of (latency, failed) samples. A worker whose
// window crosses the error-rate threshold is ejected — dispatch and
// hedging route around it — and re-admitted through a half-open probe
// after a cooldown, exactly like the result cache's circuit breaker but
// keyed per worker. Backpressure (Retry-After on 429/503) is tracked
// separately: a shedding worker is alive and healthy, it just asked for
// breathing room, so it must not count toward ejection.
//
// This is what makes the gateway partition-tolerant in the asymmetric
// case: a worker the gateway cannot reach may still heartbeat happily
// (worker→gateway traffic takes a different path), so its lease never
// expires and the reconcile loop alone would wait forever. Ejection
// fires on the gateway's own observations instead.

type healthState int

const (
	healthOK healthState = iota
	healthEjected
	healthProbing
)

// healthSample is one observed worker request.
type healthSample struct {
	latency time.Duration
	failed  bool
}

// workerHealth is one worker's rolling window plus breaker state.
type workerHealth struct {
	window      []healthSample // ring buffer
	next, count int
	consecOK    int
	state       healthState
	ejectedAt   time.Time
	probeAt     time.Time
	// downSince is when the worker first left healthOK; unlike ejectedAt
	// it survives failed half-open probes (which refresh the cooldown), so
	// the reconcile loop's eject-handoff grace window actually elapses.
	downSince time.Time
	ejections uint64
	// backoffUntil is when the worker's latest Retry-After window ends;
	// dispatch skips (and may shed) while it is in the future.
	backoffUntil time.Time
}

func (wh *workerHealth) push(s healthSample, window int) {
	if len(wh.window) < window {
		wh.window = append(wh.window, s)
		wh.count++
		return
	}
	wh.window[wh.next] = s
	wh.next = (wh.next + 1) % window
}

func (wh *workerHealth) errorRate() float64 {
	if len(wh.window) == 0 {
		return 0
	}
	failed := 0
	for _, s := range wh.window {
		if s.failed {
			failed++
		}
	}
	return float64(failed) / float64(len(wh.window))
}

func (wh *workerHealth) reset() {
	wh.window = wh.window[:0]
	wh.next, wh.count = 0, 0
}

// healthTracker scores every worker the gateway talks to.
type healthTracker struct {
	mu         sync.Mutex
	clock      func() time.Time
	window     int
	threshold  float64
	minSamples int
	cooldown   time.Duration
	workers    map[string]*workerHealth

	onEject   func(id string)
	onRestore func(id string)
}

func newHealthTracker(window int, threshold float64, minSamples int, cooldown time.Duration, clock func() time.Time) *healthTracker {
	if window <= 0 {
		window = 32
	}
	if threshold <= 0 || threshold > 1 {
		threshold = 0.5
	}
	if minSamples <= 0 {
		minSamples = 3
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	return &healthTracker{
		clock:      clock,
		window:     window,
		threshold:  threshold,
		minSamples: minSamples,
		cooldown:   cooldown,
		workers:    make(map[string]*workerHealth),
	}
}

func (h *healthTracker) get(id string) *workerHealth {
	wh, ok := h.workers[id]
	if !ok {
		wh = &workerHealth{}
		h.workers[id] = wh
	}
	return wh
}

// observe records one request outcome and drives the breaker. A success
// against an ejected or probing worker restores it (the half-open probe
// succeeded); a failure while probing re-ejects with a fresh cooldown.
func (h *healthTracker) observe(id string, latency time.Duration, failed bool) {
	h.mu.Lock()
	wh := h.get(id)
	wh.push(healthSample{latency: latency, failed: failed}, h.window)
	var ejected, restored bool
	switch wh.state {
	case healthOK:
		if failed {
			wh.consecOK = 0
			if wh.count >= h.minSamples && wh.errorRate() >= h.threshold {
				wh.state = healthEjected
				wh.ejectedAt = h.clock()
				wh.downSince = wh.ejectedAt
				wh.ejections++
				ejected = true
			}
		} else {
			wh.consecOK++
		}
	case healthEjected, healthProbing:
		if failed {
			wh.state = healthEjected
			wh.ejectedAt = h.clock()
		} else {
			wh.state = healthOK
			wh.reset()
			wh.consecOK = 1
			wh.downSince = time.Time{}
			restored = true
		}
	}
	h.mu.Unlock()
	// Hooks fire outside the lock (they log and bump metrics).
	if ejected && h.onEject != nil {
		h.onEject(id)
	}
	if restored && h.onRestore != nil {
		h.onRestore(id)
	}
}

// observeBackpressure records a worker's Retry-After signal: the worker
// is healthy but saturated until the window passes.
func (h *healthTracker) observeBackpressure(id string, d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	until := h.clock().Add(d)
	wh := h.get(id)
	if until.After(wh.backoffUntil) {
		wh.backoffUntil = until
	}
}

// allow reports whether requests may target the worker. An ejected
// worker whose cooldown elapsed transitions to probing and admits
// exactly one request — the half-open probe; further requests stay
// blocked until the probe's outcome is observed (or the probe itself
// times out after another cooldown, admitting a retry).
func (h *healthTracker) allow(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	wh, ok := h.workers[id]
	if !ok {
		return true
	}
	now := h.clock()
	switch wh.state {
	case healthOK:
		return true
	case healthEjected:
		if now.Sub(wh.ejectedAt) >= h.cooldown {
			wh.state = healthProbing
			wh.probeAt = now
			return true
		}
		return false
	case healthProbing:
		if now.Sub(wh.probeAt) >= h.cooldown {
			wh.probeAt = now // the probe went missing; admit another
			return true
		}
		return false
	}
	return true
}

// backpressured reports whether the worker's latest Retry-After window
// is still active, and how much of it remains.
func (h *healthTracker) backpressured(id string) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	wh, ok := h.workers[id]
	if !ok {
		return 0, false
	}
	remain := wh.backoffUntil.Sub(h.clock())
	if remain <= 0 {
		return 0, false
	}
	return remain, true
}

// ejectedSince reports whether the worker is currently ejected (or mid
// probe) and since when — the reconcile loop hands off routes stuck on
// a worker ejected past its grace window, covering asymmetric partitions
// where the lease never expires.
func (h *healthTracker) ejectedSince(id string) (time.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	wh, ok := h.workers[id]
	if !ok || wh.state == healthOK {
		return time.Time{}, false
	}
	return wh.downSince, true
}

// ejectedCount reports how many workers are currently not healthy.
func (h *healthTracker) ejectedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, wh := range h.workers {
		if wh.state != healthOK {
			n++
		}
	}
	return n
}

// p99 returns the 99th-percentile latency across every worker's current
// window of successful requests (0 when no samples exist). The hedged
// /result read uses this as its baseline delay: a read noticeably slower
// than the cluster's own p99 is worth racing against a peer replica.
func (h *healthTracker) p99() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var lat []time.Duration
	for _, wh := range h.workers {
		for _, s := range wh.window {
			if !s.failed {
				lat = append(lat, s.latency)
			}
		}
	}
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := len(lat) * 99 / 100
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}

// healthView is one worker's row in the GET /v1/cluster document.
type healthView struct {
	State        string  `json:"state"`
	ErrorRate    float64 `json:"error_rate"`
	Samples      int     `json:"samples"`
	Ejections    uint64  `json:"ejections"`
	Backpressure bool    `json:"backpressured,omitempty"`
}

// view snapshots every tracked worker's health for observability.
func (h *healthTracker) view() map[string]healthView {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.clock()
	out := make(map[string]healthView, len(h.workers))
	for id, wh := range h.workers {
		state := "healthy"
		switch wh.state {
		case healthEjected:
			state = "ejected"
		case healthProbing:
			state = "probing"
		}
		out[id] = healthView{
			State:        state,
			ErrorRate:    wh.errorRate(),
			Samples:      len(wh.window),
			Ejections:    wh.ejections,
			Backpressure: wh.backoffUntil.After(now),
		}
	}
	return out
}
