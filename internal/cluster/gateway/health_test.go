package gateway

import (
	"testing"
	"time"
)

func newTestTracker(clk *fakeClock) *healthTracker {
	// window 8, threshold 0.5, minSamples 3, cooldown 10s
	return newHealthTracker(8, 0.5, 3, 10*time.Second, clk.Now)
}

func TestHealthEjectsOnErrorRate(t *testing.T) {
	clk := newFakeClock()
	h := newTestTracker(clk)
	var ejected []string
	h.onEject = func(id string) { ejected = append(ejected, id) }

	h.observe("w1", time.Millisecond, true)
	h.observe("w1", time.Millisecond, true)
	if !h.allow("w1") {
		t.Fatal("w1 ejected below minSamples")
	}
	h.observe("w1", time.Millisecond, true)
	if h.allow("w1") {
		t.Fatal("w1 still allowed after 3/3 failures")
	}
	if len(ejected) != 1 || ejected[0] != "w1" {
		t.Fatalf("onEject calls = %v, want [w1]", ejected)
	}
	if h.ejectedCount() != 1 {
		t.Fatalf("ejectedCount = %d", h.ejectedCount())
	}
}

func TestHealthHalfOpenProbeRestores(t *testing.T) {
	clk := newFakeClock()
	h := newTestTracker(clk)
	var restored []string
	h.onRestore = func(id string) { restored = append(restored, id) }
	for i := 0; i < 3; i++ {
		h.observe("w1", time.Millisecond, true)
	}
	if h.allow("w1") {
		t.Fatal("not ejected")
	}

	// Cooldown elapses: exactly one probe is admitted.
	clk.Advance(10 * time.Second)
	if !h.allow("w1") {
		t.Fatal("probe not admitted after cooldown")
	}
	if h.allow("w1") {
		t.Fatal("second request admitted while probe is in flight")
	}

	// The probe succeeds: worker restored, window reset.
	h.observe("w1", time.Millisecond, false)
	if !h.allow("w1") {
		t.Fatal("not restored after successful probe")
	}
	if len(restored) != 1 || restored[0] != "w1" {
		t.Fatalf("onRestore calls = %v, want [w1]", restored)
	}
	if _, down := h.ejectedSince("w1"); down {
		t.Fatal("ejectedSince still reports down after restore")
	}
}

func TestHealthFailedProbeKeepsDownSince(t *testing.T) {
	clk := newFakeClock()
	h := newTestTracker(clk)
	for i := 0; i < 3; i++ {
		h.observe("w1", time.Millisecond, true)
	}
	firstDown, down := h.ejectedSince("w1")
	if !down {
		t.Fatal("not down after ejection")
	}

	// Probe after cooldown fails: the cooldown refreshes but downSince
	// must not — otherwise the eject-handoff grace window never elapses
	// under a persistent partition.
	clk.Advance(10 * time.Second)
	if !h.allow("w1") {
		t.Fatal("probe not admitted")
	}
	h.observe("w1", time.Millisecond, true)
	if h.allow("w1") {
		t.Fatal("allowed right after failed probe")
	}
	since, down := h.ejectedSince("w1")
	if !down {
		t.Fatal("not down after failed probe")
	}
	if !since.Equal(firstDown) {
		t.Fatalf("downSince moved from %v to %v across a failed probe", firstDown, since)
	}
}

func TestHealthBackpressureIsNotFailure(t *testing.T) {
	clk := newFakeClock()
	h := newTestTracker(clk)
	for i := 0; i < 10; i++ {
		h.observe("w1", time.Millisecond, false)
		h.observeBackpressure("w1", 2*time.Second)
	}
	if !h.allow("w1") {
		t.Fatal("backpressure alone ejected the worker")
	}
	remain, busy := h.backpressured("w1")
	if !busy || remain <= 0 {
		t.Fatalf("backpressured = (%v, %v), want active window", remain, busy)
	}
	clk.Advance(3 * time.Second)
	if _, busy := h.backpressured("w1"); busy {
		t.Fatal("backpressure window did not expire")
	}
}

func TestHealthP99(t *testing.T) {
	clk := newFakeClock()
	h := newTestTracker(clk)
	if h.p99() != 0 {
		t.Fatal("p99 of no samples should be 0")
	}
	for i := 1; i <= 8; i++ {
		h.observe("w1", time.Duration(i)*time.Millisecond, false)
	}
	// Failures are excluded from the latency population.
	h.observe("w2", time.Hour, true)
	if got := h.p99(); got != 8*time.Millisecond {
		t.Fatalf("p99 = %v, want 8ms", got)
	}
}
