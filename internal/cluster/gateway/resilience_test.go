package gateway

// Round-2 resilience e2e: serve-from-peer handoff, health-based worker
// ejection with gateway-side load shedding, hedged result reads, and the
// /events stream surviving a failover behind keepalives.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tempriv/internal/cluster/peering"
	"tempriv/internal/cluster/ring"
)

// seedOwnedBy finds a spec document the two-member ring places on owner.
func seedOwnedBy(t *testing.T, owner string, members []string) (string, string) {
	t.Helper()
	rg := ring.New(members, 0)
	for seed := 1; seed <= 200; seed++ {
		doc := specDoc(seed)
		fp := fingerprintOf(t, doc)
		if got, _ := rg.Owner(fp); got == owner {
			return doc, fp
		}
	}
	t.Fatalf("no seed in 1..200 maps to %s", owner)
	return "", ""
}

// replicateResult copies a finished result from its owner into a peer's
// replica store the way the worker-side write-behind replicator does.
func replicateResult(t *testing.T, ownerResult []byte, peer *worker) {
	t.Helper()
	var res struct {
		Fingerprint string          `json:"fingerprint"`
		TableText   string          `json:"table_text"`
		TableCSV    string          `json:"table_csv"`
		Manifest    json.RawMessage `json:"manifest"`
	}
	if err := json.Unmarshal(ownerResult, &res); err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(peering.Document{
		Fingerprint: res.Fingerprint,
		TableText:   res.TableText,
		TableCSV:    res.TableCSV,
		Manifest:    res.Manifest,
		Complete:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(peer.ts.URL+"/v1/peer/results", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("replicating to %s: HTTP %d", peer.id, resp.StatusCode)
	}
}

func gatewayMetrics(t *testing.T, c *cluster) string {
	t.Helper()
	_, body := getBody(t, c.ts.URL+"/metrics")
	return string(body)
}

// TestPeerServedHandoff: the owner finishes a job, replicates the result
// to its ring successor, and dies. The reconcile loop serves the route
// straight from the peer replica — byte-identical result, no job
// re-dispatched, zero recompute on the survivor.
func TestPeerServedHandoff(t *testing.T) {
	ttl := time.Minute
	c := newCluster(t, ttl)
	wa := newWorker(t, "wa", "")
	wb := newWorker(t, "wb", "")
	c.register(t, "wa", wa.ts.URL)
	c.register(t, "wb", wb.ts.URL)

	doc, _ := seedOwnedBy(t, "wa", []string{"wa", "wb"})
	snap, _ := gwSubmit(t, c, doc, nil)
	id := stringField(snap, "id")
	if got := stringField(snap, "worker"); got != "wa" {
		t.Fatalf("job placed on %s, want wa", got)
	}
	gwWait(t, c, id)
	_, origResult := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")

	replicateResult(t, origResult, wb)

	// The owner dies; its lease expires (wb keeps heartbeating);
	// reconcile finds the replica.
	wa.ts.Close()
	c.clk.Advance(2 * ttl)
	c.register(t, "wb", wb.ts.URL) // heartbeat
	if handed := c.gw.ReconcileOnce(context.Background()); handed != 1 {
		t.Fatalf("ReconcileOnce handed off %d routes, want 1", handed)
	}

	status := gwWait(t, c, id)
	if status["peer_served"] != true {
		t.Fatalf("status after handoff = %v, want peer_served", status)
	}
	if got := stringField(status, "worker"); got != "wb" {
		t.Fatalf("peer-served route names worker %s, want wb", got)
	}

	code, body := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result after peer handoff: HTTP %d: %s", code, body)
	}
	if !bytes.Equal(body, origResult) {
		t.Fatal("peer-served result differs from the original bytes")
	}

	// Zero recompute: the survivor never ran a job.
	_, listBody := getBody(t, wb.ts.URL+"/v1/jobs")
	var listing struct {
		Jobs []map[string]any `json:"jobs"`
	}
	if err := json.Unmarshal(listBody, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 0 {
		t.Fatalf("survivor ran %d jobs, want 0 (peer replica should serve)", len(listing.Jobs))
	}

	metrics := gatewayMetrics(t, c)
	if !strings.Contains(metrics, "tempriv_cluster_peer_served_total 1") {
		t.Fatalf("metrics missing peer_served count:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tempriv_cluster_peer_fallbacks_total 0") {
		t.Fatalf("metrics show a peer fallback:\n%s", metrics)
	}

	// The merged listing still includes the peer-served job.
	_, gwList := getBody(t, c.ts.URL+"/v1/jobs?state=done")
	if !strings.Contains(string(gwList), `"`+id+`"`) {
		t.Fatalf("gateway listing dropped peer-served job:\n%s", gwList)
	}
}

// TestEjectionAndShed: a worker the gateway cannot reach accumulates
// failures, gets ejected, and subsequent submissions are shed at the
// gateway with 503 + Retry-After before any worker round-trip.
func TestEjectionAndShed(t *testing.T) {
	c := newCluster(t, time.Minute)
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // registered but unreachable: every request refuses
	c.register(t, "w1", dead.URL)

	// Three failed dispatches cross the default ejection bar (error rate
	// 1.0 over minSamples 3).
	for i := 1; i <= 3; i++ {
		resp, err := http.Post(c.ts.URL+"/v1/jobs", "application/json", strings.NewReader(specDoc(i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("submit %d: HTTP %d, want 502 while w1 is still trusted", i, resp.StatusCode)
		}
	}

	// Now the gateway knows better than to try: shed with Retry-After.
	resp, err := http.Post(c.ts.URL+"/v1/jobs", "application/json", strings.NewReader(specDoc(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-ejection submit: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	metrics := gatewayMetrics(t, c)
	if !strings.Contains(metrics, "tempriv_cluster_ejections_total 1") {
		t.Fatalf("metrics missing ejection:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tempriv_sheds_total 1") {
		t.Fatalf("metrics missing gateway shed:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tempriv_cluster_ejected_workers 1") {
		t.Fatalf("metrics missing ejected gauge:\n%s", metrics)
	}

	// The cluster document exposes the health view.
	_, body := getBody(t, c.ts.URL+"/v1/cluster")
	var view struct {
		Health map[string]struct {
			State string `json:"state"`
		} `json:"health"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Health["w1"].State != "ejected" {
		t.Fatalf("cluster health = %v, want w1 ejected", view.Health)
	}
}

// TestEjectedWorkerRoutesHandOff: under an asymmetric partition the
// worker's lease never expires (its heartbeats still arrive), but once
// it has stayed ejected past the grace window the reconcile loop rehomes
// its routes anyway.
func TestEjectedWorkerRoutesHandOff(t *testing.T) {
	c := newClusterWith(t, time.Hour, func(cfg *Config) {
		cfg.EjectCooldown = 10 * time.Second
		cfg.EjectHandoffAfter = 30 * time.Second
	})
	wa := newWorker(t, "wa", "")
	wb := newWorker(t, "wb", "")
	c.register(t, "wa", wa.ts.URL)
	c.register(t, "wb", wb.ts.URL)

	doc, _ := seedOwnedBy(t, "wa", []string{"wa", "wb"})
	snap, _ := gwSubmit(t, c, doc, nil)
	id := stringField(snap, "id")
	gwWait(t, c, id)
	_, origResult := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
	replicateResult(t, origResult, wb)

	// Partition: the gateway's requests to wa start failing, while wa's
	// lease (fake registry clock, 1h TTL) stays alive the whole time.
	wa.ts.Close()
	for i := 0; i < 3; i++ {
		c.gw.health.observe("wa", time.Millisecond, true)
	}
	if _, down := c.gw.health.ejectedSince("wa"); !down {
		t.Fatal("wa not ejected")
	}

	// Inside the grace window nothing moves.
	if handed := c.gw.ReconcileOnce(context.Background()); handed != 0 {
		t.Fatalf("route moved after %d handoffs inside grace window", handed)
	}

	c.clk.Advance(31 * time.Second)
	if handed := c.gw.ReconcileOnce(context.Background()); handed != 1 {
		t.Fatalf("ReconcileOnce handed off %d routes, want 1", handed)
	}
	status := gwWait(t, c, id)
	if status["peer_served"] != true {
		t.Fatalf("status = %v, want peer_served from wb", status)
	}
	code, body := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK || !bytes.Equal(body, origResult) {
		t.Fatalf("result after ejection handoff: HTTP %d, identical=%v", code, bytes.Equal(body, origResult))
	}
}

// TestHedgedResultWinsOnDeadOwner: the owner stops answering result
// reads (lease still live), so the hedged read races a peer replica and
// serves the identical bytes.
func TestHedgedResultWinsOnDeadOwner(t *testing.T) {
	c := newClusterWith(t, time.Hour, func(cfg *Config) {
		cfg.HedgeDelay = 25 * time.Millisecond
	})
	wa := newWorker(t, "wa", "")
	wb := newWorker(t, "wb", "")
	c.register(t, "wa", wa.ts.URL)
	c.register(t, "wb", wb.ts.URL)

	doc, _ := seedOwnedBy(t, "wa", []string{"wa", "wb"})
	snap, _ := gwSubmit(t, c, doc, nil)
	id := stringField(snap, "id")
	gwWait(t, c, id)
	_, origResult := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
	replicateResult(t, origResult, wb)

	wa.ts.Close()
	code, body := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("hedged result: HTTP %d: %s", code, body)
	}
	if !bytes.Equal(body, origResult) {
		t.Fatal("hedge-served result differs from the original bytes")
	}
	metrics := gatewayMetrics(t, c)
	if !strings.Contains(metrics, "tempriv_cluster_hedge_wins_total 1") {
		t.Fatalf("metrics missing hedge win:\n%s", metrics)
	}
}

// TestSaturationShed: a worker already carrying Capacity×ShedFactor
// outstanding routes stops receiving dispatches; with no other candidate
// the gateway sheds instead of queueing blind.
func TestSaturationShed(t *testing.T) {
	c := newClusterWith(t, time.Minute, func(cfg *Config) {
		cfg.ShedFactor = 1 // limit = advertised capacity (2 in register)
	})
	var n atomic.Int64
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":"wj-%d","state":"queued"}`, n.Add(1))
			return
		}
		fmt.Fprint(w, `{"jobs":[]}`)
	}))
	defer fake.Close()
	c.register(t, "w1", fake.URL) // Capacity 2

	for seed := 1; seed <= 2; seed++ {
		gwSubmit(t, c, specDoc(seed), nil)
	}
	resp, err := http.Post(c.ts.URL+"/v1/jobs", "application/json", strings.NewReader(specDoc(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturation shed missing Retry-After")
	}
	if !strings.Contains(gatewayMetrics(t, c), "tempriv_sheds_total 1") {
		t.Fatal("saturation shed not counted")
	}
}

// TestEventsKeepaliveAcrossFailover: a watcher attached to /events rides
// out a worker death — keepalive lines while the reconcile loop works,
// then the handoff note, then the stream's end.
func TestEventsKeepaliveAcrossFailover(t *testing.T) {
	ttl := time.Minute
	c := newClusterWith(t, ttl, func(cfg *Config) {
		cfg.EventKeepalive = 20 * time.Millisecond
		cfg.FailoverWait = 10 * time.Second
	})
	wa := newWorker(t, "wa", "")
	wb := newWorker(t, "wb", "")
	c.register(t, "wa", wa.ts.URL)
	c.register(t, "wb", wb.ts.URL)

	doc, _ := seedOwnedBy(t, "wa", []string{"wa", "wb"})
	snap, _ := gwSubmit(t, c, doc, nil)
	id := stringField(snap, "id")
	gwWait(t, c, id)
	_, origResult := getBody(t, c.ts.URL+"/v1/jobs/"+id+"/result")
	replicateResult(t, origResult, wb)
	wa.ts.Close()

	// Attach the watcher while the route still points at the dead owner.
	resp, err := http.Get(c.ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}

	type lineSet struct {
		keepalives int
		notes      []string
		err        error
	}
	done := make(chan lineSet, 1)
	go func() {
		var out lineSet
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, `"keepalive":true`) {
				out.keepalives++
				continue
			}
			var ev struct {
				Seq     int    `json:"seq"`
				Message string `json:"message"`
			}
			if json.Unmarshal([]byte(line), &ev) == nil && ev.Seq == -1 {
				out.notes = append(out.notes, ev.Message)
			}
		}
		out.err = sc.Err()
		done <- out
	}()

	// Let a few keepalives land, then repair the cluster.
	time.Sleep(150 * time.Millisecond)
	c.clk.Advance(2 * ttl)
	c.register(t, "wb", wb.ts.URL) // heartbeat
	if handed := c.gw.ReconcileOnce(context.Background()); handed != 1 {
		t.Fatalf("ReconcileOnce handed off %d routes, want 1", handed)
	}

	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("reading events: %v", out.err)
		}
		if out.keepalives == 0 {
			t.Fatal("no keepalive lines during the failover window")
		}
		found := false
		for _, msg := range out.notes {
			if strings.Contains(msg, "peer replica") {
				found = true
			}
		}
		if !found {
			t.Fatalf("no peer-handoff note in stream; notes = %q", out.notes)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("events stream never ended after failover")
	}
}
