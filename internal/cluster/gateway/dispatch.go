package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"tempriv/internal/cluster/registry"
	"tempriv/internal/jobs"
)

// dispatchResult is what a successful worker submission yields.
type dispatchResult struct {
	WorkerID    string
	WorkerURL   string
	WorkerJobID string
	Snapshot    map[string]any // the worker's snapshot, pre-rewrite
}

// workerError carries a worker's JSON error contract through to the
// caller so the gateway can forward the original status and message.
// RetryAfter, when set, becomes the response's Retry-After header — the
// gateway's load-shedding answer tells the client when capacity should
// free up rather than a blanket one-second hint.
type workerError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *workerError) Error() string {
	return fmt.Sprintf("worker returned %d: %s", e.Status, e.Msg)
}

// dispatch submits canonical spec bytes to the ring owner for fp, falling
// over to ring successors when a worker is unreachable or persistently
// shedding load. A 429/503 with Retry-After is honored (capped at
// RetryAfterMax) before retrying the same worker — backpressure means the
// worker is alive and the spec belongs there; moving it would forfeit
// cache locality — while connection errors and 5xx failures advance to
// the next successor immediately. At most submitAttempts POSTs total.
//
// Candidates the health tracker has ejected are skipped outright, as are
// workers inside an advertised Retry-After window or already carrying
// Capacity×ShedFactor outstanding routes. When that filtering leaves no
// candidate at all, the gateway sheds the submission itself — 503 plus a
// Retry-After derived from the nearest backpressure window — instead of
// burning attempts against workers it already knows are unavailable.
func (g *Gateway) dispatch(ctx context.Context, specJSON []byte, fp, traceID, origin string) (dispatchResult, error) {
	rg, alive, _ := g.currentRing()
	candidates := rg.Successors(fp, 0)
	if len(candidates) == 0 {
		return dispatchResult{}, &workerError{Status: http.StatusServiceUnavailable, Msg: "no live workers registered"}
	}

	var lastErr error
	attempts := 0
	tried := 0
	skipped := 0
	var shedWait time.Duration
	for _, id := range candidates {
		worker, ok := workerByID(alive, id)
		if !ok {
			continue
		}
		if !g.health.allow(id) {
			skipped++
			continue
		}
		if remain, busy := g.health.backpressured(id); busy {
			skipped++
			if remain > shedWait {
				shedWait = remain
			}
			continue
		}
		if g.saturated(worker) {
			skipped++
			continue
		}
		if tried > 0 && g.mFailover != nil {
			g.mFailover.Inc()
		}
		tried++
		for attempts < g.submitAttempts {
			attempts++
			start := g.clock()
			snap, retryAfter, err := g.postJob(ctx, worker.URL, specJSON, traceID, origin)
			latency := g.clock().Sub(start)
			if err == nil {
				g.health.observe(id, latency, false)
				if g.mDispatch != nil {
					g.mDispatch.Inc()
				}
				return dispatchResult{
					WorkerID:    id,
					WorkerURL:   worker.URL,
					WorkerJobID: stringField(snap, "id"),
					Snapshot:    snap,
				}, nil
			}
			lastErr = err
			var we *workerError
			if errors.As(err, &we) && (we.Status == http.StatusTooManyRequests || we.Status == http.StatusServiceUnavailable) {
				// Backpressure: the worker is alive and healthy, it just
				// asked for breathing room — never an ejection signal.
				g.health.observe(id, latency, false)
				g.health.observeBackpressure(id, retryAfter)
				// Wait as instructed, then retry this worker.
				if attempts < g.submitAttempts {
					if g.mRetryWaits != nil {
						g.mRetryWaits.Inc()
					}
					g.sleep(retryAfter)
					continue
				}
				break
			}
			if errors.As(err, &we) && we.Status >= 400 && we.Status < 500 {
				// The spec itself is bad; every worker will say the same.
				g.health.observe(id, latency, false)
				return dispatchResult{}, err
			}
			// Unreachable or 5xx: a real failure, then the next successor.
			g.health.observe(id, latency, true)
			break
		}
		if attempts >= g.submitAttempts {
			break
		}
	}
	if tried == 0 && skipped > 0 {
		// Every live candidate is ejected, backpressured, or saturated:
		// shed at the gateway before spending a single worker round-trip.
		if g.mSheds != nil {
			g.mSheds.Inc()
		}
		if shedWait <= 0 {
			shedWait = time.Second
		}
		if shedWait > g.retryAfterMax {
			shedWait = g.retryAfterMax
		}
		return dispatchResult{}, &workerError{
			Status:     http.StatusServiceUnavailable,
			Msg:        fmt.Sprintf("all %d candidate workers are ejected, backpressured, or saturated", skipped),
			RetryAfter: shedWait,
		}
	}
	if lastErr == nil {
		lastErr = &workerError{Status: http.StatusServiceUnavailable, Msg: "no candidate worker accepted the job"}
	}
	return dispatchResult{}, lastErr
}

// saturated reports whether a worker already carries its fair share of
// in-flight routes: advertised capacity × ShedFactor. Workers that do not
// advertise capacity are never considered saturated.
func (g *Gateway) saturated(w registry.Worker) bool {
	if w.Capacity <= 0 {
		return false
	}
	limit := int(float64(w.Capacity) * g.shedFactor)
	if limit < 1 {
		limit = 1
	}
	return g.outstanding(w.ID) >= limit
}

// outstanding counts the non-terminal routes currently assigned to a
// worker — the gateway's own view of that worker's queue depth.
func (g *Gateway) outstanding(workerID string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, rt := range g.routes {
		if rt.WorkerID == workerID && !rt.peerServed && !rt.state.Terminal() {
			n++
		}
	}
	return n
}

// postJob performs one POST /v1/jobs against a worker. On 429/503 it
// returns a *workerError plus the Retry-After the worker asked for
// (capped; defaulting to 1s when absent or unparsable).
func (g *Gateway) postJob(ctx context.Context, baseURL string, specJSON []byte, traceID, origin string) (map[string]any, time.Duration, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/jobs", bytes.NewReader(specJSON))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	if origin != "" {
		req.Header.Set("X-Tempriv-Origin", origin)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("posting job to %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		var snap map[string]any
		if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap); derr != nil {
			return nil, 0, fmt.Errorf("decoding snapshot from %s: %w", baseURL, derr)
		}
		return snap, 0, nil
	}
	retryAfter := g.parseRetryAfter(resp.Header.Get("Retry-After"))
	return nil, retryAfter, decodeWorkerError(resp)
}

// parseRetryAfter interprets a Retry-After header as delay seconds,
// clamped to [1s, RetryAfterMax]. HTTP-date forms and garbage fall back
// to 1s — waiting a beat is always safe.
func (g *Gateway) parseRetryAfter(h string) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(h); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > g.retryAfterMax {
		d = g.retryAfterMax
	}
	return d
}

// decodeWorkerError lifts a worker's JSON error body into a *workerError,
// synthesizing a message when the body is not the expected contract.
func decodeWorkerError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	return &workerError{Status: resp.StatusCode, Msg: msg}
}

// stringField pulls a string out of a decoded JSON object ("" if absent).
func stringField(m map[string]any, key string) string {
	s, _ := m[key].(string)
	return s
}

// rewriteSnapshot presents a worker snapshot as a gateway job: the public
// ID replaces the worker's, and the placement becomes visible.
func rewriteSnapshot(snap map[string]any, rt *route) map[string]any {
	out := make(map[string]any, len(snap)+3)
	for k, v := range snap {
		out[k] = v
	}
	out["id"] = rt.ID
	out["worker"] = rt.WorkerID
	out["worker_job"] = rt.WorkerJobID
	if rt.Handoffs > 0 {
		out["handoffs"] = rt.Handoffs
	}
	return out
}

// routeState extracts the job state from a worker snapshot and caches it
// on the route so the reconcile loop can skip terminal jobs.
func (g *Gateway) noteState(rt *route, snap map[string]any) {
	if st := stringField(snap, "state"); st != "" {
		g.mu.Lock()
		rt.state = jobs.State(st)
		g.mu.Unlock()
	}
}
