// Package gateway is the cluster front door: one process that owns the
// public job API while fanning the actual work out to a fleet of temprivd
// workers sharded by spec fingerprint on a consistent-hash ring.
//
// The gateway embeds the membership registry (workers register and
// heartbeat against it), rebuilds the ring whenever the membership epoch
// moves, and keeps a routing table mapping its own job IDs to the worker
// and worker-side job ID actually running each spec. Placement is by the
// seed-inclusive spec fingerprint, so identical specs land on the same
// worker and hit its warm result cache, and membership churn only moves
// ~1/N of the keyspace.
//
// Crash handoff: when a worker's lease expires, the reconcile loop
// re-dispatches its non-terminal jobs to the ring successor with
// X-Tempriv-Origin: handoff and the original X-Trace-Id. Workers share a
// replicate-chunk directory, so the successor resumes from whatever
// replicates the dead worker had already persisted instead of recomputing
// the sweep from scratch.
package gateway

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"tempriv/internal/cluster/registry"
	"tempriv/internal/cluster/ring"
	"tempriv/internal/jobs"
	"tempriv/internal/obs"
	"tempriv/internal/telemetry"
)

// Config assembles a Gateway. Registry is the only required field.
type Config struct {
	// Registry is the cluster membership registry; the gateway mounts its
	// HTTP surface (POST /v1/cluster/register etc.) on its own mux and
	// drives lease expiry from it.
	Registry *registry.Registry
	// Telemetry receives tempriv_cluster_* metrics; nil disables them.
	Telemetry *telemetry.Registry
	// Tracer records gateway-side spans; nil disables tracing (client
	// X-Trace-Id headers are still forwarded verbatim).
	Tracer *obs.Tracer
	// Log receives structured gateway logs; nil discards them.
	Log *slog.Logger
	// Client performs worker requests. Defaults to a client with no
	// global timeout — per-request deadlines come from contexts, and the
	// /events and ?partial=1 proxies are long-lived streams.
	Client *http.Client
	// Vnodes per worker on the ring (ring.DefaultVnodes when <= 0).
	Vnodes int
	// SubmitAttempts bounds how many worker POSTs one dispatch may make
	// across Retry-After waits and successor failovers (default 4).
	SubmitAttempts int
	// RetryAfterMax caps how long the gateway honors a worker's
	// Retry-After header before retrying (default 5s).
	RetryAfterMax time.Duration
	// ReconcileEvery is the Run loop's sweep interval (default 2s).
	ReconcileEvery time.Duration
	// Sleep waits between retries; injectable so tests can observe the
	// honored Retry-After without real delay. Defaults to a
	// context-aware sleep.
	Sleep func(d time.Duration)
	// Clock is the health tracker's time source (default time.Now);
	// injectable so tests drive ejection cooldowns deterministically.
	Clock func() time.Time

	// Per-worker health scoring and ejection (see health.go). Every
	// worker request feeds a rolling window of HealthWindow samples
	// (default 32); a worker whose window error rate reaches
	// EjectThreshold (default 0.5) across at least EjectMinSamples
	// samples (default 3) is ejected, then re-admitted via a half-open
	// probe after EjectCooldown (default 10s).
	HealthWindow    int
	EjectThreshold  float64
	EjectMinSamples int
	EjectCooldown   time.Duration
	// EjectHandoffAfter: a route stranded on a worker that has stayed
	// ejected this long is handed off as if its lease had expired —
	// the cure for asymmetric partitions, where the worker's heartbeats
	// still arrive so the lease never dies (default 3×EjectCooldown).
	EjectHandoffAfter time.Duration
	// HedgeDelay fixes the hedged /result read delay; 0 means p99-based
	// auto (2× the cluster-wide p99, clamped to [25ms, 2s]). Negative
	// disables hedging.
	HedgeDelay time.Duration
	// ShedFactor bounds outstanding (non-terminal) routes per worker at
	// advertised-capacity × ShedFactor (default 4). When every candidate
	// for a submission is saturated, backpressured, or ejected, the
	// gateway sheds with 503 + Retry-After instead of queueing.
	ShedFactor float64
	// EventKeepalive is how often the /events proxy emits a keepalive
	// line while waiting out a worker failover (default 5s);
	// FailoverWait bounds that wait (default 60s).
	EventKeepalive time.Duration
	FailoverWait   time.Duration
}

// Gateway fans job traffic out to registered workers.
type Gateway struct {
	reg    *registry.Registry
	tracer *obs.Tracer
	log    *slog.Logger
	client *http.Client
	mux    *http.ServeMux

	vnodes         int
	submitAttempts int
	retryAfterMax  time.Duration
	reconcileEvery time.Duration
	sleep          func(time.Duration)
	clock          func() time.Time

	health            *healthTracker
	ejectHandoffAfter time.Duration
	hedgeDelay        time.Duration
	shedFactor        float64
	eventKeepalive    time.Duration
	failoverWait      time.Duration

	mu        sync.Mutex
	routes    map[string]*route // gateway job ID -> route
	order     []string          // insertion order of gateway job IDs
	nextID    uint64
	ringEpoch uint64
	ringCache *ring.Ring

	// Metrics (nil when no telemetry registry is configured).
	mDispatch     *telemetry.Counter // jobs dispatched to a worker
	mFailover     *telemetry.Counter // dispatch fell through to a successor
	mRetryWaits   *telemetry.Counter // Retry-After waits honored
	mHandoffs     *telemetry.Counter // crash handoffs performed
	mHandoffFail  *telemetry.Counter // handoffs that found no live worker
	mPeerServed   *telemetry.Counter // handoffs served from a peer replica
	mPeerFallback *telemetry.Counter // handoffs that fell back to re-dispatch
	mEjections    *telemetry.Counter // workers ejected by health scoring
	mHedged       *telemetry.Counter // hedged /result reads launched
	mHedgeWins    *telemetry.Counter // hedges that answered first
	mSheds        *telemetry.Counter // submissions shed at the gateway
	gWorkers      *telemetry.Gauge   // live workers
	gRoutes       *telemetry.Gauge   // routes in the table
	gEjected      *telemetry.Gauge   // workers currently ejected/probing
}

// route is one entry in the gateway's routing table: the mapping from the
// gateway-minted public job ID to wherever the job currently lives.
type route struct {
	ID          string // gateway job ID ("gw-000001")
	WorkerID    string
	WorkerURL   string
	WorkerJobID string
	Fingerprint string
	SpecJSON    []byte // canonical spec bytes, kept for re-dispatch
	TraceID     string // forwarded on every request for this job
	Origin      string
	Submitted   time.Time
	Handoffs    int
	// notes are synthetic events (seq -1) the gateway prepends to the
	// worker's event stream so a watcher sees crash handoffs inline.
	notes []jobs.Event
	// state is the last state observed from a worker; the reconcile loop
	// refreshes it so handoff can skip terminal jobs.
	state jobs.State
	// peerServed marks a route whose result is served from a ring
	// successor's replica after a crash handoff: WorkerID/WorkerURL name
	// the replica holder, WorkerJobID is empty (no job runs anywhere),
	// and peerSnap is the synthesized done snapshot status serves.
	peerServed bool
	peerSnap   map[string]any
}

// New builds a Gateway and its HTTP surface.
func New(cfg Config) *Gateway {
	if cfg.Registry == nil {
		panic("gateway: Config.Registry is required")
	}
	g := &Gateway{
		reg:            cfg.Registry,
		tracer:         cfg.Tracer,
		log:            cfg.Log,
		client:         cfg.Client,
		vnodes:         cfg.Vnodes,
		submitAttempts: cfg.SubmitAttempts,
		retryAfterMax:  cfg.RetryAfterMax,
		reconcileEvery: cfg.ReconcileEvery,
		sleep:          cfg.Sleep,
		routes:         make(map[string]*route),
		mux:            http.NewServeMux(),
	}
	if g.client == nil {
		g.client = &http.Client{}
	}
	if g.submitAttempts <= 0 {
		g.submitAttempts = 4
	}
	if g.retryAfterMax <= 0 {
		g.retryAfterMax = 5 * time.Second
	}
	if g.reconcileEvery <= 0 {
		g.reconcileEvery = 2 * time.Second
	}
	if g.sleep == nil {
		g.sleep = time.Sleep
	}
	g.clock = cfg.Clock
	if g.clock == nil {
		g.clock = time.Now
	}
	g.health = newHealthTracker(cfg.HealthWindow, cfg.EjectThreshold, cfg.EjectMinSamples, cfg.EjectCooldown, g.clock)
	g.ejectHandoffAfter = cfg.EjectHandoffAfter
	if g.ejectHandoffAfter <= 0 {
		g.ejectHandoffAfter = 3 * g.health.cooldown
	}
	g.hedgeDelay = cfg.HedgeDelay
	g.shedFactor = cfg.ShedFactor
	if g.shedFactor <= 0 {
		g.shedFactor = 4
	}
	g.eventKeepalive = cfg.EventKeepalive
	if g.eventKeepalive <= 0 {
		g.eventKeepalive = 5 * time.Second
	}
	g.failoverWait = cfg.FailoverWait
	if g.failoverWait <= 0 {
		g.failoverWait = 60 * time.Second
	}
	if cfg.Telemetry != nil {
		g.mDispatch = cfg.Telemetry.Counter("tempriv_cluster_dispatch_total")
		g.mFailover = cfg.Telemetry.Counter("tempriv_cluster_dispatch_failover_total")
		g.mRetryWaits = cfg.Telemetry.Counter("tempriv_cluster_retry_after_waits_total")
		g.mHandoffs = cfg.Telemetry.Counter("tempriv_cluster_handoffs_total")
		g.mHandoffFail = cfg.Telemetry.Counter("tempriv_cluster_handoff_failures_total")
		g.mPeerServed = cfg.Telemetry.Counter("tempriv_cluster_peer_served_total")
		g.mPeerFallback = cfg.Telemetry.Counter("tempriv_cluster_peer_fallbacks_total")
		g.mEjections = cfg.Telemetry.Counter("tempriv_cluster_ejections_total")
		g.mHedged = cfg.Telemetry.Counter("tempriv_cluster_hedged_reads_total")
		g.mHedgeWins = cfg.Telemetry.Counter("tempriv_cluster_hedge_wins_total")
		g.mSheds = cfg.Telemetry.Counter("tempriv_sheds_total")
		g.gWorkers = cfg.Telemetry.Gauge("tempriv_cluster_workers")
		g.gRoutes = cfg.Telemetry.Gauge("tempriv_cluster_routes")
		g.gEjected = cfg.Telemetry.Gauge("tempriv_cluster_ejected_workers")
	}
	g.health.onEject = func(id string) {
		if g.mEjections != nil {
			g.mEjections.Inc()
		}
		if g.gEjected != nil {
			g.gEjected.Set(float64(g.health.ejectedCount()))
		}
		if g.log != nil {
			g.log.Warn("worker ejected by health scoring", "worker", id)
		}
	}
	g.health.onRestore = func(id string) {
		if g.gEjected != nil {
			g.gEjected.Set(float64(g.health.ejectedCount()))
		}
		if g.log != nil {
			g.log.Info("worker restored after half-open probe", "worker", id)
		}
	}

	g.reg.Mount(g.mux)
	g.mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	g.mux.HandleFunc("GET /v1/jobs", g.handleList)
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.handleStatus)
	g.mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleCancel)
	g.mux.HandleFunc("GET /v1/jobs/{id}/result", g.handleResult)
	g.mux.HandleFunc("GET /v1/jobs/{id}/events", g.handleEvents)
	g.mux.HandleFunc("GET /v1/cluster", g.handleCluster)
	g.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	g.mux.HandleFunc("GET /readyz", g.handleReady)
	if cfg.Telemetry != nil {
		reg := cfg.Telemetry
		g.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			reg.ServeHTTP(w, r)
		})
	}
	return g
}

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// currentRing returns the ring for the live membership, rebuilding only
// when the registry epoch has moved since the last build. The returned
// worker list is the ring's source membership (sorted by ID).
func (g *Gateway) currentRing() (*ring.Ring, []registry.Worker, uint64) {
	alive, epoch := g.reg.Alive()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ringCache == nil || epoch != g.ringEpoch || g.ringCache.Len() != len(alive) {
		g.ringCache = ring.New(registry.IDs(alive), g.vnodes)
		g.ringEpoch = epoch
	}
	if g.gWorkers != nil {
		g.gWorkers.Set(float64(len(alive)))
	}
	return g.ringCache, alive, epoch
}

// workerByID resolves a worker ID to its registration in ws.
func workerByID(ws []registry.Worker, id string) (registry.Worker, bool) {
	for _, w := range ws {
		if w.ID == id {
			return w, true
		}
	}
	return registry.Worker{}, false
}

// lookup fetches a route by gateway job ID.
func (g *Gateway) lookup(id string) (*route, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rt, ok := g.routes[id]
	return rt, ok
}

// mintID allocates the next gateway job ID.
func (g *Gateway) mintID() string {
	g.nextID++
	return fmt.Sprintf("gw-%06d", g.nextID)
}

// insertRoute registers a freshly dispatched route.
func (g *Gateway) insertRoute(rt *route) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.routes[rt.ID] = rt
	g.order = append(g.order, rt.ID)
	if g.gRoutes != nil {
		g.gRoutes.Set(float64(len(g.routes)))
	}
}

// snapshotRoutes returns the routing table in insertion order.
func (g *Gateway) snapshotRoutes() []*route {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*route, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.routes[id])
	}
	return out
}

// Routes reports the number of tracked jobs (tests and /v1/cluster).
func (g *Gateway) Routes() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.routes)
}

// clusterView is the GET /v1/cluster document.
type clusterView struct {
	Epoch   uint64                `json:"epoch"`
	Workers []registry.Worker     `json:"workers"`
	Ring    []string              `json:"ring"`
	Jobs    int                   `json:"jobs"`
	Health  map[string]healthView `json:"health,omitempty"`
}

func (g *Gateway) handleCluster(w http.ResponseWriter, _ *http.Request) {
	rg, alive, epoch := g.currentRing()
	sort.Slice(alive, func(i, j int) bool { return alive[i].ID < alive[j].ID })
	writeJSON(w, http.StatusOK, clusterView{
		Epoch:   epoch,
		Workers: alive,
		Ring:    rg.Members(),
		Jobs:    g.Routes(),
		Health:  g.health.view(),
	})
}

func (g *Gateway) handleReady(w http.ResponseWriter, _ *http.Request) {
	_, alive, _ := g.currentRing()
	if len(alive) == 0 {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no live workers registered"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "workers": len(alive)})
}
