package gateway

import (
	"context"
	"fmt"
	"time"

	"tempriv/internal/jobs"
)

// Run drives the reconcile loop until ctx is canceled: expire leases,
// hand a dead worker's jobs to its ring successors, and refresh cached
// states so terminal jobs stop being reconsidered.
func (g *Gateway) Run(ctx context.Context) {
	t := time.NewTicker(g.reconcileEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.ReconcileOnce(ctx)
		}
	}
}

// ReconcileOnce performs one sweep-and-repair pass. Exported so tests
// (and operators via signal handlers, if they wish) can drive the loop
// deterministically. It returns how many jobs were handed off.
func (g *Gateway) ReconcileOnce(ctx context.Context) int {
	// Expire leases first so the ring reflects reality. Sweep returns the
	// workers that just died; routes pointing at any non-live worker are
	// handoff candidates (this also catches workers that expired while
	// the gateway was not looking).
	expired := g.reg.Sweep()
	for _, w := range expired {
		if g.log != nil {
			g.log.Warn("worker lease expired", "worker", w.ID, "url", w.URL)
		}
	}
	_, alive, _ := g.currentRing()
	live := make(map[string]bool, len(alive))
	for _, w := range alive {
		live[w.ID] = true
	}

	g.refreshTerminalStates(ctx, live)

	// Every route stranded on a dead worker moves — including jobs that
	// had already finished there: their result bytes lived in the dead
	// worker's cache, and determinism (plus the shared chunk directory)
	// makes the successor's re-run cheap and byte-identical. Only a
	// canceled job stays dead; reviving it would undo the user's cancel.
	handed := 0
	for _, rt := range g.snapshotRoutes() {
		g.mu.Lock()
		needsHome := !live[rt.WorkerID] && rt.state != jobs.StateCanceled
		g.mu.Unlock()
		if !needsHome {
			continue
		}
		if g.handoff(ctx, rt) {
			handed++
		}
	}
	return handed
}

// handoff re-dispatches one orphaned route to the ring's current owner
// for its fingerprint. The successor resumes from the replicate chunks
// the dead worker already persisted (workers share the chunk directory),
// so a handoff recomputes only the missing replicates. Reports success.
func (g *Gateway) handoff(ctx context.Context, rt *route) bool {
	g.mu.Lock()
	from := rt.WorkerID
	spec, fp, traceID := rt.SpecJSON, rt.Fingerprint, rt.TraceID
	g.mu.Unlock()

	res, err := g.dispatch(ctx, spec, fp, traceID, jobs.OriginHandoff)
	if err != nil {
		if g.mHandoffFail != nil {
			g.mHandoffFail.Inc()
		}
		if g.log != nil {
			g.log.Error("handoff failed", "job", rt.ID, "from", from, "err", err)
		}
		return false
	}
	if g.mHandoffs != nil {
		g.mHandoffs.Inc()
	}

	g.mu.Lock()
	rt.WorkerID = res.WorkerID
	rt.WorkerURL = res.WorkerURL
	rt.WorkerJobID = res.WorkerJobID
	rt.Handoffs++
	rt.state = jobs.StateQueued
	rt.notes = append(rt.notes, jobs.Event{
		Seq:     -1,
		State:   jobs.StateQueued,
		Stage:   "handoff",
		Message: fmt.Sprintf("worker %s lost its lease; re-dispatched to %s (attempt %d)", from, res.WorkerID, rt.Handoffs),
	})
	g.mu.Unlock()
	g.noteState(rt, res.Snapshot)

	if g.log != nil {
		g.log.Info("handed off job", "job", rt.ID, "from", from, "to", res.WorkerID, "worker_job", res.WorkerJobID)
	}
	return true
}

// refreshTerminalStates asks each live worker which of the gateway's
// non-terminal jobs have finished — one ?state=done,failed,canceled
// listing per worker — and caches the answers, so the routing table's
// view converges even when no client is polling (and a cancel observed
// here keeps that job from ever being revived by a handoff).
func (g *Gateway) refreshTerminalStates(ctx context.Context, live map[string]bool) {
	pending := make(map[string][]*route)
	for _, rt := range g.snapshotRoutes() {
		g.mu.Lock()
		interesting := live[rt.WorkerID] && !rt.state.Terminal()
		g.mu.Unlock()
		if interesting {
			pending[rt.WorkerID] = append(pending[rt.WorkerID], rt)
		}
	}
	for workerID, rts := range pending {
		snaps, err := g.fetchWorkerList(ctx, rts[0].WorkerURL, "done,failed,canceled")
		if err != nil {
			if g.log != nil {
				g.log.Warn("terminal-state refresh failed", "worker", workerID, "err", err)
			}
			continue
		}
		byWorkerJob := make(map[string]map[string]any, len(snaps))
		for _, snap := range snaps {
			byWorkerJob[stringField(snap, "id")] = snap
		}
		for _, rt := range rts {
			if snap, ok := byWorkerJob[rt.WorkerJobID]; ok {
				g.noteState(rt, snap)
			}
		}
	}
}
