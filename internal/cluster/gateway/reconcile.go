package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"tempriv/internal/jobs"
)

// Run drives the reconcile loop until ctx is canceled: expire leases,
// hand a dead worker's jobs to its ring successors, and refresh cached
// states so terminal jobs stop being reconsidered.
func (g *Gateway) Run(ctx context.Context) {
	t := time.NewTicker(g.reconcileEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.ReconcileOnce(ctx)
		}
	}
}

// ReconcileOnce performs one sweep-and-repair pass. Exported so tests
// (and operators via signal handlers, if they wish) can drive the loop
// deterministically. It returns how many jobs were handed off.
func (g *Gateway) ReconcileOnce(ctx context.Context) int {
	// Expire leases first so the ring reflects reality. Sweep returns the
	// workers that just died; routes pointing at any non-live worker are
	// handoff candidates (this also catches workers that expired while
	// the gateway was not looking).
	expired := g.reg.Sweep()
	for _, w := range expired {
		if g.log != nil {
			g.log.Warn("worker lease expired", "worker", w.ID, "url", w.URL)
		}
	}
	_, alive, _ := g.currentRing()
	live := make(map[string]bool, len(alive))
	for _, w := range alive {
		live[w.ID] = true
	}

	g.refreshTerminalStates(ctx, live)

	// Every route stranded on a dead worker moves — including jobs that
	// had already finished there: their result bytes lived in the dead
	// worker's cache, and determinism (plus the shared chunk directory)
	// makes the successor's re-run cheap and byte-identical. Only a
	// canceled job stays dead; reviving it would undo the user's cancel.
	//
	// A worker the health tracker has kept ejected past the grace window
	// is treated the same even while its lease survives: under an
	// asymmetric partition the worker's heartbeats still arrive (that leg
	// works) while the gateway's own requests all fail, so lease expiry
	// alone would strand its routes forever.
	handed := 0
	for _, rt := range g.snapshotRoutes() {
		g.mu.Lock()
		needsHome := !rt.peerServed && rt.state != jobs.StateCanceled &&
			(!live[rt.WorkerID] || g.ejectedTooLong(rt.WorkerID))
		g.mu.Unlock()
		if !needsHome {
			continue
		}
		if g.handoff(ctx, rt) {
			handed++
		}
	}
	return handed
}

// ejectedTooLong reports whether a worker has been ejected (or failing
// its half-open probes) for at least the eject-handoff grace window.
func (g *Gateway) ejectedTooLong(workerID string) bool {
	since, down := g.health.ejectedSince(workerID)
	return down && g.clock().Sub(since) >= g.ejectHandoffAfter
}

// handoff finds an orphaned route a new home. The cheapest home wins: if
// any live worker holds a peer replica of the finished result (the dead
// worker replicated it to its ring successor before dying), the route is
// marked peer-served and no job runs anywhere — zero recompute. Otherwise
// it re-dispatches to the ring's current owner for the fingerprint, which
// resumes from the replicate chunks the dead worker already persisted
// (workers share the chunk directory), recomputing only the missing
// replicates. Reports success.
func (g *Gateway) handoff(ctx context.Context, rt *route) bool {
	g.mu.Lock()
	from := rt.WorkerID
	spec, fp, traceID := rt.SpecJSON, rt.Fingerprint, rt.TraceID
	g.mu.Unlock()

	if g.serveFromPeer(ctx, rt, from) {
		return true
	}
	if g.mPeerFallback != nil {
		g.mPeerFallback.Inc()
	}

	res, err := g.dispatch(ctx, spec, fp, traceID, jobs.OriginHandoff)
	if err != nil {
		if g.mHandoffFail != nil {
			g.mHandoffFail.Inc()
		}
		if g.log != nil {
			g.log.Error("handoff failed", "job", rt.ID, "from", from, "err", err)
		}
		return false
	}
	if g.mHandoffs != nil {
		g.mHandoffs.Inc()
	}

	g.mu.Lock()
	rt.WorkerID = res.WorkerID
	rt.WorkerURL = res.WorkerURL
	rt.WorkerJobID = res.WorkerJobID
	rt.Handoffs++
	rt.state = jobs.StateQueued
	rt.notes = append(rt.notes, jobs.Event{
		Seq:     -1,
		State:   jobs.StateQueued,
		Stage:   "handoff",
		Message: fmt.Sprintf("worker %s lost its lease; re-dispatched to %s (attempt %d)", from, res.WorkerID, rt.Handoffs),
	})
	g.mu.Unlock()
	g.noteState(rt, res.Snapshot)

	if g.log != nil {
		g.log.Info("handed off job", "job", rt.ID, "from", from, "to", res.WorkerID, "worker_job", res.WorkerJobID)
	}
	return true
}

// serveFromPeer tries to settle an orphaned route from a peer replica:
// it probes the live, allowed ring candidates (the dead worker's
// successors hold its replicated results) for GET /v1/peer/results/{fp}
// and, on a hit, rewires the route to serve straight from that holder —
// state done, no worker-side job at all. The replica document is the
// same content-addressed bytes the original /result served, so clients
// cannot tell the difference.
func (g *Gateway) serveFromPeer(ctx context.Context, rt *route, from string) bool {
	g.mu.Lock()
	fp := rt.Fingerprint
	g.mu.Unlock()
	rg, alive, _ := g.currentRing()
	for _, id := range rg.Successors(fp, 0) {
		if id == from {
			continue
		}
		worker, ok := workerByID(alive, id)
		if !ok || !g.health.allow(id) {
			continue
		}
		if !g.peerHas(ctx, worker.URL, fp) {
			continue
		}
		g.mu.Lock()
		rt.WorkerID = worker.ID
		rt.WorkerURL = worker.URL
		rt.WorkerJobID = ""
		rt.Handoffs++
		rt.state = jobs.StateDone
		rt.peerServed = true
		rt.peerSnap = map[string]any{
			"state":       string(jobs.StateDone),
			"fingerprint": fp,
			"origin":      jobs.OriginHandoff,
			"peer_served": true,
		}
		rt.notes = append(rt.notes, jobs.Event{
			Seq:     -1,
			State:   jobs.StateDone,
			Stage:   "handoff",
			Message: fmt.Sprintf("worker %s lost; result served from peer replica on %s (attempt %d)", from, worker.ID, rt.Handoffs),
		})
		g.mu.Unlock()
		if g.mPeerServed != nil {
			g.mPeerServed.Inc()
		}
		if g.mHandoffs != nil {
			g.mHandoffs.Inc()
		}
		if g.log != nil {
			g.log.Info("serving job from peer replica", "job", rt.ID, "from", from, "peer", worker.ID, "fingerprint", fp)
		}
		return true
	}
	return false
}

// peerHas probes one worker's peer-replica surface for a fingerprint.
func (g *Gateway) peerHas(ctx context.Context, baseURL, fp string) bool {
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/peer/results/"+fp, nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode == http.StatusOK
}

// refreshTerminalStates asks each live worker which of the gateway's
// non-terminal jobs have finished — one ?state=done,failed,canceled
// listing per worker — and caches the answers, so the routing table's
// view converges even when no client is polling (and a cancel observed
// here keeps that job from ever being revived by a handoff).
func (g *Gateway) refreshTerminalStates(ctx context.Context, live map[string]bool) {
	pending := make(map[string][]*route)
	for _, rt := range g.snapshotRoutes() {
		g.mu.Lock()
		interesting := live[rt.WorkerID] && !rt.state.Terminal()
		g.mu.Unlock()
		if interesting {
			pending[rt.WorkerID] = append(pending[rt.WorkerID], rt)
		}
	}
	for workerID, rts := range pending {
		snaps, err := g.fetchWorkerList(ctx, rts[0].WorkerURL, "done,failed,canceled")
		if err != nil {
			if g.log != nil {
				g.log.Warn("terminal-state refresh failed", "worker", workerID, "err", err)
			}
			continue
		}
		byWorkerJob := make(map[string]map[string]any, len(snaps))
		for _, snap := range snaps {
			byWorkerJob[stringField(snap, "id")] = snap
		}
		for _, rt := range rts {
			if snap, ok := byWorkerJob[rt.WorkerJobID]; ok {
				g.noteState(rt, snap)
			}
		}
	}
}
