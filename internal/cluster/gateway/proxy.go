package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"tempriv/internal/jobs"
	"tempriv/internal/obs"
	"tempriv/internal/scenario"
)

// maxSpecBytes bounds a submitted scenario document, matching the worker
// API's own cap.
const maxSpecBytes = 1 << 20

// handleSubmit validates the spec at the edge (a malformed document never
// costs a worker round-trip), places it on the ring by fingerprint, and
// returns the worker's snapshot rewritten under a gateway job ID.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	_, root := g.tracer.StartTrace(r.Context(), r.Header.Get("X-Trace-Id"), "gateway.job")
	traceID := root.TraceID()
	if traceID == "" && obs.ValidTraceID(r.Header.Get("X-Trace-Id")) {
		// No gateway tracer, but the client's ID is sane: still thread it
		// through so the worker adopts it.
		traceID = r.Header.Get("X-Trace-Id")
	}
	if traceID != "" {
		w.Header().Set("X-Trace-Id", traceID)
	}
	defer root.End()

	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("scenario document exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		root.EndErr(err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	canon, err := spec.CanonicalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	root.Annotate("fingerprint", fp)

	res, err := g.dispatch(r.Context(), canon, fp, traceID, "")
	if err != nil {
		root.EndErr(err)
		writeWorkerError(w, err)
		return
	}
	root.Annotate("worker", res.WorkerID)

	g.mu.Lock()
	id := g.mintID()
	g.mu.Unlock()
	rt := &route{
		ID:          id,
		WorkerID:    res.WorkerID,
		WorkerURL:   res.WorkerURL,
		WorkerJobID: res.WorkerJobID,
		Fingerprint: fp,
		SpecJSON:    canon,
		TraceID:     traceID,
		state:       jobs.StateQueued,
	}
	g.insertRoute(rt)
	g.noteState(rt, res.Snapshot)
	root.BindJob(id)
	if g.log != nil {
		g.log.Info("dispatched job", "job", id, "worker", res.WorkerID, "worker_job", res.WorkerJobID, "fingerprint", fp)
	}
	writeJSON(w, http.StatusAccepted, rewriteSnapshot(res.Snapshot, rt))
}

// proxyJSON performs a worker request for a route and forwards the JSON
// response with the snapshot rewritten when it carries the worker job ID.
func (g *Gateway) proxyJSON(w http.ResponseWriter, r *http.Request, rt *route, method, path string) {
	req, err := http.NewRequestWithContext(r.Context(), method, rt.WorkerURL+path, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if rt.TraceID != "" {
		req.Header.Set("X-Trace-Id", rt.TraceID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("worker %s unreachable: %w", rt.WorkerID, err))
		return
	}
	defer resp.Body.Close()
	var snap map[string]any
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap); derr != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("decoding worker %s response: %w", rt.WorkerID, derr))
		return
	}
	if resp.StatusCode >= 400 {
		// Forward the worker's error contract under the gateway's framing.
		writeJSON(w, resp.StatusCode, snap)
		return
	}
	g.noteState(rt, snap)
	writeJSON(w, resp.StatusCode, rewriteSnapshot(snap, rt))
}

// peerSnapshot renders a peer-served route's synthesized done snapshot
// under the gateway's public framing.
func (g *Gateway) peerSnapshot(rt *route) map[string]any {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]any, len(rt.peerSnap)+3)
	for k, v := range rt.peerSnap {
		out[k] = v
	}
	out["id"] = rt.ID
	out["worker"] = rt.WorkerID
	if rt.Handoffs > 0 {
		out["handoffs"] = rt.Handoffs
	}
	return out
}

// isPeerServed snapshots the flag under the gateway lock.
func (g *Gateway) isPeerServed(rt *route) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return rt.peerServed
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if g.isPeerServed(rt) {
		writeJSON(w, http.StatusOK, g.peerSnapshot(rt))
		return
	}
	g.proxyJSON(w, r, rt, http.MethodGet, "/v1/jobs/"+rt.WorkerJobID)
}

func (g *Gateway) handleCancel(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if g.isPeerServed(rt) {
		// Already done; canceling a finished job is a no-op everywhere.
		writeJSON(w, http.StatusOK, g.peerSnapshot(rt))
		return
	}
	g.proxyJSON(w, r, rt, http.MethodDelete, "/v1/jobs/"+rt.WorkerJobID)
}

// handleResult streams the worker's result body — full JSON or the
// ?partial=1 JSONL replicate stream — byte-for-byte. Result documents are
// content-addressed by fingerprint and carry no job ID, so no rewriting
// is needed; status, Content-Type and Retry-After pass through.
//
// Peer-served routes proxy the replica holder's /v1/peer/results/{fp}
// document instead — the identical bytes, no job required. Full-document
// reads on ordinary routes are hedged: if the owner has not answered
// within the hedge delay (2× the cluster's observed p99 by default), the
// gateway races a peer-replica read against it and serves whichever
// succeeds first.
func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if g.isPeerServed(rt) {
		g.mu.Lock()
		path := "/v1/peer/results/" + rt.Fingerprint
		g.mu.Unlock()
		g.proxyStream(w, r, rt, path, nil)
		return
	}
	path := "/v1/jobs/" + rt.WorkerJobID + "/result"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	if r.URL.Query().Get("partial") == "" && g.hedgeDelay >= 0 {
		g.hedgedResult(w, r, rt, path)
		return
	}
	g.proxyStream(w, r, rt, path, nil)
}

// bufferedFetch is one buffered HTTP response in a hedged race.
type bufferedFetch struct {
	status int
	header http.Header
	body   []byte
	err    error
	hedge  bool
}

// fetchBuffered performs one GET and buffers the whole body (bounded).
func (g *Gateway) fetchBuffered(ctx context.Context, url, traceID string, hedge bool) bufferedFetch {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return bufferedFetch{err: err, hedge: hedge}
	}
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return bufferedFetch{err: err, hedge: hedge}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return bufferedFetch{err: err, hedge: hedge}
	}
	return bufferedFetch{status: resp.StatusCode, header: resp.Header, body: body, hedge: hedge}
}

// hedgeTarget picks the peer endpoint to race against a slow owner: the
// first live, allowed ring candidate other than the owner itself.
func (g *Gateway) hedgeTarget(rt *route) (string, bool) {
	g.mu.Lock()
	fp, owner := rt.Fingerprint, rt.WorkerID
	g.mu.Unlock()
	rg, alive, _ := g.currentRing()
	for _, id := range rg.Successors(fp, 0) {
		if id == owner {
			continue
		}
		worker, ok := workerByID(alive, id)
		if !ok || !g.health.allow(id) {
			continue
		}
		return worker.URL + "/v1/peer/results/" + fp, true
	}
	return "", false
}

// resolveHedgeDelay turns the configured delay into a concrete wait:
// fixed when set, else 2× the cluster-wide p99 clamped to [25ms, 2s].
func (g *Gateway) resolveHedgeDelay() time.Duration {
	if g.hedgeDelay > 0 {
		return g.hedgeDelay
	}
	d := 2 * g.health.p99()
	if d < 25*time.Millisecond {
		d = 25 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// hedgedResult races the owner's full result document against a peer
// replica: the owner gets a head start of the hedge delay, then the first
// 200 wins. The documents are content-addressed and byte-identical, so
// the race can never serve divergent answers. Failures fall back to
// whatever the owner said — the hedge only ever improves latency.
func (g *Gateway) hedgedResult(w http.ResponseWriter, r *http.Request, rt *route, path string) {
	g.mu.Lock()
	ownerURL, traceID, ownerID := rt.WorkerURL, rt.TraceID, rt.WorkerID
	g.mu.Unlock()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	results := make(chan bufferedFetch, 2)
	inFlight := 1
	go func() { results <- g.fetchBuffered(ctx, ownerURL+path, traceID, false) }()

	timer := time.NewTimer(g.resolveHedgeDelay())
	defer timer.Stop()
	hedgeLaunched := false
	launchHedge := func() bool {
		if hedgeLaunched {
			return false
		}
		hedgeLaunched = true
		url, ok := g.hedgeTarget(rt)
		if !ok {
			return false
		}
		if g.mHedged != nil {
			g.mHedged.Inc()
		}
		go func() { results <- g.fetchBuffered(ctx, url, traceID, true) }()
		return true
	}
	var ownerRes *bufferedFetch
	for {
		select {
		case <-timer.C:
			if launchHedge() {
				inFlight++
			}
		case res := <-results:
			inFlight--
			if res.err == nil && res.status == http.StatusOK {
				if res.hedge {
					if g.mHedgeWins != nil {
						g.mHedgeWins.Inc()
					}
					if g.log != nil {
						g.log.Info("hedged read won", "job", rt.ID, "owner", ownerID)
					}
				}
				g.serveBuffered(w, rt, res)
				return
			}
			if !res.hedge {
				if res.err == nil && res.status >= 400 && res.status < 500 {
					// The owner answered authoritatively (result not ready,
					// job failed, ...): forward it, don't second-guess.
					g.serveBuffered(w, rt, res)
					return
				}
				// Owner unreachable or 5xx: make sure a hedge is racing.
				ownerRes = &res
				if launchHedge() {
					inFlight++
				}
			}
			if inFlight == 0 {
				// Every leg failed; the owner's answer is the honest one.
				if ownerRes != nil {
					res = *ownerRes
				}
				g.serveBuffered(w, rt, res)
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// serveBuffered writes one buffered leg of a hedged race to the client.
func (g *Gateway) serveBuffered(w http.ResponseWriter, rt *route, res bufferedFetch) {
	if res.err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("worker %s unreachable: %w", rt.WorkerID, res.err))
		return
	}
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// handleEvents streams the worker's JSONL event feed, prefixed with any
// synthetic handoff notes (seq -1) this job accumulated — so a watcher
// that attached through the gateway sees the crash and the re-dispatch
// inline, then the successor's own history from its beginning.
//
// The stream survives worker failover: when the feed breaks while the
// job is still non-terminal, the gateway holds the client connection
// open, emitting {"keepalive":true} lines on the EventKeepalive cadence
// (the same shape the worker's own idle stream uses), until the
// reconcile loop rehomes the route — then reconnects to the successor
// and resumes with its history. The wait is bounded by FailoverWait.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitted := 0 // synthetic notes already written
	emitNotes := func() bool {
		g.mu.Lock()
		notes := make([]jobs.Event, len(rt.notes[emitted:]))
		copy(notes, rt.notes[emitted:])
		g.mu.Unlock()
		for _, ev := range notes {
			if err := enc.Encode(ev); err != nil {
				return false
			}
			emitted++
		}
		if len(notes) > 0 && flusher != nil {
			flusher.Flush()
		}
		return true
	}

	var deadline time.Time // failover budget; persists across reconnects
	for {
		if !emitNotes() {
			return
		}
		g.mu.Lock()
		workerURL, workerJobID := rt.WorkerURL, rt.WorkerJobID
		gen := rt.Handoffs
		peer := rt.peerServed
		traceID := rt.TraceID
		g.mu.Unlock()
		if peer {
			// The peer-served note (just emitted) is the end of the story:
			// the result exists, no job runs anywhere.
			return
		}

		last, err := g.streamWorkerEvents(r.Context(), w, flusher, workerURL, workerJobID, traceID)
		if err == nil && last.Terminal() {
			emitNotes()
			return
		}
		if r.Context().Err() != nil {
			return
		}

		// The feed broke (worker died or partitioned) before delivering a
		// terminal event. Keep the client warm while the reconcile loop
		// finds the route a new home; the budget spans reconnect attempts
		// so a stream that keeps breaking cannot hold the client forever.
		if deadline.IsZero() {
			deadline = time.Now().Add(g.failoverWait)
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(g.eventKeepalive):
			}
			if _, werr := io.WriteString(w, "{\"keepalive\":true}\n"); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if time.Now().After(deadline) {
				return
			}
			g.mu.Lock()
			moved := rt.Handoffs != gen || rt.peerServed
			terminal := rt.state.Terminal()
			g.mu.Unlock()
			if moved {
				// Fresh home, fresh budget for any future failure.
				deadline = time.Time{}
				break
			}
			if terminal {
				// The route says the job finished but the stream never
				// showed it: reconnect and replay to the real end.
				break
			}
		}
	}
}

// streamWorkerEvents connects to one worker's event feed and forwards
// its lines as they arrive, tracking the last job state seen so the
// caller can tell a cleanly finished stream from a broken one. Returns
// the last state observed and the reason the stream ended (nil when the
// worker closed it normally).
func (g *Gateway) streamWorkerEvents(ctx context.Context, w io.Writer, flusher http.Flusher, baseURL, jobID, traceID string) (jobs.State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return "", err
	}
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		return "", fmt.Errorf("worker events: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var last jobs.State
	for sc.Scan() {
		line := sc.Bytes()
		if _, werr := w.Write(append(line, '\n')); werr != nil {
			return last, werr
		}
		if flusher != nil {
			flusher.Flush()
		}
		var ev struct {
			State jobs.State `json:"state"`
		}
		if json.Unmarshal(line, &ev) == nil && ev.State != "" {
			last = ev.State
		}
	}
	return last, sc.Err()
}

// proxyStream forwards a streaming worker response. Headers and status
// land first, then optional prologue events, then the worker's bytes as
// they arrive (flushed per read so live JSONL stays live).
func (g *Gateway) proxyStream(w http.ResponseWriter, r *http.Request, rt *route, path string, prologue []jobs.Event) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.WorkerURL+path, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if rt.TraceID != "" {
		req.Header.Set("X-Trace-Id", rt.TraceID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("worker %s unreachable: %w", rt.WorkerID, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	if resp.StatusCode < 400 && len(prologue) > 0 {
		enc := json.NewEncoder(w)
		for _, ev := range prologue {
			_ = enc.Encode(ev)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// handleList merges every worker's view of the gateway's jobs into one
// listing, pushing the ?state= filter down to the workers so a terminal
// sweep costs one request per worker rather than one per job.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	stateQ := r.URL.Query().Get("state")
	if stateQ != "" {
		for _, part := range strings.Split(stateQ, ",") {
			switch jobs.State(strings.TrimSpace(part)) {
			case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
			default:
				writeError(w, http.StatusBadRequest, fmt.Errorf("unknown state %q (valid: queued, running, done, failed, canceled)", part))
				return
			}
		}
	}

	routes := g.snapshotRoutes()
	byWorker := make(map[string][]*route)
	peerRoutes := make([]*route, 0)
	for _, rt := range routes {
		if g.isPeerServed(rt) {
			peerRoutes = append(peerRoutes, rt)
			continue
		}
		byWorker[rt.WorkerID] = append(byWorker[rt.WorkerID], rt)
	}

	// One listing request per worker; each worker's snapshots are keyed
	// back to gateway routes by worker job ID.
	merged := make(map[string]map[string]any) // gateway job ID -> snapshot
	for workerID, rts := range byWorker {
		snaps, err := g.fetchWorkerList(r.Context(), rts[0].WorkerURL, stateQ)
		if err != nil {
			if g.log != nil {
				g.log.Warn("listing worker failed", "worker", workerID, "err", err)
			}
			continue
		}
		byWorkerJob := make(map[string]map[string]any, len(snaps))
		for _, snap := range snaps {
			byWorkerJob[stringField(snap, "id")] = snap
		}
		for _, rt := range rts {
			if snap, ok := byWorkerJob[rt.WorkerJobID]; ok {
				g.noteState(rt, snap)
				merged[rt.ID] = rewriteSnapshot(snap, rt)
			}
		}
	}

	// Peer-served routes have no worker-side job to list; they are done
	// by construction and appear whenever the filter admits done jobs.
	admitsDone := stateQ == ""
	if !admitsDone {
		for _, part := range strings.Split(stateQ, ",") {
			if jobs.State(strings.TrimSpace(part)) == jobs.StateDone {
				admitsDone = true
				break
			}
		}
	}
	if admitsDone {
		for _, rt := range peerRoutes {
			merged[rt.ID] = g.peerSnapshot(rt)
		}
	}

	out := make([]map[string]any, 0, len(merged))
	for _, rt := range routes {
		if snap, ok := merged[rt.ID]; ok {
			out = append(out, snap)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// fetchWorkerList retrieves a worker's job listing, optionally filtered
// by a ?state= expression the worker evaluates itself.
func (g *Gateway) fetchWorkerList(ctx context.Context, baseURL, stateQ string) ([]map[string]any, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	u := baseURL + "/v1/jobs"
	if stateQ != "" {
		u += "?state=" + url.QueryEscape(stateQ)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeWorkerError(resp)
	}
	var body struct {
		Jobs []map[string]any `json:"jobs"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&body); err != nil {
		return nil, err
	}
	return body.Jobs, nil
}

// writeWorkerError renders a dispatch error, preserving the worker's own
// status code when one came back and any shed Retry-After hint.
func writeWorkerError(w http.ResponseWriter, err error) {
	var we *workerError
	if errors.As(err, &we) {
		if we.RetryAfter > 0 {
			secs := int(we.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeError(w, we.Status, errors.New(we.Msg))
		return
	}
	writeError(w, http.StatusBadGateway, err)
}

// writeJSON / writeError mirror the worker API's uniform JSON contract.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	if (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable) && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{"error": err.Error(), "status": status})
}
