package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"tempriv/internal/jobs"
	"tempriv/internal/obs"
	"tempriv/internal/scenario"
)

// maxSpecBytes bounds a submitted scenario document, matching the worker
// API's own cap.
const maxSpecBytes = 1 << 20

// handleSubmit validates the spec at the edge (a malformed document never
// costs a worker round-trip), places it on the ring by fingerprint, and
// returns the worker's snapshot rewritten under a gateway job ID.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	_, root := g.tracer.StartTrace(r.Context(), r.Header.Get("X-Trace-Id"), "gateway.job")
	traceID := root.TraceID()
	if traceID == "" && obs.ValidTraceID(r.Header.Get("X-Trace-Id")) {
		// No gateway tracer, but the client's ID is sane: still thread it
		// through so the worker adopts it.
		traceID = r.Header.Get("X-Trace-Id")
	}
	if traceID != "" {
		w.Header().Set("X-Trace-Id", traceID)
	}
	defer root.End()

	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("scenario document exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		root.EndErr(err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	canon, err := spec.CanonicalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	root.Annotate("fingerprint", fp)

	res, err := g.dispatch(r.Context(), canon, fp, traceID, "")
	if err != nil {
		root.EndErr(err)
		writeWorkerError(w, err)
		return
	}
	root.Annotate("worker", res.WorkerID)

	g.mu.Lock()
	id := g.mintID()
	g.mu.Unlock()
	rt := &route{
		ID:          id,
		WorkerID:    res.WorkerID,
		WorkerURL:   res.WorkerURL,
		WorkerJobID: res.WorkerJobID,
		Fingerprint: fp,
		SpecJSON:    canon,
		TraceID:     traceID,
		state:       jobs.StateQueued,
	}
	g.insertRoute(rt)
	g.noteState(rt, res.Snapshot)
	root.BindJob(id)
	if g.log != nil {
		g.log.Info("dispatched job", "job", id, "worker", res.WorkerID, "worker_job", res.WorkerJobID, "fingerprint", fp)
	}
	writeJSON(w, http.StatusAccepted, rewriteSnapshot(res.Snapshot, rt))
}

// proxyJSON performs a worker request for a route and forwards the JSON
// response with the snapshot rewritten when it carries the worker job ID.
func (g *Gateway) proxyJSON(w http.ResponseWriter, r *http.Request, rt *route, method, path string) {
	req, err := http.NewRequestWithContext(r.Context(), method, rt.WorkerURL+path, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if rt.TraceID != "" {
		req.Header.Set("X-Trace-Id", rt.TraceID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("worker %s unreachable: %w", rt.WorkerID, err))
		return
	}
	defer resp.Body.Close()
	var snap map[string]any
	if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap); derr != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("decoding worker %s response: %w", rt.WorkerID, derr))
		return
	}
	if resp.StatusCode >= 400 {
		// Forward the worker's error contract under the gateway's framing.
		writeJSON(w, resp.StatusCode, snap)
		return
	}
	g.noteState(rt, snap)
	writeJSON(w, resp.StatusCode, rewriteSnapshot(snap, rt))
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	g.proxyJSON(w, r, rt, http.MethodGet, "/v1/jobs/"+rt.WorkerJobID)
}

func (g *Gateway) handleCancel(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	g.proxyJSON(w, r, rt, http.MethodDelete, "/v1/jobs/"+rt.WorkerJobID)
}

// handleResult streams the worker's result body — full JSON or the
// ?partial=1 JSONL replicate stream — byte-for-byte. Result documents are
// content-addressed by fingerprint and carry no job ID, so no rewriting
// is needed; status, Content-Type and Retry-After pass through.
func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	path := "/v1/jobs/" + rt.WorkerJobID + "/result"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	g.proxyStream(w, r, rt, path, nil)
}

// handleEvents streams the worker's JSONL event feed, prefixed with any
// synthetic handoff notes (seq -1) this job accumulated — so a watcher
// that attached through the gateway sees the crash and the re-dispatch
// inline, then the successor's own history from its beginning.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	rt, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	g.mu.Lock()
	notes := make([]jobs.Event, len(rt.notes))
	copy(notes, rt.notes)
	g.mu.Unlock()
	g.proxyStream(w, r, rt, "/v1/jobs/"+rt.WorkerJobID+"/events", notes)
}

// proxyStream forwards a streaming worker response. Headers and status
// land first, then optional prologue events, then the worker's bytes as
// they arrive (flushed per read so live JSONL stays live).
func (g *Gateway) proxyStream(w http.ResponseWriter, r *http.Request, rt *route, path string, prologue []jobs.Event) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.WorkerURL+path, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if rt.TraceID != "" {
		req.Header.Set("X-Trace-Id", rt.TraceID)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("worker %s unreachable: %w", rt.WorkerID, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	if resp.StatusCode < 400 && len(prologue) > 0 {
		enc := json.NewEncoder(w)
		for _, ev := range prologue {
			_ = enc.Encode(ev)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// handleList merges every worker's view of the gateway's jobs into one
// listing, pushing the ?state= filter down to the workers so a terminal
// sweep costs one request per worker rather than one per job.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	stateQ := r.URL.Query().Get("state")
	if stateQ != "" {
		for _, part := range strings.Split(stateQ, ",") {
			switch jobs.State(strings.TrimSpace(part)) {
			case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
			default:
				writeError(w, http.StatusBadRequest, fmt.Errorf("unknown state %q (valid: queued, running, done, failed, canceled)", part))
				return
			}
		}
	}

	routes := g.snapshotRoutes()
	byWorker := make(map[string][]*route)
	for _, rt := range routes {
		byWorker[rt.WorkerID] = append(byWorker[rt.WorkerID], rt)
	}

	// One listing request per worker; each worker's snapshots are keyed
	// back to gateway routes by worker job ID.
	merged := make(map[string]map[string]any) // gateway job ID -> snapshot
	for workerID, rts := range byWorker {
		snaps, err := g.fetchWorkerList(r.Context(), rts[0].WorkerURL, stateQ)
		if err != nil {
			if g.log != nil {
				g.log.Warn("listing worker failed", "worker", workerID, "err", err)
			}
			continue
		}
		byWorkerJob := make(map[string]map[string]any, len(snaps))
		for _, snap := range snaps {
			byWorkerJob[stringField(snap, "id")] = snap
		}
		for _, rt := range rts {
			if snap, ok := byWorkerJob[rt.WorkerJobID]; ok {
				g.noteState(rt, snap)
				merged[rt.ID] = rewriteSnapshot(snap, rt)
			}
		}
	}

	out := make([]map[string]any, 0, len(merged))
	for _, rt := range routes {
		if snap, ok := merged[rt.ID]; ok {
			out = append(out, snap)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// fetchWorkerList retrieves a worker's job listing, optionally filtered
// by a ?state= expression the worker evaluates itself.
func (g *Gateway) fetchWorkerList(ctx context.Context, baseURL, stateQ string) ([]map[string]any, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	u := baseURL + "/v1/jobs"
	if stateQ != "" {
		u += "?state=" + url.QueryEscape(stateQ)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeWorkerError(resp)
	}
	var body struct {
		Jobs []map[string]any `json:"jobs"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&body); err != nil {
		return nil, err
	}
	return body.Jobs, nil
}

// writeWorkerError renders a dispatch error, preserving the worker's own
// status code when one came back.
func writeWorkerError(w http.ResponseWriter, err error) {
	var we *workerError
	if errors.As(err, &we) {
		writeError(w, we.Status, errors.New(we.Msg))
		return
	}
	writeError(w, http.StatusBadGateway, err)
}

// writeJSON / writeError mirror the worker API's uniform JSON contract.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]any{"error": err.Error(), "status": status})
}
