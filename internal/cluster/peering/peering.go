// Package peering replicates finished result bytes between cluster
// workers so a crash handoff can serve the completed job from the ring
// successor's replica instead of recomputing it from chunks.
//
// Two halves:
//
//   - Store: a bounded in-memory replica store each worker keeps for its
//     ring predecessors. The server mounts it at POST/GET
//     /v1/peer/results; the gateway's handoff (and hedged reads) fetch
//     from it. Replicas are a durability *bonus* on top of the shared
//     chunk directory — losing one only costs a resume-from-chunks — so
//     memory-bounded LRU is the right shape: no disk, no fsync, evict
//     the coldest when full.
//
//   - Replicator: the write-behind sender. Job completion enqueues the
//     result (never blocking the worker goroutine); a background loop
//     resolves the fingerprint's ring successor from the latest
//     membership snapshot and POSTs the replica, retrying with backoff —
//     re-resolving the successor each attempt, so membership churn
//     mid-retry re-targets instead of failing.
package peering

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"tempriv/internal/cluster/registry"
	"tempriv/internal/cluster/ring"
	"tempriv/internal/telemetry"
)

// fingerprintRE matches the 64-hex-char seed-inclusive spec fingerprint
// every result document is addressed by.
var fingerprintRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// errNoSuccessor marks a replication attempt that found no peer on the
// ring — the single-worker steady state, not a delivery failure.
var errNoSuccessor = errors.New("peering: no eligible successor")

// Replica is one finished result staged for peer serving. The byte
// fields are exactly the worker's result-document fields; serving a
// replica re-renders the same document, so the bytes a client sees are
// identical whichever worker answers.
type Replica struct {
	Fingerprint string
	TableText   []byte
	TableCSV    []byte
	Manifest    []byte
}

func (r Replica) size() int64 {
	return int64(len(r.Fingerprint) + len(r.TableText) + len(r.TableCSV) + len(r.Manifest))
}

// Valid reports whether the replica is well-formed enough to store:
// a canonical fingerprint and a non-empty result.
func (r Replica) Valid() error {
	if !fingerprintRE.MatchString(r.Fingerprint) {
		return fmt.Errorf("peering: malformed fingerprint %q", r.Fingerprint)
	}
	if len(r.TableText) == 0 && len(r.TableCSV) == 0 && len(r.Manifest) == 0 {
		return fmt.Errorf("peering: empty replica for %s", r.Fingerprint)
	}
	return nil
}

// Document is the wire form of POST /v1/peer/results: the result
// document fields plus an explicit completeness marker, so a reader can
// never mistake a replica for a partial result.
type Document struct {
	Fingerprint string          `json:"fingerprint"`
	TableText   string          `json:"table_text"`
	TableCSV    string          `json:"table_csv"`
	Manifest    json.RawMessage `json:"manifest"`
	Complete    bool            `json:"complete"`
}

// StoreOptions bound a Store. Zero values take defaults.
type StoreOptions struct {
	// MaxReplicas bounds the entry count (default 512).
	MaxReplicas int
	// MaxBytes bounds total replica bytes (default 128 MiB).
	MaxBytes int64
}

// Store is the bounded in-memory LRU replica store.
type Store struct {
	mu      sync.Mutex
	max     int
	maxB    int64
	bytes   int64
	entries map[string]Replica
	order   []string // LRU order, oldest first (touched on Get and Put)
	evicted uint64
}

// NewStore builds an empty Store.
func NewStore(opts StoreOptions) *Store {
	if opts.MaxReplicas <= 0 {
		opts.MaxReplicas = 512
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 128 << 20
	}
	return &Store{
		max:     opts.MaxReplicas,
		maxB:    opts.MaxBytes,
		entries: make(map[string]Replica),
	}
}

// touch moves fp to the back of the LRU order (most recently used).
// Caller holds s.mu.
func (s *Store) touch(fp string) {
	for i, id := range s.order {
		if id == fp {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.order = append(s.order, fp)
}

// Put stores (or refreshes) a replica, evicting the least recently used
// entries to stay within bounds. An oversized replica (alone exceeding
// MaxBytes) is rejected rather than flushing the whole store.
func (s *Store) Put(r Replica) error {
	if err := r.Valid(); err != nil {
		return err
	}
	if r.size() > s.maxB {
		return fmt.Errorf("peering: replica %s is %d bytes, store bound is %d", r.Fingerprint[:12], r.size(), s.maxB)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[r.Fingerprint]; ok {
		s.bytes -= old.size()
	}
	s.entries[r.Fingerprint] = r
	s.bytes += r.size()
	s.touch(r.Fingerprint)
	for (len(s.entries) > s.max || s.bytes > s.maxB) && len(s.order) > 1 {
		victim := s.order[0]
		if victim == r.Fingerprint {
			break
		}
		s.order = s.order[1:]
		s.bytes -= s.entries[victim].size()
		delete(s.entries, victim)
		s.evicted++
	}
	return nil
}

// Get returns the replica for fp, refreshing its LRU position.
func (s *Store) Get(fp string) (Replica, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.entries[fp]
	if ok {
		s.touch(fp)
	}
	return r, ok
}

// Len reports how many replicas are held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports total replica bytes held.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Evicted reports how many replicas were LRU-evicted over the store's
// lifetime.
func (s *Store) Evicted() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// membership is an immutable snapshot of the cluster the replicator
// routes against, swapped atomically on every OnMembers callback.
type membership struct {
	ring *ring.Ring
	urls map[string]string
}

// ReplicatorOptions configure a Replicator. SelfID is required.
type ReplicatorOptions struct {
	// SelfID is this worker's cluster ID; replicas never target self.
	SelfID string
	// Client performs the POSTs (default: a 10s-timeout client). Wrap
	// its transport with chaostransport to inject worker↔worker faults.
	Client *http.Client
	// Vnodes per worker on the ring (ring.DefaultVnodes when <= 0); must
	// match the gateway's so successor resolution agrees.
	Vnodes int
	// Attempts bounds how many times one replica is posted before being
	// dropped (default 5).
	Attempts int
	// Backoff is the first retry delay, doubling per attempt (default
	// 250ms).
	Backoff time.Duration
	// QueueDepth bounds the write-behind queue (default 64). When full,
	// Offer drops the replica (and counts it) instead of blocking the
	// worker goroutine — the chunk directory still covers recovery.
	QueueDepth int
	// Sleep waits between retries (injectable; default time.Sleep).
	Sleep func(time.Duration)
	// Log receives replication warnings; nil discards them.
	Log *slog.Logger
	// Telemetry registers tempriv_cluster_peer_* series; nil disables.
	Telemetry *telemetry.Registry
}

// Replicator is the write-behind replica sender.
type Replicator struct {
	self     string
	client   *http.Client
	vnodes   int
	attempts int
	backoff  time.Duration
	sleep    func(time.Duration)
	log      *slog.Logger

	members atomic.Pointer[membership]
	queue   chan Replica
	idle    sync.WaitGroup // tracks in-flight sends for Wait (tests, drain)

	mReplicated *telemetry.Counter // replicas accepted by a peer
	mErrors     *telemetry.Counter // send attempts that failed
	mDropped    *telemetry.Counter // replicas dropped (queue full / attempts exhausted / no peer)
}

// NewReplicator builds a Replicator; call Run to start the send loop and
// SetMembers from the registry client's OnMembers callback.
func NewReplicator(opts ReplicatorOptions) *Replicator {
	if opts.SelfID == "" {
		panic("peering: ReplicatorOptions.SelfID is required")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 5
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 250 * time.Millisecond
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	r := &Replicator{
		self:     opts.SelfID,
		client:   opts.Client,
		vnodes:   opts.Vnodes,
		attempts: opts.Attempts,
		backoff:  opts.Backoff,
		sleep:    opts.Sleep,
		log:      opts.Log,
		queue:    make(chan Replica, opts.QueueDepth),
	}
	if opts.Telemetry != nil {
		r.mReplicated = opts.Telemetry.Counter("tempriv_cluster_peer_replicated_total")
		r.mErrors = opts.Telemetry.Counter("tempriv_cluster_peer_replicate_errors_total")
		r.mDropped = opts.Telemetry.Counter("tempriv_cluster_peer_replicate_dropped_total")
	}
	return r
}

// SetMembers installs a fresh membership snapshot (wire this to the
// registry client's OnMembers). Safe from any goroutine.
func (r *Replicator) SetMembers(ws []registry.Worker) {
	urls := make(map[string]string, len(ws))
	for _, w := range ws {
		urls[w.ID] = w.URL
	}
	r.members.Store(&membership{ring: ring.New(registry.IDs(ws), r.vnodes), urls: urls})
}

// successor resolves the first ring successor for fp that is not this
// worker and has a known URL.
func (r *Replicator) successor(fp string) (id, url string, ok bool) {
	m := r.members.Load()
	if m == nil || m.ring.Len() == 0 {
		return "", "", false
	}
	for _, cand := range m.ring.Successors(fp, 0) {
		if cand == r.self {
			continue
		}
		if u, known := m.urls[cand]; known && u != "" {
			return cand, u, true
		}
	}
	return "", "", false
}

// Offer enqueues a finished result for replication. Never blocks: when
// the queue is full the replica is dropped and counted — peer replicas
// are an optimization over chunk-resume, not a durability requirement.
func (r *Replicator) Offer(rep Replica) {
	if err := rep.Valid(); err != nil {
		r.drop(rep, err)
		return
	}
	r.idle.Add(1)
	select {
	case r.queue <- rep:
	default:
		r.idle.Done()
		r.drop(rep, fmt.Errorf("peering: replication queue full"))
	}
}

func (r *Replicator) drop(rep Replica, err error) {
	if r.mDropped != nil {
		r.mDropped.Inc()
	}
	if r.log != nil {
		r.log.Warn("dropping result replica", "fingerprint", rep.Fingerprint, "error", err)
	}
}

// Run consumes the queue until ctx is canceled.
func (r *Replicator) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case rep := <-r.queue:
			r.send(ctx, rep)
			r.idle.Done()
		}
	}
}

// Wait blocks until every offered replica has been sent or dropped
// (tests and graceful drains).
func (r *Replicator) Wait() { r.idle.Wait() }

// send posts one replica to the fingerprint's current successor,
// retrying with exponential backoff and re-resolving the target each
// attempt so membership churn re-routes rather than fails.
func (r *Replicator) send(ctx context.Context, rep Replica) {
	backoff := r.backoff
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if ctx.Err() != nil {
			return
		}
		if attempt > 0 {
			r.sleep(backoff)
			backoff *= 2
		}
		peerID, peerURL, ok := r.successor(rep.Fingerprint)
		if !ok {
			// No peer to replicate to (single-worker cluster, or membership
			// not yet known). Retrying covers the startup race.
			lastErr = errNoSuccessor
			continue
		}
		if err := r.post(ctx, peerURL, rep); err != nil {
			lastErr = err
			if r.mErrors != nil {
				r.mErrors.Inc()
			}
			if r.log != nil {
				r.log.Warn("replicating result to peer failed",
					"fingerprint", rep.Fingerprint[:12], "peer", peerID, "attempt", attempt+1, "error", err)
			}
			continue
		}
		if r.mReplicated != nil {
			r.mReplicated.Inc()
		}
		if r.log != nil {
			r.log.Debug("replicated result to peer", "fingerprint", rep.Fingerprint[:12], "peer", peerID)
		}
		return
	}
	if lastErr == errNoSuccessor {
		// A single-worker cluster has nowhere to replicate to. That is a
		// steady state, not a fault: no warning, no dropped counter.
		if r.log != nil {
			r.log.Debug("no peer to replicate to", "fingerprint", rep.Fingerprint[:12])
		}
		return
	}
	r.drop(rep, fmt.Errorf("peering: every attempt failed: %w", lastErr))
}

// post performs one POST /v1/peer/results against a peer.
func (r *Replicator) post(ctx context.Context, baseURL string, rep Replica) error {
	doc, err := json.Marshal(Document{
		Fingerprint: rep.Fingerprint,
		TableText:   string(rep.TableText),
		TableCSV:    string(rep.TableCSV),
		Manifest:    json.RawMessage(rep.Manifest),
		Complete:    true,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/peer/results", bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer returned %s", resp.Status)
	}
	return nil
}
