package peering

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tempriv/internal/cluster/registry"
)

// fp builds a syntactically valid fingerprint from a seed byte.
func fp(b byte) string { return strings.Repeat(fmt.Sprintf("%02x", b), 32) }

func replica(b byte, size int) Replica {
	return Replica{
		Fingerprint: fp(b),
		TableText:   []byte(strings.Repeat("t", size)),
		TableCSV:    []byte("csv"),
		Manifest:    []byte(`{"m":1}`),
	}
}

func TestStorePutGet(t *testing.T) {
	s := NewStore(StoreOptions{})
	r := replica(1, 10)
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(fp(1))
	if !ok || string(got.TableText) != string(r.TableText) {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := s.Get(fp(9)); ok {
		t.Fatal("missing fingerprint answered")
	}
	if s.Len() != 1 || s.Bytes() != r.size() {
		t.Fatalf("Len=%d Bytes=%d, want 1, %d", s.Len(), s.Bytes(), r.size())
	}
}

func TestStoreRejectsMalformed(t *testing.T) {
	s := NewStore(StoreOptions{})
	if err := s.Put(Replica{Fingerprint: "nope", TableText: []byte("x")}); err == nil {
		t.Fatal("malformed fingerprint accepted")
	}
	if err := s.Put(Replica{Fingerprint: fp(1)}); err == nil {
		t.Fatal("empty replica accepted")
	}
}

func TestStoreEvictsLRUOnCount(t *testing.T) {
	s := NewStore(StoreOptions{MaxReplicas: 2})
	for b := byte(1); b <= 3; b++ {
		if err := s.Put(replica(b, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(fp(1)); ok {
		t.Fatal("oldest replica should have been evicted")
	}
	for b := byte(2); b <= 3; b++ {
		if _, ok := s.Get(fp(b)); !ok {
			t.Fatalf("replica %d evicted, want retained", b)
		}
	}
	if s.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", s.Evicted())
	}
}

func TestStoreEvictsLRUOnBytesAndGetRefreshes(t *testing.T) {
	one := replica(1, 100)
	s := NewStore(StoreOptions{MaxReplicas: 100, MaxBytes: 3 * one.size()})
	for b := byte(1); b <= 3; b++ {
		if err := s.Put(replica(b, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Get(fp(1)) // refresh 1 so 2 becomes the LRU victim
	if err := s.Put(replica(4, 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fp(2)); ok {
		t.Fatal("LRU replica 2 should have been evicted")
	}
	if _, ok := s.Get(fp(1)); !ok {
		t.Fatal("refreshed replica 1 should survive")
	}
	if s.Bytes() > 3*one.size() {
		t.Fatalf("Bytes = %d exceeds bound %d", s.Bytes(), 3*one.size())
	}
}

func TestStoreRejectsOversizedReplica(t *testing.T) {
	s := NewStore(StoreOptions{MaxBytes: 64})
	if err := s.Put(replica(1, 1000)); err == nil {
		t.Fatal("oversized replica accepted")
	}
	if s.Len() != 0 {
		t.Fatal("oversized replica stored")
	}
}

// peerServer is a fake worker peer endpoint recording received documents.
type peerServer struct {
	mu   sync.Mutex
	docs []Document
	fail int // reject this many posts first
}

func (p *peerServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.fail > 0 {
			p.fail--
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		var doc Document
		if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.docs = append(p.docs, doc)
		w.WriteHeader(http.StatusNoContent)
	})
}

func (p *peerServer) received() []Document {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Document(nil), p.docs...)
}

func TestReplicatorSendsToSuccessor(t *testing.T) {
	peer := &peerServer{}
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()

	r := NewReplicator(ReplicatorOptions{SelfID: "w1", Sleep: func(time.Duration) {}})
	r.SetMembers([]registry.Worker{{ID: "w1", URL: "http://self.invalid"}, {ID: "w2", URL: srv.URL}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.Run(ctx)

	r.Offer(replica(1, 8))
	r.Wait()

	docs := peer.received()
	if len(docs) != 1 {
		t.Fatalf("peer received %d docs, want 1", len(docs))
	}
	if docs[0].Fingerprint != fp(1) || !docs[0].Complete {
		t.Fatalf("doc = %+v", docs[0])
	}
	if docs[0].TableText != strings.Repeat("t", 8) {
		t.Fatalf("table text corrupted: %q", docs[0].TableText)
	}
}

func TestReplicatorRetriesWithBackoff(t *testing.T) {
	peer := &peerServer{fail: 2}
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()

	var sleeps []time.Duration
	r := NewReplicator(ReplicatorOptions{
		SelfID:  "w1",
		Backoff: 100 * time.Millisecond,
		Sleep:   func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	r.SetMembers([]registry.Worker{{ID: "w1", URL: "http://self.invalid"}, {ID: "w2", URL: srv.URL}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.Run(ctx)

	r.Offer(replica(2, 8))
	r.Wait()

	if len(peer.received()) != 1 {
		t.Fatalf("peer received %d docs, want 1 after retries", len(peer.received()))
	}
	if len(sleeps) != 2 || sleeps[0] != 100*time.Millisecond || sleeps[1] != 200*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want [100ms 200ms]", sleeps)
	}
}

func TestReplicatorDropsAfterAttemptsExhausted(t *testing.T) {
	peer := &peerServer{fail: 100}
	srv := httptest.NewServer(peer.handler())
	defer srv.Close()

	r := NewReplicator(ReplicatorOptions{
		SelfID:   "w1",
		Attempts: 3,
		Sleep:    func(time.Duration) {},
	})
	r.SetMembers([]registry.Worker{{ID: "w1", URL: "http://self.invalid"}, {ID: "w2", URL: srv.URL}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go r.Run(ctx)

	r.Offer(replica(3, 8))
	r.Wait() // must terminate: the replica is dropped, not retried forever

	if got := len(peer.received()); got != 0 {
		t.Fatalf("peer received %d docs, want 0", got)
	}
}

func TestReplicatorNeverTargetsSelf(t *testing.T) {
	r := NewReplicator(ReplicatorOptions{SelfID: "w1", Attempts: 1, Sleep: func(time.Duration) {}})
	r.SetMembers([]registry.Worker{{ID: "w1", URL: "http://self.invalid"}})
	if _, _, ok := r.successor(fp(1)); ok {
		t.Fatal("single-member cluster resolved a successor (self)")
	}
}

func TestReplicatorOfferNeverBlocks(t *testing.T) {
	r := NewReplicator(ReplicatorOptions{SelfID: "w1", QueueDepth: 1, Sleep: func(time.Duration) {}})
	// No Run loop: the queue fills and further offers must drop, not hang.
	done := make(chan struct{})
	go func() {
		for b := byte(1); b <= 10; b++ {
			r.Offer(replica(b, 4))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Offer blocked on a full queue")
	}
}
