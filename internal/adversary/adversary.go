// Package adversary implements the paper's two adversary models: the
// baseline estimator of §2.1/§5.1 and the adaptive estimator of §5.4.
//
// Both adversaries sit at the sink, observe packet arrivals, and estimate
// each packet's creation time. Per the threat model they are
// deployment-aware (Kerckhoff's Principle: they know τ, the delay
// distributions, and the buffer size k) and can read cleartext headers, but
// cannot decrypt payloads. The Observation type enforces that boundary in
// code: an estimator receives only the arrival time and the header — never
// a packet's ground truth or sealed payload.
//
// Estimators are scored by mean square error (§2.1): higher MSE means the
// network preserved more temporal privacy.
package adversary

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tempriv/internal/metrics"
	"tempriv/internal/packet"
	"tempriv/internal/queueing"
)

// Observation is everything the adversary sees about one packet: when it
// arrived at the sink and its cleartext routing header.
type Observation struct {
	// ArrivalTime is the sink arrival time z.
	ArrivalTime float64
	// Header is the cleartext routing header, including the origin (which
	// identifies the flow) and the hop count h.
	Header packet.Header
}

// Estimator is an adversary strategy: given an observation it estimates the
// packet's creation time x̂. Estimators may be stateful (the adaptive
// adversary tracks arrival rates); Estimate is called in arrival-time order.
type Estimator interface {
	// Estimate returns the estimated creation time for an observed packet.
	Estimate(obs Observation) float64
	// Name returns a short identifier used in reports.
	Name() string
}

// Baseline is the §2.1/§5.1 adversary. For an arrival at time z on a flow
// with hop count h it estimates
//
//	x̂ = z − h·(τ + d̄)
//
// where τ is the per-hop transmission delay and d̄ the mean per-hop
// buffering delay of the (known) delay distribution — 0 against a no-delay
// network, 1/µ against a delaying one. It neglects preemption, which is
// exactly the blind spot RCAD exploits (§5.3 case 3).
type Baseline struct {
	tau       float64
	meanDelay float64
}

var _ Estimator = (*Baseline)(nil)

// NewBaseline returns a baseline adversary knowing the per-hop transmission
// delay tau and mean per-hop buffering delay meanDelay (0 for a no-delay
// network).
func NewBaseline(tau, meanDelay float64) (*Baseline, error) {
	if tau < 0 || math.IsNaN(tau) || math.IsInf(tau, 0) {
		return nil, fmt.Errorf("adversary: tau must be non-negative and finite, got %v", tau)
	}
	if meanDelay < 0 || math.IsNaN(meanDelay) || math.IsInf(meanDelay, 0) {
		return nil, fmt.Errorf("adversary: mean delay must be non-negative and finite, got %v", meanDelay)
	}
	return &Baseline{tau: tau, meanDelay: meanDelay}, nil
}

// Estimate implements Estimator.
func (b *Baseline) Estimate(obs Observation) float64 {
	h := float64(obs.Header.HopCount)
	return obs.ArrivalTime - h*(b.tau+b.meanDelay)
}

// Name implements Estimator.
func (b *Baseline) Name() string { return "baseline" }

// flowTrack accumulates what the adversary can measure about one flow from
// sink arrivals alone.
type flowTrack struct {
	count uint64
	first float64
	last  float64
}

// observe folds in one arrival time.
func (f *flowTrack) observe(z float64) {
	if f.count == 0 {
		f.first = z
	}
	f.last = z
	f.count++
}

// rate returns the measured arrival rate, or 0 before two arrivals.
func (f *flowTrack) rate() float64 {
	if f.count < 2 || f.last <= f.first {
		return 0
	}
	return float64(f.count-1) / (f.last - f.first)
}

// Adaptive is the §5.4 adversary. It measures per-flow and total arrival
// rates at the sink, uses the Erlang loss formula to predict whether RCAD
// buffers are preempting, and switches its per-hop delay estimate
// accordingly:
//
//	per-hop delay = 1/µ                  when E(λtot/µ, k) < threshold,
//	per-hop delay = min(1/µ, k/λ_flow)   otherwise,
//
// with the per-hop transmission delay τ added in either case. The paper
// uses threshold 0.1 and states the high-rate estimate as hk/λ; the min
// with 1/µ is the sanity cap a deployment-aware adversary would apply,
// since preemption only ever shortens a buffering delay whose sampled mean
// is 1/µ — without it the estimator over-corrects at moderate rates and
// does worse than the baseline, contradicting Figure 3.
type Adaptive struct {
	tau       float64
	meanDelay float64
	slots     int
	threshold float64

	flows map[packet.NodeID]*flowTrack
	total flowTrack

	// switches counts estimates made in the preemption-aware regime, for
	// reporting.
	switches uint64
}

var _ Estimator = (*Adaptive)(nil)

// NewAdaptive returns an adaptive adversary knowing the per-hop transmission
// delay tau, the mean buffering delay meanDelay = 1/µ (> 0), the buffer size
// k, and using the given preemption-probability threshold (the paper's value
// is 0.1).
func NewAdaptive(tau, meanDelay float64, k int, threshold float64) (*Adaptive, error) {
	if tau < 0 || math.IsNaN(tau) || math.IsInf(tau, 0) {
		return nil, fmt.Errorf("adversary: tau must be non-negative and finite, got %v", tau)
	}
	if meanDelay <= 0 || math.IsNaN(meanDelay) || math.IsInf(meanDelay, 0) {
		return nil, fmt.Errorf("adversary: mean delay must be positive and finite, got %v", meanDelay)
	}
	if k < 1 {
		return nil, fmt.Errorf("adversary: buffer size must be >= 1, got %d", k)
	}
	if threshold <= 0 || threshold >= 1 || math.IsNaN(threshold) {
		return nil, fmt.Errorf("adversary: threshold must lie in (0,1), got %v", threshold)
	}
	return &Adaptive{
		tau:       tau,
		meanDelay: meanDelay,
		slots:     k,
		threshold: threshold,
		flows:     make(map[packet.NodeID]*flowTrack),
	}, nil
}

// Estimate implements Estimator.
func (a *Adaptive) Estimate(obs Observation) float64 {
	flow := obs.Header.Origin
	ft, ok := a.flows[flow]
	if !ok {
		ft = &flowTrack{}
		a.flows[flow] = ft
	}
	ft.observe(obs.ArrivalTime)
	a.total.observe(obs.ArrivalTime)

	perHop := a.meanDelay
	totalRate := a.total.rate()
	flowRate := ft.rate()
	if totalRate > 0 && flowRate > 0 {
		// Probability that the most loaded buffer (one hop before the
		// sink, carrying λtot) is full, per the Erlang loss formula. The
		// error path is unreachable: rates and k were validated.
		if loss, err := queueing.ErlangLoss(totalRate*a.meanDelay, a.slots); err == nil && loss >= a.threshold {
			if est := float64(a.slots) / flowRate; est < perHop {
				perHop = est
				a.switches++
			}
		}
	}
	h := float64(obs.Header.HopCount)
	return obs.ArrivalTime - h*(a.tau+perHop)
}

// Name implements Estimator.
func (a *Adaptive) Name() string { return "adaptive" }

// PreemptionRegimeCount returns how many estimates used the
// preemption-aware (k/λ) delay model.
func (a *Adaptive) PreemptionRegimeCount() uint64 { return a.switches }

// PathAware is an extension of the §5.4 adaptive adversary that uses the
// full deployment knowledge the threat model grants (§2: "the adversary has
// knowledge of the positions of all sensor nodes" and, by Kerckhoff's
// Principle, of the routing algorithm). Knowing each flow's routing path, it
// computes the aggregate rate λ_node at every buffering node by summing the
// measured rates of the flows that transit it (§4's superposition), and
// estimates each hop's delay individually:
//
//	d(node) = min(1/µ, k/λ_node)   when E(λ_node/µ, k) ≥ threshold,
//	d(node) = 1/µ                  otherwise.
//
// This captures what the paper's flow-level adaptive adversary cannot: on a
// merge topology the shared near-sink hops preempt at the aggregate rate,
// so their delays shrink long before a flow's own rate saturates its
// private hops.
type PathAware struct {
	tau       float64
	meanDelay float64
	slots     int
	threshold float64

	// paths maps each flow to its buffering nodes (source and
	// intermediates, sink excluded).
	paths map[packet.NodeID][]packet.NodeID
	// order is the flows in ascending ID order. nodeRate accumulates
	// floating-point rates over it instead of ranging the map: float
	// addition is not associative, so map iteration order would leak into
	// the estimate at ulp scale and break bit-reproducibility of runs.
	order []packet.NodeID
	flows map[packet.NodeID]*flowTrack
}

var _ Estimator = (*PathAware)(nil)

// NewPathAware returns a path-aware adaptive adversary. paths maps each
// flow's origin to the buffering nodes on its routing path (source first,
// sink excluded); it must be non-empty. Remaining parameters match
// NewAdaptive.
func NewPathAware(tau, meanDelay float64, k int, threshold float64, paths map[packet.NodeID][]packet.NodeID) (*PathAware, error) {
	if tau < 0 || math.IsNaN(tau) || math.IsInf(tau, 0) {
		return nil, fmt.Errorf("adversary: tau must be non-negative and finite, got %v", tau)
	}
	if meanDelay <= 0 || math.IsNaN(meanDelay) || math.IsInf(meanDelay, 0) {
		return nil, fmt.Errorf("adversary: mean delay must be positive and finite, got %v", meanDelay)
	}
	if k < 1 {
		return nil, fmt.Errorf("adversary: buffer size must be >= 1, got %d", k)
	}
	if threshold <= 0 || threshold >= 1 || math.IsNaN(threshold) {
		return nil, fmt.Errorf("adversary: threshold must lie in (0,1), got %v", threshold)
	}
	if len(paths) == 0 {
		return nil, errors.New("adversary: path-aware adversary needs at least one flow path")
	}
	cp := make(map[packet.NodeID][]packet.NodeID, len(paths))
	order := make([]packet.NodeID, 0, len(paths))
	for flow, path := range paths {
		if len(path) == 0 {
			return nil, fmt.Errorf("adversary: empty path for flow %v", flow)
		}
		nodes := make([]packet.NodeID, len(path))
		copy(nodes, path)
		cp[flow] = nodes
		order = append(order, flow)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return &PathAware{
		tau:       tau,
		meanDelay: meanDelay,
		slots:     k,
		threshold: threshold,
		paths:     cp,
		order:     order,
		flows:     make(map[packet.NodeID]*flowTrack),
	}, nil
}

// Estimate implements Estimator.
func (a *PathAware) Estimate(obs Observation) float64 {
	flow := obs.Header.Origin
	ft, ok := a.flows[flow]
	if !ok {
		ft = &flowTrack{}
		a.flows[flow] = ft
	}
	ft.observe(obs.ArrivalTime)

	path, ok := a.paths[flow]
	if !ok {
		// Unknown flow: fall back to the baseline rule over the header's
		// hop count.
		h := float64(obs.Header.HopCount)
		return obs.ArrivalTime - h*(a.tau+a.meanDelay)
	}

	total := 0.0
	for _, node := range path {
		lambda := a.nodeRate(node)
		d := a.meanDelay
		if lambda > 0 {
			if loss, err := queueing.ErlangLoss(lambda*a.meanDelay, a.slots); err == nil && loss >= a.threshold {
				if est := float64(a.slots) / lambda; est < d {
					d = est
				}
			}
		}
		total += a.tau + d
	}
	return obs.ArrivalTime - total
}

// nodeRate returns the aggregate measured rate of the flows transiting node.
func (a *PathAware) nodeRate(node packet.NodeID) float64 {
	total := 0.0
	for _, flow := range a.order {
		path := a.paths[flow]
		ft, ok := a.flows[flow]
		if !ok {
			continue
		}
		r := ft.rate()
		if r <= 0 {
			continue
		}
		for _, n := range path {
			if n == node {
				total += r
				break
			}
		}
	}
	return total
}

// Name implements Estimator.
func (a *PathAware) Name() string { return "path-aware" }

// ErrLengthMismatch is returned by the scorers when observations and truths
// differ in length.
var ErrLengthMismatch = errors.New("adversary: observations and truths differ in length")

// Score runs an estimator over a time-ordered observation sequence and
// accumulates its mean square error against the true creation times.
// truths[i] is the ground-truth creation time of observations[i].
func Score(est Estimator, observations []Observation, truths []float64) (*metrics.MSE, error) {
	if est == nil {
		return nil, errors.New("adversary: nil estimator")
	}
	if len(observations) != len(truths) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(observations), len(truths))
	}
	var mse metrics.MSE
	for i, obs := range observations {
		mse.Add(est.Estimate(obs), truths[i])
	}
	return &mse, nil
}

// Lattice decorates another estimator with knowledge that sources create
// packets on a periodic lattice (the paper's §5.2 evaluation traffic): the
// inner estimate is snapped to the nearest multiple of the period. When the
// inner estimator's error is already below half a period this recovers the
// creation time *exactly*; once buffering noise exceeds the period the
// snapping is useless — quantifying that delay budgets must exceed the
// source's own timing granularity to matter.
type Lattice struct {
	inner  Estimator
	period float64
}

var _ Estimator = (*Lattice)(nil)

// NewLattice wraps inner with period-snapping. The period must be positive.
func NewLattice(inner Estimator, period float64) (*Lattice, error) {
	if inner == nil {
		return nil, errors.New("adversary: nil inner estimator")
	}
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return nil, fmt.Errorf("adversary: lattice period must be positive and finite, got %v", period)
	}
	return &Lattice{inner: inner, period: period}, nil
}

// Estimate implements Estimator.
func (l *Lattice) Estimate(obs Observation) float64 {
	raw := l.inner.Estimate(obs)
	return math.Round(raw/l.period) * l.period
}

// Name implements Estimator.
func (l *Lattice) Name() string { return l.inner.Name() + "+lattice" }

// BestConstantOffsetMSE returns, per flow, the MSE of the strongest
// constant-offset estimator: a genie that knows each flow's exact mean
// delivery delay and estimates x̂ = z − mean. No estimator of the form
// z − c can do better, so this is a scheme-independent privacy floor —
// useful for comparing unlike delaying mechanisms (RCAD vs batching mixes)
// whose delay distributions the parametric adversaries do not model. The
// value equals the per-flow variance of delivery latency.
func BestConstantOffsetMSE(observations []Observation, truths []float64) (map[packet.NodeID]float64, error) {
	if len(observations) != len(truths) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(observations), len(truths))
	}
	acc := make(map[packet.NodeID]*metrics.Welford)
	for i, obs := range observations {
		w, ok := acc[obs.Header.Origin]
		if !ok {
			w = &metrics.Welford{}
			acc[obs.Header.Origin] = w
		}
		w.Add(obs.ArrivalTime - truths[i])
	}
	out := make(map[packet.NodeID]float64, len(acc))
	for flow, w := range acc {
		out[flow] = w.Variance()
	}
	return out, nil
}

// ScorePerFlow runs an estimator over a time-ordered observation sequence
// and accumulates a separate MSE per flow (origin node), matching the
// paper's per-flow reporting ("The results reported are for the flow S1").
func ScorePerFlow(est Estimator, observations []Observation, truths []float64) (map[packet.NodeID]*metrics.MSE, error) {
	if est == nil {
		return nil, errors.New("adversary: nil estimator")
	}
	if len(observations) != len(truths) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(observations), len(truths))
	}
	out := make(map[packet.NodeID]*metrics.MSE)
	for i, obs := range observations {
		estimate := est.Estimate(obs)
		m, ok := out[obs.Header.Origin]
		if !ok {
			m = &metrics.MSE{}
			out[obs.Header.Origin] = m
		}
		m.Add(estimate, truths[i])
	}
	return out, nil
}
