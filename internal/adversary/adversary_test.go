package adversary

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/packet"
	"tempriv/internal/rng"
)

func obs(z float64, origin packet.NodeID, hops uint8) Observation {
	return Observation{
		ArrivalTime: z,
		Header:      packet.Header{Origin: origin, PrevHop: 1, HopCount: hops},
	}
}

func TestBaselineNoDelayNetworkIsExact(t *testing.T) {
	// Against a network with only transmission delays, x̂ = z − h·τ is
	// exact: the paper's case 1 (near-zero MSE).
	b, err := NewBaseline(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const created, hops = 100.0, 15
	z := created + hops*1.0
	if got := b.Estimate(obs(z, 5, hops)); math.Abs(got-created) > 1e-12 {
		t.Fatalf("estimate = %v, want %v", got, created)
	}
}

func TestBaselineSubtractsMeanDelay(t *testing.T) {
	b, err := NewBaseline(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	got := b.Estimate(obs(565, 5, 15))
	want := 565.0 - 15*31
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("estimate = %v, want %v", got, want)
	}
}

func TestBaselineUnbiasedAgainstUnlimitedBuffers(t *testing.T) {
	// Case 2 of §5.3: with unlimited buffers, per-hop delay averages 1/µ,
	// so the baseline estimator is unbiased and its MSE equals the variance
	// of the total delay: h·(1/µ)² for exponential per-hop delays.
	const tau, meanDelay, hops = 1.0, 30.0, 15
	b, err := NewBaseline(tau, meanDelay)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	var observations []Observation
	var truths []float64
	for i := 0; i < 20000; i++ {
		created := float64(i) * 10
		total := 0.0
		for h := 0; h < hops; h++ {
			total += tau + src.Exponential(meanDelay)
		}
		observations = append(observations, obs(created+total, 5, hops))
		truths = append(truths, created)
	}
	mse, err := Score(b, observations, truths)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(hops) * meanDelay * meanDelay // 13500
	if math.Abs(mse.Value()-want) > 0.05*want {
		t.Fatalf("MSE = %v, want ≈ %v", mse.Value(), want)
	}
	if math.Abs(mse.Bias()) > 5 {
		t.Fatalf("bias = %v, want ≈ 0", mse.Bias())
	}
}

func TestBaselineValidation(t *testing.T) {
	if _, err := NewBaseline(-1, 0); err == nil {
		t.Fatal("negative tau accepted")
	}
	if _, err := NewBaseline(1, math.NaN()); err == nil {
		t.Fatal("NaN delay accepted")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptive(1, 0, 10, 0.1); err == nil {
		t.Fatal("zero mean delay accepted")
	}
	if _, err := NewAdaptive(1, 30, 0, 0.1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewAdaptive(1, 30, 10, 0); err == nil {
		t.Fatal("threshold=0 accepted")
	}
	if _, err := NewAdaptive(1, 30, 10, 1); err == nil {
		t.Fatal("threshold=1 accepted")
	}
	if _, err := NewAdaptive(-1, 30, 10, 0.1); err == nil {
		t.Fatal("negative tau accepted")
	}
}

func TestAdaptiveMatchesBaselineAtLowRates(t *testing.T) {
	// At low traffic (E(ρ,k) below threshold) the adaptive adversary uses
	// the same h/µ rule as the baseline (§5.4).
	const tau, meanDelay = 1.0, 30.0
	a, err := NewAdaptive(tau, meanDelay, 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBaseline(tau, meanDelay)
	if err != nil {
		t.Fatal(err)
	}
	// Interarrival 1000 ≫ 1/µ: utilization ρ = 0.03, loss ≈ 0.
	for i := 0; i < 50; i++ {
		z := float64(i) * 1000
		o := obs(z, 5, 15)
		if got, want := a.Estimate(o), b.Estimate(o); math.Abs(got-want) > 1e-9 {
			t.Fatalf("arrival %d: adaptive %v != baseline %v at low rate", i, got, want)
		}
	}
	if a.PreemptionRegimeCount() != 0 {
		t.Fatalf("adaptive switched regimes %d times at low rate", a.PreemptionRegimeCount())
	}
}

func TestAdaptiveSwitchesAtHighRates(t *testing.T) {
	// Interarrival 2 with 1/µ = 30 and k = 10: ρ = 15, E(15,10) ≈ 0.2 > 0.1,
	// so the adaptive adversary must switch to the k/λ delay model.
	const tau, meanDelay, k = 1.0, 30.0, 10
	a, err := NewAdaptive(tau, meanDelay, k, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 100; i++ {
		z := float64(i) * 2
		last = a.Estimate(obs(z, 5, 15))
	}
	if a.PreemptionRegimeCount() == 0 {
		t.Fatal("adaptive adversary never entered the preemption regime")
	}
	// In the preemption regime the per-hop delay estimate is k/λ = 20, so
	// x̂ = z − 15·(1 + 20).
	z := 99 * 2.0
	want := z - 15*(tau+float64(k)/0.5)
	if math.Abs(last-want) > 1.0 {
		t.Fatalf("estimate = %v, want ≈ %v", last, want)
	}
}

func TestAdaptiveTracksPerFlowRates(t *testing.T) {
	// Two flows at different rates: the per-hop estimate must use each
	// flow's own λ. Mean delay 60 keeps the min(1/µ, k/λ) cap from binding
	// for either flow (k/λ = 20 and 40).
	const tau, meanDelay, k = 1.0, 60.0, 10
	a, err := NewAdaptive(tau, meanDelay, k, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: flow 5 every 2 units, flow 9 every 4 units. λtot = 0.75,
	// ρ = 22.5 → loss well above threshold.
	var estFlow5, estFlow9 float64
	for i := 0; i < 200; i++ {
		z := float64(i) * 2
		estFlow5 = a.Estimate(obs(z, 5, 10))
		if i%2 == 0 {
			estFlow9 = a.Estimate(obs(z+0.5, 9, 10))
		}
	}
	// Flow 5: λ=0.5 → per-hop 20; flow 9: λ=0.25 → per-hop 40.
	z5 := 199 * 2.0
	z9 := 198*2.0 + 0.5
	want5 := z5 - 10*(tau+20)
	want9 := z9 - 10*(tau+40)
	if math.Abs(estFlow5-want5) > 2 {
		t.Fatalf("flow 5 estimate = %v, want ≈ %v", estFlow5, want5)
	}
	if math.Abs(estFlow9-want9) > 2 {
		t.Fatalf("flow 9 estimate = %v, want ≈ %v", estFlow9, want9)
	}
}

// TestAdaptiveBeatsBaselineUnderPreemption reproduces Figure 3's key
// relationship in miniature: when the real per-hop delays are k/λ (heavy
// preemption) rather than 1/µ, the adaptive adversary's MSE is far below
// the baseline's.
func TestAdaptiveBeatsBaselineUnderPreemption(t *testing.T) {
	const tau, meanDelay, k, hops = 1.0, 30.0, 10.0, 15
	const interarrival = 2.0
	src := rng.New(11)
	var observations []Observation
	var truths []float64
	for i := 0; i < 5000; i++ {
		created := float64(i) * interarrival
		// Under heavy preemption the effective per-hop delay concentrates
		// around k/λ = 20.
		total := 0.0
		for h := 0; h < hops; h++ {
			total += tau + src.Exponential(k*interarrival)
		}
		observations = append(observations, obs(created+total, 5, hops))
		truths = append(truths, created)
	}
	baseline, err := NewBaseline(tau, meanDelay)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := NewAdaptive(tau, meanDelay, int(k), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	mseB, err := Score(baseline, observations, truths)
	if err != nil {
		t.Fatal(err)
	}
	mseA, err := Score(adaptive, observations, truths)
	if err != nil {
		t.Fatal(err)
	}
	if mseA.Value() >= mseB.Value()/2 {
		t.Fatalf("adaptive MSE %v not well below baseline %v", mseA.Value(), mseB.Value())
	}
}

func TestScoreValidation(t *testing.T) {
	b, err := NewBaseline(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Score(nil, nil, nil); err == nil {
		t.Fatal("nil estimator accepted")
	}
	if _, err := Score(b, make([]Observation, 2), make([]float64, 3)); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("mismatched lengths: %v", err)
	}
}

func TestScorePerFlowSeparatesFlows(t *testing.T) {
	b, err := NewBaseline(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	observations := []Observation{
		obs(10, 5, 5), // flow 5: estimate 5, truth 5 → error 0
		obs(20, 9, 5), // flow 9: estimate 15, truth 10 → error 5
	}
	truths := []float64{5, 10}
	perFlow, err := ScorePerFlow(b, observations, truths)
	if err != nil {
		t.Fatal(err)
	}
	if len(perFlow) != 2 {
		t.Fatalf("flows = %d, want 2", len(perFlow))
	}
	if got := perFlow[5].Value(); got != 0 {
		t.Fatalf("flow 5 MSE = %v, want 0", got)
	}
	if got := perFlow[9].Value(); math.Abs(got-25) > 1e-12 {
		t.Fatalf("flow 9 MSE = %v, want 25", got)
	}
}

func TestScorePerFlowValidation(t *testing.T) {
	if _, err := ScorePerFlow(nil, nil, nil); err == nil {
		t.Fatal("nil estimator accepted")
	}
	b, err := NewBaseline(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScorePerFlow(b, make([]Observation, 1), nil); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("mismatched lengths: %v", err)
	}
}

// Property: the baseline estimate is linear in the arrival time with unit
// slope — shifting an observation by Δ shifts the estimate by Δ.
func TestBaselineShiftInvarianceProperty(t *testing.T) {
	b, err := NewBaseline(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	f := func(zRaw int32, shiftRaw int16, hops uint8) bool {
		z := float64(zRaw) / 100
		shift := float64(shiftRaw) / 100
		e1 := b.Estimate(obs(z, 5, hops))
		e2 := b.Estimate(obs(z+shift, 5, hops))
		return math.Abs((e2-e1)-shift) < 1e-9*math.Max(1, math.Abs(z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPathAwareValidation(t *testing.T) {
	paths := map[packet.NodeID][]packet.NodeID{5: {5, 3, 1}}
	if _, err := NewPathAware(-1, 30, 10, 0.1, paths); err == nil {
		t.Fatal("negative tau accepted")
	}
	if _, err := NewPathAware(1, 0, 10, 0.1, paths); err == nil {
		t.Fatal("zero mean delay accepted")
	}
	if _, err := NewPathAware(1, 30, 0, 0.1, paths); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewPathAware(1, 30, 10, 1, paths); err == nil {
		t.Fatal("threshold=1 accepted")
	}
	if _, err := NewPathAware(1, 30, 10, 0.1, nil); err == nil {
		t.Fatal("nil paths accepted")
	}
	if _, err := NewPathAware(1, 30, 10, 0.1, map[packet.NodeID][]packet.NodeID{5: nil}); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestPathAwareMatchesBaselineAtLowRates(t *testing.T) {
	paths := map[packet.NodeID][]packet.NodeID{5: {5, 4, 3, 2, 1}}
	a, err := NewPathAware(1, 30, 10, 0.1, paths)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBaseline(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		z := float64(i) * 1000
		o := obs(z, 5, 5)
		if got, want := a.Estimate(o), b.Estimate(o); math.Abs(got-want) > 1e-9 {
			t.Fatalf("arrival %d: path-aware %v != baseline %v at low rate", i, got, want)
		}
	}
}

func TestPathAwareExploitsSharedTrunk(t *testing.T) {
	// Two flows share node 1 (adjacent to the sink). Per-flow rate 0.25
	// cannot saturate k=10/λ=40 > 1/µ=30, but the shared node sees λ=0.5
	// and its delay collapses to k/λnode=20. Only a path-aware adversary
	// shortens its estimate for that hop.
	paths := map[packet.NodeID][]packet.NodeID{
		5: {5, 1},
		9: {9, 1},
	}
	a, err := NewPathAware(1, 30, 10, 0.1, paths)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 200; i++ {
		z := float64(i) * 4
		last = a.Estimate(obs(z, 5, 2))
		a.Estimate(obs(z+2, 9, 2))
	}
	// Private hop (node 5, λ=0.25): E(0.25·30, 10) ≈ 0 → delay 30.
	// Shared hop (node 1, λ=0.5): E(15, 10) ≈ 0.41 → delay min(30, 20) = 20.
	z := 199 * 4.0
	want := z - (1 + 30) - (1 + 20)
	if math.Abs(last-want) > 2 {
		t.Fatalf("estimate = %v, want ≈ %v (trunk-aware per-hop delays)", last, want)
	}
}

func TestPathAwareUnknownFlowFallsBack(t *testing.T) {
	paths := map[packet.NodeID][]packet.NodeID{5: {5, 1}}
	a, err := NewPathAware(1, 30, 10, 0.1, paths)
	if err != nil {
		t.Fatal(err)
	}
	got := a.Estimate(obs(100, 77, 3))
	want := 100 - 3*(1+30.0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("unknown-flow estimate = %v, want baseline %v", got, want)
	}
}

func TestPathAwareCopiesPaths(t *testing.T) {
	path := []packet.NodeID{5, 1}
	a, err := NewPathAware(1, 30, 10, 0.1, map[packet.NodeID][]packet.NodeID{5: path})
	if err != nil {
		t.Fatal(err)
	}
	path[0] = 99 // caller mutation must not affect the adversary
	before := a.Estimate(obs(10, 5, 2))
	if math.IsNaN(before) {
		t.Fatal("estimate NaN")
	}
}

func TestPathAwareName(t *testing.T) {
	a, err := NewPathAware(1, 30, 10, 0.1, map[packet.NodeID][]packet.NodeID{5: {5}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "path-aware" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestLatticeValidation(t *testing.T) {
	b, err := NewBaseline(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLattice(nil, 2); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewLattice(b, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewLattice(b, math.Inf(1)); err == nil {
		t.Fatal("infinite period accepted")
	}
}

func TestLatticeSnapsSmallErrors(t *testing.T) {
	// Creation times on a period-10 lattice; inner estimates off by ±3 are
	// recovered exactly.
	b, err := NewBaseline(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLattice(b, 10)
	if err != nil {
		t.Fatal(err)
	}
	// truth 50, 1 hop: arrival 51 → inner estimate 50 → exact. Perturb the
	// arrival by +3: inner 53 → snap to 50.
	if got := l.Estimate(obs(54, 5, 1)); got != 50 {
		t.Fatalf("snapped estimate = %v, want 50", got)
	}
	if got := l.Estimate(obs(51, 5, 1)); got != 50 {
		t.Fatalf("exact estimate = %v, want 50", got)
	}
}

func TestLatticeCannotBeatLargeNoise(t *testing.T) {
	// When the per-packet error std ≫ period, snapping changes nothing
	// statistically: the lattice MSE stays within a quantization term of
	// the raw MSE.
	const period = 10.0
	src := rng.New(31)
	b, err := NewBaseline(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLattice(b, period)
	if err != nil {
		t.Fatal(err)
	}
	var rawMSE, latMSE MSEPair
	for i := 0; i < 20000; i++ {
		truth := float64(i) * period
		// Effective delay noise with std ≈ 120 ≫ period.
		z := truth + 15 + src.Exponential(120)
		o := obs(z, 5, 15)
		rawMSE.add(b.Estimate(o), truth)
		latMSE.add(l.Estimate(o), truth)
	}
	if latMSE.value() < 0.9*rawMSE.value() {
		t.Fatalf("lattice MSE %v beat raw %v despite noise ≫ period", latMSE.value(), rawMSE.value())
	}
}

func TestLatticeBeatsRawAtSmallNoise(t *testing.T) {
	// With noise std well under half a period the lattice recovers most
	// creation times exactly.
	const period = 20.0
	src := rng.New(37)
	b, err := NewBaseline(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLattice(b, period)
	if err != nil {
		t.Fatal(err)
	}
	var rawMSE, latMSE MSEPair
	for i := 0; i < 20000; i++ {
		truth := float64(i) * period
		z := truth + 1 + src.Exponential(2) // 1-hop, mean delay 2, std 2
		o := obs(z, 5, 1)
		rawMSE.add(b.Estimate(o), truth)
		latMSE.add(l.Estimate(o), truth)
	}
	if latMSE.value() > 0.5*rawMSE.value() {
		t.Fatalf("lattice MSE %v not well below raw %v at small noise", latMSE.value(), rawMSE.value())
	}
}

func TestLatticeName(t *testing.T) {
	b, err := NewBaseline(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLattice(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "baseline+lattice" {
		t.Fatalf("Name = %q", l.Name())
	}
}

// MSEPair is a tiny local accumulator so lattice tests do not depend on
// package metrics.
type MSEPair struct {
	n   int
	sum float64
}

func (m *MSEPair) add(est, truth float64) {
	m.n++
	m.sum += (est - truth) * (est - truth)
}

func (m *MSEPair) value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

func TestPathAwareNodeRateOrderIsSorted(t *testing.T) {
	// nodeRate sums floating-point per-flow rates; the sum must run in
	// sorted flow order, never map order, or estimates differ at ulp scale
	// between processes and break bit-reproducible replication.
	paths := map[packet.NodeID][]packet.NodeID{
		9: {9, 2, 1}, 3: {3, 2, 1}, 7: {7, 2, 1}, 5: {5, 2, 1},
	}
	a, err := NewPathAware(1, 30, 10, 0.1, paths)
	if err != nil {
		t.Fatal(err)
	}
	want := []packet.NodeID{3, 5, 7, 9}
	if len(a.order) != len(want) {
		t.Fatalf("order = %v, want %v", a.order, want)
	}
	for i, id := range want {
		if a.order[i] != id {
			t.Fatalf("order = %v, want %v", a.order, want)
		}
	}
}
