package delay

import (
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/rng"
)

func sampleMean(t *testing.T, d Distribution, n int) float64 {
	t.Helper()
	src := rng.New(1234)
	sum := 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(src)
		if v < 0 {
			t.Fatalf("%s produced negative delay %v", d.Name(), v)
		}
		sum += v
	}
	return sum / float64(n)
}

func TestAllDistributionsMatchDeclaredMean(t *testing.T) {
	exp, err := NewExponential(30)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUniform(30)
	if err != nil {
		t.Fatal(err)
	}
	con, err := NewConstant(30)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewPareto(30, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Distribution{exp, uni, con, par} {
		if d.Mean() != 30 {
			t.Fatalf("%s declared mean %v, want 30", d.Name(), d.Mean())
		}
		got := sampleMean(t, d, 200000)
		if math.Abs(got-30) > 1.0 {
			t.Fatalf("%s empirical mean %v, want ≈ 30", d.Name(), got)
		}
	}
}

func TestNoneIsZero(t *testing.T) {
	src := rng.New(1)
	var d None
	for i := 0; i < 100; i++ {
		if d.Sample(src) != 0 {
			t.Fatal("None sampled non-zero")
		}
	}
	if d.Mean() != 0 {
		t.Fatalf("None mean = %v", d.Mean())
	}
}

func TestConstantIsDeterministic(t *testing.T) {
	d, err := NewConstant(7.5)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	for i := 0; i < 100; i++ {
		if got := d.Sample(src); got != 7.5 {
			t.Fatalf("Constant sampled %v, want 7.5", got)
		}
	}
}

func TestUniformSupport(t *testing.T) {
	d, err := NewUniform(10)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	for i := 0; i < 10000; i++ {
		v := d.Sample(src)
		if v < 0 || v >= 20 {
			t.Fatalf("Uniform(mean=10) sampled %v outside [0,20)", v)
		}
	}
}

func TestParetoSupport(t *testing.T) {
	d, err := NewPareto(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantScale := 10 * 2.0 / 3.0
	src := rng.New(5)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(src); v < wantScale-1e-9 {
			t.Fatalf("Pareto sampled %v below scale %v", v, wantScale)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Fatal("NewExponential(0) accepted")
	}
	if _, err := NewExponential(math.NaN()); err == nil {
		t.Fatal("NewExponential(NaN) accepted")
	}
	if _, err := NewUniform(-1); err == nil {
		t.Fatal("NewUniform(-1) accepted")
	}
	if _, err := NewConstant(-0.5); err == nil {
		t.Fatal("NewConstant(-0.5) accepted")
	}
	if _, err := NewConstant(0); err != nil {
		t.Fatalf("NewConstant(0) rejected: %v", err)
	}
	if _, err := NewPareto(10, 1); err == nil {
		t.Fatal("NewPareto(shape=1) accepted")
	}
	if _, err := NewPareto(-1, 2); err == nil {
		t.Fatal("NewPareto(mean=-1) accepted")
	}
}

// TestExponentialIsMaxEntropy checks the paper's §3.2 motivation: among the
// non-degenerate distributions at equal mean, the exponential has the
// highest differential entropy.
func TestExponentialIsMaxEntropy(t *testing.T) {
	const mean = 30.0
	exp, err := NewExponential(mean)
	if err != nil {
		t.Fatal(err)
	}
	expH, ok := exp.Entropy()
	if !ok {
		t.Fatal("exponential has no entropy closed form")
	}
	uni, err := NewUniform(mean)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewPareto(mean, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Distribution{uni, par} {
		h, ok := d.Entropy()
		if !ok {
			t.Fatalf("%s has no entropy closed form", d.Name())
		}
		if h >= expH {
			t.Fatalf("%s entropy %v >= exponential entropy %v at equal mean", d.Name(), h, expH)
		}
	}
}

func TestEntropyClosedForms(t *testing.T) {
	exp, err := NewExponential(math.E)
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := exp.Entropy(); math.Abs(h-2) > 1e-12 {
		t.Fatalf("Exp(mean=e) entropy = %v, want 2", h)
	}
	uni, err := NewUniform(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := uni.Entropy(); math.Abs(h-0) > 1e-12 {
		t.Fatalf("Uniform[0,1] entropy = %v, want 0", h)
	}
	con, err := NewConstant(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := con.Entropy(); ok {
		t.Fatal("Constant claims a differential entropy")
	}
	if _, ok := (None{}).Entropy(); ok {
		t.Fatal("None claims a differential entropy")
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, name := range []string{"exponential", "uniform", "constant", "pareto", "none"} {
		d, err := ByName(name, 12)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, d.Name())
		}
	}
	if _, err := ByName("levy", 12); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := ByName("exponential", -3); err == nil {
		t.Fatal("invalid mean accepted through ByName")
	}
}

// Property: sampled delays are non-negative and finite for every
// distribution at arbitrary means.
func TestNonNegativeProperty(t *testing.T) {
	src := rng.New(77)
	f := func(meanRaw uint16, which uint8) bool {
		mean := 0.01 + float64(meanRaw)/65535*500
		var d Distribution
		var err error
		switch which % 4 {
		case 0:
			d, err = NewExponential(mean)
		case 1:
			d, err = NewUniform(mean)
		case 2:
			d, err = NewConstant(mean)
		case 3:
			d, err = NewPareto(mean, 2.5)
		}
		if err != nil {
			return false
		}
		v := d.Sample(src)
		return v >= 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
