// Package delay defines the buffering-delay distributions a node can use to
// obfuscate packet creation times (§3 of the paper).
//
// The paper proposes exponential delays because the exponential maximises
// differential entropy among non-negative distributions with a fixed mean
// (§3.2); the other distributions here exist so the delay-distribution
// ablation (experiment abl-dist) can demonstrate that choice empirically.
// Every distribution is parameterised by its mean so the ablation compares
// equal average latency cost.
package delay

import (
	"fmt"
	"math"

	"tempriv/internal/rng"
)

// Distribution is a samplable, non-negative delay distribution.
type Distribution interface {
	// Sample draws one delay value using the given random source.
	Sample(src *rng.Source) float64
	// Mean returns the distribution's mean delay (1/µ in the paper's
	// notation).
	Mean() float64
	// Name returns a short identifier used in reports.
	Name() string
	// Entropy returns the differential entropy in nats and true when a
	// closed form exists; degenerate distributions return ok == false.
	Entropy() (value float64, ok bool)
}

// Exponential is the paper's delay distribution of choice: Exp with the
// given mean (rate µ = 1/mean). Maximal entropy for a fixed mean on [0, ∞).
type Exponential struct {
	mean float64
}

var _ Distribution = Exponential{}

// NewExponential returns an exponential delay with the given mean. It
// returns an error if mean <= 0.
func NewExponential(mean float64) (Exponential, error) {
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return Exponential{}, fmt.Errorf("delay: exponential mean must be positive and finite, got %v", mean)
	}
	return Exponential{mean: mean}, nil
}

// Sample implements Distribution.
func (d Exponential) Sample(src *rng.Source) float64 { return src.Exponential(d.mean) }

// Mean implements Distribution.
func (d Exponential) Mean() float64 { return d.mean }

// Name implements Distribution.
func (d Exponential) Name() string { return "exponential" }

// Entropy returns 1 + ln(mean) nats.
func (d Exponential) Entropy() (float64, bool) { return 1 + math.Log(d.mean), true }

// Uniform is a delay uniform on [0, 2·mean]: same mean as the exponential
// but bounded support and lower entropy.
type Uniform struct {
	mean float64
}

var _ Distribution = Uniform{}

// NewUniform returns a uniform delay on [0, 2·mean]. It returns an error if
// mean <= 0.
func NewUniform(mean float64) (Uniform, error) {
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return Uniform{}, fmt.Errorf("delay: uniform mean must be positive and finite, got %v", mean)
	}
	return Uniform{mean: mean}, nil
}

// Sample implements Distribution.
func (d Uniform) Sample(src *rng.Source) float64 { return src.Uniform(0, 2*d.mean) }

// Mean implements Distribution.
func (d Uniform) Mean() float64 { return d.mean }

// Name implements Distribution.
func (d Uniform) Name() string { return "uniform" }

// Entropy returns ln(2·mean) nats.
func (d Uniform) Entropy() (float64, bool) { return math.Log(2 * d.mean), true }

// Constant is a deterministic delay: the degenerate case with zero entropy
// contribution, useful as an ablation baseline (an adversary who knows the
// protocol subtracts it exactly).
type Constant struct {
	mean float64
}

var _ Distribution = Constant{}

// NewConstant returns a constant delay of the given duration (>= 0).
func NewConstant(value float64) (Constant, error) {
	if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		return Constant{}, fmt.Errorf("delay: constant must be non-negative and finite, got %v", value)
	}
	return Constant{mean: value}, nil
}

// Sample implements Distribution.
func (d Constant) Sample(*rng.Source) float64 { return d.mean }

// Mean implements Distribution.
func (d Constant) Mean() float64 { return d.mean }

// Name implements Distribution.
func (d Constant) Name() string { return "constant" }

// Entropy reports no closed-form differential entropy: a point mass has
// h = −∞.
func (d Constant) Entropy() (float64, bool) { return 0, false }

// None is the no-delay distribution used by the paper's baseline case 1
// (nodes forward packets as soon as they receive them).
type None struct{}

var _ Distribution = None{}

// Sample implements Distribution.
func (None) Sample(*rng.Source) float64 { return 0 }

// Mean implements Distribution.
func (None) Mean() float64 { return 0 }

// Name implements Distribution.
func (None) Name() string { return "none" }

// Entropy reports no defined differential entropy (point mass at zero).
func (None) Entropy() (float64, bool) { return 0, false }

// Pareto is a heavy-tailed delay: Pareto type I with shape α > 1 and scale
// chosen so the mean matches. Included in the ablation to show that heavy
// tails buy little privacy per unit of mean latency.
type Pareto struct {
	mean  float64
	shape float64
	scale float64
}

var _ Distribution = Pareto{}

// NewPareto returns a Pareto delay with the given mean and shape. Shape must
// exceed 1 so the mean is finite.
func NewPareto(mean, shape float64) (Pareto, error) {
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return Pareto{}, fmt.Errorf("delay: pareto mean must be positive and finite, got %v", mean)
	}
	if shape <= 1 || math.IsNaN(shape) || math.IsInf(shape, 0) {
		return Pareto{}, fmt.Errorf("delay: pareto shape must exceed 1 for a finite mean, got %v", shape)
	}
	return Pareto{mean: mean, shape: shape, scale: mean * (shape - 1) / shape}, nil
}

// Sample implements Distribution.
func (d Pareto) Sample(src *rng.Source) float64 { return src.Pareto(d.scale, d.shape) }

// Mean implements Distribution.
func (d Pareto) Mean() float64 { return d.mean }

// Name implements Distribution.
func (d Pareto) Name() string { return "pareto" }

// Entropy returns ln(scale/shape) + 1 + 1/shape nats.
func (d Pareto) Entropy() (float64, bool) {
	return math.Log(d.scale/d.shape) + 1 + 1/d.shape, true
}

// ByName constructs a distribution from a report identifier — the inverse of
// Name() — using the given mean. Pareto uses shape 2.5. It returns an error
// for unknown names or invalid means.
func ByName(name string, mean float64) (Distribution, error) {
	switch name {
	case "exponential":
		return NewExponential(mean)
	case "uniform":
		return NewUniform(mean)
	case "constant":
		return NewConstant(mean)
	case "pareto":
		return NewPareto(mean, 2.5)
	case "none":
		return None{}, nil
	default:
		return nil, fmt.Errorf("delay: unknown distribution %q", name)
	}
}
