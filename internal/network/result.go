package network

// Result types: what a run reports back — sink deliveries with ground
// truth, per-flow and per-node summaries, and the adversary-view
// conversions the privacy experiments consume.

import (
	"tempriv/internal/adversary"
	"tempriv/internal/metrics"
	"tempriv/internal/packet"
	"tempriv/internal/telemetry"
)

// Delivery is one packet arrival at the sink: what the adversary can see
// (arrival time, cleartext header) plus the simulator ground truth used for
// scoring.
type Delivery struct {
	// At is the sink arrival time.
	At float64
	// Header is the cleartext header as received.
	Header packet.Header
	// Truth is the simulator-only ground truth.
	Truth packet.Truth
}

// NodeStats summarises one buffering node after a run.
type NodeStats struct {
	// ID is the node.
	ID packet.NodeID
	// HopsToSink is the node's routing depth.
	HopsToSink int
	// Arrivals, Departures, Drops and Preemptions count buffer events.
	Arrivals, Departures, Drops, Preemptions uint64
	// AvgOccupancy is the time-weighted mean number of buffered packets.
	AvgOccupancy float64
	// MaxOccupancy is the peak buffered count.
	MaxOccupancy float64
	// MeanHeldDelay is the mean realised holding time.
	MeanHeldDelay float64
}

// FlowStats summarises one source flow after a run.
type FlowStats struct {
	// Source is the flow's origin node.
	Source packet.NodeID
	// HopCount is the routing-path length to the sink.
	HopCount int
	// Created and Delivered count the flow's packets.
	Created, Delivered uint64
	// Latency summarises end-to-end delivery latency.
	Latency metrics.LatencyReport
}

// Dropped returns the number of the flow's packets lost in the network.
func (f *FlowStats) Dropped() uint64 {
	if f.Created < f.Delivered {
		return 0
	}
	return f.Created - f.Delivered
}

// Result is the outcome of one simulation run.
type Result struct {
	// Deliveries lists sink arrivals in time order.
	Deliveries []Delivery
	// Flows maps each source node to its flow summary.
	Flows map[packet.NodeID]*FlowStats
	// Nodes maps each buffering node to its buffer summary.
	Nodes map[packet.NodeID]*NodeStats
	// Duration is the simulated time at which the last event fired.
	Duration float64
	// Events is the total number of simulation events executed.
	Events uint64
	// SealFailures counts payloads that failed authentication at the sink
	// (always 0 unless the run is corrupted; present as an invariant).
	SealFailures uint64
	// LostToFailures counts packets destroyed by injected node failures:
	// buffer contents at failure time plus packets that later reached a
	// dead node. With RouteRepair the failed node's buffer is re-homed
	// rather than destroyed, so only packets with no surviving route count
	// here.
	LostToFailures uint64
	// LinkDrops counts packets abandoned by the link layer: frames the
	// channel destroyed with no ARQ to recover them, or packets whose ARQ
	// retry budget ran out.
	LinkDrops uint64
	// Retransmissions counts link-layer data-frame retransmissions (ARQ
	// retries after a lost frame, a silent dead receiver, or a lost ACK).
	Retransmissions uint64
	// DuplicatesSuppressed counts sink arrivals discarded because a copy of
	// the same (origin, seq) packet had already been delivered — the
	// ARQ-induced duplicates that must not inflate delivery counts or
	// adversary scores.
	DuplicatesSuppressed uint64
	// Reroutes counts parent reassignments applied by route repair across
	// all injected failures.
	Reroutes uint64
	// Manifest records the run's provenance: the canonical-config
	// fingerprint, seed, Go version and wall-clock performance. Always
	// populated.
	Manifest *telemetry.Manifest
}

// DeliveryRatio returns the fraction of created packets that reached the
// sink, across all flows. It is 1 for a run that created nothing.
func (r *Result) DeliveryRatio() float64 {
	var created, delivered uint64
	for _, f := range r.Flows {
		created += f.Created
		delivered += f.Delivered
	}
	if created == 0 {
		return 1
	}
	return float64(delivered) / float64(created)
}

// Observations converts the deliveries into the adversary's view, in arrival
// order.
func (r *Result) Observations() []adversary.Observation {
	out := make([]adversary.Observation, len(r.Deliveries))
	for i, d := range r.Deliveries {
		out[i] = adversary.Observation{ArrivalTime: d.At, Header: d.Header}
	}
	return out
}

// Truths returns the ground-truth creation times aligned with Observations.
func (r *Result) Truths() []float64 {
	out := make([]float64, len(r.Deliveries))
	for i, d := range r.Deliveries {
		out[i] = d.Truth.CreatedAt
	}
	return out
}
