package network

// Regression tests for pooled-timer reuse under route repair. A node
// failure evacuates its buffer, which cancels every pending release timer;
// the kernel immediately recycles those timer nodes for the handoff and
// subsequent traffic. A recycled timer must never double-fire its old
// callback or deliver the evacuated ("stale") packet through the dead
// node's release path — either bug shows up here as a duplicate
// (flow, seq) delivery or broken packet conservation.

import (
	"testing"

	"tempriv/internal/delay"
	"tempriv/internal/topology"
	"tempriv/internal/traffic"
)

func repairConfig(t *testing.T, policy PolicyKind, failures []NodeFailure) Config {
	t.Helper()
	topo, err := topology.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := traffic.NewPeriodic(2)
	if err != nil {
		t.Fatal(err)
	}
	// Mean delay far above the interarrival gap keeps every buffer on the
	// route loaded, so the failures cancel many armed release timers.
	dist, err := delay.NewExponential(50)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topology:     topo,
		Sources:      []Source{{Node: topology.GridID(4, 3, 3), Process: proc, Count: 400}},
		Policy:       policy,
		Delay:        dist,
		Seed:         7,
		RouteRepair:  true,
		NodeFailures: failures,
	}
}

// checkConservation asserts the invariants a stale or double-fired timer
// would break: every delivery is unique per (flow, seq) — there is no ARQ,
// so duplicates are impossible in a correct run — and every created packet
// is accounted for exactly once as delivered or lost.
func checkConservation(t *testing.T, res *Result) {
	t.Helper()
	seen := make(map[uint64]bool, len(res.Deliveries))
	for _, d := range res.Deliveries {
		key := uint64(d.Truth.Flow)<<32 | uint64(d.Truth.Seq)
		if seen[key] {
			t.Fatalf("packet (%v, %d) delivered twice — a recycled timer re-fired a stale callback",
				d.Truth.Flow, d.Truth.Seq)
		}
		seen[key] = true
		if d.At < d.Truth.CreatedAt {
			t.Fatalf("packet (%v, %d) arrived at %v before its creation at %v",
				d.Truth.Flow, d.Truth.Seq, d.At, d.Truth.CreatedAt)
		}
	}
	var created, delivered uint64
	for _, f := range res.Flows {
		created += f.Created
		delivered += f.Delivered
	}
	if delivered != uint64(len(res.Deliveries)) {
		t.Fatalf("flow summaries count %d deliveries, sink recorded %d", delivered, len(res.Deliveries))
	}
	if got := delivered + res.LostToFailures + res.LinkDrops; got != created {
		t.Fatalf("conservation broken: created %d, delivered %d + lost %d + link drops %d = %d",
			created, delivered, res.LostToFailures, res.LinkDrops, got)
	}
}

// TestRouteRepairTimerReuseNoStaleDelivery fails the two nodes adjacent to
// the sink mid-run — the nodes carrying all traffic, with the fullest
// buffers — while packets keep flowing, forcing heavy cancel-then-recycle
// churn in the timer pool right as the handoff and repaired routes schedule
// new events.
func TestRouteRepairTimerReuseNoStaleDelivery(t *testing.T) {
	for _, policy := range []PolicyKind{PolicyRCAD, PolicyUnlimited} {
		res, err := Run(repairConfig(t, policy, []NodeFailure{
			{Node: topology.GridID(4, 1, 0), At: 200},
			{Node: topology.GridID(4, 1, 1), At: 450},
		}))
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		checkConservation(t, res)
		if res.Reroutes == 0 {
			t.Fatalf("%v: failures triggered no reroutes; the repair path was not exercised", policy)
		}
		if len(res.Deliveries) == 0 {
			t.Fatalf("%v: nothing delivered; the scenario is degenerate", policy)
		}
	}
}

// TestRepeatedFailureDeterminism re-runs the repair-heavy scenario and
// requires bit-identical outcomes: pooled timers and flights are per-run
// state, so recycling must not leak any cross-run or allocation-order
// dependence into the simulated result.
func TestRepeatedFailureDeterminism(t *testing.T) {
	failures := []NodeFailure{
		{Node: topology.GridID(4, 1, 0), At: 200},
		{Node: topology.GridID(4, 1, 1), At: 450},
	}
	first, err := Run(repairConfig(t, PolicyRCAD, failures))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(repairConfig(t, PolicyRCAD, failures))
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Deliveries) != len(second.Deliveries) {
		t.Fatalf("reruns delivered %d vs %d packets", len(first.Deliveries), len(second.Deliveries))
	}
	for i := range first.Deliveries {
		a, b := first.Deliveries[i], second.Deliveries[i]
		if a.At != b.At || a.Truth != b.Truth || a.Header != b.Header {
			t.Fatalf("delivery %d differs between reruns: %+v vs %+v", i, a, b)
		}
	}
	if first.Reroutes != second.Reroutes || first.LostToFailures != second.LostToFailures {
		t.Fatalf("repair accounting differs between reruns: %d/%d reroutes, %d/%d lost",
			first.Reroutes, second.Reroutes, first.LostToFailures, second.LostToFailures)
	}
}
