package network

import (
	"bytes"
	"reflect"
	"testing"

	"tempriv/internal/packet"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
)

// gridConfig builds a w×h grid with the far corner as the only source —
// unlike a line, a grid offers the path diversity route repair needs.
func gridConfig(t *testing.T, w, h int, policy PolicyKind, interarrival float64, count int) Config {
	t.Helper()
	cfg := lineConfig(t, 3, policy, interarrival, count) // reuse policy/delay wiring
	topo, err := topology.Grid(w, h)
	if err != nil {
		t.Fatal(err)
	}
	far := topology.GridID(w, w-1, h-1)
	if err := topo.MarkSource(far); err != nil {
		t.Fatal(err)
	}
	cfg.Topology = topo
	cfg.Sources[0].Node = far
	return cfg
}

func TestReliablePathBitIdentical(t *testing.T) {
	// Acceptance gate: with link loss p = 0 and ARQ enabled, a run must be
	// bit-identical to the pre-link-layer baseline — deliveries, event
	// counts, and the full lifecycle trace.
	for _, policy := range []PolicyKind{PolicyForward, PolicyUnlimited, PolicyRCAD} {
		var baseMem, linkMem trace.Memory

		base := lineConfig(t, 5, policy, 4, 200)
		base.Tracer = &baseMem
		baseRes, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}

		link := lineConfig(t, 5, policy, 4, 200)
		link.Tracer = &linkMem
		link.Channel = &ChannelConfig{LossP: 0}
		link.ARQ = DefaultARQ()
		linkRes, err := Run(link)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(baseRes.Deliveries, linkRes.Deliveries) {
			t.Fatalf("policy %v: deliveries differ with lossless channel + ARQ", policy)
		}
		if baseRes.Events != linkRes.Events || baseRes.Duration != linkRes.Duration {
			t.Fatalf("policy %v: events/duration differ: %d/%v vs %d/%v", policy,
				baseRes.Events, baseRes.Duration, linkRes.Events, linkRes.Duration)
		}
		if !reflect.DeepEqual(baseMem.Events(), linkMem.Events()) {
			t.Fatalf("policy %v: lifecycle traces differ with lossless channel + ARQ", policy)
		}
		if linkRes.LinkDrops != 0 || linkRes.Retransmissions != 0 || linkRes.DuplicatesSuppressed != 0 {
			t.Fatalf("policy %v: lossless run counted link events: %d drops, %d retx, %d dups",
				policy, linkRes.LinkDrops, linkRes.Retransmissions, linkRes.DuplicatesSuppressed)
		}
	}
}

func TestLossyLinksDropWithoutARQ(t *testing.T) {
	cfg := lineConfig(t, 5, PolicyForward, 2, 500)
	cfg.Channel = &ChannelConfig{LossP: 0.2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Flows[packet.NodeID(5)]
	if res.LinkDrops == 0 {
		t.Fatal("no link drops on a 20%-loss channel")
	}
	if res.Retransmissions != 0 {
		t.Fatalf("%d retransmissions without ARQ", res.Retransmissions)
	}
	// Conservation under pure forwarding: every packet is delivered or
	// link-dropped.
	if fs.Delivered+res.LinkDrops != fs.Created {
		t.Fatalf("conservation: created %d != delivered %d + link drops %d",
			fs.Created, fs.Delivered, res.LinkDrops)
	}
	if r := res.DeliveryRatio(); r >= 1 || r <= 0 {
		t.Fatalf("delivery ratio = %v, want in (0, 1)", r)
	}
	// Per-hop survival (1-p)^5 ≈ 0.33; allow wide statistical slack.
	if r := res.DeliveryRatio(); r < 0.15 || r > 0.55 {
		t.Fatalf("delivery ratio = %v, want ≈ 0.33", r)
	}
}

func TestARQRecoversLosses(t *testing.T) {
	lossy := lineConfig(t, 5, PolicyForward, 2, 500)
	lossy.Channel = &ChannelConfig{LossP: 0.2}
	bare, err := Run(lossy)
	if err != nil {
		t.Fatal(err)
	}

	arq := lineConfig(t, 5, PolicyForward, 2, 500)
	arq.Channel = &ChannelConfig{LossP: 0.2}
	arq.ARQ = &ARQConfig{MaxRetries: 5}
	rec, err := Run(arq)
	if err != nil {
		t.Fatal(err)
	}

	if rec.Retransmissions == 0 {
		t.Fatal("ARQ never retransmitted on a lossy channel")
	}
	if rec.DeliveryRatio() <= bare.DeliveryRatio() {
		t.Fatalf("ARQ did not improve delivery: %v vs %v without",
			rec.DeliveryRatio(), bare.DeliveryRatio())
	}
	// With 5 retries per hop at p = 0.2, per-hop failure is 0.2^6 ≈ 6e-5.
	if r := rec.DeliveryRatio(); r < 0.99 {
		t.Fatalf("delivery ratio with ARQ = %v, want > 0.99", r)
	}
}

func TestGilbertElliottBurstsAreLossier(t *testing.T) {
	// Same marginal good-state loss, but the bad state wipes out frames:
	// the burst model must lose more than plain Bernoulli at the good rate.
	bern := lineConfig(t, 5, PolicyForward, 2, 500)
	bern.Channel = &ChannelConfig{LossP: 0.05}
	bres, err := Run(bern)
	if err != nil {
		t.Fatal(err)
	}

	burst := lineConfig(t, 5, PolicyForward, 2, 500)
	burst.Channel = &ChannelConfig{
		LossP: 0.05, Burst: true, BurstLossP: 0.9,
		MeanGoodRun: 40, MeanBurstLen: 10,
	}
	gres, err := Run(burst)
	if err != nil {
		t.Fatal(err)
	}
	if gres.LinkDrops <= bres.LinkDrops {
		t.Fatalf("burst channel dropped %d, Bernoulli %d; want more under bursts",
			gres.LinkDrops, bres.LinkDrops)
	}

	// Determinism: the burst channel replays exactly under the same seed.
	again, err := Run(burst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gres.Deliveries, again.Deliveries) || gres.LinkDrops != again.LinkDrops {
		t.Fatal("Gilbert–Elliott run is not reproducible under the same seed")
	}
}

func TestAckLossDuplicatesSuppressed(t *testing.T) {
	// Data frames never fail, only ACKs: every original arrives on its
	// baseline schedule and every retransmission is a duplicate the sink
	// must swallow without inflating Delivered or shifting the adversary's
	// view.
	base := lineConfig(t, 5, PolicyForward, 2, 300)
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := lineConfig(t, 5, PolicyForward, 2, 300)
	cfg.Channel = &ChannelConfig{LossP: 0, AckLossP: 0.3}
	cfg.ARQ = DefaultARQ()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if res.DuplicatesSuppressed == 0 {
		t.Fatal("30% ACK loss produced no duplicates")
	}
	fs := res.Flows[packet.NodeID(5)]
	if fs.Delivered != fs.Created {
		t.Fatalf("delivered %d of %d: duplicates inflated or deflated the count", fs.Delivered, fs.Created)
	}
	seen := make(map[uint32]bool)
	for _, d := range res.Deliveries {
		if seen[d.Truth.Seq] {
			t.Fatalf("packet seq %d delivered twice", d.Truth.Seq)
		}
		seen[d.Truth.Seq] = true
	}
	// Under pure forwarding duplicates never perturb other packets, so the
	// deduplicated deliveries — and therefore any adversary score computed
	// from them — are identical to the reliable baseline.
	if !reflect.DeepEqual(baseRes.Deliveries, res.Deliveries) {
		t.Fatal("ACK-loss duplicates shifted the sink's delivery record")
	}
}

func TestRouteRepairRecoversDeliveryRatio(t *testing.T) {
	// Kill the source's next hop mid-run on a 4×4 grid. Without repair the
	// flow stays cut off; with repair the source re-parents and delivery
	// resumes — strictly better on the same seed.
	const w, h = 4, 4
	far := topology.GridID(w, w-1, h-1)

	cut := gridConfig(t, w, h, PolicyForward, 10, 50)
	cut.NodeFailures = []NodeFailure{{Node: 11, At: 250}} // n11 = (3,2), S's parent
	cutRes, err := Run(cut)
	if err != nil {
		t.Fatal(err)
	}

	repaired := gridConfig(t, w, h, PolicyForward, 10, 50)
	repaired.NodeFailures = []NodeFailure{{Node: 11, At: 250}}
	repaired.RouteRepair = true
	repRes, err := Run(repaired)
	if err != nil {
		t.Fatal(err)
	}

	if repRes.Reroutes == 0 {
		t.Fatal("route repair reassigned no parents")
	}
	if repRes.DeliveryRatio() <= cutRes.DeliveryRatio() {
		t.Fatalf("repair did not improve delivery: %v vs %v without",
			repRes.DeliveryRatio(), cutRes.DeliveryRatio())
	}
	if got := repRes.Flows[far].Delivered; got != repRes.Flows[far].Created {
		t.Fatalf("repaired run still lost packets: delivered %d of %d",
			got, repRes.Flows[far].Created)
	}
}

func TestRouteRepairRehomesBufferedPackets(t *testing.T) {
	// A delaying victim holds packets at failure time. Without repair they
	// are destroyed; with repair they are handed to the successor and still
	// delivered.
	cut := gridConfig(t, 4, 4, PolicyRCAD, 2, 100)
	cut.NodeFailures = []NodeFailure{{Node: 11, At: 150}}
	cutRes, err := Run(cut)
	if err != nil {
		t.Fatal(err)
	}
	if cutRes.LostToFailures == 0 {
		t.Fatal("baseline failure lost nothing; test setup is too gentle")
	}

	rep := gridConfig(t, 4, 4, PolicyRCAD, 2, 100)
	rep.NodeFailures = []NodeFailure{{Node: 11, At: 150}}
	rep.RouteRepair = true
	repRes, err := Run(rep)
	if err != nil {
		t.Fatal(err)
	}
	if repRes.LostToFailures >= cutRes.LostToFailures {
		t.Fatalf("repair lost %d to the failure, no-repair lost %d",
			repRes.LostToFailures, cutRes.LostToFailures)
	}
	if repRes.DeliveryRatio() <= cutRes.DeliveryRatio() {
		t.Fatalf("repair delivery ratio %v not above no-repair %v",
			repRes.DeliveryRatio(), cutRes.DeliveryRatio())
	}
}

func TestRouteRepairDeterministicTrace(t *testing.T) {
	// Same seed + same failure schedule ⇒ byte-identical JSONL trace, with
	// every robustness feature enabled at once.
	run := func() []byte {
		var buf bytes.Buffer
		rec, err := trace.NewJSONL(&buf)
		if err != nil {
			t.Fatal(err)
		}
		cfg := gridConfig(t, 4, 4, PolicyRCAD, 2, 150)
		cfg.Channel = &ChannelConfig{LossP: 0.1, AckLossP: 0.05}
		cfg.ARQ = DefaultARQ()
		cfg.RouteRepair = true
		cfg.NodeFailures = []NodeFailure{{Node: 11, At: 100}, {Node: 14, At: 200}}
		cfg.Tracer = rec
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if err := rec.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("route-repair run is not byte-identical under the same seed and failure schedule")
	}
}

func TestRepairedTreesAvoidDeadNodes(t *testing.T) {
	// After repair, no surviving node's parent may be dead, and traced
	// reroutes must point at live nodes.
	var mem trace.Memory
	cfg := gridConfig(t, 5, 5, PolicyForward, 5, 100)
	dead := []packet.NodeID{7, 11, 17}
	cfg.NodeFailures = []NodeFailure{{Node: dead[0], At: 50}, {Node: dead[1], At: 120}, {Node: dead[2], At: 180}}
	cfg.RouteRepair = true
	cfg.Tracer = &mem
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	failAt := map[packet.NodeID]float64{7: 50, 11: 120, 17: 180}
	for _, e := range mem.Events() {
		if e.Kind != trace.Rerouted {
			continue
		}
		// The new parent must be alive at reroute time (it may die later and
		// trigger a further repair — that is fine).
		if at, dies := failAt[e.Dest]; dies && e.At >= at {
			t.Fatalf("node %v rerouted onto dead parent %v at t=%v (died at %v)", e.Node, e.Dest, e.At, at)
		}
	}
	// No packet may be admitted at a dead node after its failure time.
	for _, e := range mem.Events() {
		if e.Kind == trace.Admitted {
			if at, isDead := failAt[e.Node]; isDead && e.At > at {
				t.Fatalf("packet admitted at dead node %v at t=%v (died at %v)", e.Node, e.At, at)
			}
		}
	}
}

func TestARQPlusRepairSavesInFlightPackets(t *testing.T) {
	// With ARQ, a frame sent toward a node that dies mid-flight is retried;
	// once repair re-parents the sender, the retry succeeds. Delivery must
	// beat repair-only on the same seed and loss process.
	base := gridConfig(t, 4, 4, PolicyForward, 1, 300)
	base.NodeFailures = []NodeFailure{{Node: 11, At: 150}}
	base.RouteRepair = true
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	arq := gridConfig(t, 4, 4, PolicyForward, 1, 300)
	arq.NodeFailures = []NodeFailure{{Node: 11, At: 150}}
	arq.RouteRepair = true
	arq.ARQ = DefaultARQ()
	ares, err := Run(arq)
	if err != nil {
		t.Fatal(err)
	}
	if ares.DeliveryRatio() < bres.DeliveryRatio() {
		t.Fatalf("ARQ+repair delivery %v below repair-only %v",
			ares.DeliveryRatio(), bres.DeliveryRatio())
	}
}

func TestChannelAndARQValidation(t *testing.T) {
	good := lineConfig(t, 3, PolicyForward, 10, 5)

	bad := good
	bad.Channel = &ChannelConfig{LossP: 1.5}
	if _, err := Run(bad); err == nil {
		t.Fatal("loss probability > 1 accepted")
	}

	bad = good
	bad.Channel = &ChannelConfig{LossP: -0.1}
	if _, err := Run(bad); err == nil {
		t.Fatal("negative loss probability accepted")
	}

	bad = good
	bad.Channel = &ChannelConfig{AckLossP: 0.1} // no ARQ configured
	if _, err := Run(bad); err == nil {
		t.Fatal("ACK loss without ARQ accepted")
	}

	bad = good
	bad.Channel = &ChannelConfig{Burst: true, BurstLossP: 2}
	if _, err := Run(bad); err == nil {
		t.Fatal("burst loss probability > 1 accepted")
	}

	bad = good
	bad.Channel = &ChannelConfig{Burst: true, BurstLossP: 0.5, MeanBurstLen: 0.2}
	if _, err := Run(bad); err == nil {
		t.Fatal("sub-transmission burst length accepted")
	}

	bad = good
	bad.ARQ = &ARQConfig{MaxRetries: -1}
	if _, err := Run(bad); err == nil {
		t.Fatal("negative retry budget accepted")
	}

	bad = good
	bad.ARQ = &ARQConfig{Backoff: 0.5}
	if _, err := Run(bad); err == nil {
		t.Fatal("shrinking backoff accepted")
	}

	bad = good
	bad.ARQ = &ARQConfig{Timeout: -1}
	if _, err := Run(bad); err == nil {
		t.Fatal("negative timeout accepted")
	}
}

func TestARQWaitBacksOffAndCaps(t *testing.T) {
	a, err := (&ARQConfig{MaxRetries: 8, Timeout: 2, Backoff: 2, MaxTimeout: 10}).validate(1)
	if err != nil {
		t.Fatal(err)
	}
	wants := []float64{2, 4, 8, 10, 10}
	for try, want := range wants {
		if got := a.wait(try); got != want {
			t.Fatalf("wait(%d) = %v, want %v", try, got, want)
		}
	}
	// Defaults: timeout 3τ, backoff ×2, cap 10× timeout.
	d, err := DefaultARQ().validate(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Timeout != 6 || d.Backoff != 2 || d.MaxTimeout != 60 {
		t.Fatalf("resolved defaults = %+v", d)
	}
}
