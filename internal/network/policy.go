package network

// Delay-policy layer: wires the configured buffering behaviour to each node
// and admits arriving packets into it. The policy holds a packet for its
// sampled buffering delay (or preempts it) and hands it back to the link
// layer through the node's forward callback.

import (
	"fmt"

	"tempriv/internal/buffer"
	"tempriv/internal/core"
	"tempriv/internal/packet"
	"tempriv/internal/trace"
)

// evacuator is implemented by buffering policies whose contents can be
// destroyed on node failure.
type evacuator interface {
	Evacuate() []*packet.Packet
}

// attachPolicy wires the configured buffering policy to node n.
func (r *runner) attachPolicy(n *node) error {
	forward := func(p *packet.Packet, preempted bool) {
		kind := trace.Released
		if preempted {
			kind = trace.Preempted
			r.tele.onPreempted()
		}
		r.record(kind, n.id, p)
		r.transmit(n, p)
	}
	switch r.cfg.Policy {
	case PolicyForward:
		return nil // handled inline in deliver
	case PolicyUnlimited:
		pol, err := buffer.NewUnlimited(r.sched, forward)
		if err != nil {
			return fmt.Errorf("network: node %v: %w", n.id, err)
		}
		n.policy = pol
	case PolicyDropTail:
		pol, err := buffer.NewDropTail(r.sched, forward, r.cfg.Capacity)
		if err != nil {
			return fmt.Errorf("network: node %v: %w", n.id, err)
		}
		n.policy = pol
	case PolicyCustom:
		pol, err := r.cfg.CustomPolicy(r.sched, forward, n.src.Split("policy"))
		if err != nil {
			return fmt.Errorf("network: node %v: building custom policy: %w", n.id, err)
		}
		if pol == nil {
			return fmt.Errorf("network: node %v: custom policy factory returned nil", n.id)
		}
		n.policy = pol
	case PolicyRCAD:
		var ctrl *core.RateController
		if rc := r.cfg.RateControl; rc != nil {
			var err error
			ctrl, err = core.NewRateController(r.cfg.Capacity, rc.TargetLoss, rc.Smoothing, n.dist.Mean())
			if err != nil {
				return fmt.Errorf("network: node %v: %w", n.id, err)
			}
		}
		eng, err := core.New(core.Config{
			Scheduler:  r.sched,
			Forward:    forward,
			Capacity:   r.cfg.Capacity,
			Delay:      n.dist,
			Victim:     r.cfg.Victim,
			Source:     n.src.Split("victim"),
			Controller: ctrl,
		})
		if err != nil {
			return fmt.Errorf("network: node %v: %w", n.id, err)
		}
		n.rcad = eng
	}
	return nil
}

// deliver hands a packet to node n's buffering policy (or forwards it
// immediately under PolicyForward). Packets reaching a dead node are lost.
func (r *runner) deliver(n *node, p *packet.Packet) {
	if n.dead {
		r.result.LostToFailures++
		r.tele.onLost(1)
		r.record(trace.Lost, n.id, p)
		return
	}
	switch {
	case n.rcad != nil:
		r.record(trace.Admitted, n.id, p)
		n.rcad.OnPacket(r.sched.Now(), p)
	case n.policy != nil:
		r.record(trace.Admitted, n.id, p)
		n.policy.Admit(p, n.dist.Sample(n.src))
	default: // PolicyForward
		r.transmit(n, p)
	}
}
