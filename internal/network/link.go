package network

// Link layer: moves a packet one hop toward the sink. The frame crosses the
// (possibly lossy) channel in τ time units; with ARQ enabled, lost frames
// are retransmitted with capped exponential backoff, and a lost ACK spawns
// the duplicate copy the sink later suppresses. The channel model itself
// lives in channel.go.
//
// In-flight frames ride pooled flight records whose arrive/retry callbacks
// are bound once at construction, so the per-hop fast path — transmit,
// attempt, arrival — schedules only pre-existing func values and performs
// zero heap allocations on a lossless hop. TestForwardHopAllocationFree
// gates this.

import (
	"tempriv/internal/packet"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
)

// flight is one frame in transit: the sending node, the packet, the
// destination captured at send time, and the attempt number. arriveFn and
// retryFn are method values bound once when the flight is first allocated;
// releasing a flight back to the pool keeps them, so a recycled flight
// reschedules without allocating.
type flight struct {
	r        *runner
	n        *node
	p        *packet.Packet
	dest     packet.NodeID
	try      int
	arriveFn func()
	retryFn  func()
}

// acquireFlight pops a recycled flight or mints a new one with its
// callbacks bound.
func (r *runner) acquireFlight(n *node, p *packet.Packet, dest packet.NodeID, try int) *flight {
	var f *flight
	if k := len(r.flights); k > 0 {
		f = r.flights[k-1]
		r.flights[k-1] = nil
		r.flights = r.flights[:k-1]
	} else {
		f = &flight{r: r}
		f.arriveFn = f.arrive
		f.retryFn = f.retry
	}
	f.n, f.p, f.dest, f.try = n, p, dest, try
	return f
}

// releaseFlight returns f to the pool. The packet reference is dropped so a
// pooled flight never pins a delivered packet live.
func (r *runner) releaseFlight(f *flight) {
	f.n, f.p = nil, nil
	r.flights = append(r.flights, f)
}

// transmit moves a packet one hop from n toward the sink through the link
// layer.
func (r *runner) transmit(n *node, p *packet.Packet) {
	p.Forward(n.id)
	r.attempt(n, p, 0)
}

// attempt performs one transmission of p from n — attempt number try, where
// 0 is the original send. The destination is re-read from n.parent on every
// attempt, so a retransmission after a route repair follows the new parent.
func (r *runner) attempt(n *node, p *packet.Packet, try int) {
	dest := n.parent
	if try > 0 {
		r.result.Retransmissions++
		r.tele.onRetransmit()
		r.recordLink(trace.Retransmit, n.id, dest, p)
	}
	if n.link.frameLost() {
		r.recordLink(trace.LinkLoss, n.id, dest, p)
		r.retryOrDrop(n, dest, p, try)
		return
	}
	f := r.acquireFlight(n, p, dest, try)
	r.sched.After(r.cfg.TransmissionDelay, f.arriveFn)
}

// arrive lands the frame at its destination after the transmission delay.
// The flight is released before any delivery processing so the forwarding
// the arrival triggers can reuse it immediately.
func (f *flight) arrive() {
	r, n, p, dest, try := f.r, f.n, f.p, f.dest, f.try
	r.releaseFlight(f)
	if dest == topology.Sink {
		// The duplicate check must clone before delivery mutates the
		// header, so it runs first in both branches.
		r.maybeDuplicate(n, dest, p, try)
		r.arriveAtSink(p)
		return
	}
	dn := r.nodes[dest]
	if dn.dead {
		if r.cfg.ARQ != nil {
			// A dead receiver never acknowledges: the sender times out
			// and retries — by then possibly toward a repaired route.
			r.recordLink(trace.LinkLoss, n.id, dest, p)
			r.retryOrDrop(n, dest, p, try)
		} else {
			r.result.LostToFailures++
			r.tele.onLost(1)
			r.record(trace.Lost, dest, p)
		}
		return
	}
	r.maybeDuplicate(n, dest, p, try)
	r.deliver(dn, p)
}

// retry is the ARQ timeout callback: the backed-off wait has elapsed and the
// sender tries again.
func (f *flight) retry() {
	r, n, p, try := f.r, f.n, f.p, f.try
	r.releaseFlight(f)
	r.attempt(n, p, try+1)
}

// retryOrDrop schedules the next ARQ attempt after the backed-off timeout,
// or abandons the packet once the retry budget is spent.
func (r *runner) retryOrDrop(n *node, dest packet.NodeID, p *packet.Packet, try int) {
	arq := r.cfg.ARQ
	if arq == nil || try >= arq.MaxRetries {
		r.result.LinkDrops++
		r.tele.onLinkDrop()
		r.recordLink(trace.LinkDrop, n.id, dest, p)
		return
	}
	f := r.acquireFlight(n, p, dest, try)
	r.sched.After(arq.wait(try), f.retryFn)
}

// maybeDuplicate models the acknowledgement of a delivered frame: when the
// ACK is lost the sender cannot distinguish the outcome from a lost frame
// and retransmits an independent copy — the duplicate the sink's
// (origin, seq) filter later suppresses. It must run before the delivered
// copy's header advances further.
func (r *runner) maybeDuplicate(n *node, dest packet.NodeID, p *packet.Packet, try int) {
	if r.cfg.ARQ == nil || !n.link.ackLost() {
		return
	}
	r.recordLink(trace.LinkLoss, n.id, dest, p)
	if try >= r.cfg.ARQ.MaxRetries {
		return // the sender gives up; the frame was in fact delivered
	}
	dup := r.clonePacket(p)
	f := r.acquireFlight(n, dup, dest, try)
	r.sched.After(r.cfg.ARQ.wait(try), f.retryFn)
}
