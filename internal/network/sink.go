package network

// Sink layer: records arrivals for the adversary tap and the ground-truth
// scoring, suppresses ARQ-induced duplicates, and computes the per-flow and
// per-node summaries once the event list has drained.

import (
	"sort"

	"tempriv/internal/buffer"
	"tempriv/internal/metrics"
	"tempriv/internal/packet"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
)

// arriveAtSink records a delivery and its ground truth, discarding
// ARQ-induced duplicates of already delivered packets.
func (r *runner) arriveAtSink(p *packet.Packet) {
	now := r.sched.Now()
	if r.dedup != nil {
		key := uint64(p.Header.Origin)<<32 | uint64(p.Header.RoutingSeq)
		if _, dup := r.dedup[key]; dup {
			r.result.DuplicatesSuppressed++
			r.tele.onDuplicate()
			r.record(trace.Duplicate, topology.Sink, p)
			return
		}
		r.dedup[key] = struct{}{}
	}
	if r.keyring != nil {
		reading, err := p.OpenReading(r.keyring)
		if err != nil || reading.CreatedAt != p.Truth.CreatedAt {
			r.result.SealFailures++
		}
	}
	r.tele.onDelivered(now - p.Truth.CreatedAt)
	r.record(trace.Delivered, topology.Sink, p)
	r.result.Deliveries = append(r.result.Deliveries, Delivery{
		At:     now,
		Header: p.Header,
		Truth:  p.Truth,
	})
}

// finalize computes the per-flow and per-node summaries once the event list
// has drained.
func (r *runner) finalize() {
	res := r.result
	res.Duration = r.sched.Now()
	res.Events = r.sched.Fired()

	latencies := make(map[packet.NodeID]*metrics.Latency)
	for _, d := range res.Deliveries {
		fs, ok := res.Flows[d.Truth.Flow]
		if !ok {
			continue // defensive: deliveries only come from declared sources
		}
		fs.Delivered++
		l, ok := latencies[d.Truth.Flow]
		if !ok {
			l = &metrics.Latency{}
			latencies[d.Truth.Flow] = l
		}
		l.Add(d.At - d.Truth.CreatedAt)
	}
	for flow, l := range latencies {
		res.Flows[flow].Latency = l.Report()
	}

	ids := make([]packet.NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := r.nodes[id]
		var st *buffer.Stats
		switch {
		case n.rcad != nil:
			st = n.rcad.Stats()
		case n.policy != nil:
			st = n.policy.Stats()
		default:
			continue // PolicyForward keeps no buffer state
		}
		hops, _ := r.routes.HopCount(id)
		res.Nodes[id] = &NodeStats{
			ID:            id,
			HopsToSink:    hops,
			Arrivals:      st.Arrivals,
			Departures:    st.Departures,
			Drops:         st.Drops,
			Preemptions:   st.Preemptions,
			AvgOccupancy:  st.Occupancy.Average(res.Duration),
			MaxOccupancy:  st.Occupancy.Max(),
			MeanHeldDelay: st.HeldDelays.Mean(),
		}
	}
}
