package network

// Failure layer: injected node deaths and the optional route repair that
// re-parents survivors and re-homes the dead node's buffer. All of this is
// the rare path — it keeps ordinary closures rather than pooled callbacks.

import (
	"sort"

	"tempriv/internal/packet"
	"tempriv/internal/routing"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
)

// scheduleFailures arms the injected node deaths.
func (r *runner) scheduleFailures() {
	for _, f := range r.cfg.NodeFailures {
		n := r.nodes[f.Node]
		r.sched.At(f.At, func() { r.failNode(n) })
	}
}

// failNode kills n: its buffered packets are evacuated and, depending on
// Config.RouteRepair, either destroyed (the static-routing model) or
// re-homed onto the repaired tree.
func (r *runner) failNode(n *node) {
	n.dead = true
	r.dead[n.id] = true
	var evacuated []*packet.Packet
	var holder evacuator
	switch {
	case n.rcad != nil:
		holder = n.rcad
	case n.policy != nil:
		if ev, ok := n.policy.(evacuator); ok {
			holder = ev
		}
	}
	if holder != nil {
		evacuated = holder.Evacuate()
	}
	if !r.cfg.RouteRepair {
		r.loseToFailure(n.id, evacuated)
		return
	}
	r.repairRoutes(n, evacuated)
}

// loseToFailure counts and traces packets destroyed by a node death.
func (r *runner) loseToFailure(at packet.NodeID, packets []*packet.Packet) {
	r.result.LostToFailures += uint64(len(packets))
	r.tele.onLost(uint64(len(packets)))
	for _, p := range packets {
		r.record(trace.Lost, at, p)
	}
}

// repairRoutes rebuilds the routing tree without the dead nodes, re-parents
// every survivor whose parent changed, and hands the failed node's buffered
// packets to its successor instead of destroying them. Survivors are visited
// in ID order and the rebuild tie-breaks exactly like the original BFS, so
// repair is deterministic in (Config, Seed).
func (r *runner) repairRoutes(failed *node, evacuated []*packet.Packet) {
	rebuilt := routing.BuildTreeAvoiding(r.cfg.Topology, r.dead)

	ids := make([]packet.NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := r.nodes[id]
		if n.dead {
			continue
		}
		parent, ok := rebuilt.NextHop(id)
		if !ok || parent == n.parent {
			// A survivor the failure orphaned keeps its stale parent: its
			// traffic dies at the dead node exactly as without repair.
			continue
		}
		n.parent = parent
		r.result.Reroutes++
		if r.cfg.Tracer != nil {
			r.cfg.Tracer.Record(trace.Event{
				At: r.sched.Now(), Kind: trace.Rerouted, Node: id, Dest: parent,
			})
		}
	}

	if len(evacuated) == 0 {
		return
	}
	succ, ok := r.successor(failed, rebuilt)
	if !ok {
		// No surviving routed neighbor: the buffer is unreachable and lost.
		r.loseToFailure(failed.id, evacuated)
		return
	}
	// Hand each buffered packet to the successor, one transmission delay
	// away — the failure-time offload of route-maintenance protocols.
	for _, p := range evacuated {
		p := p
		p.Forward(failed.id)
		r.sched.After(r.cfg.TransmissionDelay, func() {
			if succ == topology.Sink {
				r.arriveAtSink(p)
				return
			}
			r.deliver(r.nodes[succ], p)
		})
	}
}

// successor picks the failed node's handoff target: its alive neighbor
// closest to the sink in the rebuilt tree, ties toward the smaller ID — the
// parent the node itself would have received had it survived.
func (r *runner) successor(failed *node, rebuilt *routing.Table) (packet.NodeID, bool) {
	var best packet.NodeID
	bestHops := -1
	for _, m := range r.cfg.Topology.Neighbors(failed.id) {
		if r.dead[m] {
			continue
		}
		h, ok := rebuilt.HopCount(m)
		if !ok {
			continue
		}
		if bestHops == -1 || h < bestHops || (h == bestHops && m < best) {
			best, bestHops = m, h
		}
	}
	return best, bestHops >= 0
}
