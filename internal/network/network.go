// Package network assembles topology, routing, traffic, buffering and the
// RCAD engine into a runnable simulated sensor network — the event-driven
// simulator of §5.
//
// The simulation model follows §5.2: PHY and MAC are abstracted to a
// constant per-hop transmission delay τ (1 time unit by default); every
// non-sink node on a packet's routing path draws an independent buffering
// delay from its configured distribution before forwarding; the sink records
// arrivals. Payload sealing (AES-CTR + HMAC) can be enabled to run the §2
// confidentiality assumption end-to-end.
//
// Beyond the paper's perfectly reliable links, the simulator models a fault
// -tolerant delivery layer: per-link frame loss (Bernoulli or Gilbert–
// Elliott bursts, Config.Channel), link-layer ARQ with capped exponential
// backoff (Config.ARQ), duplicate suppression at the sink, and route repair
// around injected node failures (Config.RouteRepair). All of it draws from
// dedicated per-link random substreams, so the reliable path of a run is
// bit-identical whether or not these features are compiled into the config
// with zero loss.
//
// A Run is fully deterministic in (Config, Seed): every node draws from its
// own labelled substream of the master seed.
//
// The implementation is layered, one file per layer, mirroring a packet's
// life:
//
//	source.go  — packet creation and interarrival arming (sourceState)
//	policy.go  — per-node buffering policy attachment and admission
//	link.go    — per-hop transmission: channel loss, ARQ retries, duplicates
//	sink.go    — arrival recording, duplicate suppression, final summaries
//	failure.go — injected node deaths and route repair
//	runner.go  — validation, node construction, and the run loop gluing the
//	             layers together
//
// The per-hop fast path is allocation-free: in-flight frames ride pooled
// flight records with pre-bound callbacks (link.go), so a lossless forwarded
// hop costs two pool pops and zero heap allocations.
package network

import (
	"fmt"

	"tempriv/internal/buffer"
	"tempriv/internal/delay"
	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/sim"
	"tempriv/internal/telemetry"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
	"tempriv/internal/traffic"
)

// PolicyKind selects the buffering behaviour of every node in the network,
// matching the three evaluation cases of §5.3 plus the analytic drop model
// of §4.
type PolicyKind int

const (
	// PolicyForward forwards packets immediately with no buffering delay —
	// evaluation case 1 ("NoDelay").
	PolicyForward PolicyKind = iota + 1
	// PolicyUnlimited delays every packet for its full sampled time with
	// unbounded buffers — evaluation case 2 ("Delay&UnlimitedBuffers").
	PolicyUnlimited
	// PolicyDropTail delays packets with a finite buffer that drops
	// arrivals when full — the M/M/k/k model of §4.
	PolicyDropTail
	// PolicyRCAD delays packets with a finite buffer that preempts the
	// victim packet when full — evaluation case 3
	// ("Delay&LimitedBuffers", §5).
	PolicyRCAD
	// PolicyCustom installs the buffering policy built by
	// Config.CustomPolicy on every node — the extension point used by the
	// mix-network comparators (package mix) and available to downstream
	// users.
	PolicyCustom
)

// String returns the report identifier of the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyForward:
		return "no-delay"
	case PolicyUnlimited:
		return "delay-unlimited"
	case PolicyDropTail:
		return "delay-droptail"
	case PolicyRCAD:
		return "rcad"
	case PolicyCustom:
		return "custom"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// Source declares one traffic source.
type Source struct {
	// Node is the source's node ID; it must exist in the topology.
	Node packet.NodeID
	// Process generates the source's packet interarrival times.
	Process traffic.Process
	// Count is the number of packets to create. Zero means "until the
	// horizon", which then must be positive.
	Count int
}

// RateControl enables the §4 per-node µ-planner on every buffering node.
type RateControl struct {
	// TargetLoss is the Erlang-loss design target α (the paper discusses
	// 0.1).
	TargetLoss float64
	// Smoothing is the EWMA weight for rate estimation, in (0, 1].
	Smoothing float64
}

// Config describes one simulation run.
type Config struct {
	// Topology is the deployment. Required and must be sink-connected.
	Topology *topology.Topology
	// Sources declare the traffic. Required, non-empty.
	Sources []Source
	// Policy selects the buffering behaviour. Required.
	Policy PolicyKind
	// Delay is the per-hop buffering-delay distribution, required for every
	// policy except PolicyForward. The paper's evaluation uses
	// exponential with mean 30.
	Delay delay.Distribution
	// PerNodeDelay overrides Delay for specific nodes (used by the §3.3
	// delay-decomposition experiments and the Erlang planner example).
	PerNodeDelay map[packet.NodeID]delay.Distribution
	// Capacity is the buffer size k for PolicyDropTail and PolicyRCAD.
	// Defaults to core.DefaultCapacity (10, the Mica-2 approximation).
	Capacity int
	// Victim is the RCAD victim-selection rule. Defaults to
	// buffer.ShortestRemaining, the paper's rule.
	Victim buffer.VictimSelector
	// CustomPolicy builds each node's buffering policy when Policy is
	// PolicyCustom. It is called once per buffering node with that node's
	// forward function and private random substream. When Delay is nil,
	// custom policies receive zero sampled delays (appropriate for
	// batching mixes, which ignore them).
	CustomPolicy func(sched *sim.Scheduler, forward buffer.Forward, src *rng.Source) (buffer.Policy, error)
	// RateControl optionally enables per-node delay planning (§4).
	RateControl *RateControl
	// TransmissionDelay is τ, the per-hop transmission time. Defaults to 1
	// (§5.2).
	TransmissionDelay float64
	// Horizon stops packet generation at this simulated time; 0 means
	// "generate exactly Count packets per source". In-flight packets always
	// drain completely.
	Horizon float64
	// Seed drives all randomness. Runs with equal configs and seeds are
	// identical.
	Seed uint64
	// Channel models unreliable links; nil means perfectly reliable links
	// (the paper's assumption). See ChannelConfig.
	Channel *ChannelConfig
	// ARQ enables per-hop acknowledge/retransmit recovery of lost frames;
	// nil disables it, making every lost frame a lost packet. See ARQConfig.
	ARQ *ARQConfig
	// RouteRepair rebuilds the routing tree around dead nodes when a
	// NodeFailure fires: survivors re-parent onto live routes and the dead
	// node's buffered packets are handed to its successor instead of being
	// destroyed. Without it, routing is static and flows through a dead
	// node stay cut off forever.
	RouteRepair bool
	// NodeFailures schedules permanent node deaths (failure injection).
	NodeFailures []NodeFailure
	// Tracer optionally receives per-packet lifecycle events (creation,
	// per-hop admission and release, delivery, loss). See package trace.
	Tracer trace.Recorder
	// Telemetry optionally attaches the run-observability layer: live
	// metrics into Telemetry.Registry and, when Telemetry.SampleEvery and
	// Telemetry.Emitter are set, a sim-time sampler streaming queue-state
	// snapshots. Nil disables telemetry at near-zero cost. Telemetry never
	// touches the RNG, so enabling it does not perturb the simulated
	// outcome.
	Telemetry *telemetry.Config
	// Seal, when true, encrypts every payload with the network keyring and
	// verifies it at the sink (slower; the privacy results do not depend
	// on it, only the §2 threat model's realism).
	Seal bool
}

// NodeFailure schedules a permanent node death — modelling sensor
// exhaustion or destruction. By default routing is static (the paper's
// tree): the node's buffered packets are lost at time At and every packet
// subsequently reaching it is lost, so flows through a dead node are cut
// off. With Config.RouteRepair the tree is rebuilt around the dead node,
// survivors re-parent, and the victim's buffer is handed to its successor.
type NodeFailure struct {
	// Node is the failing node; it must exist and must not be the sink.
	Node packet.NodeID
	// At is the failure time (>= 0).
	At float64
}
