// Package network assembles topology, routing, traffic, buffering and the
// RCAD engine into a runnable simulated sensor network — the event-driven
// simulator of §5.
//
// The simulation model follows §5.2: PHY and MAC are abstracted to a
// constant per-hop transmission delay τ (1 time unit by default); every
// non-sink node on a packet's routing path draws an independent buffering
// delay from its configured distribution before forwarding; the sink records
// arrivals. Payload sealing (AES-CTR + HMAC) can be enabled to run the §2
// confidentiality assumption end-to-end.
//
// Beyond the paper's perfectly reliable links, the simulator models a fault
// -tolerant delivery layer: per-link frame loss (Bernoulli or Gilbert–
// Elliott bursts, Config.Channel), link-layer ARQ with capped exponential
// backoff (Config.ARQ), duplicate suppression at the sink, and route repair
// around injected node failures (Config.RouteRepair). All of it draws from
// dedicated per-link random substreams, so the reliable path of a run is
// bit-identical whether or not these features are compiled into the config
// with zero loss.
//
// A Run is fully deterministic in (Config, Seed): every node draws from its
// own labelled substream of the master seed.
package network

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tempriv/internal/adversary"
	"tempriv/internal/buffer"
	"tempriv/internal/core"
	"tempriv/internal/delay"
	"tempriv/internal/metrics"
	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/routing"
	"tempriv/internal/seal"
	"tempriv/internal/sim"
	"tempriv/internal/telemetry"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
	"tempriv/internal/traffic"
)

// PolicyKind selects the buffering behaviour of every node in the network,
// matching the three evaluation cases of §5.3 plus the analytic drop model
// of §4.
type PolicyKind int

const (
	// PolicyForward forwards packets immediately with no buffering delay —
	// evaluation case 1 ("NoDelay").
	PolicyForward PolicyKind = iota + 1
	// PolicyUnlimited delays every packet for its full sampled time with
	// unbounded buffers — evaluation case 2 ("Delay&UnlimitedBuffers").
	PolicyUnlimited
	// PolicyDropTail delays packets with a finite buffer that drops
	// arrivals when full — the M/M/k/k model of §4.
	PolicyDropTail
	// PolicyRCAD delays packets with a finite buffer that preempts the
	// victim packet when full — evaluation case 3
	// ("Delay&LimitedBuffers", §5).
	PolicyRCAD
	// PolicyCustom installs the buffering policy built by
	// Config.CustomPolicy on every node — the extension point used by the
	// mix-network comparators (package mix) and available to downstream
	// users.
	PolicyCustom
)

// String returns the report identifier of the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyForward:
		return "no-delay"
	case PolicyUnlimited:
		return "delay-unlimited"
	case PolicyDropTail:
		return "delay-droptail"
	case PolicyRCAD:
		return "rcad"
	case PolicyCustom:
		return "custom"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// Source declares one traffic source.
type Source struct {
	// Node is the source's node ID; it must exist in the topology.
	Node packet.NodeID
	// Process generates the source's packet interarrival times.
	Process traffic.Process
	// Count is the number of packets to create. Zero means "until the
	// horizon", which then must be positive.
	Count int
}

// RateControl enables the §4 per-node µ-planner on every buffering node.
type RateControl struct {
	// TargetLoss is the Erlang-loss design target α (the paper discusses
	// 0.1).
	TargetLoss float64
	// Smoothing is the EWMA weight for rate estimation, in (0, 1].
	Smoothing float64
}

// Config describes one simulation run.
type Config struct {
	// Topology is the deployment. Required and must be sink-connected.
	Topology *topology.Topology
	// Sources declare the traffic. Required, non-empty.
	Sources []Source
	// Policy selects the buffering behaviour. Required.
	Policy PolicyKind
	// Delay is the per-hop buffering-delay distribution, required for every
	// policy except PolicyForward. The paper's evaluation uses
	// exponential with mean 30.
	Delay delay.Distribution
	// PerNodeDelay overrides Delay for specific nodes (used by the §3.3
	// delay-decomposition experiments and the Erlang planner example).
	PerNodeDelay map[packet.NodeID]delay.Distribution
	// Capacity is the buffer size k for PolicyDropTail and PolicyRCAD.
	// Defaults to core.DefaultCapacity (10, the Mica-2 approximation).
	Capacity int
	// Victim is the RCAD victim-selection rule. Defaults to
	// buffer.ShortestRemaining, the paper's rule.
	Victim buffer.VictimSelector
	// CustomPolicy builds each node's buffering policy when Policy is
	// PolicyCustom. It is called once per buffering node with that node's
	// forward function and private random substream. When Delay is nil,
	// custom policies receive zero sampled delays (appropriate for
	// batching mixes, which ignore them).
	CustomPolicy func(sched *sim.Scheduler, forward buffer.Forward, src *rng.Source) (buffer.Policy, error)
	// RateControl optionally enables per-node delay planning (§4).
	RateControl *RateControl
	// TransmissionDelay is τ, the per-hop transmission time. Defaults to 1
	// (§5.2).
	TransmissionDelay float64
	// Horizon stops packet generation at this simulated time; 0 means
	// "generate exactly Count packets per source". In-flight packets always
	// drain completely.
	Horizon float64
	// Seed drives all randomness. Runs with equal configs and seeds are
	// identical.
	Seed uint64
	// Channel models unreliable links; nil means perfectly reliable links
	// (the paper's assumption). See ChannelConfig.
	Channel *ChannelConfig
	// ARQ enables per-hop acknowledge/retransmit recovery of lost frames;
	// nil disables it, making every lost frame a lost packet. See ARQConfig.
	ARQ *ARQConfig
	// RouteRepair rebuilds the routing tree around dead nodes when a
	// NodeFailure fires: survivors re-parent onto live routes and the dead
	// node's buffered packets are handed to its successor instead of being
	// destroyed. Without it, routing is static and flows through a dead
	// node stay cut off forever.
	RouteRepair bool
	// NodeFailures schedules permanent node deaths (failure injection).
	NodeFailures []NodeFailure
	// Tracer optionally receives per-packet lifecycle events (creation,
	// per-hop admission and release, delivery, loss). See package trace.
	Tracer trace.Recorder
	// Telemetry optionally attaches the run-observability layer: live
	// metrics into Telemetry.Registry and, when Telemetry.SampleEvery and
	// Telemetry.Emitter are set, a sim-time sampler streaming queue-state
	// snapshots. Nil disables telemetry at near-zero cost. Telemetry never
	// touches the RNG, so enabling it does not perturb the simulated
	// outcome.
	Telemetry *telemetry.Config
	// Seal, when true, encrypts every payload with the network keyring and
	// verifies it at the sink (slower; the privacy results do not depend
	// on it, only the §2 threat model's realism).
	Seal bool
}

// NodeFailure schedules a permanent node death — modelling sensor
// exhaustion or destruction. By default routing is static (the paper's
// tree): the node's buffered packets are lost at time At and every packet
// subsequently reaching it is lost, so flows through a dead node are cut
// off. With Config.RouteRepair the tree is rebuilt around the dead node,
// survivors re-parent, and the victim's buffer is handed to its successor.
type NodeFailure struct {
	// Node is the failing node; it must exist and must not be the sink.
	Node packet.NodeID
	// At is the failure time (>= 0).
	At float64
}

// Delivery is one packet arrival at the sink: what the adversary can see
// (arrival time, cleartext header) plus the simulator ground truth used for
// scoring.
type Delivery struct {
	// At is the sink arrival time.
	At float64
	// Header is the cleartext header as received.
	Header packet.Header
	// Truth is the simulator-only ground truth.
	Truth packet.Truth
}

// NodeStats summarises one buffering node after a run.
type NodeStats struct {
	// ID is the node.
	ID packet.NodeID
	// HopsToSink is the node's routing depth.
	HopsToSink int
	// Arrivals, Departures, Drops and Preemptions count buffer events.
	Arrivals, Departures, Drops, Preemptions uint64
	// AvgOccupancy is the time-weighted mean number of buffered packets.
	AvgOccupancy float64
	// MaxOccupancy is the peak buffered count.
	MaxOccupancy float64
	// MeanHeldDelay is the mean realised holding time.
	MeanHeldDelay float64
}

// FlowStats summarises one source flow after a run.
type FlowStats struct {
	// Source is the flow's origin node.
	Source packet.NodeID
	// HopCount is the routing-path length to the sink.
	HopCount int
	// Created and Delivered count the flow's packets.
	Created, Delivered uint64
	// Latency summarises end-to-end delivery latency.
	Latency metrics.LatencyReport
}

// Dropped returns the number of the flow's packets lost in the network.
func (f *FlowStats) Dropped() uint64 {
	if f.Created < f.Delivered {
		return 0
	}
	return f.Created - f.Delivered
}

// Result is the outcome of one simulation run.
type Result struct {
	// Deliveries lists sink arrivals in time order.
	Deliveries []Delivery
	// Flows maps each source node to its flow summary.
	Flows map[packet.NodeID]*FlowStats
	// Nodes maps each buffering node to its buffer summary.
	Nodes map[packet.NodeID]*NodeStats
	// Duration is the simulated time at which the last event fired.
	Duration float64
	// Events is the total number of simulation events executed.
	Events uint64
	// SealFailures counts payloads that failed authentication at the sink
	// (always 0 unless the run is corrupted; present as an invariant).
	SealFailures uint64
	// LostToFailures counts packets destroyed by injected node failures:
	// buffer contents at failure time plus packets that later reached a
	// dead node. With RouteRepair the failed node's buffer is re-homed
	// rather than destroyed, so only packets with no surviving route count
	// here.
	LostToFailures uint64
	// LinkDrops counts packets abandoned by the link layer: frames the
	// channel destroyed with no ARQ to recover them, or packets whose ARQ
	// retry budget ran out.
	LinkDrops uint64
	// Retransmissions counts link-layer data-frame retransmissions (ARQ
	// retries after a lost frame, a silent dead receiver, or a lost ACK).
	Retransmissions uint64
	// DuplicatesSuppressed counts sink arrivals discarded because a copy of
	// the same (origin, seq) packet had already been delivered — the
	// ARQ-induced duplicates that must not inflate delivery counts or
	// adversary scores.
	DuplicatesSuppressed uint64
	// Reroutes counts parent reassignments applied by route repair across
	// all injected failures.
	Reroutes uint64
	// Manifest records the run's provenance: the canonical-config
	// fingerprint, seed, Go version and wall-clock performance. Always
	// populated.
	Manifest *telemetry.Manifest
}

// DeliveryRatio returns the fraction of created packets that reached the
// sink, across all flows. It is 1 for a run that created nothing.
func (r *Result) DeliveryRatio() float64 {
	var created, delivered uint64
	for _, f := range r.Flows {
		created += f.Created
		delivered += f.Delivered
	}
	if created == 0 {
		return 1
	}
	return float64(delivered) / float64(created)
}

// Observations converts the deliveries into the adversary's view, in arrival
// order.
func (r *Result) Observations() []adversary.Observation {
	out := make([]adversary.Observation, len(r.Deliveries))
	for i, d := range r.Deliveries {
		out[i] = adversary.Observation{ArrivalTime: d.At, Header: d.Header}
	}
	return out
}

// Truths returns the ground-truth creation times aligned with Observations.
func (r *Result) Truths() []float64 {
	out := make([]float64, len(r.Deliveries))
	for i, d := range r.Deliveries {
		out[i] = d.Truth.CreatedAt
	}
	return out
}

// node is the per-node simulation state.
type node struct {
	id     packet.NodeID
	parent packet.NodeID
	policy buffer.Policy // nil for PolicyForward
	rcad   *core.RCAD    // non-nil only when rate control is enabled
	dist   delay.Distribution
	src    *rng.Source
	link   *linkChannel // nil when Config.Channel is nil (reliable link)
	dead   bool
}

// evacuator is implemented by buffering policies whose contents can be
// destroyed on node failure.
type evacuator interface {
	Evacuate() []*packet.Packet
}

// runner holds one simulation's full state.
type runner struct {
	cfg     Config
	sched   *sim.Scheduler
	routes  *routing.Table
	nodes   map[packet.NodeID]*node
	keyring *seal.Keyring
	result  *Result
	// dead collects failed nodes so each route repair excludes every death
	// so far, not just the latest.
	dead map[packet.NodeID]bool
	// dedup is the sink's (origin, seq) duplicate filter, allocated only
	// when ARQ can produce duplicates.
	dedup map[uint64]struct{}
	// tele is the telemetry attachment; nil when Config.Telemetry is nil,
	// and every hook on a nil *telemetryState is a no-op.
	tele *telemetryState
}

// Run validates cfg, executes the simulation to completion, and returns the
// result.
func Run(cfg Config) (*Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	if err := r.scheduleSources(); err != nil {
		return nil, err
	}
	r.scheduleFailures()
	r.attachSampler()
	start := time.Now()
	if err := r.sched.Run(); err != nil {
		return nil, fmt.Errorf("network: simulation: %w", err)
	}
	wall := time.Since(start).Seconds()
	if r.tele != nil && r.tele.err != nil {
		return nil, fmt.Errorf("network: telemetry emitter: %w", r.tele.err)
	}
	r.finalize()
	m, err := r.buildManifest(wall)
	if err != nil {
		return nil, err
	}
	r.result.Manifest = m
	return r.result, nil
}

func newRunner(cfg Config) (*runner, error) {
	if cfg.Topology == nil {
		return nil, errors.New("network: nil topology")
	}
	if len(cfg.Sources) == 0 {
		return nil, errors.New("network: no sources")
	}
	switch cfg.Policy {
	case PolicyForward:
	case PolicyUnlimited, PolicyDropTail, PolicyRCAD:
		if cfg.Delay == nil {
			return nil, fmt.Errorf("network: policy %v requires a delay distribution", cfg.Policy)
		}
	case PolicyCustom:
		if cfg.CustomPolicy == nil {
			return nil, errors.New("network: PolicyCustom requires a CustomPolicy factory")
		}
		if cfg.Delay == nil {
			cfg.Delay = delay.None{} // batching mixes ignore sampled delays
		}
	default:
		return nil, fmt.Errorf("network: unknown policy %d", int(cfg.Policy))
	}
	if cfg.TransmissionDelay < 0 {
		return nil, fmt.Errorf("network: negative transmission delay %v", cfg.TransmissionDelay)
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("network: negative horizon %v", cfg.Horizon)
	}
	if err := cfg.Telemetry.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	seenSources := make(map[packet.NodeID]bool, len(cfg.Sources))
	for i, s := range cfg.Sources {
		if !cfg.Topology.HasNode(s.Node) {
			return nil, fmt.Errorf("network: source %d at unknown node %v", i, s.Node)
		}
		if seenSources[s.Node] {
			// Flow identity is the origin node (the adversary's view), so
			// two sources on one node would merge their flow accounting
			// silently.
			return nil, fmt.Errorf("network: duplicate source on node %v", s.Node)
		}
		seenSources[s.Node] = true
		if s.Node == topology.Sink {
			return nil, fmt.Errorf("network: source %d is the sink", i)
		}
		if s.Process == nil {
			return nil, fmt.Errorf("network: source %d has nil traffic process", i)
		}
		if s.Count < 0 {
			return nil, fmt.Errorf("network: source %d has negative count", i)
		}
		if s.Count == 0 && cfg.Horizon <= 0 {
			return nil, fmt.Errorf("network: source %d is unbounded (count 0) without a horizon", i)
		}
	}
	if cfg.RateControl != nil {
		if cfg.Policy != PolicyRCAD {
			return nil, errors.New("network: rate control requires PolicyRCAD")
		}
	}
	for i, f := range cfg.NodeFailures {
		if !cfg.Topology.HasNode(f.Node) {
			return nil, fmt.Errorf("network: failure %d targets unknown node %v", i, f.Node)
		}
		if f.Node == topology.Sink {
			return nil, fmt.Errorf("network: failure %d targets the sink", i)
		}
		if f.At < 0 {
			return nil, fmt.Errorf("network: failure %d has negative time %v", i, f.At)
		}
	}

	routes, err := routing.BuildTree(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("network: building routes: %w", err)
	}

	if cfg.TransmissionDelay == 0 {
		cfg.TransmissionDelay = 1
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = core.DefaultCapacity
	}
	if cfg.Victim == nil {
		cfg.Victim = buffer.ShortestRemaining{}
	}
	if cfg.ARQ != nil {
		resolved, err := cfg.ARQ.validate(cfg.TransmissionDelay)
		if err != nil {
			return nil, err
		}
		cfg.ARQ = &resolved
	}
	if cfg.Channel != nil {
		resolved, err := cfg.Channel.validate(cfg.ARQ != nil)
		if err != nil {
			return nil, err
		}
		cfg.Channel = &resolved
	}

	r := &runner{
		cfg:    cfg,
		sched:  sim.NewScheduler(),
		routes: routes,
		nodes:  make(map[packet.NodeID]*node),
		dead:   make(map[packet.NodeID]bool),
		result: &Result{
			Flows: make(map[packet.NodeID]*FlowStats),
			Nodes: make(map[packet.NodeID]*NodeStats),
		},
	}
	r.tele = newTelemetryState(cfg.Telemetry)
	if cfg.ARQ != nil {
		// Duplicates exist only when a delivered frame can be retransmitted,
		// i.e. under ARQ; a reliable or ARQ-less run needs no filter.
		r.dedup = make(map[uint64]struct{})
	}
	if cfg.Seal {
		r.keyring = seal.NewKeyring([]byte(fmt.Sprintf("tempriv/network/%d", cfg.Seed)))
	}

	master := rng.New(cfg.Seed)
	for _, id := range cfg.Topology.Nodes() {
		if id == topology.Sink {
			continue
		}
		parent, ok := routes.NextHop(id)
		if !ok {
			return nil, fmt.Errorf("network: node %v has no route to the sink", id)
		}
		n := &node{
			id:     id,
			parent: parent,
			dist:   cfg.Delay,
			src:    master.SplitIndexed("node", int(id)),
		}
		if d, ok := cfg.PerNodeDelay[id]; ok {
			n.dist = d
		}
		if cfg.Channel != nil {
			n.link = newLinkChannel(*cfg.Channel, n.src.Split("link"))
		}
		if err := r.attachPolicy(n); err != nil {
			return nil, err
		}
		r.nodes[id] = n
	}
	return r, nil
}

// attachPolicy wires the configured buffering policy to node n.
func (r *runner) attachPolicy(n *node) error {
	forward := func(p *packet.Packet, preempted bool) {
		kind := trace.Released
		if preempted {
			kind = trace.Preempted
			r.tele.onPreempted()
		}
		r.record(kind, n.id, p)
		r.transmit(n, p)
	}
	switch r.cfg.Policy {
	case PolicyForward:
		return nil // handled inline in deliver
	case PolicyUnlimited:
		pol, err := buffer.NewUnlimited(r.sched, forward)
		if err != nil {
			return fmt.Errorf("network: node %v: %w", n.id, err)
		}
		n.policy = pol
	case PolicyDropTail:
		pol, err := buffer.NewDropTail(r.sched, forward, r.cfg.Capacity)
		if err != nil {
			return fmt.Errorf("network: node %v: %w", n.id, err)
		}
		n.policy = pol
	case PolicyCustom:
		pol, err := r.cfg.CustomPolicy(r.sched, forward, n.src.Split("policy"))
		if err != nil {
			return fmt.Errorf("network: node %v: building custom policy: %w", n.id, err)
		}
		if pol == nil {
			return fmt.Errorf("network: node %v: custom policy factory returned nil", n.id)
		}
		n.policy = pol
	case PolicyRCAD:
		var ctrl *core.RateController
		if rc := r.cfg.RateControl; rc != nil {
			var err error
			ctrl, err = core.NewRateController(r.cfg.Capacity, rc.TargetLoss, rc.Smoothing, n.dist.Mean())
			if err != nil {
				return fmt.Errorf("network: node %v: %w", n.id, err)
			}
		}
		eng, err := core.New(core.Config{
			Scheduler:  r.sched,
			Forward:    forward,
			Capacity:   r.cfg.Capacity,
			Delay:      n.dist,
			Victim:     r.cfg.Victim,
			Source:     n.src.Split("victim"),
			Controller: ctrl,
		})
		if err != nil {
			return fmt.Errorf("network: node %v: %w", n.id, err)
		}
		n.rcad = eng
	}
	return nil
}

// scheduleSources arms the first creation event of every source.
func (r *runner) scheduleSources() error {
	for i, s := range r.cfg.Sources {
		hops, ok := r.routes.HopCount(s.Node)
		if !ok {
			return fmt.Errorf("network: source %v not routed", s.Node)
		}
		r.result.Flows[s.Node] = &FlowStats{Source: s.Node, HopCount: hops}
		src := rng.New(r.cfg.Seed).SplitIndexed("traffic", i)
		r.armCreation(s, src, 0)
	}
	return nil
}

// record emits a lifecycle event if tracing is enabled.
func (r *runner) record(kind trace.Kind, node packet.NodeID, p *packet.Packet) {
	if r.cfg.Tracer == nil {
		return
	}
	r.cfg.Tracer.Record(trace.Event{
		At:   r.sched.Now(),
		Kind: kind,
		Node: node,
		Flow: p.Truth.Flow,
		Seq:  p.Truth.Seq,
	})
}

// recordLink emits a link-layer event naming the far end of the link.
func (r *runner) recordLink(kind trace.Kind, node, dest packet.NodeID, p *packet.Packet) {
	if r.cfg.Tracer == nil {
		return
	}
	r.cfg.Tracer.Record(trace.Event{
		At:   r.sched.Now(),
		Kind: kind,
		Node: node,
		Flow: p.Truth.Flow,
		Seq:  p.Truth.Seq,
		Dest: dest,
	})
}

// scheduleFailures arms the injected node deaths.
func (r *runner) scheduleFailures() {
	for _, f := range r.cfg.NodeFailures {
		n := r.nodes[f.Node]
		r.sched.At(f.At, func() { r.failNode(n) })
	}
}

// failNode kills n: its buffered packets are evacuated and, depending on
// Config.RouteRepair, either destroyed (the static-routing model) or
// re-homed onto the repaired tree.
func (r *runner) failNode(n *node) {
	n.dead = true
	r.dead[n.id] = true
	var evacuated []*packet.Packet
	var holder evacuator
	switch {
	case n.rcad != nil:
		holder = n.rcad
	case n.policy != nil:
		if ev, ok := n.policy.(evacuator); ok {
			holder = ev
		}
	}
	if holder != nil {
		evacuated = holder.Evacuate()
	}
	if !r.cfg.RouteRepair {
		r.loseToFailure(n.id, evacuated)
		return
	}
	r.repairRoutes(n, evacuated)
}

// loseToFailure counts and traces packets destroyed by a node death.
func (r *runner) loseToFailure(at packet.NodeID, packets []*packet.Packet) {
	r.result.LostToFailures += uint64(len(packets))
	r.tele.onLost(uint64(len(packets)))
	for _, p := range packets {
		r.record(trace.Lost, at, p)
	}
}

// repairRoutes rebuilds the routing tree without the dead nodes, re-parents
// every survivor whose parent changed, and hands the failed node's buffered
// packets to its successor instead of destroying them. Survivors are visited
// in ID order and the rebuild tie-breaks exactly like the original BFS, so
// repair is deterministic in (Config, Seed).
func (r *runner) repairRoutes(failed *node, evacuated []*packet.Packet) {
	rebuilt := routing.BuildTreeAvoiding(r.cfg.Topology, r.dead)

	ids := make([]packet.NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := r.nodes[id]
		if n.dead {
			continue
		}
		parent, ok := rebuilt.NextHop(id)
		if !ok || parent == n.parent {
			// A survivor the failure orphaned keeps its stale parent: its
			// traffic dies at the dead node exactly as without repair.
			continue
		}
		n.parent = parent
		r.result.Reroutes++
		if r.cfg.Tracer != nil {
			r.cfg.Tracer.Record(trace.Event{
				At: r.sched.Now(), Kind: trace.Rerouted, Node: id, Dest: parent,
			})
		}
	}

	if len(evacuated) == 0 {
		return
	}
	succ, ok := r.successor(failed, rebuilt)
	if !ok {
		// No surviving routed neighbor: the buffer is unreachable and lost.
		r.loseToFailure(failed.id, evacuated)
		return
	}
	// Hand each buffered packet to the successor, one transmission delay
	// away — the failure-time offload of route-maintenance protocols.
	for _, p := range evacuated {
		p := p
		p.Forward(failed.id)
		r.sched.After(r.cfg.TransmissionDelay, func() {
			if succ == topology.Sink {
				r.arriveAtSink(p)
				return
			}
			r.deliver(r.nodes[succ], p)
		})
	}
}

// successor picks the failed node's handoff target: its alive neighbor
// closest to the sink in the rebuilt tree, ties toward the smaller ID — the
// parent the node itself would have received had it survived.
func (r *runner) successor(failed *node, rebuilt *routing.Table) (packet.NodeID, bool) {
	var best packet.NodeID
	bestHops := -1
	for _, m := range r.cfg.Topology.Neighbors(failed.id) {
		if r.dead[m] {
			continue
		}
		h, ok := rebuilt.HopCount(m)
		if !ok {
			continue
		}
		if bestHops == -1 || h < bestHops || (h == bestHops && m < best) {
			best, bestHops = m, h
		}
	}
	return best, bestHops >= 0
}

// armCreation schedules the next packet creation for source s, having
// already created seq packets.
func (r *runner) armCreation(s Source, src *rng.Source, seq uint32) {
	if s.Count > 0 && int(seq) >= s.Count {
		return
	}
	gap := s.Process.Next(src)
	when := r.sched.Now() + gap
	if r.cfg.Horizon > 0 && when > r.cfg.Horizon {
		return
	}
	r.sched.At(when, func() {
		r.createPacket(s, seq)
		r.armCreation(s, src, seq+1)
	})
}

// createPacket materialises one packet at its source and hands it to the
// source node's buffering policy. A dead source senses nothing.
func (r *runner) createPacket(s Source, seq uint32) {
	if r.nodes[s.Node].dead {
		return
	}
	now := r.sched.Now()
	p := packet.New(s.Node, seq, now)
	if r.keyring != nil {
		reading := packet.Reading{Value: float64(seq), AppSeq: seq, CreatedAt: now}
		if err := p.SealReading(r.keyring, reading); err != nil {
			// Sealing uses validated keys and cannot fail at runtime; a
			// failure here is a programming error worth stopping for.
			panic(fmt.Sprintf("network: sealing payload: %v", err))
		}
	}
	r.result.Flows[s.Node].Created++
	r.tele.onCreated()
	r.record(trace.Created, s.Node, p)
	r.deliver(r.nodes[s.Node], p)
}

// deliver hands a packet to node n's buffering policy (or forwards it
// immediately under PolicyForward). Packets reaching a dead node are lost.
func (r *runner) deliver(n *node, p *packet.Packet) {
	if n.dead {
		r.result.LostToFailures++
		r.tele.onLost(1)
		r.record(trace.Lost, n.id, p)
		return
	}
	switch {
	case n.rcad != nil:
		r.record(trace.Admitted, n.id, p)
		n.rcad.OnPacket(r.sched.Now(), p)
	case n.policy != nil:
		r.record(trace.Admitted, n.id, p)
		n.policy.Admit(p, n.dist.Sample(n.src))
	default: // PolicyForward
		r.transmit(n, p)
	}
}

// transmit moves a packet one hop from n toward the sink through the link
// layer: the frame crosses the (possibly lossy) channel in τ time units and,
// with ARQ enabled, lost frames are retransmitted with capped exponential
// backoff until the per-hop retry budget runs out.
func (r *runner) transmit(n *node, p *packet.Packet) {
	p.Forward(n.id)
	r.attempt(n, p, 0)
}

// attempt performs one transmission of p from n — attempt number try, where
// 0 is the original send. The destination is re-read from n.parent on every
// attempt, so a retransmission after a route repair follows the new parent.
func (r *runner) attempt(n *node, p *packet.Packet, try int) {
	dest := n.parent
	if try > 0 {
		r.result.Retransmissions++
		r.tele.onRetransmit()
		r.recordLink(trace.Retransmit, n.id, dest, p)
	}
	if n.link.frameLost() {
		r.recordLink(trace.LinkLoss, n.id, dest, p)
		r.retryOrDrop(n, dest, p, try)
		return
	}
	r.sched.After(r.cfg.TransmissionDelay, func() {
		if dest == topology.Sink {
			// The duplicate check must clone before delivery mutates the
			// header, so it runs first in both branches.
			r.maybeDuplicate(n, dest, p, try)
			r.arriveAtSink(p)
			return
		}
		dn := r.nodes[dest]
		if dn.dead {
			if r.cfg.ARQ != nil {
				// A dead receiver never acknowledges: the sender times out
				// and retries — by then possibly toward a repaired route.
				r.recordLink(trace.LinkLoss, n.id, dest, p)
				r.retryOrDrop(n, dest, p, try)
			} else {
				r.result.LostToFailures++
				r.tele.onLost(1)
				r.record(trace.Lost, dest, p)
			}
			return
		}
		r.maybeDuplicate(n, dest, p, try)
		r.deliver(dn, p)
	})
}

// retryOrDrop schedules the next ARQ attempt after the backed-off timeout,
// or abandons the packet once the retry budget is spent.
func (r *runner) retryOrDrop(n *node, dest packet.NodeID, p *packet.Packet, try int) {
	arq := r.cfg.ARQ
	if arq == nil || try >= arq.MaxRetries {
		r.result.LinkDrops++
		r.tele.onLinkDrop()
		r.recordLink(trace.LinkDrop, n.id, dest, p)
		return
	}
	r.sched.After(arq.wait(try), func() { r.attempt(n, p, try+1) })
}

// maybeDuplicate models the acknowledgement of a delivered frame: when the
// ACK is lost the sender cannot distinguish the outcome from a lost frame
// and retransmits an independent copy — the duplicate the sink's
// (origin, seq) filter later suppresses. It must run before the delivered
// copy's header advances further.
func (r *runner) maybeDuplicate(n *node, dest packet.NodeID, p *packet.Packet, try int) {
	if r.cfg.ARQ == nil || !n.link.ackLost() {
		return
	}
	r.recordLink(trace.LinkLoss, n.id, dest, p)
	if try >= r.cfg.ARQ.MaxRetries {
		return // the sender gives up; the frame was in fact delivered
	}
	dup := p.Clone()
	r.sched.After(r.cfg.ARQ.wait(try), func() { r.attempt(n, dup, try+1) })
}

// arriveAtSink records a delivery and its ground truth, discarding
// ARQ-induced duplicates of already delivered packets.
func (r *runner) arriveAtSink(p *packet.Packet) {
	now := r.sched.Now()
	if r.dedup != nil {
		key := uint64(p.Header.Origin)<<32 | uint64(p.Header.RoutingSeq)
		if _, dup := r.dedup[key]; dup {
			r.result.DuplicatesSuppressed++
			r.tele.onDuplicate()
			r.record(trace.Duplicate, topology.Sink, p)
			return
		}
		r.dedup[key] = struct{}{}
	}
	if r.keyring != nil {
		reading, err := p.OpenReading(r.keyring)
		if err != nil || reading.CreatedAt != p.Truth.CreatedAt {
			r.result.SealFailures++
		}
	}
	r.tele.onDelivered(now - p.Truth.CreatedAt)
	r.record(trace.Delivered, topology.Sink, p)
	r.result.Deliveries = append(r.result.Deliveries, Delivery{
		At:     now,
		Header: p.Header,
		Truth:  p.Truth,
	})
}

// finalize computes the per-flow and per-node summaries once the event list
// has drained.
func (r *runner) finalize() {
	res := r.result
	res.Duration = r.sched.Now()
	res.Events = r.sched.Fired()

	latencies := make(map[packet.NodeID]*metrics.Latency)
	for _, d := range res.Deliveries {
		fs, ok := res.Flows[d.Truth.Flow]
		if !ok {
			continue // defensive: deliveries only come from declared sources
		}
		fs.Delivered++
		l, ok := latencies[d.Truth.Flow]
		if !ok {
			l = &metrics.Latency{}
			latencies[d.Truth.Flow] = l
		}
		l.Add(d.At - d.Truth.CreatedAt)
	}
	for flow, l := range latencies {
		res.Flows[flow].Latency = l.Report()
	}

	ids := make([]packet.NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := r.nodes[id]
		var st *buffer.Stats
		switch {
		case n.rcad != nil:
			st = n.rcad.Stats()
		case n.policy != nil:
			st = n.policy.Stats()
		default:
			continue // PolicyForward keeps no buffer state
		}
		hops, _ := r.routes.HopCount(id)
		res.Nodes[id] = &NodeStats{
			ID:            id,
			HopsToSink:    hops,
			Arrivals:      st.Arrivals,
			Departures:    st.Departures,
			Drops:         st.Drops,
			Preemptions:   st.Preemptions,
			AvgOccupancy:  st.Occupancy.Average(res.Duration),
			MaxOccupancy:  st.Occupancy.Max(),
			MeanHeldDelay: st.HeldDelays.Mean(),
		}
	}
}
