// Package network assembles topology, routing, traffic, buffering and the
// RCAD engine into a runnable simulated sensor network — the event-driven
// simulator of §5.
//
// The simulation model follows §5.2: PHY and MAC are abstracted to a
// constant per-hop transmission delay τ (1 time unit by default); every
// non-sink node on a packet's routing path draws an independent buffering
// delay from its configured distribution before forwarding; the sink records
// arrivals. Payload sealing (AES-CTR + HMAC) can be enabled to run the §2
// confidentiality assumption end-to-end.
//
// A Run is fully deterministic in (Config, Seed): every node draws from its
// own labelled substream of the master seed.
package network

import (
	"errors"
	"fmt"
	"sort"

	"tempriv/internal/adversary"
	"tempriv/internal/buffer"
	"tempriv/internal/core"
	"tempriv/internal/delay"
	"tempriv/internal/metrics"
	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/routing"
	"tempriv/internal/seal"
	"tempriv/internal/sim"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
	"tempriv/internal/traffic"
)

// PolicyKind selects the buffering behaviour of every node in the network,
// matching the three evaluation cases of §5.3 plus the analytic drop model
// of §4.
type PolicyKind int

const (
	// PolicyForward forwards packets immediately with no buffering delay —
	// evaluation case 1 ("NoDelay").
	PolicyForward PolicyKind = iota + 1
	// PolicyUnlimited delays every packet for its full sampled time with
	// unbounded buffers — evaluation case 2 ("Delay&UnlimitedBuffers").
	PolicyUnlimited
	// PolicyDropTail delays packets with a finite buffer that drops
	// arrivals when full — the M/M/k/k model of §4.
	PolicyDropTail
	// PolicyRCAD delays packets with a finite buffer that preempts the
	// victim packet when full — evaluation case 3
	// ("Delay&LimitedBuffers", §5).
	PolicyRCAD
	// PolicyCustom installs the buffering policy built by
	// Config.CustomPolicy on every node — the extension point used by the
	// mix-network comparators (package mix) and available to downstream
	// users.
	PolicyCustom
)

// String returns the report identifier of the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyForward:
		return "no-delay"
	case PolicyUnlimited:
		return "delay-unlimited"
	case PolicyDropTail:
		return "delay-droptail"
	case PolicyRCAD:
		return "rcad"
	case PolicyCustom:
		return "custom"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// Source declares one traffic source.
type Source struct {
	// Node is the source's node ID; it must exist in the topology.
	Node packet.NodeID
	// Process generates the source's packet interarrival times.
	Process traffic.Process
	// Count is the number of packets to create. Zero means "until the
	// horizon", which then must be positive.
	Count int
}

// RateControl enables the §4 per-node µ-planner on every buffering node.
type RateControl struct {
	// TargetLoss is the Erlang-loss design target α (the paper discusses
	// 0.1).
	TargetLoss float64
	// Smoothing is the EWMA weight for rate estimation, in (0, 1].
	Smoothing float64
}

// Config describes one simulation run.
type Config struct {
	// Topology is the deployment. Required and must be sink-connected.
	Topology *topology.Topology
	// Sources declare the traffic. Required, non-empty.
	Sources []Source
	// Policy selects the buffering behaviour. Required.
	Policy PolicyKind
	// Delay is the per-hop buffering-delay distribution, required for every
	// policy except PolicyForward. The paper's evaluation uses
	// exponential with mean 30.
	Delay delay.Distribution
	// PerNodeDelay overrides Delay for specific nodes (used by the §3.3
	// delay-decomposition experiments and the Erlang planner example).
	PerNodeDelay map[packet.NodeID]delay.Distribution
	// Capacity is the buffer size k for PolicyDropTail and PolicyRCAD.
	// Defaults to core.DefaultCapacity (10, the Mica-2 approximation).
	Capacity int
	// Victim is the RCAD victim-selection rule. Defaults to
	// buffer.ShortestRemaining, the paper's rule.
	Victim buffer.VictimSelector
	// CustomPolicy builds each node's buffering policy when Policy is
	// PolicyCustom. It is called once per buffering node with that node's
	// forward function and private random substream. When Delay is nil,
	// custom policies receive zero sampled delays (appropriate for
	// batching mixes, which ignore them).
	CustomPolicy func(sched *sim.Scheduler, forward buffer.Forward, src *rng.Source) (buffer.Policy, error)
	// RateControl optionally enables per-node delay planning (§4).
	RateControl *RateControl
	// TransmissionDelay is τ, the per-hop transmission time. Defaults to 1
	// (§5.2).
	TransmissionDelay float64
	// Horizon stops packet generation at this simulated time; 0 means
	// "generate exactly Count packets per source". In-flight packets always
	// drain completely.
	Horizon float64
	// Seed drives all randomness. Runs with equal configs and seeds are
	// identical.
	Seed uint64
	// NodeFailures schedules permanent node deaths (failure injection).
	NodeFailures []NodeFailure
	// Tracer optionally receives per-packet lifecycle events (creation,
	// per-hop admission and release, delivery, loss). See package trace.
	Tracer trace.Recorder
	// Seal, when true, encrypts every payload with the network keyring and
	// verifies it at the sink (slower; the privacy results do not depend
	// on it, only the §2 threat model's realism).
	Seal bool
}

// NodeFailure schedules a permanent node death: at time At the node's
// buffered packets are lost and every packet subsequently reaching it is
// lost. Routing is static (the paper's tree), so flows through a dead node
// are cut off — modelling sensor exhaustion or destruction.
type NodeFailure struct {
	// Node is the failing node; it must exist and must not be the sink.
	Node packet.NodeID
	// At is the failure time (>= 0).
	At float64
}

// Delivery is one packet arrival at the sink: what the adversary can see
// (arrival time, cleartext header) plus the simulator ground truth used for
// scoring.
type Delivery struct {
	// At is the sink arrival time.
	At float64
	// Header is the cleartext header as received.
	Header packet.Header
	// Truth is the simulator-only ground truth.
	Truth packet.Truth
}

// NodeStats summarises one buffering node after a run.
type NodeStats struct {
	// ID is the node.
	ID packet.NodeID
	// HopsToSink is the node's routing depth.
	HopsToSink int
	// Arrivals, Departures, Drops and Preemptions count buffer events.
	Arrivals, Departures, Drops, Preemptions uint64
	// AvgOccupancy is the time-weighted mean number of buffered packets.
	AvgOccupancy float64
	// MaxOccupancy is the peak buffered count.
	MaxOccupancy float64
	// MeanHeldDelay is the mean realised holding time.
	MeanHeldDelay float64
}

// FlowStats summarises one source flow after a run.
type FlowStats struct {
	// Source is the flow's origin node.
	Source packet.NodeID
	// HopCount is the routing-path length to the sink.
	HopCount int
	// Created and Delivered count the flow's packets.
	Created, Delivered uint64
	// Latency summarises end-to-end delivery latency.
	Latency metrics.LatencyReport
}

// Dropped returns the number of the flow's packets lost in the network.
func (f *FlowStats) Dropped() uint64 {
	if f.Created < f.Delivered {
		return 0
	}
	return f.Created - f.Delivered
}

// Result is the outcome of one simulation run.
type Result struct {
	// Deliveries lists sink arrivals in time order.
	Deliveries []Delivery
	// Flows maps each source node to its flow summary.
	Flows map[packet.NodeID]*FlowStats
	// Nodes maps each buffering node to its buffer summary.
	Nodes map[packet.NodeID]*NodeStats
	// Duration is the simulated time at which the last event fired.
	Duration float64
	// Events is the total number of simulation events executed.
	Events uint64
	// SealFailures counts payloads that failed authentication at the sink
	// (always 0 unless the run is corrupted; present as an invariant).
	SealFailures uint64
	// LostToFailures counts packets destroyed by injected node failures:
	// buffer contents at failure time plus packets that later reached a
	// dead node.
	LostToFailures uint64
}

// Observations converts the deliveries into the adversary's view, in arrival
// order.
func (r *Result) Observations() []adversary.Observation {
	out := make([]adversary.Observation, len(r.Deliveries))
	for i, d := range r.Deliveries {
		out[i] = adversary.Observation{ArrivalTime: d.At, Header: d.Header}
	}
	return out
}

// Truths returns the ground-truth creation times aligned with Observations.
func (r *Result) Truths() []float64 {
	out := make([]float64, len(r.Deliveries))
	for i, d := range r.Deliveries {
		out[i] = d.Truth.CreatedAt
	}
	return out
}

// node is the per-node simulation state.
type node struct {
	id     packet.NodeID
	parent packet.NodeID
	policy buffer.Policy // nil for PolicyForward
	rcad   *core.RCAD    // non-nil only when rate control is enabled
	dist   delay.Distribution
	src    *rng.Source
	dead   bool
}

// evacuator is implemented by buffering policies whose contents can be
// destroyed on node failure.
type evacuator interface {
	Evacuate() []*packet.Packet
}

// runner holds one simulation's full state.
type runner struct {
	cfg     Config
	sched   *sim.Scheduler
	routes  *routing.Table
	nodes   map[packet.NodeID]*node
	keyring *seal.Keyring
	result  *Result
}

// Run validates cfg, executes the simulation to completion, and returns the
// result.
func Run(cfg Config) (*Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	if err := r.scheduleSources(); err != nil {
		return nil, err
	}
	r.scheduleFailures()
	if err := r.sched.Run(); err != nil {
		return nil, fmt.Errorf("network: simulation: %w", err)
	}
	r.finalize()
	return r.result, nil
}

func newRunner(cfg Config) (*runner, error) {
	if cfg.Topology == nil {
		return nil, errors.New("network: nil topology")
	}
	if len(cfg.Sources) == 0 {
		return nil, errors.New("network: no sources")
	}
	switch cfg.Policy {
	case PolicyForward:
	case PolicyUnlimited, PolicyDropTail, PolicyRCAD:
		if cfg.Delay == nil {
			return nil, fmt.Errorf("network: policy %v requires a delay distribution", cfg.Policy)
		}
	case PolicyCustom:
		if cfg.CustomPolicy == nil {
			return nil, errors.New("network: PolicyCustom requires a CustomPolicy factory")
		}
		if cfg.Delay == nil {
			cfg.Delay = delay.None{} // batching mixes ignore sampled delays
		}
	default:
		return nil, fmt.Errorf("network: unknown policy %d", int(cfg.Policy))
	}
	if cfg.TransmissionDelay < 0 {
		return nil, fmt.Errorf("network: negative transmission delay %v", cfg.TransmissionDelay)
	}
	if cfg.Horizon < 0 {
		return nil, fmt.Errorf("network: negative horizon %v", cfg.Horizon)
	}
	seenSources := make(map[packet.NodeID]bool, len(cfg.Sources))
	for i, s := range cfg.Sources {
		if !cfg.Topology.HasNode(s.Node) {
			return nil, fmt.Errorf("network: source %d at unknown node %v", i, s.Node)
		}
		if seenSources[s.Node] {
			// Flow identity is the origin node (the adversary's view), so
			// two sources on one node would merge their flow accounting
			// silently.
			return nil, fmt.Errorf("network: duplicate source on node %v", s.Node)
		}
		seenSources[s.Node] = true
		if s.Node == topology.Sink {
			return nil, fmt.Errorf("network: source %d is the sink", i)
		}
		if s.Process == nil {
			return nil, fmt.Errorf("network: source %d has nil traffic process", i)
		}
		if s.Count < 0 {
			return nil, fmt.Errorf("network: source %d has negative count", i)
		}
		if s.Count == 0 && cfg.Horizon <= 0 {
			return nil, fmt.Errorf("network: source %d is unbounded (count 0) without a horizon", i)
		}
	}
	if cfg.RateControl != nil {
		if cfg.Policy != PolicyRCAD {
			return nil, errors.New("network: rate control requires PolicyRCAD")
		}
	}
	for i, f := range cfg.NodeFailures {
		if !cfg.Topology.HasNode(f.Node) {
			return nil, fmt.Errorf("network: failure %d targets unknown node %v", i, f.Node)
		}
		if f.Node == topology.Sink {
			return nil, fmt.Errorf("network: failure %d targets the sink", i)
		}
		if f.At < 0 {
			return nil, fmt.Errorf("network: failure %d has negative time %v", i, f.At)
		}
	}

	routes, err := routing.BuildTree(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("network: building routes: %w", err)
	}

	if cfg.TransmissionDelay == 0 {
		cfg.TransmissionDelay = 1
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = core.DefaultCapacity
	}
	if cfg.Victim == nil {
		cfg.Victim = buffer.ShortestRemaining{}
	}

	r := &runner{
		cfg:    cfg,
		sched:  sim.NewScheduler(),
		routes: routes,
		nodes:  make(map[packet.NodeID]*node),
		result: &Result{
			Flows: make(map[packet.NodeID]*FlowStats),
			Nodes: make(map[packet.NodeID]*NodeStats),
		},
	}
	if cfg.Seal {
		r.keyring = seal.NewKeyring([]byte(fmt.Sprintf("tempriv/network/%d", cfg.Seed)))
	}

	master := rng.New(cfg.Seed)
	for _, id := range cfg.Topology.Nodes() {
		if id == topology.Sink {
			continue
		}
		parent, ok := routes.NextHop(id)
		if !ok {
			return nil, fmt.Errorf("network: node %v has no route to the sink", id)
		}
		n := &node{
			id:     id,
			parent: parent,
			dist:   cfg.Delay,
			src:    master.SplitIndexed("node", int(id)),
		}
		if d, ok := cfg.PerNodeDelay[id]; ok {
			n.dist = d
		}
		if err := r.attachPolicy(n); err != nil {
			return nil, err
		}
		r.nodes[id] = n
	}
	return r, nil
}

// attachPolicy wires the configured buffering policy to node n.
func (r *runner) attachPolicy(n *node) error {
	forward := func(p *packet.Packet, preempted bool) {
		kind := trace.Released
		if preempted {
			kind = trace.Preempted
		}
		r.record(kind, n.id, p)
		r.transmit(n, p)
	}
	switch r.cfg.Policy {
	case PolicyForward:
		return nil // handled inline in deliver
	case PolicyUnlimited:
		pol, err := buffer.NewUnlimited(r.sched, forward)
		if err != nil {
			return fmt.Errorf("network: node %v: %w", n.id, err)
		}
		n.policy = pol
	case PolicyDropTail:
		pol, err := buffer.NewDropTail(r.sched, forward, r.cfg.Capacity)
		if err != nil {
			return fmt.Errorf("network: node %v: %w", n.id, err)
		}
		n.policy = pol
	case PolicyCustom:
		pol, err := r.cfg.CustomPolicy(r.sched, forward, n.src.Split("policy"))
		if err != nil {
			return fmt.Errorf("network: node %v: building custom policy: %w", n.id, err)
		}
		if pol == nil {
			return fmt.Errorf("network: node %v: custom policy factory returned nil", n.id)
		}
		n.policy = pol
	case PolicyRCAD:
		var ctrl *core.RateController
		if rc := r.cfg.RateControl; rc != nil {
			var err error
			ctrl, err = core.NewRateController(r.cfg.Capacity, rc.TargetLoss, rc.Smoothing, n.dist.Mean())
			if err != nil {
				return fmt.Errorf("network: node %v: %w", n.id, err)
			}
		}
		eng, err := core.New(core.Config{
			Scheduler:  r.sched,
			Forward:    forward,
			Capacity:   r.cfg.Capacity,
			Delay:      n.dist,
			Victim:     r.cfg.Victim,
			Source:     n.src.Split("victim"),
			Controller: ctrl,
		})
		if err != nil {
			return fmt.Errorf("network: node %v: %w", n.id, err)
		}
		n.rcad = eng
	}
	return nil
}

// scheduleSources arms the first creation event of every source.
func (r *runner) scheduleSources() error {
	for i, s := range r.cfg.Sources {
		hops, ok := r.routes.HopCount(s.Node)
		if !ok {
			return fmt.Errorf("network: source %v not routed", s.Node)
		}
		r.result.Flows[s.Node] = &FlowStats{Source: s.Node, HopCount: hops}
		src := rng.New(r.cfg.Seed).SplitIndexed("traffic", i)
		r.armCreation(s, src, 0)
	}
	return nil
}

// record emits a lifecycle event if tracing is enabled.
func (r *runner) record(kind trace.Kind, node packet.NodeID, p *packet.Packet) {
	if r.cfg.Tracer == nil {
		return
	}
	r.cfg.Tracer.Record(trace.Event{
		At:   r.sched.Now(),
		Kind: kind,
		Node: node,
		Flow: p.Truth.Flow,
		Seq:  p.Truth.Seq,
	})
}

// scheduleFailures arms the injected node deaths.
func (r *runner) scheduleFailures() {
	for _, f := range r.cfg.NodeFailures {
		n := r.nodes[f.Node]
		r.sched.At(f.At, func() {
			n.dead = true
			var holder evacuator
			switch {
			case n.rcad != nil:
				holder = n.rcad
			case n.policy != nil:
				if ev, ok := n.policy.(evacuator); ok {
					holder = ev
				}
			}
			if holder != nil {
				evacuated := holder.Evacuate()
				r.result.LostToFailures += uint64(len(evacuated))
				for _, p := range evacuated {
					r.record(trace.Lost, n.id, p)
				}
			}
		})
	}
}

// armCreation schedules the next packet creation for source s, having
// already created seq packets.
func (r *runner) armCreation(s Source, src *rng.Source, seq uint32) {
	if s.Count > 0 && int(seq) >= s.Count {
		return
	}
	gap := s.Process.Next(src)
	when := r.sched.Now() + gap
	if r.cfg.Horizon > 0 && when > r.cfg.Horizon {
		return
	}
	r.sched.At(when, func() {
		r.createPacket(s, seq)
		r.armCreation(s, src, seq+1)
	})
}

// createPacket materialises one packet at its source and hands it to the
// source node's buffering policy. A dead source senses nothing.
func (r *runner) createPacket(s Source, seq uint32) {
	if r.nodes[s.Node].dead {
		return
	}
	now := r.sched.Now()
	p := packet.New(s.Node, seq, now)
	if r.keyring != nil {
		reading := packet.Reading{Value: float64(seq), AppSeq: seq, CreatedAt: now}
		if err := p.SealReading(r.keyring, reading); err != nil {
			// Sealing uses validated keys and cannot fail at runtime; a
			// failure here is a programming error worth stopping for.
			panic(fmt.Sprintf("network: sealing payload: %v", err))
		}
	}
	r.result.Flows[s.Node].Created++
	r.record(trace.Created, s.Node, p)
	r.deliver(r.nodes[s.Node], p)
}

// deliver hands a packet to node n's buffering policy (or forwards it
// immediately under PolicyForward). Packets reaching a dead node are lost.
func (r *runner) deliver(n *node, p *packet.Packet) {
	if n.dead {
		r.result.LostToFailures++
		r.record(trace.Lost, n.id, p)
		return
	}
	switch {
	case n.rcad != nil:
		r.record(trace.Admitted, n.id, p)
		n.rcad.OnPacket(r.sched.Now(), p)
	case n.policy != nil:
		r.record(trace.Admitted, n.id, p)
		n.policy.Admit(p, n.dist.Sample(n.src))
	default: // PolicyForward
		r.transmit(n, p)
	}
}

// transmit moves a packet one hop from n toward the sink, applying the
// transmission delay τ and updating the cleartext header.
func (r *runner) transmit(n *node, p *packet.Packet) {
	p.Forward(n.id)
	dest := n.parent
	r.sched.After(r.cfg.TransmissionDelay, func() {
		if dest == topology.Sink {
			r.arriveAtSink(p)
			return
		}
		r.deliver(r.nodes[dest], p)
	})
}

// arriveAtSink records a delivery and its ground truth.
func (r *runner) arriveAtSink(p *packet.Packet) {
	now := r.sched.Now()
	if r.keyring != nil {
		reading, err := p.OpenReading(r.keyring)
		if err != nil || reading.CreatedAt != p.Truth.CreatedAt {
			r.result.SealFailures++
		}
	}
	r.record(trace.Delivered, topology.Sink, p)
	r.result.Deliveries = append(r.result.Deliveries, Delivery{
		At:     now,
		Header: p.Header,
		Truth:  p.Truth,
	})
}

// finalize computes the per-flow and per-node summaries once the event list
// has drained.
func (r *runner) finalize() {
	res := r.result
	res.Duration = r.sched.Now()
	res.Events = r.sched.Fired()

	latencies := make(map[packet.NodeID]*metrics.Latency)
	for _, d := range res.Deliveries {
		fs, ok := res.Flows[d.Truth.Flow]
		if !ok {
			continue // defensive: deliveries only come from declared sources
		}
		fs.Delivered++
		l, ok := latencies[d.Truth.Flow]
		if !ok {
			l = &metrics.Latency{}
			latencies[d.Truth.Flow] = l
		}
		l.Add(d.At - d.Truth.CreatedAt)
	}
	for flow, l := range latencies {
		res.Flows[flow].Latency = l.Report()
	}

	ids := make([]packet.NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := r.nodes[id]
		var st *buffer.Stats
		switch {
		case n.rcad != nil:
			st = n.rcad.Stats()
		case n.policy != nil:
			st = n.policy.Stats()
		default:
			continue // PolicyForward keeps no buffer state
		}
		hops, _ := r.routes.HopCount(id)
		res.Nodes[id] = &NodeStats{
			ID:            id,
			HopsToSink:    hops,
			Arrivals:      st.Arrivals,
			Departures:    st.Departures,
			Drops:         st.Drops,
			Preemptions:   st.Preemptions,
			AvgOccupancy:  st.Occupancy.Average(res.Duration),
			MaxOccupancy:  st.Occupancy.Max(),
			MeanHeldDelay: st.HeldDelays.Mean(),
		}
	}
}
