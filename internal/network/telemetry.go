package network

import (
	"fmt"
	"runtime"
	"sort"

	"tempriv/internal/packet"
	"tempriv/internal/sim"
	"tempriv/internal/telemetry"
	"tempriv/internal/topology"
)

// telemetryState is the runner's telemetry attachment. A nil *telemetryState
// is the disabled state: every hook method is a nil-guarded no-op and the
// metric handles inside are nil no-ops themselves, so the simulation hot
// path calls hooks unconditionally.
type telemetryState struct {
	created     *telemetry.Counter
	delivered   *telemetry.Counter
	duplicates  *telemetry.Counter
	retransmits *telemetry.Counter
	linkDrops   *telemetry.Counter
	lost        *telemetry.Counter
	preempted   *telemetry.Counter
	simTime     *telemetry.Gauge
	latency     *telemetry.Histogram

	emitter    telemetry.Emitter
	sampleHeap bool
	probe      *sim.Probe

	lastAt        float64
	lastDelivered uint64
	peakHeap      uint64
	err           error
}

// newTelemetryState builds the runner's telemetry attachment, or nil when
// telemetry is disabled.
func newTelemetryState(cfg *telemetry.Config) *telemetryState {
	if cfg == nil {
		return nil
	}
	reg := cfg.Registry
	return &telemetryState{
		created:     reg.Counter("tempriv_packets_created_total"),
		delivered:   reg.Counter("tempriv_packets_delivered_total"),
		duplicates:  reg.Counter("tempriv_duplicates_suppressed_total"),
		retransmits: reg.Counter("tempriv_retransmissions_total"),
		linkDrops:   reg.Counter("tempriv_link_drops_total"),
		lost:        reg.Counter("tempriv_lost_to_failures_total"),
		preempted:   reg.Counter("tempriv_preemptions_total"),
		simTime:     reg.Gauge("tempriv_sim_time"),
		latency:     reg.Histogram("tempriv_delivery_latency"),
		emitter:     cfg.Emitter,
		sampleHeap:  cfg.SampleHeap,
	}
}

func (t *telemetryState) onCreated() {
	if t == nil {
		return
	}
	t.created.Inc()
}

func (t *telemetryState) onDelivered(latency float64) {
	if t == nil {
		return
	}
	t.delivered.Inc()
	t.latency.Observe(latency)
}

func (t *telemetryState) onDuplicate() {
	if t == nil {
		return
	}
	t.duplicates.Inc()
}

func (t *telemetryState) onRetransmit() {
	if t == nil {
		return
	}
	t.retransmits.Inc()
}

func (t *telemetryState) onLinkDrop() {
	if t == nil {
		return
	}
	t.linkDrops.Inc()
}

func (t *telemetryState) onLost(n uint64) {
	if t == nil {
		return
	}
	t.lost.Add(n)
}

func (t *telemetryState) onPreempted() {
	if t == nil {
		return
	}
	t.preempted.Inc()
}

// attachSampler arms the sim-time sampler on the runner's scheduler. Probes
// never outlive the simulation's real events (see sim.Every), so sampling
// cannot extend a run.
func (r *runner) attachSampler() {
	tcfg := r.cfg.Telemetry
	if !tcfg.Sampling() {
		return
	}
	r.tele.probe = r.sched.Every(tcfg.SampleEvery, r.sample)
}

// sample emits one queue-state snapshot. On the first emitter error the
// probe stops and the error is surfaced from Run.
func (r *runner) sample(now float64) {
	t := r.tele
	if t.err != nil {
		return
	}
	s := r.buildSample(now)
	t.simTime.Set(now)
	if t.sampleHeap {
		s.HeapAllocBytes = telemetry.HeapAlloc()
		if s.HeapAllocBytes > t.peakHeap {
			t.peakHeap = s.HeapAllocBytes
		}
	}
	if err := t.emitter.Emit(s); err != nil {
		t.err = err
		t.probe.Stop()
	}
	t.lastAt, t.lastDelivered = now, s.Delivered
}

// buildSample snapshots the live simulation state at sim time now.
func (r *runner) buildSample(now float64) telemetry.Sample {
	res := r.result
	var created uint64
	for _, f := range res.Flows {
		created += f.Created
	}
	var bufferDrops uint64
	occ := make(map[packet.NodeID]int, len(r.nodes))
	buffered := 0
	for id, n := range r.nodes {
		var ln int
		switch {
		case n.rcad != nil:
			ln = n.rcad.Len()
			bufferDrops += n.rcad.Stats().Drops
		case n.policy != nil:
			ln = n.policy.Len()
			bufferDrops += n.policy.Stats().Drops
		default:
			continue // PolicyForward holds nothing
		}
		occ[id] = ln
		buffered += ln
	}
	delivered := uint64(len(res.Deliveries))
	dropped := bufferDrops + res.LostToFailures + res.LinkDrops + res.DuplicatesSuppressed
	inFlight := int(created) - int(delivered) - int(dropped)
	if inFlight < 0 {
		inFlight = 0
	}
	t := r.tele
	rate := 0.0
	if dt := now - t.lastAt; dt > 0 {
		rate = float64(delivered-t.lastDelivered) / dt
	}
	return telemetry.Sample{
		At:          now,
		Created:     created,
		Delivered:   delivered,
		Dropped:     dropped,
		Retransmits: res.Retransmissions,
		Buffered:    buffered,
		InFlight:    inFlight,
		ArrivalRate: rate,
		Occupancy:   occ,
	}
}

// buildManifest assembles the run manifest after finalize.
func (r *runner) buildManifest(wallSeconds float64) (*telemetry.Manifest, error) {
	fp, err := telemetry.Fingerprint(canonicalConfig(&r.cfg))
	if err != nil {
		return nil, err
	}
	peak := uint64(0)
	if r.tele != nil {
		peak = r.tele.peakHeap
	}
	if final := telemetry.HeapAlloc(); final > peak {
		peak = final
	}
	m := &telemetry.Manifest{
		ConfigFingerprint: fp,
		Seed:              int64(r.cfg.Seed),
		GoVersion:         runtime.Version(),
		SimDuration:       r.result.Duration,
		Events:            int(r.result.Events),
		Deliveries:        len(r.result.Deliveries),
		WallSeconds:       wallSeconds,
		PeakHeapBytes:     peak,
	}
	if wallSeconds > 0 {
		m.EventsPerSec = float64(m.Events) / wallSeconds
	}
	return m, nil
}

// canonicalConfig flattens a validated Config into the plain value whose
// JSON encoding is fingerprinted. Everything that shapes the simulated
// outcome is included; observers (Tracer, Telemetry) and the seed (a
// replicate label, recorded separately in the manifest) are not.
// encoding/json sorts map keys, so the encoding is canonical.
func canonicalConfig(cfg *Config) map[string]any {
	topo := map[string]any{
		"nodes": len(cfg.Topology.Nodes()),
		"edges": sortedEdges(cfg.Topology),
	}
	sources := make([]map[string]any, len(cfg.Sources))
	for i, s := range cfg.Sources {
		sources[i] = map[string]any{
			"node":    int(s.Node),
			"process": s.Process.Name(),
			"rate":    s.Process.Rate(),
			"count":   s.Count,
		}
	}
	c := map[string]any{
		"topology":           topo,
		"sources":            sources,
		"policy":             cfg.Policy.String(),
		"capacity":           cfg.Capacity,
		"victim":             cfg.Victim.Name(),
		"transmission_delay": cfg.TransmissionDelay,
		"horizon":            cfg.Horizon,
		"route_repair":       cfg.RouteRepair,
		"seal":               cfg.Seal,
		"custom_policy":      cfg.CustomPolicy != nil,
	}
	if cfg.Delay != nil {
		c["delay"] = map[string]any{"name": cfg.Delay.Name(), "mean": cfg.Delay.Mean()}
	}
	if len(cfg.PerNodeDelay) > 0 {
		per := make(map[string]any, len(cfg.PerNodeDelay))
		for id, d := range cfg.PerNodeDelay {
			per[fmt.Sprint(int(id))] = map[string]any{"name": d.Name(), "mean": d.Mean()}
		}
		c["per_node_delay"] = per
	}
	if cfg.RateControl != nil {
		c["rate_control"] = map[string]any{
			"target_loss": cfg.RateControl.TargetLoss,
			"smoothing":   cfg.RateControl.Smoothing,
		}
	}
	if cfg.Channel != nil {
		c["channel"] = *cfg.Channel
	}
	if cfg.ARQ != nil {
		c["arq"] = *cfg.ARQ
	}
	if len(cfg.NodeFailures) > 0 {
		fails := make([]map[string]any, len(cfg.NodeFailures))
		for i, f := range cfg.NodeFailures {
			fails[i] = map[string]any{"node": int(f.Node), "at": f.At}
		}
		c["node_failures"] = fails
	}
	return c
}

// sortedEdges lists the topology's undirected edges as sorted [a, b] pairs
// with a < b, in lexicographic order.
func sortedEdges(t *topology.Topology) [][2]int {
	var edges [][2]int
	for _, id := range t.Nodes() {
		for _, m := range t.Neighbors(id) {
			if m > id {
				edges = append(edges, [2]int{int(id), int(m)})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}
