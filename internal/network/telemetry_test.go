package network

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"tempriv/internal/telemetry"
)

func TestManifestAlwaysPopulated(t *testing.T) {
	res, err := Run(lineConfig(t, 3, PolicyRCAD, 5, 40))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Manifest
	if m == nil {
		t.Fatal("run without telemetry must still produce a manifest")
	}
	if len(m.ConfigFingerprint) != 64 {
		t.Fatalf("fingerprint %q is not 64 hex chars", m.ConfigFingerprint)
	}
	if m.Seed != 42 {
		t.Fatalf("manifest seed = %d, want 42", m.Seed)
	}
	if m.GoVersion == "" || m.Events == 0 || m.Deliveries == 0 {
		t.Fatalf("manifest missing fields: %+v", m)
	}
	if m.SimDuration != res.Duration || m.Events != int(res.Events) {
		t.Fatalf("manifest disagrees with result: %+v vs duration %v events %d",
			m, res.Duration, res.Events)
	}
	if m.PeakHeapBytes == 0 {
		t.Fatal("manifest peak heap must be non-zero")
	}
}

func TestConfigFingerprintStableAcrossRuns(t *testing.T) {
	a, err := Run(lineConfig(t, 3, PolicyRCAD, 5, 40))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(lineConfig(t, 3, PolicyRCAD, 5, 40))
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.ConfigFingerprint != b.Manifest.ConfigFingerprint {
		t.Fatalf("identical configs fingerprinted differently:\n%s\n%s",
			a.Manifest.ConfigFingerprint, b.Manifest.ConfigFingerprint)
	}
	// The seed is a replicate label, not part of the experiment identity.
	cfg := lineConfig(t, 3, PolicyRCAD, 5, 40)
	cfg.Seed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Manifest.ConfigFingerprint != a.Manifest.ConfigFingerprint {
		t.Fatal("changing only the seed must not change the config fingerprint")
	}
	// Changing the experiment does change the fingerprint.
	d, err := Run(lineConfig(t, 3, PolicyDropTail, 5, 40))
	if err != nil {
		t.Fatal(err)
	}
	if d.Manifest.ConfigFingerprint == a.Manifest.ConfigFingerprint {
		t.Fatal("different policies fingerprinted identically")
	}
}

func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	plain, err := Run(lineConfig(t, 4, PolicyRCAD, 2, 200))
	if err != nil {
		t.Fatal(err)
	}
	cfg := lineConfig(t, 4, PolicyRCAD, 2, 200)
	cfg.Telemetry = &telemetry.Config{
		Registry:    telemetry.NewRegistry(),
		SampleEvery: 1.0,
		Emitter:     &telemetry.Memory{},
	}
	instrumented, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Deliveries, instrumented.Deliveries) {
		t.Fatal("telemetry changed the delivery sequence")
	}
	if plain.Duration != instrumented.Duration {
		t.Fatalf("telemetry changed the run duration: %v vs %v",
			plain.Duration, instrumented.Duration)
	}
}

func TestRegistryCountersMatchResult(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := lineConfig(t, 3, PolicyRCAD, 2, 100)
	cfg.Telemetry = &telemetry.Config{Registry: reg}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var created uint64
	for _, f := range res.Flows {
		created += f.Created
	}
	if got := reg.Counter("tempriv_packets_created_total").Value(); got != created {
		t.Fatalf("created counter = %d, want %d", got, created)
	}
	if got := reg.Counter("tempriv_packets_delivered_total").Value(); got != uint64(len(res.Deliveries)) {
		t.Fatalf("delivered counter = %d, want %d", got, len(res.Deliveries))
	}
	h := reg.Histogram("tempriv_delivery_latency")
	if h.Count() != uint64(len(res.Deliveries)) {
		t.Fatalf("latency observations = %d, want %d", h.Count(), len(res.Deliveries))
	}
	var sum float64
	for _, d := range res.Deliveries {
		sum += d.At - d.Truth.CreatedAt
	}
	if math.Abs(h.Sum()-sum) > 1e-9*math.Max(1, sum) {
		t.Fatalf("latency sum = %g, want %g", h.Sum(), sum)
	}
}

func TestSamplerEmitsConsistentTimeSeries(t *testing.T) {
	mem := &telemetry.Memory{}
	cfg := lineConfig(t, 4, PolicyRCAD, 2, 150)
	cfg.Telemetry = &telemetry.Config{SampleEvery: 1.0, Emitter: mem}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := mem.Samples()
	if len(samples) == 0 {
		t.Fatal("sampler produced no samples")
	}
	prev := 0.0
	for i, s := range samples {
		if s.At <= prev && i > 0 {
			t.Fatalf("sample times not increasing at %d: %v then %v", i, prev, s.At)
		}
		prev = s.At
		if s.At > res.Duration {
			t.Fatalf("sample at %v beyond run duration %v (probes extended the run)",
				s.At, res.Duration)
		}
		if s.Created < s.Delivered {
			t.Fatalf("sample %d delivered %d exceeds created %d", i, s.Delivered, s.Created)
		}
		buffered := 0
		for _, n := range s.Occupancy {
			buffered += n
		}
		if buffered != s.Buffered {
			t.Fatalf("sample %d buffered %d disagrees with occupancy sum %d",
				i, s.Buffered, buffered)
		}
		if s.InFlight < s.Buffered {
			t.Fatalf("sample %d in-flight %d below buffered %d", i, s.InFlight, s.Buffered)
		}
	}
	last := samples[len(samples)-1]
	if last.Created != 150 {
		t.Fatalf("final sample created = %d, want 150", last.Created)
	}
	// Cumulative counters are monotone across the series.
	for i := 1; i < len(samples); i++ {
		if samples[i].Delivered < samples[i-1].Delivered ||
			samples[i].Created < samples[i-1].Created {
			t.Fatalf("cumulative counters regressed at sample %d", i)
		}
	}
}

type failingEmitter struct{ err error }

func (f failingEmitter) Emit(telemetry.Sample) error { return f.err }

func TestSamplerEmitterErrorSurfaces(t *testing.T) {
	boom := errors.New("emitter broke")
	cfg := lineConfig(t, 3, PolicyRCAD, 2, 50)
	cfg.Telemetry = &telemetry.Config{SampleEvery: 1.0, Emitter: failingEmitter{boom}}
	if _, err := Run(cfg); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped %v", err, boom)
	}
}

func TestTelemetryConfigValidation(t *testing.T) {
	cfg := lineConfig(t, 2, PolicyRCAD, 5, 10)
	cfg.Telemetry = &telemetry.Config{SampleEvery: -1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative sample period accepted")
	}
	cfg.Telemetry = &telemetry.Config{SampleEvery: 1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("sampler without emitter accepted")
	}
}

func TestSampledHeapFeedsManifestPeak(t *testing.T) {
	mem := &telemetry.Memory{}
	cfg := lineConfig(t, 3, PolicyRCAD, 2, 100)
	cfg.Telemetry = &telemetry.Config{SampleEvery: 5.0, Emitter: mem, SampleHeap: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var peak uint64
	for _, s := range mem.Samples() {
		if s.HeapAllocBytes == 0 {
			t.Fatal("SampleHeap set but a sample has no heap reading")
		}
		if s.HeapAllocBytes > peak {
			peak = s.HeapAllocBytes
		}
	}
	if res.Manifest.PeakHeapBytes < peak {
		t.Fatalf("manifest peak heap %d below sampled peak %d",
			res.Manifest.PeakHeapBytes, peak)
	}
}
