package network

// Benchmarks for the per-hop forwarding fast path, plus the allocation gate
// that pins a lossless forwarded hop at zero heap allocations. These drive
// the link layer directly through an assembled runner — no source arming —
// so they measure exactly the transmit → flight → arrive chain.

import (
	"testing"

	"tempriv/internal/packet"
	"tempriv/internal/topology"
	"tempriv/internal/traffic"
)

const benchHops = 8

// newForwardRunner assembles a runner over a lossless line of benchHops hops
// under PolicyForward. The declared source is never armed — callers inject
// packets straight into the link layer.
func newForwardRunner(tb testing.TB, cfg func(*Config)) *runner {
	tb.Helper()
	topo, err := topology.Line(benchHops)
	if err != nil {
		tb.Fatal(err)
	}
	proc, err := traffic.NewPeriodic(10)
	if err != nil {
		tb.Fatal(err)
	}
	c := Config{
		Topology: topo,
		Sources:  []Source{{Node: packet.NodeID(benchHops), Process: proc, Count: 1}},
		Policy:   PolicyForward,
		Seed:     42,
	}
	if cfg != nil {
		cfg(&c)
	}
	r, err := newRunner(c)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// forwardOnce pushes p through the whole line and drains the event list,
// then resets the delivery log so the next op reuses its backing array.
func forwardOnce(r *runner, head *node, p *packet.Packet) {
	origin := head.id
	p.Header = packet.Header{PrevHop: origin, Origin: origin}
	p.Truth = packet.Truth{CreatedAt: r.sched.Now(), Flow: origin}
	r.transmit(head, p)
	for r.sched.Step() {
	}
	r.result.Deliveries = r.result.Deliveries[:0]
}

// BenchmarkForwardHop measures the lossless forwarding fast path: one op
// carries a packet benchHops hops to the sink, so per-hop cost is op time
// divided by benchHops. Steady state must be allocation-free — the pooled
// timers and flights are the whole point of the engine refactor.
func BenchmarkForwardHop(b *testing.B) {
	r := newForwardRunner(b, nil)
	head := r.nodes[packet.NodeID(benchHops)]
	p := packet.New(head.id, 0, 0)
	forwardOnce(r, head, p) // warm the pools and the delivery log
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forwardOnce(r, head, p)
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*benchHops)*1e9, "ns/hop")
}

// BenchmarkForwardHopLossyARQ is the same path under 10% frame loss with
// ARQ recovery — the lossy path clones duplicates and may allocate; it is
// benchmarked for visibility, not gated.
func BenchmarkForwardHopLossyARQ(b *testing.B) {
	r := newForwardRunner(b, func(c *Config) {
		c.Channel = &ChannelConfig{LossP: 0.1, AckLossP: 0.02}
		c.ARQ = DefaultARQ()
	})
	head := r.nodes[packet.NodeID(benchHops)]
	p := packet.New(head.id, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh routing seq per op keeps the sink's duplicate filter from
		// conflating ops; the map grows, so this path is not allocation-free.
		p.Header = packet.Header{PrevHop: head.id, Origin: head.id, RoutingSeq: uint32(i)}
		p.Truth = packet.Truth{CreatedAt: r.sched.Now(), Flow: head.id, Seq: uint32(i)}
		r.transmit(head, p)
		for r.sched.Step() {
		}
		r.result.Deliveries = r.result.Deliveries[:0]
	}
}

// TestForwardHopAllocationFree is the acceptance gate behind the refactor:
// once the timer and flight pools are warm, forwarding a packet across a
// lossless line must not allocate at all. Any closure creeping back into
// the transmit/arrive chain, any unpooled timer, or any per-hop boxing
// fails this immediately.
func TestForwardHopAllocationFree(t *testing.T) {
	r := newForwardRunner(t, nil)
	head := r.nodes[packet.NodeID(benchHops)]
	p := packet.New(head.id, 0, 0)
	forwardOnce(r, head, p) // warm the pools and the delivery log
	if allocs := testing.AllocsPerRun(500, func() {
		forwardOnce(r, head, p)
	}); allocs != 0 {
		t.Errorf("lossless %d-hop forward allocates %v per run, want 0", benchHops, allocs)
	}
}
