package network

import (
	"encoding/json"
	"fmt"
	"testing"

	"tempriv/internal/delay"
	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/telemetry"
	"tempriv/internal/topology"
	"tempriv/internal/traffic"
)

// resultSignature serialises everything observable about a Result except the
// manifest's wall-clock measurements, which legitimately vary between runs.
func resultSignature(t *testing.T, res *Result) string {
	t.Helper()
	m := *res.Manifest
	m.WallSeconds = 0
	m.EventsPerSec = 0
	m.PeakHeapBytes = 0
	stripped := *res
	stripped.Manifest = &m
	b, err := json.Marshal(&stripped)
	if err != nil {
		t.Fatalf("marshaling result: %v", err)
	}
	return string(b)
}

// engineSpec is one randomly drawn simulation shape for the reuse property
// test. buildConfig materialises a fresh Config (fresh traffic processes —
// OnOff is stateful — and fresh distribution values) for a given seed, the
// same way a well-behaved engine caller would.
type engineSpec struct {
	name  string
	build func(seed uint64) Config
}

// mustProc and mustDist unwrap constructor results; the configs under test
// are all statically valid, so a failure is a test bug worth panicking on.
func mustProc(p traffic.Process, err error) traffic.Process {
	if err != nil {
		panic(fmt.Sprintf("traffic: %v", err))
	}
	return p
}

func mustDist(d delay.Distribution, err error) delay.Distribution {
	if err != nil {
		panic(fmt.Sprintf("delay: %v", err))
	}
	return d
}

// randomEngineSpecs draws a set of structurally varied configs: topology,
// policy, channel/ARQ, failures, sealing, rate control and traffic process
// all vary, covering every subsystem rearm has to reset.
func randomEngineSpecs(t *testing.T, src *rng.Source, n int) []engineSpec {
	t.Helper()
	specs := make([]engineSpec, 0, n)
	for i := 0; i < n; i++ {
		i := i
		topoKind := src.Intn(3)
		policy := []PolicyKind{PolicyForward, PolicyUnlimited, PolicyDropTail, PolicyRCAD}[src.Intn(4)]
		procKind := src.Intn(3)
		withChannel := src.Bernoulli(0.4)
		withARQ := withChannel && src.Bernoulli(0.6)
		withFailure := src.Bernoulli(0.3)
		withRepair := withFailure && src.Bernoulli(0.5)
		withSeal := src.Bernoulli(0.2)
		withRateCtl := policy == PolicyRCAD && src.Bernoulli(0.4)
		withPerNode := policy != PolicyForward && src.Bernoulli(0.3)
		packets := 20 + src.Intn(40)
		interval := 1 + 4*src.Float64()
		capacity := 3 + src.Intn(8)

		build := func(seed uint64) Config {
			var topo *topology.Topology
			var sources []packet.NodeID
			var err error
			switch topoKind {
			case 0:
				topo, err = topology.Line(5)
				if err == nil {
					sources = topo.Sources()
				}
			case 1:
				topo, err = topology.Grid(3, 3)
				if err == nil {
					far := topology.GridID(3, 2, 2)
					if err = topo.MarkSource(far); err == nil {
						sources = topo.Sources()
					}
				}
			default:
				topo, sources, err = topology.Figure1()
			}
			if err != nil {
				t.Fatalf("spec %d: topology: %v", i, err)
			}
			var proc traffic.Process
			switch procKind {
			case 0:
				proc = mustProc(traffic.NewPeriodic(interval))
			case 1:
				proc = mustProc(traffic.NewPoisson(1 / interval))
			default:
				// Stateful process: the adopt-new-config contract is what
				// keeps this correct across engine reuse.
				proc = mustProc(traffic.NewOnOff(1/interval, 5*interval, 3*interval))
			}
			cfg := Config{
				Topology: topo,
				Policy:   policy,
				Capacity: capacity,
				Seed:     seed,
				Seal:     withSeal,
			}
			for _, s := range sources {
				cfg.Sources = append(cfg.Sources, Source{Node: s, Process: proc, Count: packets})
			}
			if policy != PolicyForward {
				cfg.Delay = mustDist(delay.NewExponential(8))
			}
			if withPerNode {
				cfg.PerNodeDelay = map[packet.NodeID]delay.Distribution{
					sources[0]: mustDist(delay.NewUniform(4)),
				}
			}
			if withRateCtl {
				cfg.RateControl = &RateControl{TargetLoss: 0.1, Smoothing: 0.3}
			}
			if withChannel {
				cfg.Channel = &ChannelConfig{LossP: 0.1, Burst: true, BurstLossP: 0.5}
				if withARQ {
					cfg.ARQ = &ARQConfig{MaxRetries: 3}
					cfg.Channel.AckLossP = 0.05
				}
			}
			if withFailure {
				cfg.NodeFailures = []NodeFailure{{Node: sources[0], At: float64(packets) * interval / 2}}
				cfg.RouteRepair = withRepair
			}
			return cfg
		}
		specs = append(specs, engineSpec{
			name: fmt.Sprintf("spec%02d/topo%d-policy%v-proc%d-ch%v-arq%v-fail%v-seal%v",
				i, topoKind, policy, procKind, withChannel, withARQ, withFailure, withSeal),
			build: build,
		})
	}
	return specs
}

// TestEngineReuseMatchesFreshRuns is the no-state-leakage property test: for
// each randomly drawn simulation shape, running seeds s, s+1, s+2 through one
// reused engine must produce byte-identical results to running each seed on
// its own fresh engine. Any run-scoped state surviving rearm — a stale
// route, a warm RNG, a dirty buffer, arena or dedup entry — shows up as a
// signature mismatch.
func TestEngineReuseMatchesFreshRuns(t *testing.T) {
	src := rng.New(20260808)
	const seeds = 3
	for _, spec := range randomEngineSpecs(t, src, 12) {
		t.Run(spec.name, func(t *testing.T) {
			fresh := make([]string, seeds)
			for s := 0; s < seeds; s++ {
				res, err := Run(spec.build(uint64(1000 + s)))
				if err != nil {
					t.Fatalf("fresh run seed %d: %v", s, err)
				}
				fresh[s] = resultSignature(t, res)
			}
			eng, err := NewEngine(spec.build(1000))
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			for s := 0; s < seeds; s++ {
				res, err := eng.Run(spec.build(uint64(1000 + s)))
				if err != nil {
					t.Fatalf("reused run seed %d: %v", s, err)
				}
				if got := resultSignature(t, res); got != fresh[s] {
					t.Fatalf("seed %d: reused engine diverged from fresh run\nfresh:  %.200s\nreused: %.200s", s, fresh[s], got)
				}
			}
			// Re-running the first seed after the others must also replay it
			// exactly (reuse is order-independent, not just append-only).
			res, err := eng.Run(spec.build(1000))
			if err != nil {
				t.Fatalf("replay run: %v", err)
			}
			if got := resultSignature(t, res); got != fresh[0] {
				t.Fatalf("replaying seed 0 after other seeds diverged")
			}
		})
	}
}

// TestRunCachedMatchesRun pins the cache path: RunCached through one shared
// cache must match plain Run for a seed sweep, and the cache must actually
// retain an engine between calls.
func TestRunCachedMatchesRun(t *testing.T) {
	cache := NewEngineCache()
	spec := randomEngineSpecs(t, rng.New(7), 1)[0]
	for s := 0; s < 4; s++ {
		cfg := spec.build(uint64(50 + s))
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("plain run: %v", err)
		}
		got, err := RunCached(cache, spec.build(uint64(50+s)))
		if err != nil {
			t.Fatalf("cached run: %v", err)
		}
		if resultSignature(t, got) != resultSignature(t, want) {
			t.Fatalf("seed %d: RunCached diverged from Run", s)
		}
	}
	if n := len(cache.engines); n != 1 {
		t.Fatalf("cache holds %d engines after a structurally constant sweep, want 1", n)
	}
}

// TestRunCachedBypasses verifies the conservative fallbacks: custom
// policies and observer attachments never enter the cache.
func TestRunCachedBypasses(t *testing.T) {
	cache := NewEngineCache()
	topo, sources, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	proc := mustProc(traffic.NewPeriodic(2))
	cfg := Config{
		Topology: topo,
		Sources:  []Source{{Node: sources[0], Process: proc, Count: 10}},
		Policy:   PolicyRCAD,
		Delay:    mustDist(delay.NewExponential(5)),
		Seed:     1,
		Telemetry: &telemetry.Config{
			Registry: telemetry.NewRegistry(),
		},
	}
	if _, err := RunCached(cache, cfg); err != nil {
		t.Fatalf("telemetry run: %v", err)
	}
	if len(cache.engines) != 0 {
		t.Fatal("telemetry-observed run entered the engine cache")
	}
}

// TestEngineRejectsStructuralMismatch locks in the rearm compatibility
// contract: structural fields baked into the built engine cannot change
// between runs.
func TestEngineRejectsStructuralMismatch(t *testing.T) {
	topo, sources, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	proc := mustProc(traffic.NewPeriodic(2))
	base := func() Config {
		return Config{
			Topology: topo,
			Sources:  []Source{{Node: sources[0], Process: proc, Count: 10}},
			Policy:   PolicyRCAD,
			Delay:    mustDist(delay.NewExponential(5)),
			Capacity: 10,
			Seed:     1,
		}
	}
	eng, err := NewEngine(base())
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"policy":       func(c *Config) { c.Policy = PolicyUnlimited },
		"capacity":     func(c *Config) { c.Capacity = 4 },
		"rate-control": func(c *Config) { c.RateControl = &RateControl{TargetLoss: 0.1, Smoothing: 0.5} },
	} {
		cfg := base()
		mutate(&cfg)
		if _, err := eng.Run(cfg); err == nil {
			t.Errorf("engine accepted a %s change across reuse", name)
		}
	}
	line, err := topology.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base()
	cfg.Topology = line
	cfg.Sources = []Source{{Node: line.Sources()[0], Process: proc, Count: 10}}
	if _, err := eng.Run(cfg); err == nil {
		t.Error("engine accepted a topology change across reuse")
	}
	// The engine stays usable after a rejected rearm is not promised; a
	// compatible config on a fresh engine must still work.
	eng2, err := NewEngine(base())
	if err != nil {
		t.Fatal(err)
	}
	cfg = base()
	cfg.Seed = 99
	if _, err := eng2.Run(cfg); err != nil {
		t.Fatalf("compatible rearm rejected: %v", err)
	}
}

// BenchmarkEngineReuse measures the amortisation the arena-backed engine
// buys: one sweep-point-like simulation run repeatedly through a reused
// engine versus a fresh engine per run.
func BenchmarkEngineReuse(b *testing.B) {
	build := func(seed uint64) Config {
		topo, sources, err := topology.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		proc, err := traffic.NewPeriodic(2)
		if err != nil {
			b.Fatal(err)
		}
		dist, err := delay.NewExponential(8)
		if err != nil {
			b.Fatal(err)
		}
		cfg := Config{Topology: topo, Policy: PolicyRCAD, Delay: dist, Seed: seed}
		for _, s := range sources {
			cfg.Sources = append(cfg.Sources, Source{Node: s, Process: proc, Count: 200})
		}
		return cfg
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(build(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		eng, err := NewEngine(build(0))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Run(build(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
