package network

// Engine: the reusable form of the simulation runner. A fresh run builds
// routes, per-node policies and pools once (NewEngine); every Run then
// rearms that structure in place — scheduler drained, arena rewound, node
// substreams reseeded, policies emptied — and executes against the full
// config passed to Run. Structure is reused; behaviour always comes from
// the caller's config, which is what makes a reused engine byte-identical
// to a fresh one.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/seal"
	"tempriv/internal/telemetry"
)

// Engine is a reusable simulation instance. It amortises the expensive
// structural work of a run — route building, per-node policy construction,
// timer/flight/entry pools, the packet arena — across many runs of
// structurally compatible configs (same topology, policy, capacity, victim
// rule and rate-control design point; everything else, including the seed,
// delay distributions and traffic processes, is adopted fresh from the
// config passed to each Run).
//
// An Engine is not safe for concurrent use; give each worker goroutine its
// own (see EngineCache for the checkout/checkin discipline the experiment
// layer uses). The Result returned by Run is owned by the caller and is
// never touched by later runs.
type Engine struct {
	r *runner
}

// NewEngine validates cfg and builds the run structure without executing
// anything. The config's structural fields fix the engine's identity; Run
// may then be called any number of times with configs that differ in seed,
// delays, traffic, failures or horizon.
func NewEngine(cfg Config) (*Engine, error) {
	resolved, err := resolveConfig(cfg)
	if err != nil {
		return nil, err
	}
	r, err := newRunner(resolved)
	if err != nil {
		return nil, err
	}
	return &Engine{r: r}, nil
}

// Run executes one simulation of cfg on the engine, reusing the built
// structure. It returns an error (and leaves the engine unusable for
// reuse) if cfg is structurally incompatible with the construction config.
func (e *Engine) Run(cfg Config) (*Result, error) {
	resolved, err := resolveConfig(cfg)
	if err != nil {
		return nil, err
	}
	return e.runResolved(resolved)
}

// runResolved is Run after resolveConfig: rearm, schedule, execute,
// finalize.
func (e *Engine) runResolved(cfg Config) (*Result, error) {
	r := e.r
	if err := r.rearm(cfg); err != nil {
		return nil, err
	}
	if err := r.scheduleSources(); err != nil {
		return nil, err
	}
	r.scheduleFailures()
	r.attachSampler()
	start := time.Now()
	if err := r.sched.Run(); err != nil {
		return nil, fmt.Errorf("network: simulation: %w", err)
	}
	wall := time.Since(start).Seconds()
	if r.tele != nil && r.tele.err != nil {
		return nil, fmt.Errorf("network: telemetry emitter: %w", r.tele.err)
	}
	r.finalize()
	m, err := r.buildManifest(wall)
	if err != nil {
		return nil, err
	}
	r.result.Manifest = m
	return r.result, nil
}

// rearm resets every piece of run-scoped state and adopts cfg as the run's
// configuration. On a fresh engine it is an exact no-op relative to
// construction (substreams are reseeded to the values they already hold),
// so the first run and all later runs travel the identical path.
func (r *runner) rearm(cfg Config) error {
	// Structural compatibility — checked against the construction config
	// while r.cfg still holds it. These are the fields baked into built
	// objects (routes, buffer capacities, victim selectors, the Erlang
	// design point) that a rearm cannot change.
	if cfg.Policy != r.cfg.Policy {
		return fmt.Errorf("network: engine reuse: policy %v differs from construction policy %v", cfg.Policy, r.cfg.Policy)
	}
	if cfg.Capacity != r.cfg.Capacity {
		return fmt.Errorf("network: engine reuse: capacity %d differs from construction capacity %d", cfg.Capacity, r.cfg.Capacity)
	}
	if fmt.Sprintf("%T", cfg.Victim) != fmt.Sprintf("%T", r.cfg.Victim) {
		return fmt.Errorf("network: engine reuse: victim rule %T differs from construction rule %T", cfg.Victim, r.cfg.Victim)
	}
	switch {
	case (cfg.RateControl == nil) != (r.cfg.RateControl == nil):
		return errors.New("network: engine reuse: rate control cannot be toggled")
	case cfg.RateControl != nil && *cfg.RateControl != *r.cfg.RateControl:
		return errors.New("network: engine reuse: rate-control design point differs from construction")
	}
	if cfg.Topology != r.cfg.Topology {
		if len(cfg.Topology.Nodes()) != len(r.cfg.Topology.Nodes()) || !sameEdges(r.edges0, sortedEdges(cfg.Topology)) {
			return errors.New("network: engine reuse: topology differs from construction topology")
		}
	}
	// Custom policy instances are factory-built and may close over caller
	// state, so reuse or a seed change forces a rebuild. The first run of a
	// fresh engine with an unchanged seed keeps the instances construction
	// made — preserving the exactly-one-factory-call behaviour of a plain
	// Run.
	rebuildCustom := cfg.Policy == PolicyCustom && (r.ran || cfg.Seed != r.cfg.Seed)

	r.cfg = cfg
	r.sched.Reset()
	r.arena.reset()
	r.result = &Result{
		Flows: make(map[packet.NodeID]*FlowStats),
		Nodes: make(map[packet.NodeID]*NodeStats),
	}
	clear(r.dead)
	if cfg.ARQ != nil {
		if r.dedup == nil {
			r.dedup = make(map[uint64]struct{})
		} else {
			clear(r.dedup)
		}
	} else {
		r.dedup = nil
	}
	if cfg.Seal {
		r.keyring = seal.NewKeyring([]byte(fmt.Sprintf("tempriv/network/%d", cfg.Seed)))
	} else {
		r.keyring = nil
	}
	r.tele = newTelemetryState(cfg.Telemetry)

	// Per-node rearm. Map order is fine: Split never advances its parent,
	// so the derived substreams are independent of visit order.
	master := rng.New(cfg.Seed)
	for id, n := range r.nodes {
		n.dead = false
		n.parent = n.parent0
		n.dist = cfg.Delay
		if d, ok := cfg.PerNodeDelay[id]; ok {
			n.dist = d
		}
		n.src.SetTo(master.SplitIndexed("node", int(id)))
		switch {
		case cfg.Channel == nil:
			n.link = nil
		case n.link == nil:
			n.link = newLinkChannel(*cfg.Channel, n.src.Split("link"))
		default:
			n.link.cfg = *cfg.Channel
			n.link.bad = false
			n.link.src.SetTo(n.src.Split("link"))
		}
		switch {
		case n.rcad != nil:
			// Reseeds the buffer's shared victim stream and re-derives the
			// controller's planned-delay cap from the adopted distribution.
			n.rcad.Reset(n.dist, n.src.Split("victim"))
		case cfg.Policy == PolicyCustom:
			if rebuildCustom {
				if err := r.attachPolicy(n); err != nil {
					return err
				}
			}
		case n.policy != nil:
			if res, ok := n.policy.(interface{ Reset() }); ok {
				res.Reset()
			}
		}
	}
	r.ran = true
	return nil
}

// sameEdges reports whether two sorted edge lists are equal.
func sameEdges(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pktSlabSize is the number of packets per arena slab; pktMaxSlabs caps the
// arena's retained footprint (256 slabs × 1024 packets ≈ 15 MB) — a run
// that creates more packets falls back to plain heap allocation for the
// excess, trading speed for a bounded pool.
const (
	pktSlabSize = 1024
	pktMaxSlabs = 256
)

// pktArena bump-allocates packets from reusable slabs. Packets allocated
// from the arena are valid until the next reset — which the engine calls
// only between runs, and every packet's lifetime ends at its run's sink
// (Deliveries copies Header and Truth by value; nothing in a Result points
// into the arena).
type pktArena struct {
	slabs [][]packet.Packet
	cur   int // index of the slab currently being filled
	used  int // packets handed out of slabs[cur]
}

// alloc returns a zeroed packet from the arena, growing it up to the slab
// cap and spilling to the heap past it.
func (a *pktArena) alloc() *packet.Packet {
	for {
		if a.cur == len(a.slabs) {
			if len(a.slabs) == pktMaxSlabs {
				return &packet.Packet{}
			}
			a.slabs = append(a.slabs, make([]packet.Packet, pktSlabSize))
		}
		if a.used < pktSlabSize {
			p := &a.slabs[a.cur][a.used]
			a.used++
			*p = packet.Packet{}
			return p
		}
		a.cur++
		a.used = 0
	}
}

// reset rewinds the arena so the next run refills the same slabs.
func (a *pktArena) reset() { a.cur, a.used = 0, 0 }

// newPacket is the arena-backed packet.New: same fields, no heap
// allocation in the steady state.
func (r *runner) newPacket(origin packet.NodeID, seq uint32, createdAt float64) *packet.Packet {
	p := r.arena.alloc()
	p.Header.PrevHop = origin
	p.Header.Origin = origin
	p.Header.RoutingSeq = seq
	p.Truth = packet.Truth{CreatedAt: createdAt, Flow: origin, Seq: seq}
	return p
}

// clonePacket is the arena-backed packet.Clone, used by the ARQ
// lost-acknowledgement duplicate path.
func (r *runner) clonePacket(p *packet.Packet) *packet.Packet {
	c := r.arena.alloc()
	*c = *p
	return c
}

// EngineCache pools engines by structural config identity so sweeps and
// replicate batches reuse instances instead of rebuilding them per run. It
// is safe for concurrent use: Get checks an engine out (removing it from
// the cache), so two goroutines racing on the same key never share one —
// the loser simply builds a fresh engine and both are checked back in.
type EngineCache struct {
	mu      sync.Mutex
	engines map[string]*Engine
}

// NewEngineCache returns an empty engine cache.
func NewEngineCache() *EngineCache {
	return &EngineCache{engines: make(map[string]*Engine)}
}

// checkout removes and returns the cached engine for key, or nil.
func (c *EngineCache) checkout(key string) *Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.engines[key]
	if e != nil {
		delete(c.engines, key)
	}
	return e
}

// checkin returns an engine to the cache under key, replacing any engine
// another goroutine checked in meanwhile (the replaced one is dropped).
func (c *EngineCache) checkin(key string, e *Engine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.engines[key] = e
}

// engineKey is the structural identity a cached engine is filed under: the
// canonical config fingerprint (topology, policy, capacity, victim name,
// link model, …) plus the victim rule's concrete type. Fields the rearm
// path adopts fresh — and the seed, which the fingerprint already excludes
// as a replicate label — may differ between runs filed under one key.
func engineKey(cfg *Config) (string, error) {
	fp, err := telemetry.Fingerprint(canonicalConfig(cfg))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s|victim=%T", fp, cfg.Victim), nil
}

// RunCached is Run through an engine cache: structurally compatible runs
// reuse one engine's routes, pools and arena instead of rebuilding them.
// Results are byte-identical to plain Run by the rearm contract. A nil
// cache, a custom-policy config (factory closures may not be reusable), or
// an observer attachment (Tracer, Telemetry) falls back to a one-shot run.
// On a run error the engine is discarded, not returned to the cache.
func RunCached(cache *EngineCache, cfg Config) (*Result, error) {
	if cache == nil || cfg.CustomPolicy != nil || cfg.Tracer != nil || cfg.Telemetry != nil {
		return Run(cfg)
	}
	resolved, err := resolveConfig(cfg)
	if err != nil {
		return nil, err
	}
	key, err := engineKey(&resolved)
	if err != nil {
		return nil, err
	}
	e := cache.checkout(key)
	if e == nil {
		r, err := newRunner(resolved)
		if err != nil {
			return nil, err
		}
		e = &Engine{r: r}
	}
	res, err := e.runResolved(resolved)
	if err != nil {
		return nil, err
	}
	cache.checkin(key, e)
	return res, nil
}
