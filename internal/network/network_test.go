package network

import (
	"math"
	"testing"

	"tempriv/internal/buffer"
	"tempriv/internal/delay"
	"tempriv/internal/packet"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
	"tempriv/internal/traffic"
)

func lineConfig(t *testing.T, hops int, policy PolicyKind, interarrival float64, count int) Config {
	t.Helper()
	topo, err := topology.Line(hops)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := traffic.NewPeriodic(interarrival)
	if err != nil {
		t.Fatal(err)
	}
	var dist delay.Distribution
	if policy != PolicyForward {
		d, err := delay.NewExponential(30)
		if err != nil {
			t.Fatal(err)
		}
		dist = d
	}
	return Config{
		Topology: topo,
		Sources:  []Source{{Node: packet.NodeID(hops), Process: proc, Count: count}},
		Policy:   policy,
		Delay:    dist,
		Seed:     42,
	}
}

func TestNoDelayLatencyIsExactlyHops(t *testing.T) {
	const hops = 5
	res, err := Run(lineConfig(t, hops, PolicyForward, 10, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deliveries) != 50 {
		t.Fatalf("delivered %d, want 50", len(res.Deliveries))
	}
	for _, d := range res.Deliveries {
		if lat := d.At - d.Truth.CreatedAt; math.Abs(lat-hops) > 1e-9 {
			t.Fatalf("latency = %v, want exactly %d (h·τ)", lat, hops)
		}
		if int(d.Header.HopCount) != hops {
			t.Fatalf("hop count at sink = %d, want %d", d.Header.HopCount, hops)
		}
	}
	fs := res.Flows[packet.NodeID(hops)]
	if fs.Created != 50 || fs.Delivered != 50 || fs.Dropped() != 0 {
		t.Fatalf("flow stats = %+v", fs)
	}
}

func TestUnlimitedLatencyMatchesTheory(t *testing.T) {
	// Expected end-to-end latency = h·(τ + 1/µ) = 5·31 = 155.
	const hops = 5
	res, err := Run(lineConfig(t, hops, PolicyUnlimited, 10, 2000))
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Flows[packet.NodeID(hops)]
	want := float64(hops) * 31
	if math.Abs(fs.Latency.Mean-want) > 0.07*want {
		t.Fatalf("mean latency = %v, want ≈ %v", fs.Latency.Mean, want)
	}
	if fs.Dropped() != 0 {
		t.Fatalf("unlimited policy dropped %d packets", fs.Dropped())
	}
}

func TestRCADNeverDropsAndCutsLatencyUnderLoad(t *testing.T) {
	// 1/λ = 2 ≪ 1/µ = 30: heavy preemption. RCAD delivers everything and
	// its latency is far below the unlimited-buffer case (§5.3).
	const hops = 15
	cfgRCAD := lineConfig(t, hops, PolicyRCAD, 2, 1000)
	cfgUnl := lineConfig(t, hops, PolicyUnlimited, 2, 1000)
	resRCAD, err := Run(cfgRCAD)
	if err != nil {
		t.Fatal(err)
	}
	resUnl, err := Run(cfgUnl)
	if err != nil {
		t.Fatal(err)
	}
	src := packet.NodeID(hops)
	if resRCAD.Flows[src].Dropped() != 0 {
		t.Fatalf("RCAD dropped %d packets", resRCAD.Flows[src].Dropped())
	}
	latR := resRCAD.Flows[src].Latency.Mean
	latU := resUnl.Flows[src].Latency.Mean
	// On a single line every node carries only λ = 0.5, so the latency cut
	// is milder than the paper's 2.5× (which arises on the Figure-1 merge
	// topology whose trunk carries 4 flows); the fig2b experiment checks
	// that factor. Here require a clear reduction.
	if latR >= 0.8*latU {
		t.Fatalf("RCAD latency %v not clearly below unlimited %v", latR, latU)
	}
	// Some node must have preempted.
	totalPreempt := uint64(0)
	for _, ns := range resRCAD.Nodes {
		totalPreempt += ns.Preemptions
	}
	if totalPreempt == 0 {
		t.Fatal("no preemptions under heavy load")
	}
}

func TestDropTailLosesPacketsUnderOverload(t *testing.T) {
	const hops = 5
	res, err := Run(lineConfig(t, hops, PolicyDropTail, 2, 1000))
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Flows[packet.NodeID(hops)]
	if fs.Dropped() == 0 {
		t.Fatal("drop-tail under 15× overload dropped nothing")
	}
	if fs.Delivered+fs.Dropped() != fs.Created {
		t.Fatalf("conservation violated: %+v", fs)
	}
	drops := uint64(0)
	for _, ns := range res.Nodes {
		drops += ns.Drops
	}
	if drops != fs.Dropped() {
		t.Fatalf("node drops %d != flow drops %d", drops, fs.Dropped())
	}
}

func TestDeterminism(t *testing.T) {
	cfg := lineConfig(t, 8, PolicyRCAD, 3, 500)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Deliveries) != len(b.Deliveries) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a.Deliveries), len(b.Deliveries))
	}
	for i := range a.Deliveries {
		if a.Deliveries[i] != b.Deliveries[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a.Deliveries[i], b.Deliveries[i])
		}
	}
	cfg.Seed = 43
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range c.Deliveries {
		if i < len(a.Deliveries) && a.Deliveries[i] == c.Deliveries[i] {
			same++
		}
	}
	if same == len(a.Deliveries) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestDeliveriesAreTimeOrdered(t *testing.T) {
	res, err := Run(lineConfig(t, 10, PolicyRCAD, 2, 800))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Deliveries); i++ {
		if res.Deliveries[i].At < res.Deliveries[i-1].At {
			t.Fatalf("deliveries out of order at %d", i)
		}
	}
}

func TestObservationsAlignWithTruths(t *testing.T) {
	res, err := Run(lineConfig(t, 6, PolicyUnlimited, 5, 200))
	if err != nil {
		t.Fatal(err)
	}
	obs := res.Observations()
	truths := res.Truths()
	if len(obs) != len(truths) || len(obs) != len(res.Deliveries) {
		t.Fatalf("lengths differ: %d obs, %d truths, %d deliveries", len(obs), len(truths), len(res.Deliveries))
	}
	for i := range obs {
		if obs[i].ArrivalTime != res.Deliveries[i].At {
			t.Fatalf("observation %d arrival mismatch", i)
		}
		if truths[i] != res.Deliveries[i].Truth.CreatedAt {
			t.Fatalf("truth %d mismatch", i)
		}
		if obs[i].ArrivalTime < truths[i] {
			t.Fatalf("packet %d arrived before creation", i)
		}
	}
}

func TestSealedPayloadsVerifyAtSink(t *testing.T) {
	cfg := lineConfig(t, 4, PolicyRCAD, 5, 100)
	cfg.Seal = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SealFailures != 0 {
		t.Fatalf("%d seal failures", res.SealFailures)
	}
	if len(res.Deliveries) != 100 {
		t.Fatalf("delivered %d, want 100", len(res.Deliveries))
	}
}

func TestFigure1TopologyRuns(t *testing.T) {
	topo, sources, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	proc, err := traffic.NewPeriodic(5)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := delay.NewExponential(30)
	if err != nil {
		t.Fatal(err)
	}
	var srcs []Source
	for _, s := range sources {
		srcs = append(srcs, Source{Node: s, Process: proc, Count: 200})
	}
	res, err := Run(Config{
		Topology: topo,
		Sources:  srcs,
		Policy:   PolicyRCAD,
		Delay:    dist,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deliveries) != 800 {
		t.Fatalf("delivered %d, want 800 (4×200, RCAD never drops)", len(res.Deliveries))
	}
	for i, want := range topology.Figure1HopCounts {
		fs := res.Flows[sources[i]]
		if fs.HopCount != want {
			t.Fatalf("S%d hop count %d, want %d", i+1, fs.HopCount, want)
		}
		if fs.Delivered != 200 {
			t.Fatalf("S%d delivered %d", i+1, fs.Delivered)
		}
	}
	// The shared trunk nodes carry all four flows.
	trunk := res.Nodes[packet.NodeID(1)]
	if trunk.Arrivals != 800 {
		t.Fatalf("trunk arrivals = %d, want 800", trunk.Arrivals)
	}
}

func TestHorizonBoundsGeneration(t *testing.T) {
	topo, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := traffic.NewPoisson(0.5)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := delay.NewExponential(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology: topo,
		Sources:  []Source{{Node: 3, Process: proc, Count: 0}},
		Policy:   PolicyUnlimited,
		Delay:    dist,
		Horizon:  2000,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	created := res.Flows[3].Created
	// ≈ λ·horizon = 1000 creations.
	if created < 800 || created > 1200 {
		t.Fatalf("created %d packets, want ≈ 1000", created)
	}
	for _, d := range res.Deliveries {
		if d.Truth.CreatedAt > 2000 {
			t.Fatalf("packet created at %v after horizon", d.Truth.CreatedAt)
		}
	}
	// In-flight packets drain past the horizon.
	if res.Duration <= 2000 {
		t.Fatalf("simulation ended at %v, expected drain past horizon", res.Duration)
	}
}

func TestPerNodeDelayOverride(t *testing.T) {
	topo, err := topology.Line(2)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := traffic.NewPeriodic(50)
	if err != nil {
		t.Fatal(err)
	}
	base, err := delay.NewConstant(5)
	if err != nil {
		t.Fatal(err)
	}
	override, err := delay.NewConstant(20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Topology:     topo,
		Sources:      []Source{{Node: 2, Process: proc, Count: 50}},
		Policy:       PolicyUnlimited,
		Delay:        base,
		PerNodeDelay: map[packet.NodeID]delay.Distribution{1: override},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Latency = τ·2 + 5 (node 2) + 20 (node 1) = 27 exactly.
	fs := res.Flows[2]
	if math.Abs(fs.Latency.Mean-27) > 1e-9 {
		t.Fatalf("latency = %v, want 27", fs.Latency.Mean)
	}
}

func TestRateControlledRun(t *testing.T) {
	cfg := lineConfig(t, 10, PolicyRCAD, 2, 1000)
	cfg.RateControl = &RateControl{TargetLoss: 0.1, Smoothing: 0.3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Flows[packet.NodeID(10)]
	if fs.Dropped() != 0 {
		t.Fatalf("rate-controlled RCAD dropped %d", fs.Dropped())
	}
	// The controller plans ρ*/λ ≈ 15 per hop instead of the 30 cap, so the
	// preemption rate across nodes should be moderate, not extreme.
	for _, ns := range res.Nodes {
		if ns.Arrivals == 0 {
			continue
		}
		if rate := float64(ns.Preemptions) / float64(ns.Arrivals); rate > 0.5 {
			t.Fatalf("node %v preemption rate %v with rate control", ns.ID, rate)
		}
	}
}

func TestOccupancyBoundedByCapacity(t *testing.T) {
	cfg := lineConfig(t, 5, PolicyRCAD, 2, 500)
	cfg.Capacity = 7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range res.Nodes {
		if ns.MaxOccupancy > 7 {
			t.Fatalf("node %v peak occupancy %v exceeds capacity 7", ns.ID, ns.MaxOccupancy)
		}
	}
}

func TestVictimSelectorConfigurable(t *testing.T) {
	cfg := lineConfig(t, 5, PolicyRCAD, 2, 300)
	cfg.Victim = buffer.Oldest{}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	good := lineConfig(t, 3, PolicyRCAD, 5, 10)

	bad := good
	bad.Topology = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("nil topology accepted")
	}

	bad = good
	bad.Sources = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("no sources accepted")
	}

	bad = good
	bad.Policy = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero policy accepted")
	}

	bad = good
	bad.Delay = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("nil delay for RCAD accepted")
	}

	bad = good
	bad.Sources = []Source{{Node: 99, Process: bad.Sources[0].Process, Count: 1}}
	if _, err := Run(bad); err == nil {
		t.Fatal("unknown source node accepted")
	}

	bad = good
	bad.Sources = []Source{{Node: topology.Sink, Process: bad.Sources[0].Process, Count: 1}}
	if _, err := Run(bad); err == nil {
		t.Fatal("sink as source accepted")
	}

	bad = good
	bad.Sources = []Source{{Node: 3, Process: nil, Count: 1}}
	if _, err := Run(bad); err == nil {
		t.Fatal("nil process accepted")
	}

	bad = good
	bad.Sources = []Source{{Node: 3, Process: bad.Sources[0].Process, Count: 0}}
	if _, err := Run(bad); err == nil {
		t.Fatal("unbounded source without horizon accepted")
	}

	bad = good
	bad.TransmissionDelay = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("negative tau accepted")
	}

	bad = good
	bad.Policy = PolicyForward
	bad.RateControl = &RateControl{TargetLoss: 0.1, Smoothing: 0.3}
	if _, err := Run(bad); err == nil {
		t.Fatal("rate control without RCAD accepted")
	}
}

func TestPolicyKindString(t *testing.T) {
	names := map[PolicyKind]string{
		PolicyForward:   "no-delay",
		PolicyUnlimited: "delay-unlimited",
		PolicyDropTail:  "delay-droptail",
		PolicyRCAD:      "rcad",
		PolicyKind(99):  "policy(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestNodeFailureCutsFlow(t *testing.T) {
	// Fail the midpoint relay of a 5-hop line at t=100. With deterministic
	// forwarding (latency 5), packets created before ≈98 clear node 3 in
	// time; later ones die there.
	cfg := lineConfig(t, 5, PolicyForward, 10, 50) // creations at t=10..500
	cfg.NodeFailures = []NodeFailure{{Node: 3, At: 100}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Flows[packet.NodeID(5)]
	if fs.Delivered == 0 {
		t.Fatal("no packets delivered before the failure")
	}
	if fs.Delivered == fs.Created {
		t.Fatal("failure lost nothing")
	}
	if res.LostToFailures == 0 {
		t.Fatal("LostToFailures not counted")
	}
	// Conservation: every created packet is delivered, lost to the failure,
	// or still counted in a live buffer (none here: the run drained).
	if fs.Delivered+res.LostToFailures != fs.Created {
		t.Fatalf("conservation: created %d != delivered %d + lost %d",
			fs.Created, fs.Delivered, res.LostToFailures)
	}
	// No delivery was created after the failure cut the only path.
	for _, d := range res.Deliveries {
		// A packet created at time c reaches node 3 no earlier than c+2
		// (two hops); everything created after ~98 must be lost.
		if d.Truth.CreatedAt > 100 {
			t.Fatalf("packet created at %v delivered across a dead node", d.Truth.CreatedAt)
		}
	}
}

func TestFailedSourceStopsCreating(t *testing.T) {
	cfg := lineConfig(t, 3, PolicyForward, 10, 100) // would run to t=1000
	cfg.NodeFailures = []NodeFailure{{Node: 3, At: 305}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Flows[packet.NodeID(3)]
	// Creations at 10,20,...,300 happen; the rest are suppressed.
	if fs.Created != 30 {
		t.Fatalf("created %d packets, want 30 (source died at t=305)", fs.Created)
	}
	if fs.Delivered != 30 {
		t.Fatalf("delivered %d", fs.Delivered)
	}
}

func TestFailureEvacuatesBuffers(t *testing.T) {
	// With RCAD and slow delays, the failed node holds packets at failure
	// time; they must be counted lost, not delivered late.
	cfg := lineConfig(t, 4, PolicyRCAD, 2, 200)
	cfg.NodeFailures = []NodeFailure{{Node: 2, At: 150}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Flows[packet.NodeID(4)]
	if fs.Delivered+res.LostToFailures != fs.Created {
		t.Fatalf("conservation: created %d, delivered %d, lost %d",
			fs.Created, fs.Delivered, res.LostToFailures)
	}
	if res.LostToFailures == 0 {
		t.Fatal("no losses recorded despite mid-path failure")
	}
}

func TestFailureValidation(t *testing.T) {
	cfg := lineConfig(t, 3, PolicyForward, 10, 5)
	cfg.NodeFailures = []NodeFailure{{Node: 99, At: 1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("failure on unknown node accepted")
	}
	cfg.NodeFailures = []NodeFailure{{Node: topology.Sink, At: 1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("sink failure accepted")
	}
	cfg.NodeFailures = []NodeFailure{{Node: 2, At: -1}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative failure time accepted")
	}
}

func TestTracerRecordsFullJourney(t *testing.T) {
	var mem trace.Memory
	cfg := lineConfig(t, 3, PolicyRCAD, 5, 20)
	cfg.Tracer = &mem
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mem.CountKind(trace.Created) != 20 {
		t.Fatalf("created events = %d, want 20", mem.CountKind(trace.Created))
	}
	if mem.CountKind(trace.Delivered) != len(res.Deliveries) {
		t.Fatalf("delivered events = %d, want %d", mem.CountKind(trace.Delivered), len(res.Deliveries))
	}
	// Each of the 20 packets buffers at 3 nodes.
	if got := mem.CountKind(trace.Admitted); got != 60 {
		t.Fatalf("admitted events = %d, want 60", got)
	}
	releases := mem.CountKind(trace.Released) + mem.CountKind(trace.Preempted)
	if releases != 60 {
		t.Fatalf("release events = %d, want 60", releases)
	}
	// A packet's journey is time-ordered and its hop delays sum to its
	// latency minus transmission time.
	journey := mem.Journey(3, 0)
	if len(journey) != 1+3+3+1 {
		t.Fatalf("journey has %d events: %+v", len(journey), journey)
	}
	hops := mem.HopDelays(3, 0)
	if len(hops) != 3 {
		t.Fatalf("hop delays = %+v", hops)
	}
	total := 0.0
	for _, h := range hops {
		total += h.Delay
	}
	lat := res.Deliveries[indexOfSeq(res, 0)].At - res.Deliveries[indexOfSeq(res, 0)].Truth.CreatedAt
	if math.Abs(total+3-lat) > 1e-9 { // 3 hops × τ=1 transmission
		t.Fatalf("hop delays %v + 3 != latency %v", total, lat)
	}
}

func indexOfSeq(res *Result, seq uint32) int {
	for i, d := range res.Deliveries {
		if d.Truth.Seq == seq {
			return i
		}
	}
	return -1
}

func TestTracerRecordsLosses(t *testing.T) {
	var mem trace.Memory
	cfg := lineConfig(t, 4, PolicyRCAD, 2, 100)
	cfg.NodeFailures = []NodeFailure{{Node: 2, At: 80}}
	cfg.Tracer = &mem
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint64(mem.CountKind(trace.Lost)); got != res.LostToFailures {
		t.Fatalf("lost events = %d, result says %d", got, res.LostToFailures)
	}
}

func TestDuplicateSourceRejected(t *testing.T) {
	cfg := lineConfig(t, 3, PolicyForward, 10, 5)
	cfg.Sources = append(cfg.Sources, cfg.Sources[0])
	if _, err := Run(cfg); err == nil {
		t.Fatal("duplicate source node accepted")
	}
}
