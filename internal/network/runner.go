package network

// Runner: config validation, per-node state construction, and the run loop
// that glues the source, policy, link, sink and failure layers together.

import (
	"errors"
	"fmt"

	"tempriv/internal/buffer"
	"tempriv/internal/core"
	"tempriv/internal/delay"
	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/routing"
	"tempriv/internal/seal"
	"tempriv/internal/sim"
	"tempriv/internal/topology"
	"tempriv/internal/trace"
)

// node is the per-node simulation state.
type node struct {
	id     packet.NodeID
	parent packet.NodeID
	policy buffer.Policy // nil for PolicyForward
	rcad   *core.RCAD    // non-nil only when rate control is enabled
	dist   delay.Distribution
	src    *rng.Source
	link   *linkChannel // nil when Config.Channel is nil (reliable link)
	dead   bool
	// parent0 is the routing parent the build assigned, restored by rearm so
	// a route repair in one run never leaks into the next.
	parent0 packet.NodeID
}

// runner holds one simulation's full state.
type runner struct {
	cfg     Config
	sched   *sim.Scheduler
	routes  *routing.Table
	nodes   map[packet.NodeID]*node
	keyring *seal.Keyring
	result  *Result
	// dead collects failed nodes so each route repair excludes every death
	// so far, not just the latest.
	dead map[packet.NodeID]bool
	// dedup is the sink's (origin, seq) duplicate filter, allocated only
	// when ARQ can produce duplicates.
	dedup map[uint64]struct{}
	// flights recycles the in-flight frame records of the link layer so the
	// per-hop fast path never allocates. See link.go.
	flights []*flight
	// arena bump-allocates the run's packets from reusable slabs; rearm
	// rewinds it, so a reused engine creates packets without touching the
	// heap. See engine.go.
	arena pktArena
	// tele is the telemetry attachment; nil when Config.Telemetry is nil,
	// and every hook on a nil *telemetryState is a no-op.
	tele *telemetryState
	// edges0 is the construction topology's sorted edge set — the structural
	// identity rearm checks when a later run passes a different Topology
	// value.
	edges0 [][2]int
	// ran records that at least one run completed, so rearm knows when
	// custom-policy factories must be re-invoked.
	ran bool
}

// Run validates cfg, executes the simulation to completion, and returns the
// result. It is the one-shot form of the engine lifecycle: every run —
// fresh or on a reused Engine — flows through the identical rearm-and-go
// path, which is what makes engine reuse byte-identical by construction.
func Run(cfg Config) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(cfg)
}

// resolveConfig validates cfg and fills its defaults, returning the resolved
// copy every engine run adopts. It is idempotent: resolving an already
// resolved config is a no-op.
func resolveConfig(cfg Config) (Config, error) {
	if cfg.Topology == nil {
		return cfg, errors.New("network: nil topology")
	}
	if len(cfg.Sources) == 0 {
		return cfg, errors.New("network: no sources")
	}
	switch cfg.Policy {
	case PolicyForward:
	case PolicyUnlimited, PolicyDropTail, PolicyRCAD:
		if cfg.Delay == nil {
			return cfg, fmt.Errorf("network: policy %v requires a delay distribution", cfg.Policy)
		}
	case PolicyCustom:
		if cfg.CustomPolicy == nil {
			return cfg, errors.New("network: PolicyCustom requires a CustomPolicy factory")
		}
		if cfg.Delay == nil {
			cfg.Delay = delay.None{} // batching mixes ignore sampled delays
		}
	default:
		return cfg, fmt.Errorf("network: unknown policy %d", int(cfg.Policy))
	}
	if cfg.TransmissionDelay < 0 {
		return cfg, fmt.Errorf("network: negative transmission delay %v", cfg.TransmissionDelay)
	}
	if cfg.Horizon < 0 {
		return cfg, fmt.Errorf("network: negative horizon %v", cfg.Horizon)
	}
	if err := cfg.Telemetry.Validate(); err != nil {
		return cfg, fmt.Errorf("network: %w", err)
	}
	seenSources := make(map[packet.NodeID]bool, len(cfg.Sources))
	for i, s := range cfg.Sources {
		if !cfg.Topology.HasNode(s.Node) {
			return cfg, fmt.Errorf("network: source %d at unknown node %v", i, s.Node)
		}
		if seenSources[s.Node] {
			// Flow identity is the origin node (the adversary's view), so
			// two sources on one node would merge their flow accounting
			// silently.
			return cfg, fmt.Errorf("network: duplicate source on node %v", s.Node)
		}
		seenSources[s.Node] = true
		if s.Node == topology.Sink {
			return cfg, fmt.Errorf("network: source %d is the sink", i)
		}
		if s.Process == nil {
			return cfg, fmt.Errorf("network: source %d has nil traffic process", i)
		}
		if s.Count < 0 {
			return cfg, fmt.Errorf("network: source %d has negative count", i)
		}
		if s.Count == 0 && cfg.Horizon <= 0 {
			return cfg, fmt.Errorf("network: source %d is unbounded (count 0) without a horizon", i)
		}
	}
	if cfg.RateControl != nil {
		if cfg.Policy != PolicyRCAD {
			return cfg, errors.New("network: rate control requires PolicyRCAD")
		}
	}
	for i, f := range cfg.NodeFailures {
		if !cfg.Topology.HasNode(f.Node) {
			return cfg, fmt.Errorf("network: failure %d targets unknown node %v", i, f.Node)
		}
		if f.Node == topology.Sink {
			return cfg, fmt.Errorf("network: failure %d targets the sink", i)
		}
		if f.At < 0 {
			return cfg, fmt.Errorf("network: failure %d has negative time %v", i, f.At)
		}
	}

	if cfg.TransmissionDelay == 0 {
		cfg.TransmissionDelay = 1
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = core.DefaultCapacity
	}
	if cfg.Victim == nil {
		cfg.Victim = buffer.ShortestRemaining{}
	}
	if cfg.ARQ != nil {
		resolved, err := cfg.ARQ.validate(cfg.TransmissionDelay)
		if err != nil {
			return cfg, err
		}
		cfg.ARQ = &resolved
	}
	if cfg.Channel != nil {
		resolved, err := cfg.Channel.validate(cfg.ARQ != nil)
		if err != nil {
			return cfg, err
		}
		cfg.Channel = &resolved
	}
	return cfg, nil
}

// newRunner builds the structural state of an engine from an already
// resolved config: routes, per-node policies, links, and the reusable pools.
// The built structure is what survives across runs; everything run-scoped is
// (re)armed by rearm.
func newRunner(cfg Config) (*runner, error) {
	routes, err := routing.BuildTree(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("network: building routes: %w", err)
	}

	r := &runner{
		cfg:    cfg,
		sched:  sim.NewScheduler(),
		routes: routes,
		nodes:  make(map[packet.NodeID]*node),
		dead:   make(map[packet.NodeID]bool),
		edges0: sortedEdges(cfg.Topology),
		result: &Result{
			Flows: make(map[packet.NodeID]*FlowStats),
			Nodes: make(map[packet.NodeID]*NodeStats),
		},
	}
	r.tele = newTelemetryState(cfg.Telemetry)
	if cfg.ARQ != nil {
		// Duplicates exist only when a delivered frame can be retransmitted,
		// i.e. under ARQ; a reliable or ARQ-less run needs no filter.
		r.dedup = make(map[uint64]struct{})
	}
	if cfg.Seal {
		r.keyring = seal.NewKeyring([]byte(fmt.Sprintf("tempriv/network/%d", cfg.Seed)))
	}

	master := rng.New(cfg.Seed)
	for _, id := range cfg.Topology.Nodes() {
		if id == topology.Sink {
			continue
		}
		parent, ok := routes.NextHop(id)
		if !ok {
			return nil, fmt.Errorf("network: node %v has no route to the sink", id)
		}
		n := &node{
			id:      id,
			parent:  parent,
			parent0: parent,
			dist:    cfg.Delay,
			src:     master.SplitIndexed("node", int(id)),
		}
		if d, ok := cfg.PerNodeDelay[id]; ok {
			n.dist = d
		}
		if cfg.Channel != nil {
			n.link = newLinkChannel(*cfg.Channel, n.src.Split("link"))
		}
		if err := r.attachPolicy(n); err != nil {
			return nil, err
		}
		r.nodes[id] = n
	}
	return r, nil
}

// record emits a lifecycle event if tracing is enabled.
func (r *runner) record(kind trace.Kind, node packet.NodeID, p *packet.Packet) {
	if r.cfg.Tracer == nil {
		return
	}
	r.cfg.Tracer.Record(trace.Event{
		At:   r.sched.Now(),
		Kind: kind,
		Node: node,
		Flow: p.Truth.Flow,
		Seq:  p.Truth.Seq,
	})
}

// recordLink emits a link-layer event naming the far end of the link.
func (r *runner) recordLink(kind trace.Kind, node, dest packet.NodeID, p *packet.Packet) {
	if r.cfg.Tracer == nil {
		return
	}
	r.cfg.Tracer.Record(trace.Event{
		At:   r.sched.Now(),
		Kind: kind,
		Node: node,
		Flow: p.Truth.Flow,
		Seq:  p.Truth.Seq,
		Dest: dest,
	})
}
