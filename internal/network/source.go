package network

// Source layer: packet creation. Each declared Source gets one sourceState
// whose single pre-bound tick callback draws the next interarrival gap,
// materialises the packet, and re-arms itself — the allocation-free
// replacement for the old per-packet closure chain.

import (
	"fmt"

	"tempriv/internal/packet"
	"tempriv/internal/rng"
	"tempriv/internal/trace"
)

// sourceState is the arming state of one traffic source. tickFn is bound to
// tick once at construction so re-arming schedules the same func value every
// time instead of closing over fresh state per packet.
type sourceState struct {
	r      *runner
	s      Source
	src    *rng.Source
	seq    uint32
	tickFn func()
}

// scheduleSources arms the first creation event of every source.
func (r *runner) scheduleSources() error {
	for i, s := range r.cfg.Sources {
		hops, ok := r.routes.HopCount(s.Node)
		if !ok {
			return fmt.Errorf("network: source %v not routed", s.Node)
		}
		r.result.Flows[s.Node] = &FlowStats{Source: s.Node, HopCount: hops}
		st := &sourceState{r: r, s: s, src: rng.New(r.cfg.Seed).SplitIndexed("traffic", i)}
		st.tickFn = st.tick
		st.arm()
	}
	return nil
}

// arm schedules the source's next packet creation, having already created
// st.seq packets. Drawing the gap here — at scheduling time, not fire time —
// is part of the determinism contract: the substream advances in the same
// order the old recursive closures advanced it.
func (st *sourceState) arm() {
	if st.s.Count > 0 && int(st.seq) >= st.s.Count {
		return
	}
	gap := st.s.Process.Next(st.src)
	when := st.r.sched.Now() + gap
	if st.r.cfg.Horizon > 0 && when > st.r.cfg.Horizon {
		return
	}
	st.r.sched.At(when, st.tickFn)
}

// tick fires one creation event and re-arms the next.
func (st *sourceState) tick() {
	st.r.createPacket(st.s, st.seq)
	st.seq++
	st.arm()
}

// createPacket materialises one packet at its source and hands it to the
// source node's buffering policy. A dead source senses nothing.
func (r *runner) createPacket(s Source, seq uint32) {
	if r.nodes[s.Node].dead {
		return
	}
	now := r.sched.Now()
	p := r.newPacket(s.Node, seq, now)
	if r.keyring != nil {
		reading := packet.Reading{Value: float64(seq), AppSeq: seq, CreatedAt: now}
		if err := p.SealReading(r.keyring, reading); err != nil {
			// Sealing uses validated keys and cannot fail at runtime; a
			// failure here is a programming error worth stopping for.
			panic(fmt.Sprintf("network: sealing payload: %v", err))
		}
	}
	r.result.Flows[s.Node].Created++
	r.tele.onCreated()
	r.record(trace.Created, s.Node, p)
	r.deliver(r.nodes[s.Node], p)
}
