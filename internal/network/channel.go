package network

import (
	"fmt"

	"tempriv/internal/rng"
)

// ChannelConfig models unreliable wireless links. Every directed link (a
// node toward its current parent) owns an independent channel state drawn
// from that node's deterministic random substream, so lossy runs stay
// reproducible in (Config, Seed).
//
// All probabilities are per data-frame transmission attempt. The default
// model is Bernoulli: each frame is lost independently with probability
// LossP. Setting Burst enables the two-state Gilbert–Elliott model: the
// link alternates between a good state (loss LossP) and a bad state (loss
// BurstLossP), with geometric state residence times — the standard model
// for the correlated fading bursts real radios exhibit.
type ChannelConfig struct {
	// LossP is the frame-loss probability, in [0, 1]. Under the
	// Gilbert–Elliott model it is the good-state loss probability.
	LossP float64
	// Burst enables the Gilbert–Elliott two-state model.
	Burst bool
	// BurstLossP is the bad-state frame-loss probability, in [0, 1].
	BurstLossP float64
	// MeanGoodRun is the mean number of transmissions the link stays in the
	// good state (>= 1). Zero defaults to DefaultMeanGoodRun.
	MeanGoodRun float64
	// MeanBurstLen is the mean number of transmissions a bad-state burst
	// lasts (>= 1). Zero defaults to DefaultMeanBurstLen.
	MeanBurstLen float64
	// AckLossP is the probability a link-layer acknowledgement is lost, in
	// [0, 1]. A lost ACK makes the sender retransmit a frame that was in
	// fact delivered, creating the duplicates the sink must suppress. It
	// requires ARQ: without retransmissions an ACK has no effect.
	AckLossP float64
}

// Default Gilbert–Elliott residence times, in transmissions.
const (
	DefaultMeanGoodRun  = 50.0
	DefaultMeanBurstLen = 5.0
)

// validate checks ranges and fills residence-time defaults.
func (c *ChannelConfig) validate(hasARQ bool) (ChannelConfig, error) {
	out := *c
	if out.LossP < 0 || out.LossP > 1 {
		return out, fmt.Errorf("network: channel loss probability %v outside [0, 1]", out.LossP)
	}
	if out.AckLossP < 0 || out.AckLossP > 1 {
		return out, fmt.Errorf("network: ACK loss probability %v outside [0, 1]", out.AckLossP)
	}
	if out.AckLossP > 0 && !hasARQ {
		return out, fmt.Errorf("network: AckLossP %v requires ARQ (without retransmissions an ACK changes nothing)", out.AckLossP)
	}
	if out.Burst {
		if out.BurstLossP < 0 || out.BurstLossP > 1 {
			return out, fmt.Errorf("network: burst loss probability %v outside [0, 1]", out.BurstLossP)
		}
		if out.MeanGoodRun == 0 {
			out.MeanGoodRun = DefaultMeanGoodRun
		}
		if out.MeanBurstLen == 0 {
			out.MeanBurstLen = DefaultMeanBurstLen
		}
		if out.MeanGoodRun < 1 || out.MeanBurstLen < 1 {
			return out, fmt.Errorf("network: Gilbert–Elliott residence times must be >= 1 transmission (good %v, burst %v)",
				out.MeanGoodRun, out.MeanBurstLen)
		}
	}
	return out, nil
}

// ARQConfig enables link-layer automatic repeat request: each hop
// acknowledges received frames, and the sender retransmits after a timeout
// with capped exponential backoff until the retry budget is spent, after
// which the packet counts as a link drop (Result.LinkDrops).
//
// A dead receiver never acknowledges, so with ARQ enabled a packet sent
// toward a just-failed node is retried rather than silently destroyed —
// and a retry re-reads the sender's parent, so packets survive a node
// failure whenever route repair re-parents the sender in time.
type ARQConfig struct {
	// MaxRetries is the per-hop retransmission budget after the first
	// attempt. Zero means a single attempt: losses are detected and counted
	// but never retried.
	MaxRetries int
	// Timeout is the ACK wait before the first retransmission, in simulated
	// time units from loss detection. Zero defaults to 3τ.
	Timeout float64
	// Backoff multiplies the timeout after each further failed attempt.
	// Zero defaults to 2; values below 1 are rejected.
	Backoff float64
	// MaxTimeout caps the backed-off timeout. Zero defaults to 10× the
	// resolved Timeout.
	MaxTimeout float64
}

// DefaultARQ returns the ARQ configuration used by the CLIs and the
// abl-linkloss experiment: 3 retries, timeout 3τ, backoff ×2.
func DefaultARQ() *ARQConfig {
	return &ARQConfig{MaxRetries: 3}
}

// validate checks ranges and resolves defaults against the run's τ.
func (a *ARQConfig) validate(tau float64) (ARQConfig, error) {
	out := *a
	if out.MaxRetries < 0 {
		return out, fmt.Errorf("network: negative ARQ retry budget %d", out.MaxRetries)
	}
	if out.Timeout < 0 {
		return out, fmt.Errorf("network: negative ARQ timeout %v", out.Timeout)
	}
	if out.Timeout == 0 {
		out.Timeout = 3 * tau
	}
	if out.Backoff == 0 {
		out.Backoff = 2
	}
	if out.Backoff < 1 {
		return out, fmt.Errorf("network: ARQ backoff %v must be >= 1", out.Backoff)
	}
	if out.MaxTimeout < 0 {
		return out, fmt.Errorf("network: negative ARQ timeout cap %v", out.MaxTimeout)
	}
	if out.MaxTimeout == 0 {
		out.MaxTimeout = 10 * out.Timeout
	}
	return out, nil
}

// wait returns the backed-off retransmission timeout before attempt number
// try+1 (try counts completed attempts, 0-based).
func (a *ARQConfig) wait(try int) float64 {
	t := a.Timeout
	for i := 0; i < try; i++ {
		t *= a.Backoff
		if t >= a.MaxTimeout {
			return a.MaxTimeout
		}
	}
	return t
}

// linkChannel is the per-link channel state: the Gilbert–Elliott good/bad
// flag and the link's private random substream. A nil *linkChannel (reliable
// link) never loses anything.
type linkChannel struct {
	cfg ChannelConfig
	src *rng.Source
	bad bool
}

// newLinkChannel builds the channel state for one directed link.
func newLinkChannel(cfg ChannelConfig, src *rng.Source) *linkChannel {
	return &linkChannel{cfg: cfg, src: src}
}

// frameLost draws whether the current data frame is destroyed, advancing
// the Gilbert–Elliott state when the burst model is on.
func (l *linkChannel) frameLost() bool {
	if l == nil {
		return false
	}
	p := l.cfg.LossP
	if l.cfg.Burst && l.bad {
		p = l.cfg.BurstLossP
	}
	lost := l.src.Bernoulli(p)
	if l.cfg.Burst {
		// Geometric residence: leave the current state with probability
		// 1/mean-residence per transmission.
		if l.bad {
			if l.src.Bernoulli(1 / l.cfg.MeanBurstLen) {
				l.bad = false
			}
		} else {
			if l.src.Bernoulli(1 / l.cfg.MeanGoodRun) {
				l.bad = true
			}
		}
	}
	return lost
}

// ackLost draws whether the acknowledgement for a delivered frame is lost.
func (l *linkChannel) ackLost() bool {
	if l == nil {
		return false
	}
	return l.src.Bernoulli(l.cfg.AckLossP)
}
