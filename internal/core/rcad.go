// Package core implements the paper's contribution: RCAD, Rate-Controlled
// Adaptive Delaying (§5), together with the §4 rate controller that plans
// per-node delay parameters from the Erlang loss formula.
//
// An RCAD node buffers each arriving packet for a random delay drawn from a
// configurable distribution (exponential with mean 1/µ by default, per
// §3.2's max-entropy argument). The buffer holds at most k packets; when a
// new packet arrives at a full buffer, the victim packet — by default the
// one with the shortest remaining delay — is transmitted immediately rather
// than dropping anything. Preemption thereby "automatically adjusts the
// effective µ based on buffer state" (§5).
//
// The optional RateController adds the explicit µ-planning of §4: it tracks
// the node's incoming packet rate with an exponentially weighted moving
// average and, via the Erlang loss formula, re-plans the mean delay so the
// expected preemption rate stays at a target α. This realises the paper's
// observation that nodes near the sink (higher λ) must use shorter delays
// to maintain a fixed buffer-overflow probability.
package core

import (
	"errors"
	"fmt"
	"math"

	"tempriv/internal/buffer"
	"tempriv/internal/delay"
	"tempriv/internal/packet"
	"tempriv/internal/queueing"
	"tempriv/internal/rng"
	"tempriv/internal/sim"
)

// DefaultCapacity is the paper's buffer size: 10 packets, approximating the
// buffers available on Mica-2 motes (§5.3).
const DefaultCapacity = 10

// Config configures one RCAD node instance.
type Config struct {
	// Scheduler is the simulation kernel the node runs on. Required.
	Scheduler *sim.Scheduler
	// Forward receives packets when they leave the buffer. Required.
	Forward buffer.Forward
	// Capacity is the buffer size k. Defaults to DefaultCapacity when 0.
	Capacity int
	// Delay is the buffering-delay distribution. Required; use
	// delay.NewExponential(30) for the paper's evaluation setting.
	Delay delay.Distribution
	// Victim selects the packet to preempt when the buffer is full.
	// Defaults to buffer.ShortestRemaining, the paper's rule.
	Victim buffer.VictimSelector
	// Source supplies the node's randomness. Required.
	Source *rng.Source
	// Controller optionally re-plans the mean delay from the observed
	// arrival rate (§4). When nil the delay distribution is fixed.
	Controller *RateController
}

// RCAD is one node's rate-controlled adaptive delaying engine.
type RCAD struct {
	buf  *buffer.Preemptive
	dist delay.Distribution
	src  *rng.Source
	ctrl *RateController
}

// New validates cfg and returns an RCAD engine.
func New(cfg Config) (*RCAD, error) {
	if cfg.Scheduler == nil {
		return nil, errors.New("core: nil scheduler")
	}
	if cfg.Forward == nil {
		return nil, errors.New("core: nil forward function")
	}
	if cfg.Delay == nil {
		return nil, errors.New("core: nil delay distribution")
	}
	if cfg.Source == nil {
		return nil, errors.New("core: nil random source")
	}
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	victim := cfg.Victim
	if victim == nil {
		victim = buffer.ShortestRemaining{}
	}
	buf, err := buffer.NewPreemptive(cfg.Scheduler, cfg.Forward, capacity, victim, cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("core: creating buffer: %w", err)
	}
	return &RCAD{buf: buf, dist: cfg.Delay, src: cfg.Source, ctrl: cfg.Controller}, nil
}

// OnPacket handles a packet arriving at the node at simulated time now. It
// samples a buffering delay — re-planned from the observed arrival rate when
// a controller is configured — and admits the packet, preempting a victim if
// the buffer is full.
func (r *RCAD) OnPacket(now float64, p *packet.Packet) {
	d := 0.0
	if r.ctrl != nil {
		r.ctrl.Observe(now)
		d = r.src.Exponential(r.ctrl.MeanDelay())
	} else {
		d = r.dist.Sample(r.src)
	}
	r.buf.Admit(p, d)
}

// Reset rearms the engine for a fresh run on a reset scheduler. dist becomes
// the delay distribution (distributions are stateless parameter holders, so
// passing either the construction value or an equal fresh one is fine) and
// src's state is copied into the engine's random stream in place — the
// preemptive buffer shares that same Source, so victim selection is reseeded
// with it. The buffer empties (its entry pool survives, warm) and the rate
// controller's arrival-rate estimate restarts with its planned-delay cap
// re-derived from dist.
func (r *RCAD) Reset(dist delay.Distribution, src *rng.Source) {
	r.dist = dist
	r.src.SetTo(src)
	r.buf.Reset()
	if r.ctrl != nil {
		r.ctrl.Reset(dist.Mean())
	}
}

// Stats returns the node's buffer counters (occupancy, preemptions, realised
// delays).
func (r *RCAD) Stats() *buffer.Stats { return r.buf.Stats() }

// Evacuate cancels all pending releases and returns the buffered packets —
// the node-failure path (see buffer.Evacuate).
func (r *RCAD) Evacuate() []*packet.Packet { return r.buf.Evacuate() }

// Len returns the number of packets currently buffered.
func (r *RCAD) Len() int { return r.buf.Len() }

// Capacity returns the buffer size k.
func (r *RCAD) Capacity() int { return r.buf.Capacity() }

// MeanDelay returns the mean buffering delay currently in force: the
// controller's planned value when rate control is enabled, otherwise the
// configured distribution's mean.
func (r *RCAD) MeanDelay() float64 {
	if r.ctrl != nil {
		return r.ctrl.MeanDelay()
	}
	return r.dist.Mean()
}

// RateController plans a node's mean buffering delay from its observed
// arrival rate so that the expected buffer-overflow (preemption) probability
// stays at a target α (§4):
//
//	µ = λ̂ / ρ*   where   E(ρ*, k) = α.
//
// Because ρ* is fixed by (k, α), the planned mean delay 1/µ shrinks linearly
// as the arrival rate grows — exactly the near-sink adaptation the paper
// calls out.
type RateController struct {
	capacity  int
	rhoStar   float64
	smoothing float64
	maxMean   float64

	haveLast bool
	last     float64
	ewmaGap  float64
}

// NewRateController returns a controller for a buffer of k slots targeting
// loss probability alpha. smoothing ∈ (0, 1] is the EWMA weight given to
// each new interarrival observation; maxMean caps the planned mean delay
// (the value used until enough arrivals have been observed, and the privacy
// budget at very low rates).
func NewRateController(k int, alpha, smoothing, maxMean float64) (*RateController, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: controller needs k >= 1, got %d", k)
	}
	if smoothing <= 0 || smoothing > 1 || math.IsNaN(smoothing) {
		return nil, fmt.Errorf("core: smoothing must lie in (0,1], got %v", smoothing)
	}
	if maxMean <= 0 || math.IsNaN(maxMean) || math.IsInf(maxMean, 0) {
		return nil, fmt.Errorf("core: max mean delay must be positive and finite, got %v", maxMean)
	}
	rhoStar, err := queueing.SolveRho(k, alpha)
	if err != nil {
		return nil, fmt.Errorf("core: planning utilization: %w", err)
	}
	return &RateController{capacity: k, rhoStar: rhoStar, smoothing: smoothing, maxMean: maxMean}, nil
}

// Reset clears the controller's observation state — the EWMA rate estimate
// restarts from "nothing observed" — and re-caps the planned mean delay at
// maxMean, restoring the as-constructed plan. The Erlang design point
// (capacity, target loss, ρ*) is configuration, not state, and is kept.
func (c *RateController) Reset(maxMean float64) {
	c.haveLast = false
	c.last = 0
	c.ewmaGap = 0
	c.maxMean = maxMean
}

// Observe records a packet arrival at time now, updating the rate estimate.
func (c *RateController) Observe(now float64) {
	if !c.haveLast {
		c.haveLast = true
		c.last = now
		return
	}
	gap := now - c.last
	c.last = now
	if gap < 0 {
		return // defensive: simulated time never decreases
	}
	if c.ewmaGap == 0 {
		c.ewmaGap = gap
		return
	}
	c.ewmaGap += c.smoothing * (gap - c.ewmaGap)
}

// Rate returns the estimated arrival rate λ̂, or 0 before two arrivals have
// been observed.
func (c *RateController) Rate() float64 {
	if c.ewmaGap <= 0 {
		return 0
	}
	return 1 / c.ewmaGap
}

// MeanDelay returns the planned mean buffering delay min(ρ*/λ̂, maxMean).
func (c *RateController) MeanDelay() float64 {
	rate := c.Rate()
	if rate <= 0 {
		return c.maxMean
	}
	mean := c.rhoStar / rate
	if mean > c.maxMean {
		return c.maxMean
	}
	return mean
}

// TargetUtilization returns ρ*, the utilization at which the Erlang loss
// equals the configured target.
func (c *RateController) TargetUtilization() float64 { return c.rhoStar }

// PlanTree computes, for every node in a routing tree, the mean buffering
// delay that holds the Erlang loss at alpha given per-source packet rates —
// the §4 network-wide planning rule made executable. It returns the planned
// mean delay 1/µᵢ for each node that carries traffic, capped at maxMean.
// The sink (which does not buffer) is excluded.
func PlanTree(agg map[packet.NodeID]float64, k int, alpha, maxMean float64) (map[packet.NodeID]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: PlanTree needs k >= 1, got %d", k)
	}
	if maxMean <= 0 || math.IsNaN(maxMean) || math.IsInf(maxMean, 0) {
		return nil, fmt.Errorf("core: max mean delay must be positive and finite, got %v", maxMean)
	}
	rhoStar, err := queueing.SolveRho(k, alpha)
	if err != nil {
		return nil, fmt.Errorf("core: planning utilization: %w", err)
	}
	plan := make(map[packet.NodeID]float64, len(agg))
	for id, lambda := range agg {
		if id == 0 { // the sink does not buffer
			continue
		}
		if lambda <= 0 {
			plan[id] = maxMean
			continue
		}
		mean := rhoStar / lambda
		if mean > maxMean {
			mean = maxMean
		}
		plan[id] = mean
	}
	return plan, nil
}
