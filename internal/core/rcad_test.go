package core

import (
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/buffer"
	"tempriv/internal/delay"
	"tempriv/internal/packet"
	"tempriv/internal/queueing"
	"tempriv/internal/rng"
	"tempriv/internal/sim"
)

func expDist(t *testing.T, mean float64) delay.Distribution {
	t.Helper()
	d, err := delay.NewExponential(mean)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	sched := sim.NewScheduler()
	fwd := func(*packet.Packet, bool) {}
	dist := expDist(t, 30)
	src := rng.New(1)
	cases := []Config{
		{Forward: fwd, Delay: dist, Source: src},
		{Scheduler: sched, Delay: dist, Source: src},
		{Scheduler: sched, Forward: fwd, Source: src},
		{Scheduler: sched, Forward: fwd, Delay: dist},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaults(t *testing.T) {
	sched := sim.NewScheduler()
	r, err := New(Config{
		Scheduler: sched,
		Forward:   func(*packet.Packet, bool) {},
		Delay:     expDist(t, 30),
		Source:    rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Capacity() != DefaultCapacity {
		t.Fatalf("default capacity = %d, want %d", r.Capacity(), DefaultCapacity)
	}
	if r.MeanDelay() != 30 {
		t.Fatalf("mean delay = %v, want 30", r.MeanDelay())
	}
}

func TestRCADNeverDropsUnderOverload(t *testing.T) {
	sched := sim.NewScheduler()
	delivered := 0
	r, err := New(Config{
		Scheduler: sched,
		Forward:   func(*packet.Packet, bool) { delivered++ },
		Capacity:  10,
		Delay:     expDist(t, 30),
		Source:    rng.New(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		i := i
		// Interarrival 2 ≪ mean delay 30: the paper's highest-load point.
		sched.At(float64(i)*2, func() {
			r.OnPacket(sched.Now(), packet.New(1, uint32(i), sched.Now()))
		})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != n {
		t.Fatalf("delivered %d of %d packets", delivered, n)
	}
	s := r.Stats()
	if s.Drops != 0 {
		t.Fatalf("RCAD dropped %d packets", s.Drops)
	}
	if s.Preemptions == 0 {
		t.Fatal("no preemptions under 15× overload")
	}
}

// TestEffectiveDelayTracksKOverLambda verifies §5.4's analysis: under heavy
// load the effective per-node delay becomes ≈ k/λ instead of 1/µ.
func TestEffectiveDelayTracksKOverLambda(t *testing.T) {
	const k = 10
	const interarrival = 2.0 // λ = 0.5 → k/λ = 20 < 1/µ = 30
	sched := sim.NewScheduler()
	r, err := New(Config{
		Scheduler: sched,
		Forward:   func(*packet.Packet, bool) {},
		Capacity:  k,
		Delay:     expDist(t, 30),
		Source:    rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		i := i
		sched.At(float64(i)*interarrival, func() {
			r.OnPacket(sched.Now(), packet.New(1, uint32(i), sched.Now()))
		})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	held := r.Stats().HeldDelays.Mean()
	want := float64(k) * interarrival // k/λ
	if math.Abs(held-want) > 3 {
		t.Fatalf("effective delay %v, want ≈ k/λ = %v", held, want)
	}
}

// TestLowLoadPreservesDistribution: at low load (1/λ ≫ 1/µ) preemptions are
// rare and realised delays match the sampled distribution's mean.
func TestLowLoadPreservesDistribution(t *testing.T) {
	sched := sim.NewScheduler()
	r, err := New(Config{
		Scheduler: sched,
		Forward:   func(*packet.Packet, bool) {},
		Capacity:  10,
		Delay:     expDist(t, 30),
		Source:    rng.New(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		i := i
		sched.At(float64(i)*100, func() { // λ = 0.01 → ρ = 0.3 ≪ k
			r.OnPacket(sched.Now(), packet.New(1, uint32(i), sched.Now()))
		})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if rate := s.PreemptionRate(); rate > 0.001 {
		t.Fatalf("preemption rate at low load = %v", rate)
	}
	if math.Abs(s.HeldDelays.Mean()-30) > 2 {
		t.Fatalf("held delay mean %v, want ≈ 30", s.HeldDelays.Mean())
	}
}

func TestVictimPolicyConfigurable(t *testing.T) {
	sched := sim.NewScheduler()
	r, err := New(Config{
		Scheduler: sched,
		Forward:   func(*packet.Packet, bool) {},
		Delay:     expDist(t, 30),
		Victim:    buffer.Oldest{},
		Source:    rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestRateControllerValidation(t *testing.T) {
	if _, err := NewRateController(0, 0.1, 0.1, 30); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewRateController(10, 0.1, 0, 30); err == nil {
		t.Fatal("smoothing=0 accepted")
	}
	if _, err := NewRateController(10, 0.1, 1.5, 30); err == nil {
		t.Fatal("smoothing>1 accepted")
	}
	if _, err := NewRateController(10, 0.1, 0.1, 0); err == nil {
		t.Fatal("maxMean=0 accepted")
	}
	if _, err := NewRateController(10, 0, 0.1, 30); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestRateControllerEstimatesRate(t *testing.T) {
	c, err := NewRateController(10, 0.1, 0.2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rate() != 0 {
		t.Fatal("rate non-zero before observations")
	}
	if c.MeanDelay() != 1000 {
		t.Fatalf("pre-observation mean delay = %v, want maxMean", c.MeanDelay())
	}
	for i := 0; i <= 100; i++ {
		c.Observe(float64(i) * 4) // steady interarrival 4 → λ = 0.25
	}
	if math.Abs(c.Rate()-0.25) > 0.01 {
		t.Fatalf("estimated rate = %v, want 0.25", c.Rate())
	}
}

func TestRateControllerPlansErlangTarget(t *testing.T) {
	const k, alpha = 10, 0.1
	c, err := NewRateController(k, alpha, 0.2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 200; i++ {
		c.Observe(float64(i) * 2) // λ = 0.5
	}
	mean := c.MeanDelay()
	// Planned utilization λ·mean must satisfy E(ρ, k) = α.
	loss, err := queueing.ErlangLoss(0.5*mean, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-alpha) > 0.005 {
		t.Fatalf("planned loss = %v, want %v", loss, alpha)
	}
}

func TestRateControllerAdaptsToLoadIncrease(t *testing.T) {
	c, err := NewRateController(10, 0.1, 0.3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 100; i++ {
		now += 10
		c.Observe(now)
	}
	slowMean := c.MeanDelay()
	for i := 0; i < 300; i++ {
		now += 1
		c.Observe(now)
	}
	fastMean := c.MeanDelay()
	if fastMean >= slowMean {
		t.Fatalf("mean delay did not shrink as load grew: %v → %v", slowMean, fastMean)
	}
	if ratio := slowMean / fastMean; math.Abs(ratio-10) > 1.5 {
		t.Fatalf("delay ratio = %v, want ≈ 10 (linear in λ)", ratio)
	}
}

func TestRateControllerCapsAtMaxMean(t *testing.T) {
	c, err := NewRateController(10, 0.1, 0.2, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 50; i++ {
		c.Observe(float64(i) * 1e6) // nearly idle
	}
	if got := c.MeanDelay(); got != 30 {
		t.Fatalf("idle mean delay = %v, want cap 30", got)
	}
}

func TestRCADWithControllerAdjustsDelay(t *testing.T) {
	sched := sim.NewScheduler()
	ctrl, err := NewRateController(10, 0.1, 0.3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{
		Scheduler:  sched,
		Forward:    func(*packet.Packet, bool) {},
		Capacity:   10,
		Delay:      expDist(t, 1000),
		Source:     rng.New(6),
		Controller: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		i := i
		sched.At(float64(i)*2, func() {
			r.OnPacket(sched.Now(), packet.New(1, uint32(i), sched.Now()))
		})
	}
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	// Controller plans ρ*/λ with ρ* ≈ 7.5 for (k=10, α=0.1) → mean ≈ 15,
	// far below the 1000 cap. The Erlang loss formula models blocking, not
	// preemption (a preempted victim is the shortest-remaining packet, which
	// biases the buffer toward longer-remaining ones), so the achieved
	// preemption rate sits somewhat above the design target — the paper uses
	// the formula as the same kind of approximation. Require the right order
	// of magnitude rather than exact α.
	if got := r.MeanDelay(); got > 20 {
		t.Fatalf("controlled mean delay = %v, want ≈ 15", got)
	}
	if rate := r.Stats().PreemptionRate(); rate < 0.03 || rate > 0.3 {
		t.Fatalf("preemption rate with controller = %v, want within [0.03, 0.3] of target 0.1", rate)
	}
}

func TestPlanTree(t *testing.T) {
	agg := map[packet.NodeID]float64{
		0: 1.0, // sink: excluded
		1: 1.0, // near sink: heavy
		5: 0.1, // leaf: light
		7: 0,   // idle node
	}
	plan, err := PlanTree(agg, 10, 0.1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan[0]; ok {
		t.Fatal("sink received a delay plan")
	}
	if plan[1] >= plan[5] {
		t.Fatalf("heavier node got longer delay: node1=%v node5=%v", plan[1], plan[5])
	}
	if plan[7] != 500 {
		t.Fatalf("idle node plan = %v, want maxMean", plan[7])
	}
	// Each planned mean must satisfy the Erlang target.
	for _, id := range []packet.NodeID{1, 5} {
		loss, err := queueing.ErlangLoss(agg[id]*plan[id], 10)
		if err != nil {
			t.Fatal(err)
		}
		if plan[id] < 500 && math.Abs(loss-0.1) > 1e-6 {
			t.Fatalf("node %d: loss %v, want 0.1", id, loss)
		}
	}
}

func TestPlanTreeValidation(t *testing.T) {
	if _, err := PlanTree(nil, 0, 0.1, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := PlanTree(nil, 10, 0.1, -1); err == nil {
		t.Fatal("negative maxMean accepted")
	}
	if _, err := PlanTree(nil, 10, 2, 10); err == nil {
		t.Fatal("alpha=2 accepted")
	}
}

// Property: the controller's planned mean delay is always positive, finite
// and capped for arbitrary arrival patterns.
func TestControllerPlanProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		c, err := NewRateController(10, 0.1, 0.3, 100)
		if err != nil {
			return false
		}
		now := 0.0
		for _, g := range gaps {
			now += float64(g%50) + 0.1
			c.Observe(now)
		}
		m := c.MeanDelay()
		return m > 0 && m <= 100 && !math.IsNaN(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
