package report

import (
	"errors"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func sample() *Table {
	t := &Table{
		Title:     "Figure 2(a): MSE vs interarrival",
		RowHeader: "1/λ",
		Columns:   []string{"NoDelay", "Unlimited", "RCAD"},
		Notes:     []string{"seed=42", "1000 packets per source"},
	}
	t.AddRow("2", 0.1, 13500, 1200000)
	t.AddRow("20", 0.1, 13400, 15000)
	return t
}

func TestValidate(t *testing.T) {
	tab := sample()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	tab.AddRow("bad", 1)
	if err := tab.Validate(); !errors.Is(err, ErrShape) {
		t.Fatalf("short row: %v, want ErrShape", err)
	}
}

func TestRenderContainsEverything(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 2(a)", "1/λ", "NoDelay", "Unlimited", "RCAD",
		"13500", "# seed=42", "# 1000 packets per source",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	// 1.2e6 renders in scientific notation.
	if !strings.Contains(out, "1.200e+06") {
		t.Fatalf("large value not in scientific notation:\n%s", out)
	}
}

func TestRenderAlignment(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	// Title, underline, header, separator, 2 data rows, 2 notes.
	if len(lines) != 8 {
		t.Fatalf("got %d lines:\n%s", len(lines), b.String())
	}
	// Header and data rows all have the same rendered width in runes (the
	// "λ" header is multibyte, so byte lengths differ legitimately).
	header := utf8.RuneCountInString(lines[2])
	for _, l := range lines[4:6] {
		if got := utf8.RuneCountInString(l); got != header {
			t.Fatalf("row width %d != header width %d:\n%s", got, header, b.String())
		}
	}
}

func TestRenderRejectsInvalid(t *testing.T) {
	tab := sample()
	tab.AddRow("bad", 1, 2)
	var b strings.Builder
	if err := tab.Render(&b); !errors.Is(err, ErrShape) {
		t.Fatalf("render of invalid table: %v", err)
	}
}

func TestRenderCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if lines[0] != "1/λ,NoDelay,Unlimited,RCAD" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "2,0.1,13500,1.2e+06" {
		t.Fatalf("csv row = %q", lines[1])
	}
	if lines[3] != "# seed=42" {
		t.Fatalf("csv note = %q", lines[3])
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{
		RowHeader: "metric, with comma",
		Columns:   []string{`quoted "col"`},
	}
	tab.AddRow("r1", 1)
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"metric, with comma"`) {
		t.Fatalf("comma header not quoted: %s", b.String())
	}
	if !strings.Contains(b.String(), `"quoted ""col"""`) {
		t.Fatalf("quotes not escaped: %s", b.String())
	}
}

func TestFormatValue(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{1.5, "1.5"},
		{13500.25, "1.35e+04"},
		{1.2e6, "1.200e+06"},
		{0.0005, "5.000e-04"},
	}
	for _, tc := range tests {
		if got := formatValue(tc.in); got != tc.want {
			t.Fatalf("formatValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFormatValueSpecials(t *testing.T) {
	if got := formatValue(math.NaN()); got != "-" {
		t.Fatalf("formatValue(NaN) = %q, want -", got)
	}
	if got := formatValue(math.Inf(1)); got != "+inf" {
		t.Fatalf("formatValue(+Inf) = %q", got)
	}
	if got := formatValue(math.Inf(-1)); got != "-inf" {
		t.Fatalf("formatValue(-Inf) = %q", got)
	}
}
