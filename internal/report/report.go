// Package report renders experiment results as aligned ASCII tables and
// CSV — the textual equivalents of the paper's figures.
package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"unicode/utf8"
)

// Row is one table row: a label (e.g. the packet interarrival time of a
// sweep point) and one value per column.
type Row struct {
	// Label identifies the row, shown in the first column.
	Label string
	// Values holds one number per value column.
	Values []float64
}

// Table is a rendered experiment result.
type Table struct {
	// Title heads the rendering.
	Title string
	// RowHeader names the label column (e.g. "1/λ").
	RowHeader string
	// Columns names the value columns.
	Columns []string
	// Rows holds the data.
	Rows []Row
	// Notes are free-form lines appended after the table (substitutions,
	// expected shapes, parameter records).
	Notes []string
}

// ErrShape is returned when a table's rows do not match its column count.
var ErrShape = errors.New("report: row width does not match column count")

// Validate checks that every row has exactly one value per column.
func (t *Table) Validate() error {
	for i, r := range t.Rows {
		if len(r.Values) != len(t.Columns) {
			return fmt.Errorf("%w: row %d (%q) has %d values for %d columns",
				ErrShape, i, r.Label, len(r.Values), len(t.Columns))
		}
	}
	return nil
}

// AddRow appends a row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// formatValue renders a float compactly: integers without decimals, large
// magnitudes in scientific notation, everything else with 4 significant
// digits.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == 0:
		return "0"
	case v >= 1e6 || v <= -1e6 || (v < 1e-3 && v > -1e-3):
		return fmt.Sprintf("%.3e", v)
	case v == float64(int64(v)):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	headers := append([]string{t.RowHeader}, t.Columns...)
	cells := make([][]string, 0, len(t.Rows)+1)
	cells = append(cells, headers)
	for _, r := range t.Rows {
		row := make([]string, 0, len(headers))
		row = append(row, r.Label)
		for _, v := range r.Values {
			row = append(row, formatValue(v))
		}
		cells = append(cells, row)
	}

	widths := make([]int, len(headers))
	for _, row := range cells {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			// Pad by rune count so multibyte headers (e.g. "1/λ") align.
			if pad := widths[i] - utf8.RuneCountInString(c); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(cells[0])
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range cells[1:] {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("# ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (label column first). Notes become
// trailing comment lines prefixed with '#'.
func (t *Table) RenderCSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(csvEscape(t.RowHeader))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Label))
		for _, v := range r.Values {
			b.WriteByte(',')
			b.WriteString(fmt.Sprintf("%g", v))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		b.WriteString("# ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
