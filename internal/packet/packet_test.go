package packet

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/seal"
)

func TestHeaderRoundTrip(t *testing.T) {
	tests := []Header{
		{},
		{PrevHop: 1, Origin: 2, RoutingSeq: 3, HopCount: 4},
		{PrevHop: 65535, Origin: 65534, RoutingSeq: math.MaxUint32, HopCount: 255},
	}
	for _, h := range tests {
		data, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %+v: %v", h, err)
		}
		var got Header
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v want %+v", got, h)
		}
	}
}

func TestHeaderUnmarshalShort(t *testing.T) {
	var h Header
	if err := h.UnmarshalBinary(make([]byte, 8)); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("short header: %v, want ErrShortHeader", err)
	}
}

func TestReadingRoundTrip(t *testing.T) {
	tests := []Reading{
		{},
		{Value: 21.5, AppSeq: 7, CreatedAt: 1234.25},
		{Value: -math.MaxFloat64, AppSeq: math.MaxUint32, CreatedAt: math.Inf(1)},
	}
	for _, r := range tests {
		data, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %+v: %v", r, err)
		}
		var got Reading
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
	}
}

func TestReadingUnmarshalShort(t *testing.T) {
	var r Reading
	if err := r.UnmarshalBinary(make([]byte, readingWireSize-1)); !errors.Is(err, ErrShortReading) {
		t.Fatalf("short reading: %v, want ErrShortReading", err)
	}
}

func TestNewPacketInitialState(t *testing.T) {
	p := New(42, 7, 123.5)
	if p.Header.Origin != 42 || p.Header.PrevHop != 42 {
		t.Fatalf("origin/prevhop = %v/%v, want 42/42", p.Header.Origin, p.Header.PrevHop)
	}
	if p.Header.HopCount != 0 {
		t.Fatalf("new packet hop count = %d, want 0", p.Header.HopCount)
	}
	if p.Truth.CreatedAt != 123.5 || p.Truth.Flow != 42 || p.Truth.Seq != 7 {
		t.Fatalf("truth = %+v", p.Truth)
	}
}

func TestForwardAdvancesHeader(t *testing.T) {
	p := New(5, 0, 0)
	path := []NodeID{5, 9, 13, 0}
	for i, hop := range path[:len(path)-1] {
		p.Forward(hop)
		if p.Header.PrevHop != hop {
			t.Fatalf("after hop %d: prevhop = %v, want %v", i, p.Header.PrevHop, hop)
		}
		if int(p.Header.HopCount) != i+1 {
			t.Fatalf("after hop %d: hopcount = %d, want %d", i, p.Header.HopCount, i+1)
		}
	}
}

func TestForwardSaturatesHopCount(t *testing.T) {
	p := New(1, 0, 0)
	for i := 0; i < 300; i++ {
		p.Forward(2)
	}
	if p.Header.HopCount != 255 {
		t.Fatalf("hop count = %d, want saturation at 255", p.Header.HopCount)
	}
}

func TestSealOpenReading(t *testing.T) {
	k := seal.NewKeyring([]byte("network key"))
	p := New(3, 11, 77.25)
	want := Reading{Value: 98.6, AppSeq: 11, CreatedAt: 77.25}
	if err := p.SealReading(k, want); err != nil {
		t.Fatal(err)
	}
	got, err := p.OpenReading(k)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("opened reading %+v, want %+v", got, want)
	}
}

func TestOpenReadingWrongKey(t *testing.T) {
	k1 := seal.NewKeyring([]byte("real key"))
	k2 := seal.NewKeyring([]byte("adversary guess"))
	p := New(3, 0, 50)
	if err := p.SealReading(k1, Reading{CreatedAt: 50}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenReading(k2); err == nil {
		t.Fatal("OpenReading with wrong key succeeded")
	}
}

func TestSealedPayloadHidesTimestamp(t *testing.T) {
	k := seal.NewKeyring([]byte("network key"))
	r := Reading{Value: 1, AppSeq: 2, CreatedAt: 424242.0}
	plainBytes, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	p := New(1, 2, r.CreatedAt)
	if err := p.SealReading(k, r); err != nil {
		t.Fatal(err)
	}
	// The timestamp bytes must not appear in the sealed payload.
	tsBytes := plainBytes[12:]
	for i := 0; i+len(tsBytes) <= len(p.Sealed); i++ {
		match := true
		for j := range tsBytes {
			if p.Sealed[i+j] != tsBytes[j] {
				match = false
				break
			}
		}
		if match {
			t.Fatal("sealed payload leaks raw timestamp bytes")
		}
	}
}

// Property: header round trip is the identity for arbitrary field values.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(prev, origin uint16, seq uint32, hops uint8) bool {
		h := Header{PrevHop: NodeID(prev), Origin: NodeID(origin), RoutingSeq: seq, HopCount: hops}
		data, err := h.MarshalBinary()
		if err != nil {
			return false
		}
		var got Header
		return got.UnmarshalBinary(data) == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: reading round trip preserves all finite values.
func TestReadingRoundTripProperty(t *testing.T) {
	f := func(value float64, seq uint32, created float64) bool {
		r := Reading{Value: value, AppSeq: seq, CreatedAt: created}
		data, err := r.MarshalBinary()
		if err != nil {
			return false
		}
		var got Reading
		if got.UnmarshalBinary(data) != nil {
			return false
		}
		// NaN != NaN, so compare bit patterns.
		return math.Float64bits(got.Value) == math.Float64bits(r.Value) &&
			got.AppSeq == r.AppSeq &&
			math.Float64bits(got.CreatedAt) == math.Float64bits(r.CreatedAt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
