package packet

import "testing"

// FuzzHeaderUnmarshal feeds arbitrary bytes to the header decoder: it must
// never panic, and whenever it succeeds, re-encoding must reproduce the
// first headerWireSize bytes.
func FuzzHeaderUnmarshal(f *testing.F) {
	valid, err := (Header{PrevHop: 1, Origin: 2, RoutingSeq: 3, HopCount: 4}).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, headerWireSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		if err := h.UnmarshalBinary(data); err != nil {
			if len(data) >= headerWireSize {
				t.Fatalf("decoder rejected %d bytes: %v", len(data), err)
			}
			return
		}
		out, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("byte %d: re-encode %x != input %x", i, out[i], data[i])
			}
		}
	})
}

// FuzzReadingUnmarshal is the payload-decoder analogue.
func FuzzReadingUnmarshal(f *testing.F) {
	valid, err := (Reading{Value: 1.5, AppSeq: 9, CreatedAt: 100}).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Reading
		if err := r.UnmarshalBinary(data); err != nil {
			if len(data) >= readingWireSize {
				t.Fatalf("decoder rejected %d bytes: %v", len(data), err)
			}
			return
		}
		out, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("byte %d differs after round trip", i)
			}
		}
	})
}
