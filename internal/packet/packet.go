// Package packet defines the sensor-network packet model from §2 of the
// paper.
//
// A packet has two parts:
//
//   - Header: the cleartext routing header. Field-for-field it mirrors the
//     TinyOS 1.1.7 MultiHop.h header the paper cites — previous hop, origin,
//     routing-layer sequence number, and hop count. The adversary can read
//     all of it.
//   - Sealed payload: the application-level Reading (sensor value,
//     application sequence number, creation timestamp), encrypted and
//     authenticated by package seal. Only the sink's keyring can open it.
//
// The Packet struct additionally carries simulator-only ground truth (the
// true creation time and flow identity) used for scoring the adversary's
// estimates. Adversary implementations never receive a Packet; they receive
// an adversary.Observation holding only the header and the arrival time.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"tempriv/internal/seal"
)

// NodeID identifies a sensor node in a deployment. The sink is conventionally
// node 0 (see package topology).
type NodeID uint16

// String formats the ID for logs and reports.
func (id NodeID) String() string { return fmt.Sprintf("n%d", uint16(id)) }

// Header is the cleartext routing header, readable by the adversary
// (§2 "Cleartext Headers").
type Header struct {
	// PrevHop is the node that transmitted this packet on the current hop.
	PrevHop NodeID
	// Origin is the node that generated the packet; the routing layer uses
	// it to distinguish generated from forwarded packets.
	Origin NodeID
	// RoutingSeq is the routing-layer sequence number used for loop
	// avoidance. It is not flow-specific and, per the paper, does not help
	// the adversary estimate creation times.
	RoutingSeq uint32
	// HopCount is the number of hops the packet has traversed so far. At
	// the sink it equals the length of the routing path, which is how the
	// adversary learns the hop count h_i of flow i.
	HopCount uint8
}

const headerWireSize = 2 + 2 + 4 + 1

// MarshalBinary encodes the header in its on-air representation.
func (h Header) MarshalBinary() ([]byte, error) {
	buf := make([]byte, headerWireSize)
	binary.BigEndian.PutUint16(buf[0:], uint16(h.PrevHop))
	binary.BigEndian.PutUint16(buf[2:], uint16(h.Origin))
	binary.BigEndian.PutUint32(buf[4:], h.RoutingSeq)
	buf[8] = h.HopCount
	return buf, nil
}

// ErrShortHeader is returned by UnmarshalBinary when the input is shorter
// than the wire format.
var ErrShortHeader = errors.New("packet: header too short")

// UnmarshalBinary decodes a header from its on-air representation.
func (h *Header) UnmarshalBinary(data []byte) error {
	if len(data) < headerWireSize {
		return ErrShortHeader
	}
	h.PrevHop = NodeID(binary.BigEndian.Uint16(data[0:]))
	h.Origin = NodeID(binary.BigEndian.Uint16(data[2:]))
	h.RoutingSeq = binary.BigEndian.Uint32(data[4:])
	h.HopCount = data[8]
	return nil
}

// Reading is the application-level payload: what the sensor observed and
// when. It is always transmitted sealed.
type Reading struct {
	// Value is the sensed measurement.
	Value float64
	// AppSeq is the application-level sequence number, hidden from the
	// adversary so arrival order cannot be mapped back to creation order
	// (§3.2: the adversary observes only the sorted arrival process).
	AppSeq uint32
	// CreatedAt is the creation timestamp in simulated time units — the
	// quantity whose privacy the whole system defends.
	CreatedAt float64
}

const readingWireSize = 8 + 4 + 8

// ErrShortReading is returned when decoding a reading from too few bytes.
var ErrShortReading = errors.New("packet: reading too short")

// MarshalBinary encodes the reading for sealing.
func (r Reading) MarshalBinary() ([]byte, error) {
	buf := make([]byte, readingWireSize)
	binary.BigEndian.PutUint64(buf[0:], math.Float64bits(r.Value))
	binary.BigEndian.PutUint32(buf[8:], r.AppSeq)
	binary.BigEndian.PutUint64(buf[12:], math.Float64bits(r.CreatedAt))
	return buf, nil
}

// UnmarshalBinary decodes a reading produced by MarshalBinary.
func (r *Reading) UnmarshalBinary(data []byte) error {
	if len(data) < readingWireSize {
		return ErrShortReading
	}
	r.Value = math.Float64frombits(binary.BigEndian.Uint64(data[0:]))
	r.AppSeq = binary.BigEndian.Uint32(data[8:])
	r.CreatedAt = math.Float64frombits(binary.BigEndian.Uint64(data[12:]))
	return nil
}

// Truth is simulator-only ground truth attached to a packet for scoring and
// metrics. It is never serialised on the wire and must not be read by
// adversary implementations.
type Truth struct {
	// CreatedAt is the true creation time.
	CreatedAt float64
	// Flow identifies the source flow (equal to the origin node ID).
	Flow NodeID
	// Seq is the per-flow packet index, 0-based.
	Seq uint32
}

// Packet is a sensor message in flight.
type Packet struct {
	Header Header
	// Sealed is the encrypted Reading (nil when the simulation runs with
	// sealing disabled for speed; the header/ground-truth split is enforced
	// either way).
	Sealed []byte
	// Truth is simulator-only ground truth; see Truth.
	Truth Truth
}

// New creates a packet originating at origin with the given per-flow
// sequence number and creation time. The header starts with HopCount 0 and
// PrevHop equal to the origin; Forward advances both.
func New(origin NodeID, seq uint32, createdAt float64) *Packet {
	return &Packet{
		Header: Header{
			PrevHop:    origin,
			Origin:     origin,
			RoutingSeq: seq,
		},
		Truth: Truth{CreatedAt: createdAt, Flow: origin, Seq: seq},
	}
}

// SealReading encrypts r into the packet using the network keyring.
func (p *Packet) SealReading(k *seal.Keyring, r Reading) error {
	plain, err := r.MarshalBinary()
	if err != nil {
		return fmt.Errorf("packet: marshaling reading: %w", err)
	}
	sealed, err := k.Seal(plain)
	if err != nil {
		return fmt.Errorf("packet: sealing reading: %w", err)
	}
	p.Sealed = sealed
	return nil
}

// OpenReading decrypts the packet's sealed payload with the sink's keyring.
func (p *Packet) OpenReading(k *seal.Keyring) (Reading, error) {
	plain, err := k.Open(p.Sealed)
	if err != nil {
		return Reading{}, fmt.Errorf("packet: opening reading: %w", err)
	}
	var r Reading
	if err := r.UnmarshalBinary(plain); err != nil {
		return Reading{}, fmt.Errorf("packet: decoding reading: %w", err)
	}
	return r, nil
}

// Clone returns an independent copy of the packet. The link layer uses it
// when a lost acknowledgement forces a retransmission of a frame that was in
// fact delivered: the duplicate must advance its own header without
// corrupting the delivered copy's. The sealed payload, immutable once
// written, is shared.
func (p *Packet) Clone() *Packet {
	c := *p
	return &c
}

// Forward updates the cleartext header as node from transmits the packet on
// its next hop: the previous-hop field becomes from and the hop count
// increments. Hop counts saturate at 255 rather than wrapping; paths that
// long do not occur in any supported topology.
func (p *Packet) Forward(from NodeID) {
	p.Header.PrevHop = from
	if p.Header.HopCount < math.MaxUint8 {
		p.Header.HopCount++
	}
}
