// Package routing computes sink-rooted routing trees over a topology.
//
// The paper's network model uses TinyOS-style multihop tree routing (§2):
// every node forwards toward the sink along a min-hop parent. BuildTree runs
// a breadth-first search from the sink with deterministic tie-breaking
// (smallest node ID wins), so a given topology always yields the same tree —
// a requirement for reproducible experiments. BuildTreeAvoiding is the same
// search excluding a set of dead nodes; the network layer uses it to repair
// routes after an injected node failure.
//
// The Table also exposes the load-propagation helper AggregateRates, which
// implements §4's Poisson-superposition argument: the packet rate seen by a
// node is the sum of the rates of every source whose routing path passes
// through it. The Erlang-loss planner in package core consumes this to pick
// per-node delay parameters.
package routing

import (
	"errors"
	"fmt"
	"sort"

	"tempriv/internal/packet"
	"tempriv/internal/topology"
)

// ErrUnreachable is returned when a node has no path to the sink.
var ErrUnreachable = errors.New("routing: node cannot reach the sink")

// Table is a sink-rooted routing tree: every reachable node has a parent one
// hop closer to the sink.
type Table struct {
	parent map[packet.NodeID]packet.NodeID
	hops   map[packet.NodeID]int
}

// BuildTree computes the min-hop routing tree of topo by BFS from the sink.
// Ties between equal-distance parents break toward the smaller node ID. It
// returns an error if any placed node cannot reach the sink, since a
// disconnected deployment cannot deliver its readings.
func BuildTree(topo *topology.Topology) (*Table, error) {
	t := BuildTreeAvoiding(topo, nil)
	if len(t.hops) != topo.NodeCount() {
		return nil, fmt.Errorf("%w: %d of %d nodes unreachable",
			ErrUnreachable, topo.NodeCount()-len(t.hops), topo.NodeCount())
	}
	return t, nil
}

// BuildTreeAvoiding computes the min-hop routing tree of topo by BFS from
// the sink, skipping every node marked true in avoid — the route-repair
// primitive: rebuilding the tree after a failure excludes the dead nodes.
// Tie-breaking is the same as BuildTree (smaller node ID wins), so repair
// is deterministic. Unlike BuildTree it tolerates unreachable survivors:
// a node whose every path to the sink crosses an avoided node is simply
// absent from the returned table (NextHop/HopCount report !ok for it).
func BuildTreeAvoiding(topo *topology.Topology, avoid map[packet.NodeID]bool) *Table {
	t := &Table{
		parent: make(map[packet.NodeID]packet.NodeID),
		hops:   map[packet.NodeID]int{topology.Sink: 0},
	}
	frontier := []packet.NodeID{topology.Sink}
	for len(frontier) > 0 {
		// Neighbors() is sorted and the frontier is processed in ID order,
		// so parent assignment is deterministic.
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		var next []packet.NodeID
		for _, n := range frontier {
			for _, m := range topo.Neighbors(n) {
				if avoid[m] {
					continue
				}
				if _, seen := t.hops[m]; seen {
					continue
				}
				t.hops[m] = t.hops[n] + 1
				t.parent[m] = n
				next = append(next, m)
			}
		}
		frontier = next
	}
	return t
}

// NextHop returns the parent of n on the path to the sink. ok is false for
// the sink itself (which has no parent) and for unknown nodes.
func (t *Table) NextHop(n packet.NodeID) (packet.NodeID, bool) {
	p, ok := t.parent[n]
	return p, ok
}

// HopCount returns the number of hops from n to the sink, and whether n is
// in the tree. The sink's hop count is 0.
func (t *Table) HopCount(n packet.NodeID) (int, bool) {
	h, ok := t.hops[n]
	return h, ok
}

// Path returns the full routing path from n to the sink, inclusive of both
// endpoints. For the sink it returns [sink].
func (t *Table) Path(n packet.NodeID) ([]packet.NodeID, error) {
	if _, ok := t.hops[n]; !ok {
		return nil, fmt.Errorf("routing: %v not in tree", n)
	}
	path := []packet.NodeID{n}
	for n != topology.Sink {
		n = t.parent[n]
		path = append(path, n)
	}
	return path, nil
}

// Nodes returns every node in the tree, sorted ascending.
func (t *Table) Nodes() []packet.NodeID {
	out := make([]packet.NodeID, 0, len(t.hops))
	for id := range t.hops {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns the nodes whose parent is n, sorted ascending.
func (t *Table) Children(n packet.NodeID) []packet.NodeID {
	var out []packet.NodeID
	for child, parent := range t.parent {
		if parent == n {
			out = append(out, child)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AggregateRates propagates per-source packet rates down the routing tree
// and returns, for every node, the total packet rate that transits or
// originates at that node. This realises §4's superposition property: node
// i's arrival process aggregates the flows of all its routing descendants.
// Sources not present in the tree cause an error.
func (t *Table) AggregateRates(sourceRates map[packet.NodeID]float64) (map[packet.NodeID]float64, error) {
	agg := make(map[packet.NodeID]float64, len(t.hops))
	for src, rate := range sourceRates {
		if rate < 0 {
			return nil, fmt.Errorf("routing: negative rate %v for source %v", rate, src)
		}
		path, err := t.Path(src)
		if err != nil {
			return nil, fmt.Errorf("routing: aggregating rates: %w", err)
		}
		for _, n := range path {
			agg[n] += rate
		}
	}
	return agg, nil
}

// MaxHops returns the largest hop count in the tree (the network depth).
func (t *Table) MaxHops() int {
	maxH := 0
	for _, h := range t.hops {
		if h > maxH {
			maxH = h
		}
	}
	return maxH
}
