package routing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/packet"
	"tempriv/internal/topology"
)

func mustLine(t *testing.T, hops int) *topology.Topology {
	t.Helper()
	topo, err := topology.Line(hops)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuildTreeLine(t *testing.T) {
	topo := mustLine(t, 4)
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		id := packet.NodeID(i)
		next, ok := table.NextHop(id)
		if !ok || next != packet.NodeID(i-1) {
			t.Fatalf("NextHop(%d) = %v,%v, want %d", i, next, ok, i-1)
		}
		h, ok := table.HopCount(id)
		if !ok || h != i {
			t.Fatalf("HopCount(%d) = %d,%v, want %d", i, h, ok, i)
		}
	}
	if _, ok := table.NextHop(topology.Sink); ok {
		t.Fatal("sink has a next hop")
	}
	if h, ok := table.HopCount(topology.Sink); !ok || h != 0 {
		t.Fatalf("sink hop count = %d,%v", h, ok)
	}
}

func TestBuildTreeGridDistances(t *testing.T) {
	topo, err := topology.Grid(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Min-hop distance on a 4-neighbour grid is the Manhattan distance to
	// the sink corner.
	for y := 0; y < 5; y++ {
		for x := 0; x < 6; x++ {
			id := topology.GridID(6, x, y)
			h, ok := table.HopCount(id)
			if !ok || h != x+y {
				t.Fatalf("grid (%d,%d) hop count = %d,%v, want %d", x, y, h, ok, x+y)
			}
		}
	}
}

func TestBuildTreeDeterministicTieBreak(t *testing.T) {
	// Node 3 can reach the sink through 1 or 2; BFS must pick the smaller
	// parent ID deterministically.
	topo := topology.New()
	topo.AddNode(1, topology.Position{})
	topo.AddNode(2, topology.Position{})
	topo.AddNode(3, topology.Position{})
	for _, link := range [][2]packet.NodeID{{topology.Sink, 1}, {topology.Sink, 2}, {1, 3}, {2, 3}} {
		if err := topo.AddLink(link[0], link[1]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		table, err := BuildTree(topo)
		if err != nil {
			t.Fatal(err)
		}
		next, ok := table.NextHop(3)
		if !ok || next != 1 {
			t.Fatalf("run %d: NextHop(3) = %v, want 1 (deterministic tie-break)", i, next)
		}
	}
}

func TestBuildTreeUnreachable(t *testing.T) {
	topo := topology.New()
	topo.AddNode(1, topology.Position{})
	topo.AddNode(2, topology.Position{})
	if err := topo.AddLink(topology.Sink, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildTree(topo); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("disconnected topology: %v, want ErrUnreachable", err)
	}
}

func TestPath(t *testing.T) {
	topo := mustLine(t, 3)
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	path, err := table.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []packet.NodeID{3, 2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	sinkPath, err := table.Path(topology.Sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinkPath) != 1 || sinkPath[0] != topology.Sink {
		t.Fatalf("Path(sink) = %v", sinkPath)
	}
	if _, err := table.Path(99); err == nil {
		t.Fatal("Path of unknown node succeeded")
	}
}

func TestChildren(t *testing.T) {
	topo, sources, err := topology.MergeTree([]int{4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Trunk head (2 hops from sink) should have both private segments as
	// descendants; with hop count 4 and trunk 2 each flow has 1 private
	// relay, so the trunk head has exactly 2 children.
	trunkHead := packet.NodeID(2)
	if h, _ := table.HopCount(trunkHead); h != 2 {
		t.Fatalf("node 2 is not the trunk head (hop count %d)", h)
	}
	kids := table.Children(trunkHead)
	if len(kids) != 2 {
		t.Fatalf("trunk head children = %v, want 2 children", kids)
	}
	_ = sources
}

func TestFigure1PathsAndHopCounts(t *testing.T) {
	topo, sources, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range topology.Figure1HopCounts {
		h, ok := table.HopCount(sources[i])
		if !ok || h != want {
			t.Fatalf("S%d hop count = %d, want %d", i+1, h, want)
		}
		path, err := table.Path(sources[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != want+1 {
			t.Fatalf("S%d path length = %d, want %d", i+1, len(path), want+1)
		}
	}
}

func TestAggregateRatesLine(t *testing.T) {
	topo := mustLine(t, 3)
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := table.AggregateRates(map[packet.NodeID]float64{3: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Every node on the path carries the single flow's rate.
	for _, id := range []packet.NodeID{0, 1, 2, 3} {
		if math.Abs(agg[id]-0.5) > 1e-12 {
			t.Fatalf("agg[%v] = %v, want 0.5", id, agg[id])
		}
	}
}

func TestAggregateRatesSuperposition(t *testing.T) {
	topo, sources, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	rates := make(map[packet.NodeID]float64)
	for i, src := range sources {
		rates[src] = float64(i+1) * 0.1
	}
	agg, err := table.AggregateRates(rates)
	if err != nil {
		t.Fatal(err)
	}
	// The sink and the shared trunk carry the sum of all four flows (§4
	// superposition); each source carries only its own.
	wantTotal := 0.1 + 0.2 + 0.3 + 0.4
	if math.Abs(agg[topology.Sink]-wantTotal) > 1e-12 {
		t.Fatalf("sink aggregate = %v, want %v", agg[topology.Sink], wantTotal)
	}
	for i, src := range sources {
		if math.Abs(agg[src]-float64(i+1)*0.1) > 1e-12 {
			t.Fatalf("source %d aggregate = %v", i, agg[src])
		}
	}
	// Trunk nodes are IDs 1..3 by MergeTree construction.
	for trunk := packet.NodeID(1); trunk <= 3; trunk++ {
		if math.Abs(agg[trunk]-wantTotal) > 1e-12 {
			t.Fatalf("trunk %v aggregate = %v, want %v", trunk, agg[trunk], wantTotal)
		}
	}
}

func TestAggregateRatesErrors(t *testing.T) {
	topo := mustLine(t, 2)
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := table.AggregateRates(map[packet.NodeID]float64{9: 1}); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := table.AggregateRates(map[packet.NodeID]float64{2: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestMaxHops(t *testing.T) {
	topo, _, err := topology.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	if got := table.MaxHops(); got != 22 {
		t.Fatalf("MaxHops = %d, want 22 (flow S2)", got)
	}
}

func TestNodesSorted(t *testing.T) {
	topo := mustLine(t, 5)
	table, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	nodes := table.Nodes()
	if len(nodes) != 6 {
		t.Fatalf("Nodes() length = %d, want 6", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Nodes() not sorted: %v", nodes)
		}
	}
}

// Property: on any line topology, the path from the source has length
// hops+1 and hop counts decrease by one per step.
func TestLinePathProperty(t *testing.T) {
	f := func(raw uint8) bool {
		hops := int(raw%30) + 1
		topo, err := topology.Line(hops)
		if err != nil {
			return false
		}
		table, err := BuildTree(topo)
		if err != nil {
			return false
		}
		path, err := table.Path(packet.NodeID(hops))
		if err != nil || len(path) != hops+1 {
			return false
		}
		for i, n := range path {
			h, ok := table.HopCount(n)
			if !ok || h != hops-i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTreeAvoidingGrid(t *testing.T) {
	topo, err := topology.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	avoid := map[packet.NodeID]bool{
		topology.GridID(4, 1, 0): true, // n1
		topology.GridID(4, 1, 1): true, // n5
	}
	table := BuildTreeAvoiding(topo, avoid)

	// Avoided nodes are absent from the tree.
	for id := range avoid {
		if _, ok := table.HopCount(id); ok {
			t.Fatalf("avoided node %v present in tree", id)
		}
	}
	// No surviving path may cross an avoided node.
	for _, n := range table.Nodes() {
		path, err := table.Path(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, hop := range path {
			if avoid[hop] {
				t.Fatalf("path of %v crosses avoided node %v: %v", n, hop, path)
			}
		}
	}
	// n2 = (2,0) lost its 2-hop Manhattan route through n1, and the row-1
	// detour is blocked at n5, so the shortest live path crosses column 1
	// at row 2: (2,0)→(2,1)→(2,2)→(1,2)→(0,2)→(0,1)→sink, 6 hops.
	if h, ok := table.HopCount(topology.GridID(4, 2, 0)); !ok || h != 6 {
		t.Fatalf("detour hop count = %d,%v, want 6", h, ok)
	}
}

func TestBuildTreeAvoidingOrphans(t *testing.T) {
	// On a line, killing the middle node orphans everything behind it —
	// BuildTreeAvoiding must tolerate that, not error.
	topo := mustLine(t, 4)
	table := BuildTreeAvoiding(topo, map[packet.NodeID]bool{2: true})
	if _, ok := table.HopCount(1); !ok {
		t.Fatal("node 1 (still connected) missing from tree")
	}
	for _, orphan := range []packet.NodeID{2, 3, 4} {
		if _, ok := table.HopCount(orphan); ok {
			t.Fatalf("orphaned node %v present in tree", orphan)
		}
		if _, ok := table.NextHop(orphan); ok {
			t.Fatalf("orphaned node %v has a next hop", orphan)
		}
	}
}

func TestBuildTreeAvoidingNilMatchesBuildTree(t *testing.T) {
	topo, err := topology.Grid(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildTree(topo)
	if err != nil {
		t.Fatal(err)
	}
	avoiding := BuildTreeAvoiding(topo, nil)
	for _, n := range full.Nodes() {
		fp, fok := full.NextHop(n)
		ap, aok := avoiding.NextHop(n)
		if fok != aok || fp != ap {
			t.Fatalf("NextHop(%v): BuildTree %v,%v vs BuildTreeAvoiding %v,%v", n, fp, fok, ap, aok)
		}
	}
}

func TestBuildTreeAvoidingDeterministic(t *testing.T) {
	topo, err := topology.Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	avoid := map[packet.NodeID]bool{6: true, 12: true, 18: true}
	first := BuildTreeAvoiding(topo, avoid)
	for i := 0; i < 10; i++ {
		again := BuildTreeAvoiding(topo, avoid)
		for _, n := range first.Nodes() {
			fp, _ := first.NextHop(n)
			ap, aok := again.NextHop(n)
			if n != topology.Sink && (!aok || fp != ap) {
				t.Fatalf("run %d: NextHop(%v) = %v,%v, want %v", i, n, ap, aok, fp)
			}
		}
	}
}
