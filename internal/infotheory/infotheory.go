// Package infotheory implements the information-theoretic formulation of
// temporal privacy from §3 of the paper.
//
// Temporal privacy of a single packet is the mutual information
// I(X; Z) = h(X+Y) − h(Y) between the creation time X and the observed
// arrival time Z = X + Y, where Y is the buffering delay (eq. 1). The
// package provides:
//
//   - closed-form differential entropies for the distributions in play;
//   - the entropy-power-inequality lower bound on I(X; Z) (eq. 2);
//   - the Anantharam–Verdú "bits through queues" upper bound
//     I(Xj; Zj) ≤ ln(1 + jµ/λ) for a Poisson(λ) source with Exp(µ) delays,
//     and its partial sums bounding I(Xⁿ; Zⁿ) (eq. 4);
//   - empirical estimators (Vasicek m-spacing entropy, binned mutual
//     information) used to validate the bounds against simulation.
//
// All entropies and informations are in nats unless a function says
// otherwise.
package infotheory

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Ln2 converts between nats and bits: bits = nats / Ln2.
const Ln2 = math.Ln2

// ExponentialEntropy returns the differential entropy of Exp with the given
// mean: h = 1 + ln(mean) nats.
func ExponentialEntropy(mean float64) (float64, error) {
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return 0, fmt.Errorf("infotheory: exponential mean must be positive and finite, got %v", mean)
	}
	return 1 + math.Log(mean), nil
}

// UniformEntropy returns the differential entropy of Uniform[0, width]:
// h = ln(width) nats.
func UniformEntropy(width float64) (float64, error) {
	if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		return 0, fmt.Errorf("infotheory: uniform width must be positive and finite, got %v", width)
	}
	return math.Log(width), nil
}

// GaussianEntropy returns the differential entropy of N(·, variance):
// h = ½·ln(2πe·variance) nats.
func GaussianEntropy(variance float64) (float64, error) {
	if variance <= 0 || math.IsNaN(variance) || math.IsInf(variance, 0) {
		return 0, fmt.Errorf("infotheory: variance must be positive and finite, got %v", variance)
	}
	return 0.5 * math.Log(2*math.Pi*math.E*variance), nil
}

// ErlangEntropy returns the differential entropy of a k-stage Erlang with
// the given rate λ per stage:
//
//	h = k + ln(Γ(k)/λ) + (1−k)·ψ(k)  nats,
//
// where ψ is the digamma function.
func ErlangEntropy(k int, rate float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("infotheory: Erlang stages must be >= 1, got %d", k)
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return 0, fmt.Errorf("infotheory: Erlang rate must be positive and finite, got %v", rate)
	}
	lg, _ := math.Lgamma(float64(k))
	return float64(k) + lg - math.Log(rate) + (1-float64(k))*digamma(float64(k)), nil
}

// digamma computes ψ(x) for x > 0 via the recurrence ψ(x) = ψ(x+1) − 1/x and
// the asymptotic series for large arguments.
func digamma(x float64) float64 {
	result := 0.0
	for x < 12 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion: ψ(x) ≈ ln x − 1/(2x) − 1/(12x²) + 1/(120x⁴) − 1/(252x⁶).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv - inv2*(1.0/12-inv2*(1.0/120-inv2/252))
	return result
}

// MutualInfoFromEntropies returns I(X; Z) = h(Z) − h(Y) (eq. 1) given the
// entropy of the observed arrival time and of the delay.
func MutualInfoFromEntropies(hZ, hY float64) float64 { return hZ - hY }

// GaussianChannelMI returns the exact I(X; X+Y) when both X and Y are
// Gaussian: ½·ln(1 + varX/varY) nats. It anchors the EPI-bound validation,
// since Gaussians achieve the entropy-power inequality with equality.
func GaussianChannelMI(varX, varY float64) (float64, error) {
	if varX <= 0 || varY <= 0 || math.IsNaN(varX) || math.IsNaN(varY) {
		return 0, fmt.Errorf("infotheory: variances must be positive, got %v and %v", varX, varY)
	}
	return 0.5 * math.Log(1+varX/varY), nil
}

// EPILowerBound returns the entropy-power-inequality lower bound on
// I(X; X+Y) (eq. 2):
//
//	I(X; Z) ≥ ½·ln(e^{2h(X)} + e^{2h(Y)}) − h(Y)  nats,
//
// given the differential entropies of X and Y in nats. The bound is tight
// when X and Y are Gaussian.
func EPILowerBound(hX, hY float64) float64 {
	// Compute ln(e^{2hX} + e^{2hY}) in a shift-stable way.
	m := math.Max(2*hX, 2*hY)
	sum := math.Exp(2*hX-m) + math.Exp(2*hY-m)
	return 0.5*(m+math.Log(sum)) - hY
}

// AnantharamVerduBound returns the per-packet upper bound of eq. 4,
//
//	I(Xj; Zj) ≤ ln(1 + j·µ/λ)  nats,
//
// for the j-th packet of a Poisson(λ) source delayed by Exp(µ). Small µ
// relative to λ (long delays relative to interarrivals) makes the bound —
// and hence the adversary's information — small.
func AnantharamVerduBound(j int, mu, lambda float64) (float64, error) {
	if j < 1 {
		return 0, fmt.Errorf("infotheory: packet index must be >= 1, got %d", j)
	}
	if mu <= 0 || lambda <= 0 || math.IsNaN(mu) || math.IsNaN(lambda) {
		return 0, fmt.Errorf("infotheory: rates must be positive, got µ=%v λ=%v", mu, lambda)
	}
	return math.Log(1 + float64(j)*mu/lambda), nil
}

// AnantharamVerduSum returns Σ_{j=1..n} ln(1 + jµ/λ), the eq. 4 upper bound
// on I(Xⁿ; Zⁿ) — and hence, by the data-processing inequality on the sorted
// arrival process, on I(Xⁿ; Z̃ⁿ).
func AnantharamVerduSum(n int, mu, lambda float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("infotheory: packet count must be >= 1, got %d", n)
	}
	total := 0.0
	for j := 1; j <= n; j++ {
		b, err := AnantharamVerduBound(j, mu, lambda)
		if err != nil {
			return 0, err
		}
		total += b
	}
	return total, nil
}

// ErrTooFewSamples is returned by the empirical estimators when the sample
// set is too small to estimate from.
var ErrTooFewSamples = errors.New("infotheory: too few samples")

// VasicekEntropy estimates the differential entropy of a continuous
// distribution from i.i.d. samples using the Vasicek m-spacing estimator
// with the standard bias correction:
//
//	ĥ = (1/n)·Σ ln( n/(2m) · (x₍ᵢ₊ₘ₎ − x₍ᵢ₋ₘ₎) ) + bias terms.
//
// The spacing m defaults to round(sqrt(n)) when m <= 0. The input slice is
// not modified.
func VasicekEntropy(samples []float64, m int) (float64, error) {
	n := len(samples)
	if n < 4 {
		return 0, fmt.Errorf("%w: need >= 4, got %d", ErrTooFewSamples, n)
	}
	if m <= 0 {
		m = int(math.Round(math.Sqrt(float64(n))))
	}
	if m >= n/2 {
		m = n/2 - 1
		if m < 1 {
			m = 1
		}
	}
	x := make([]float64, n)
	copy(x, samples)
	sort.Float64s(x)

	total := 0.0
	for i := 0; i < n; i++ {
		lo := i - m
		if lo < 0 {
			lo = 0
		}
		hi := i + m
		if hi > n-1 {
			hi = n - 1
		}
		gap := x[hi] - x[lo]
		if gap <= 0 {
			// Repeated samples: use a tiny floor so the estimator stays
			// finite; heavy ties mean the distribution is nearly discrete.
			gap = 1e-300
		}
		total += math.Log(float64(n) / (2 * float64(m)) * gap)
	}
	h := total / float64(n)
	// Bias correction (Ebrahimi et al. style constant for the simple
	// estimator): ln(2m) − ψ-type terms are folded into the standard
	// correction ln(n) − ψ(n) ≈ small; the dominant correction for the
	// clipped windows at the edges:
	h += math.Log(2*float64(m)) - digamma(2*float64(m)) + digamma(float64(n)) - math.Log(float64(n))
	return h, nil
}

// BinnedMI estimates the mutual information I(X; Z) in nats from paired
// samples using a plug-in estimate over a bins×bins 2-D histogram spanning
// each variable's empirical range. It is biased upward for small samples;
// the experiments use it only to compare against analytic upper bounds.
func BinnedMI(xs, zs []float64, bins int) (float64, error) {
	if len(xs) != len(zs) {
		return 0, fmt.Errorf("infotheory: sample lengths differ: %d vs %d", len(xs), len(zs))
	}
	n := len(xs)
	if n < 4 {
		return 0, fmt.Errorf("%w: need >= 4, got %d", ErrTooFewSamples, n)
	}
	if bins < 2 {
		return 0, fmt.Errorf("infotheory: need >= 2 bins, got %d", bins)
	}

	minX, maxX := minMax(xs)
	minZ, maxZ := minMax(zs)
	if maxX == minX || maxZ == minZ {
		// A constant margin carries zero information.
		return 0, nil
	}
	binOf := func(v, lo, hi float64) int {
		i := int(float64(bins) * (v - lo) / (hi - lo))
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}

	joint := make([]float64, bins*bins)
	px := make([]float64, bins)
	pz := make([]float64, bins)
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		bx := binOf(xs[i], minX, maxX)
		bz := binOf(zs[i], minZ, maxZ)
		joint[bx*bins+bz] += inv
		px[bx] += inv
		pz[bz] += inv
	}

	mi := 0.0
	for bx := 0; bx < bins; bx++ {
		for bz := 0; bz < bins; bz++ {
			p := joint[bx*bins+bz]
			if p > 0 {
				mi += p * math.Log(p/(px[bx]*pz[bz]))
			}
		}
	}
	if mi < 0 {
		mi = 0 // tiny negative values are numerical noise
	}
	return mi, nil
}

// QuantileBinnedMI estimates I(X; Z) in nats like BinnedMI but with
// equal-frequency (quantile) bins per marginal instead of equal-width bins.
// For heavily skewed marginals — exponential delays being the case at hand —
// equal-width bins waste most of their resolution on the sparse tail;
// quantile bins keep per-bin counts balanced and materially reduce the
// discretisation bias at high mutual information.
func QuantileBinnedMI(xs, zs []float64, bins int) (float64, error) {
	if len(xs) != len(zs) {
		return 0, fmt.Errorf("infotheory: sample lengths differ: %d vs %d", len(xs), len(zs))
	}
	n := len(xs)
	if n < 4 {
		return 0, fmt.Errorf("%w: need >= 4, got %d", ErrTooFewSamples, n)
	}
	if bins < 2 {
		return 0, fmt.Errorf("infotheory: need >= 2 bins, got %d", bins)
	}

	edgesX := quantileEdges(xs, bins)
	edgesZ := quantileEdges(zs, bins)
	if edgesX == nil || edgesZ == nil {
		// A constant margin carries zero information.
		return 0, nil
	}

	joint := make([]float64, bins*bins)
	px := make([]float64, bins)
	pz := make([]float64, bins)
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		bx := edgeBin(edgesX, xs[i])
		bz := edgeBin(edgesZ, zs[i])
		joint[bx*len(pz)+bz] += inv
		px[bx] += inv
		pz[bz] += inv
	}

	mi := 0.0
	for bx := 0; bx < bins; bx++ {
		if px[bx] == 0 {
			continue
		}
		for bz := 0; bz < bins; bz++ {
			p := joint[bx*bins+bz]
			if p > 0 && pz[bz] > 0 {
				mi += p * math.Log(p/(px[bx]*pz[bz]))
			}
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi, nil
}

// quantileEdges returns bins−1 interior edges splitting xs into
// (approximately) equal-frequency bins, or nil when the sample is constant.
func quantileEdges(xs []float64, bins int) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil
	}
	edges := make([]float64, bins-1)
	for i := 1; i < bins; i++ {
		idx := i * len(sorted) / bins
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		edges[i-1] = sorted[idx]
	}
	return edges
}

// edgeBin returns the bin index of v given interior edges: the number of
// edges strictly below v (values equal to an edge fall in the bin to its
// left). The result lies in [0, len(edges)].
func edgeBin(edges []float64, v float64) int {
	return sort.SearchFloat64s(edges, v)
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// KLDivergenceHistogram returns D(p‖q) in nats between two discrete
// distributions given as histograms over the same support. Bins where
// p > 0 but q == 0 make the divergence infinite.
func KLDivergenceHistogram(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("infotheory: histogram lengths differ: %d vs %d", len(p), len(q))
	}
	sumP, sumQ := 0.0, 0.0
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			return 0, errors.New("infotheory: negative probability mass")
		}
		sumP += p[i]
		sumQ += q[i]
	}
	if sumP == 0 || sumQ == 0 {
		return 0, errors.New("infotheory: empty distribution")
	}
	d := 0.0
	for i := range p {
		pi := p[i] / sumP
		qi := q[i] / sumQ
		if pi == 0 {
			continue
		}
		if qi == 0 {
			return math.Inf(1), nil
		}
		d += pi * math.Log(pi/qi)
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}
