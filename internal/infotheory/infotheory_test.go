package infotheory

import (
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/rng"
)

func TestClosedFormEntropies(t *testing.T) {
	h, err := ExponentialEntropy(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Fatalf("h(Exp mean 1) = %v, want 1", h)
	}
	h, err = UniformEntropy(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h) > 1e-12 {
		t.Fatalf("h(U[0,1]) = %v, want 0", h)
	}
	h, err = GaussianEntropy(1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * math.Log(2*math.Pi*math.E)
	if math.Abs(h-want) > 1e-12 {
		t.Fatalf("h(N(0,1)) = %v, want %v", h, want)
	}
}

func TestEntropyValidation(t *testing.T) {
	if _, err := ExponentialEntropy(0); err == nil {
		t.Fatal("zero mean accepted")
	}
	if _, err := UniformEntropy(-1); err == nil {
		t.Fatal("negative width accepted")
	}
	if _, err := GaussianEntropy(math.NaN()); err == nil {
		t.Fatal("NaN variance accepted")
	}
}

func TestErlangEntropyReducesToExponential(t *testing.T) {
	// 1-stage Erlang with rate λ IS Exp(mean 1/λ).
	for _, rate := range []float64{0.1, 1, 5} {
		hErl, err := ErlangEntropy(1, rate)
		if err != nil {
			t.Fatal(err)
		}
		hExp, err := ExponentialEntropy(1 / rate)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(hErl-hExp) > 1e-9 {
			t.Fatalf("Erlang(1,%v) entropy %v != Exp %v", rate, hErl, hExp)
		}
	}
}

func TestErlangEntropyAgainstVasicek(t *testing.T) {
	// Cross-validate the closed form against the empirical estimator.
	const k, rate = 5, 0.5
	want, err := ErlangEntropy(k, rate)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(42)
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = src.Erlang(k, 1/rate)
	}
	got, err := VasicekEntropy(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("Vasicek estimate %v vs Erlang closed form %v", got, want)
	}
}

func TestDigammaKnownValues(t *testing.T) {
	// ψ(1) = −γ.
	const gamma = 0.5772156649015329
	if got := digamma(1); math.Abs(got+gamma) > 1e-10 {
		t.Fatalf("ψ(1) = %v, want %v", got, -gamma)
	}
	// ψ(2) = 1 − γ.
	if got := digamma(2); math.Abs(got-(1-gamma)) > 1e-10 {
		t.Fatalf("ψ(2) = %v, want %v", got, 1-gamma)
	}
	// ψ(0.5) = −γ − 2 ln 2.
	if got := digamma(0.5); math.Abs(got-(-gamma-2*math.Ln2)) > 1e-10 {
		t.Fatalf("ψ(0.5) = %v", got)
	}
}

func TestGaussianChannelMI(t *testing.T) {
	mi, err := GaussianChannelMI(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi-0.5*math.Log(4)) > 1e-12 {
		t.Fatalf("Gaussian MI = %v, want ln(2)", mi)
	}
	if _, err := GaussianChannelMI(0, 1); err == nil {
		t.Fatal("zero variance accepted")
	}
}

// TestEPIBoundTightForGaussians: for Gaussian X and Y the entropy-power
// inequality holds with equality, so the bound equals the exact MI.
func TestEPIBoundTightForGaussians(t *testing.T) {
	for _, vars := range [][2]float64{{1, 1}, {3, 1}, {0.25, 4}} {
		hX, err := GaussianEntropy(vars[0])
		if err != nil {
			t.Fatal(err)
		}
		hY, err := GaussianEntropy(vars[1])
		if err != nil {
			t.Fatal(err)
		}
		bound := EPILowerBound(hX, hY)
		exact, err := GaussianChannelMI(vars[0], vars[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bound-exact) > 1e-9 {
			t.Fatalf("varX=%v varY=%v: EPI bound %v != exact Gaussian MI %v", vars[0], vars[1], bound, exact)
		}
	}
}

// TestEPIBoundBelowEmpiricalMI: for exponential X and Y the bound must lie
// at or below the (upward-biased) empirical MI.
func TestEPIBoundBelowEmpiricalMI(t *testing.T) {
	const meanX, meanY = 10.0, 30.0
	hX, err := ExponentialEntropy(meanX)
	if err != nil {
		t.Fatal(err)
	}
	hY, err := ExponentialEntropy(meanY)
	if err != nil {
		t.Fatal(err)
	}
	bound := EPILowerBound(hX, hY)

	src := rng.New(7)
	const n = 100000
	xs := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		x := src.Exponential(meanX)
		y := src.Exponential(meanY)
		xs[i] = x
		zs[i] = x + y
	}
	mi, err := BinnedMI(xs, zs, 40)
	if err != nil {
		t.Fatal(err)
	}
	if bound > mi+0.05 {
		t.Fatalf("EPI lower bound %v exceeds empirical MI %v", bound, mi)
	}
}

func TestAnantharamVerduBound(t *testing.T) {
	b, err := AnantharamVerduBound(1, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-math.Log(2)) > 1e-12 {
		t.Fatalf("AV bound (1, µ=λ) = %v, want ln 2", b)
	}
	// Bound grows with packet index j and shrinks as µ/λ shrinks.
	b1, err := AnantharamVerduBound(1, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b10, err := AnantharamVerduBound(10, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b10 <= b1 {
		t.Fatalf("bound not increasing in j: %v vs %v", b1, b10)
	}
	bSmallMu, err := AnantharamVerduBound(1, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bSmallMu >= b1 {
		t.Fatalf("bound not decreasing in µ: %v vs %v", bSmallMu, b1)
	}
	if _, err := AnantharamVerduBound(0, 1, 1); err == nil {
		t.Fatal("j=0 accepted")
	}
	if _, err := AnantharamVerduBound(1, -1, 1); err == nil {
		t.Fatal("negative µ accepted")
	}
}

func TestAnantharamVerduSum(t *testing.T) {
	got, err := AnantharamVerduSum(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(2) + math.Log(3) + math.Log(4)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AV sum = %v, want %v", got, want)
	}
	if _, err := AnantharamVerduSum(0, 1, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestAVBoundDominatesEmpiricalMI is the eq. 4 validation in miniature: the
// empirical I(Xj; Zj) for a Poisson source with exponential delays stays
// below ln(1 + jµ/λ).
func TestAVBoundDominatesEmpiricalMI(t *testing.T) {
	const lambda, mu = 0.5, 1.0 / 30
	const j = 3
	src := rng.New(11)
	const n = 60000
	xs := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		x := src.Erlang(j, 1/lambda) // j-th arrival time of Poisson(λ)
		xs[i] = x
		zs[i] = x + src.Exponential(1/mu)
	}
	mi, err := BinnedMI(xs, zs, 30)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := AnantharamVerduBound(j, mu, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if mi > bound*1.05 {
		t.Fatalf("empirical I(X%d;Z%d) = %v exceeds AV bound %v", j, j, mi, bound)
	}
}

func TestVasicekEntropyUniform(t *testing.T) {
	src := rng.New(13)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = src.Uniform(0, 4)
	}
	got, err := VasicekEntropy(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Log(4)) > 0.05 {
		t.Fatalf("Vasicek on U[0,4] = %v, want %v", got, math.Log(4))
	}
}

func TestVasicekEntropyGaussian(t *testing.T) {
	src := rng.New(17)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = src.Normal(0, 2)
	}
	want, err := GaussianEntropy(4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VasicekEntropy(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("Vasicek on N(0,4) = %v, want %v", got, want)
	}
}

func TestVasicekTooFewSamples(t *testing.T) {
	if _, err := VasicekEntropy([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("3 samples accepted")
	}
}

func TestVasicekDoesNotMutateInput(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3, 9, 7, 8}
	if _, err := VasicekEntropy(samples, 2); err != nil {
		t.Fatal(err)
	}
	if samples[0] != 5 || samples[5] != 9 {
		t.Fatal("VasicekEntropy sorted the caller's slice")
	}
}

func TestBinnedMIIndependentIsNearZero(t *testing.T) {
	src := rng.New(19)
	const n = 100000
	xs := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.Exponential(10)
		zs[i] = src.Exponential(10) // independent
	}
	mi, err := BinnedMI(xs, zs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if mi > 0.02 {
		t.Fatalf("MI of independent samples = %v, want ≈ 0", mi)
	}
}

func TestBinnedMIPerfectDependence(t *testing.T) {
	src := rng.New(23)
	const n = 50000
	xs := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.Uniform(0, 1)
		zs[i] = xs[i] // Z = X exactly
	}
	mi, err := BinnedMI(xs, zs, 20)
	if err != nil {
		t.Fatal(err)
	}
	// For identical variables the binned MI approaches ln(bins).
	if mi < 0.8*math.Log(20) {
		t.Fatalf("MI of identical samples = %v, want ≈ ln 20 = %v", mi, math.Log(20))
	}
}

// TestBinnedMIDecreasesWithMoreNoise captures the paper's core claim: longer
// average delays (more delay entropy) leak less about creation times.
func TestBinnedMIDecreasesWithMoreNoise(t *testing.T) {
	src := rng.New(29)
	const n = 60000
	miAt := func(delayMean float64) float64 {
		xs := make([]float64, n)
		zs := make([]float64, n)
		for i := 0; i < n; i++ {
			x := src.Exponential(10)
			xs[i] = x
			zs[i] = x + src.Exponential(delayMean)
		}
		mi, err := BinnedMI(xs, zs, 30)
		if err != nil {
			t.Fatal(err)
		}
		return mi
	}
	short := miAt(1)
	long := miAt(100)
	if long >= short {
		t.Fatalf("MI with long delays (%v) >= MI with short delays (%v)", long, short)
	}
}

func TestBinnedMIValidation(t *testing.T) {
	if _, err := BinnedMI([]float64{1, 2}, []float64{1}, 4); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := BinnedMI([]float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}, 1); err == nil {
		t.Fatal("1 bin accepted")
	}
	mi, err := BinnedMI([]float64{5, 5, 5, 5}, []float64{1, 2, 3, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mi != 0 {
		t.Fatalf("constant X yields MI %v, want 0", mi)
	}
}

func TestKLDivergence(t *testing.T) {
	d, err := KLDivergenceHistogram([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("D(p‖p) = %v, want 0", d)
	}
	d, err = KLDivergenceHistogram([]float64{1, 0}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-math.Log(2)) > 1e-12 {
		t.Fatalf("D = %v, want ln 2", d)
	}
	d, err = KLDivergenceHistogram([]float64{0.5, 0.5}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Fatalf("D with disjoint support = %v, want +Inf", d)
	}
	if _, err := KLDivergenceHistogram([]float64{1}, []float64{1, 0}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := KLDivergenceHistogram([]float64{0, 0}, []float64{1, 0}); err == nil {
		t.Fatal("empty p accepted")
	}
}

// Property: the EPI bound never exceeds h(X+Y)−h(Y) computed for Gaussians
// (where it is exact) under arbitrary entropies, and is monotone in hX.
func TestEPIBoundMonotoneProperty(t *testing.T) {
	f := func(a, b int8) bool {
		hX := float64(a) / 16
		hY := float64(b) / 16
		bound := EPILowerBound(hX, hY)
		boundBigger := EPILowerBound(hX+0.5, hY)
		return boundBigger >= bound && bound >= 0 == (bound >= 0) // bound may be any sign; monotonicity is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: AV bound is non-negative and increasing in j.
func TestAVBoundProperty(t *testing.T) {
	f := func(jRaw uint8, muRaw, lambdaRaw uint16) bool {
		j := int(jRaw%50) + 1
		mu := 0.001 + float64(muRaw)/65535
		lambda := 0.001 + float64(lambdaRaw)/65535
		b, err := AnantharamVerduBound(j, mu, lambda)
		if err != nil || b < 0 {
			return false
		}
		b2, err := AnantharamVerduBound(j+1, mu, lambda)
		return err == nil && b2 >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileBinnedMIIndependent(t *testing.T) {
	src := rng.New(41)
	const n = 100000
	xs := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.Exponential(10)
		zs[i] = src.Exponential(10)
	}
	mi, err := QuantileBinnedMI(xs, zs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if mi > 0.02 {
		t.Fatalf("quantile MI of independent samples = %v, want ≈ 0", mi)
	}
}

func TestQuantileBinnedMIPerfectDependence(t *testing.T) {
	src := rng.New(43)
	const n, bins = 50000, 20
	xs := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.Exponential(1) // heavily skewed, where equal-width suffers
		zs[i] = xs[i]
	}
	mi, err := QuantileBinnedMI(xs, zs, bins)
	if err != nil {
		t.Fatal(err)
	}
	if mi < 0.95*math.Log(bins) {
		t.Fatalf("quantile MI of identical skewed samples = %v, want ≈ ln %d = %v", mi, bins, math.Log(bins))
	}
}

// TestQuantileBeatsEqualWidthOnSkewedData verifies the estimator's reason
// to exist: for exponential X with exponential noise at high SNR, quantile
// bins capture more of the true MI than equal-width bins.
func TestQuantileBeatsEqualWidthOnSkewedData(t *testing.T) {
	src := rng.New(47)
	const n, bins = 100000, 30
	xs := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		x := src.Exponential(10)
		xs[i] = x
		zs[i] = x + src.Exponential(0.5) // high SNR: large true MI
	}
	equal, err := BinnedMI(xs, zs, bins)
	if err != nil {
		t.Fatal(err)
	}
	quantile, err := QuantileBinnedMI(xs, zs, bins)
	if err != nil {
		t.Fatal(err)
	}
	if quantile <= equal {
		t.Fatalf("quantile MI %v not above equal-width MI %v on skewed high-SNR data", quantile, equal)
	}
}

func TestQuantileBinnedMIValidation(t *testing.T) {
	if _, err := QuantileBinnedMI([]float64{1, 2}, []float64{1}, 4); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := QuantileBinnedMI([]float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}, 1); err == nil {
		t.Fatal("1 bin accepted")
	}
	if _, err := QuantileBinnedMI([]float64{1, 2, 3}, []float64{1, 2, 3}, 4); err == nil {
		t.Fatal("3 samples accepted")
	}
	mi, err := QuantileBinnedMI([]float64{5, 5, 5, 5}, []float64{1, 2, 3, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mi != 0 {
		t.Fatalf("constant X quantile MI = %v, want 0", mi)
	}
}

// TestQuantileStillRespectsAVBound: the better estimator must still sit
// below the eq. 4 analytic upper bound.
func TestQuantileStillRespectsAVBound(t *testing.T) {
	const lambda, mu, j = 0.5, 1.0 / 30, 3
	src := rng.New(53)
	const n = 60000
	xs := make([]float64, n)
	zs := make([]float64, n)
	for i := 0; i < n; i++ {
		x := src.Erlang(j, 1/lambda)
		xs[i] = x
		zs[i] = x + src.Exponential(1/mu)
	}
	mi, err := QuantileBinnedMI(xs, zs, 30)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := AnantharamVerduBound(j, mu, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if mi > bound*1.05 {
		t.Fatalf("quantile MI %v exceeds AV bound %v", mi, bound)
	}
}
