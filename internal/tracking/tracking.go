// Package tracking quantifies the paper's motivating claim (§1–§2): "if we
// add temporal ambiguity to the time that the packets are created then, as
// the asset moves, this would introduce spatial ambiguity and make it
// harder for the adversary to track the asset."
//
// It models a mobile asset as a piecewise-linear trajectory over a
// deployment, derives which sensors sight it when (Sightings), lets an
// adversary reconstruct the trajectory from (sensor position, estimated
// creation time) pairs (Reconstruct), and scores the reconstruction against
// the truth (TrackingError). The habitat example drives the full pipeline:
// temporal estimation error from package adversary becomes spatial tracking
// error here.
package tracking

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tempriv/internal/packet"
	"tempriv/internal/topology"
)

// Waypoint fixes the asset's position at a time.
type Waypoint struct {
	// At is the waypoint time.
	At float64
	// Pos is the asset's position at that time.
	Pos topology.Position
}

// Trajectory is a piecewise-linear asset path. Construct with NewTrajectory.
type Trajectory struct {
	points []Waypoint
}

// ErrBadTrajectory is returned for trajectories with fewer than two
// waypoints or non-increasing times.
var ErrBadTrajectory = errors.New("tracking: trajectory needs >= 2 waypoints with strictly increasing times")

// NewTrajectory builds a trajectory from waypoints. Times must strictly
// increase; the slice is copied.
func NewTrajectory(points []Waypoint) (*Trajectory, error) {
	if len(points) < 2 {
		return nil, ErrBadTrajectory
	}
	cp := make([]Waypoint, len(points))
	copy(cp, points)
	for i := 1; i < len(cp); i++ {
		if !(cp[i].At > cp[i-1].At) {
			return nil, fmt.Errorf("%w: waypoint %d at %v after %v", ErrBadTrajectory, i, cp[i].At, cp[i-1].At)
		}
	}
	return &Trajectory{points: cp}, nil
}

// Start returns the first waypoint time.
func (t *Trajectory) Start() float64 { return t.points[0].At }

// End returns the last waypoint time.
func (t *Trajectory) End() float64 { return t.points[len(t.points)-1].At }

// At returns the asset's position at the given time, clamping outside
// [Start, End] and interpolating linearly between waypoints.
func (t *Trajectory) At(at float64) topology.Position {
	if at <= t.Start() {
		return t.points[0].Pos
	}
	if at >= t.End() {
		return t.points[len(t.points)-1].Pos
	}
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].At > at }) - 1
	a, b := t.points[i], t.points[i+1]
	frac := (at - a.At) / (b.At - a.At)
	return topology.Position{
		X: a.Pos.X + frac*(b.Pos.X-a.Pos.X),
		Y: a.Pos.Y + frac*(b.Pos.Y-a.Pos.Y),
	}
}

// Sighting is one sensor detection of the asset.
type Sighting struct {
	// Sensor is the detecting node.
	Sensor packet.NodeID
	// At is the detection time — the packet-creation time whose privacy is
	// at stake.
	At float64
}

// Sightings samples the trajectory every sampleInterval and reports, for
// each sample, every non-sink sensor within detection range of the asset.
// Results are in time order. It returns an error for non-positive range or
// interval.
func Sightings(topo *topology.Topology, traj *Trajectory, detectionRange, sampleInterval float64) ([]Sighting, error) {
	if detectionRange <= 0 || math.IsNaN(detectionRange) {
		return nil, fmt.Errorf("tracking: detection range must be positive, got %v", detectionRange)
	}
	if sampleInterval <= 0 || math.IsNaN(sampleInterval) {
		return nil, fmt.Errorf("tracking: sample interval must be positive, got %v", sampleInterval)
	}
	nodes := topo.Nodes()
	var out []Sighting
	for at := traj.Start(); at <= traj.End(); at += sampleInterval {
		assetPos := traj.At(at)
		for _, id := range nodes {
			if id == topology.Sink {
				continue
			}
			pos, err := topo.PositionOf(id)
			if err != nil {
				return nil, fmt.Errorf("tracking: %w", err)
			}
			if pos.Distance(assetPos) <= detectionRange {
				out = append(out, Sighting{Sensor: id, At: at})
			}
		}
	}
	return out, nil
}

// Report is one input to the adversary's reconstruction: where a sighting
// happened (the origin sensor's position, known from the deployment) and
// when the adversary believes it happened (its creation-time estimate).
type Report struct {
	// Pos is the reporting sensor's position.
	Pos topology.Position
	// EstimatedAt is the adversary's creation-time estimate x̂.
	EstimatedAt float64
}

// Reconstruction is the adversary's estimate of the asset trajectory:
// reports sorted by estimated time, queried with PositionAt.
type Reconstruction struct {
	reports []Report
}

// ErrNoReports is returned when reconstructing from an empty report set.
var ErrNoReports = errors.New("tracking: no reports to reconstruct from")

// Reconstruct sorts the reports by estimated time. The input is copied.
func Reconstruct(reports []Report) (*Reconstruction, error) {
	if len(reports) == 0 {
		return nil, ErrNoReports
	}
	cp := make([]Report, len(reports))
	copy(cp, reports)
	sort.Slice(cp, func(i, j int) bool { return cp[i].EstimatedAt < cp[j].EstimatedAt })
	return &Reconstruction{reports: cp}, nil
}

// PositionAt returns the adversary's best guess of the asset position at
// time at: the position of the report whose estimated time is nearest.
func (r *Reconstruction) PositionAt(at float64) topology.Position {
	i := sort.Search(len(r.reports), func(i int) bool { return r.reports[i].EstimatedAt >= at })
	switch {
	case i == 0:
		return r.reports[0].Pos
	case i == len(r.reports):
		return r.reports[len(r.reports)-1].Pos
	default:
		before, after := r.reports[i-1], r.reports[i]
		if at-before.EstimatedAt <= after.EstimatedAt-at {
			return before.Pos
		}
		return after.Pos
	}
}

// Error summarises a reconstruction's spatial tracking error against the
// true trajectory.
type Error struct {
	// Mean is the time-averaged distance between true and reconstructed
	// positions.
	Mean float64
	// Max is the worst-case distance.
	Max float64
	// Samples is the number of evaluation points.
	Samples int
}

// TrackingError samples [traj.Start(), traj.End()] every step and compares
// the reconstruction's position guesses to the truth.
func TrackingError(traj *Trajectory, rec *Reconstruction, step float64) (Error, error) {
	if step <= 0 || math.IsNaN(step) {
		return Error{}, fmt.Errorf("tracking: step must be positive, got %v", step)
	}
	var e Error
	total := 0.0
	for at := traj.Start(); at <= traj.End(); at += step {
		d := traj.At(at).Distance(rec.PositionAt(at))
		total += d
		if d > e.Max {
			e.Max = d
		}
		e.Samples++
	}
	if e.Samples == 0 {
		return Error{}, errors.New("tracking: empty evaluation window")
	}
	e.Mean = total / float64(e.Samples)
	return e, nil
}
