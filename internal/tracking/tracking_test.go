package tracking

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"tempriv/internal/topology"
)

func line(t *testing.T) *Trajectory {
	t.Helper()
	traj, err := NewTrajectory([]Waypoint{
		{At: 0, Pos: topology.Position{X: 0, Y: 0}},
		{At: 100, Pos: topology.Position{X: 100, Y: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

func TestTrajectoryInterpolation(t *testing.T) {
	traj := line(t)
	if p := traj.At(50); math.Abs(p.X-50) > 1e-12 || p.Y != 0 {
		t.Fatalf("At(50) = %+v, want (50,0)", p)
	}
	if p := traj.At(-10); p.X != 0 {
		t.Fatalf("before start: %+v, want clamp to (0,0)", p)
	}
	if p := traj.At(200); p.X != 100 {
		t.Fatalf("after end: %+v, want clamp to (100,0)", p)
	}
	if traj.Start() != 0 || traj.End() != 100 {
		t.Fatalf("bounds = [%v,%v]", traj.Start(), traj.End())
	}
}

func TestTrajectoryMultiSegment(t *testing.T) {
	traj, err := NewTrajectory([]Waypoint{
		{At: 0, Pos: topology.Position{X: 0, Y: 0}},
		{At: 10, Pos: topology.Position{X: 10, Y: 0}},
		{At: 20, Pos: topology.Position{X: 10, Y: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := traj.At(15); math.Abs(p.X-10) > 1e-12 || math.Abs(p.Y-5) > 1e-12 {
		t.Fatalf("At(15) = %+v, want (10,5)", p)
	}
}

func TestTrajectoryValidation(t *testing.T) {
	if _, err := NewTrajectory(nil); !errors.Is(err, ErrBadTrajectory) {
		t.Fatalf("empty trajectory: %v", err)
	}
	if _, err := NewTrajectory([]Waypoint{{At: 0}}); !errors.Is(err, ErrBadTrajectory) {
		t.Fatalf("single waypoint: %v", err)
	}
	if _, err := NewTrajectory([]Waypoint{{At: 5}, {At: 5}}); !errors.Is(err, ErrBadTrajectory) {
		t.Fatalf("equal times: %v", err)
	}
	if _, err := NewTrajectory([]Waypoint{{At: 5}, {At: 1}}); !errors.Is(err, ErrBadTrajectory) {
		t.Fatalf("decreasing times: %v", err)
	}
}

func TestTrajectoryCopiesInput(t *testing.T) {
	pts := []Waypoint{{At: 0}, {At: 10, Pos: topology.Position{X: 10}}}
	traj, err := NewTrajectory(pts)
	if err != nil {
		t.Fatal(err)
	}
	pts[1].Pos.X = 999
	if p := traj.At(10); p.X != 10 {
		t.Fatal("trajectory exposed caller mutation")
	}
}

func TestSightingsAlongGrid(t *testing.T) {
	topo, err := topology.Grid(11, 1) // sensors at x=0..10, y=0
	if err != nil {
		t.Fatal(err)
	}
	// Asset moves x: 0→10 over t: 0→100 at y=0.
	traj := mustTraj(t, []Waypoint{
		{At: 0, Pos: topology.Position{X: 0, Y: 0}},
		{At: 100, Pos: topology.Position{X: 10, Y: 0}},
	})
	sightings, err := Sightings(topo, traj, 0.6, 10) // samples at t=0,10,…,100
	if err != nil {
		t.Fatal(err)
	}
	if len(sightings) == 0 {
		t.Fatal("no sightings")
	}
	// At sample t the asset is at x=t/10; the only sensor within 0.6 is
	// node x=round(t/10) — except the sink (x=0), which never reports.
	for _, s := range sightings {
		pos, err := topo.PositionOf(s.Sensor)
		if err != nil {
			t.Fatal(err)
		}
		assetX := s.At / 10
		if math.Abs(pos.X-assetX) > 0.6 {
			t.Fatalf("sensor at x=%v sighted asset at x=%v", pos.X, assetX)
		}
		if s.Sensor == topology.Sink {
			t.Fatal("sink reported a sighting")
		}
	}
	// Time-ordering.
	for i := 1; i < len(sightings); i++ {
		if sightings[i].At < sightings[i-1].At {
			t.Fatal("sightings out of order")
		}
	}
}

func TestSightingsValidation(t *testing.T) {
	topo, err := topology.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	traj := line(t)
	if _, err := Sightings(topo, traj, 0, 1); err == nil {
		t.Fatal("zero range accepted")
	}
	if _, err := Sightings(topo, traj, 1, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func mustTraj(t *testing.T, pts []Waypoint) *Trajectory {
	t.Helper()
	traj, err := NewTrajectory(pts)
	if err != nil {
		t.Fatal(err)
	}
	return traj
}

func TestReconstructPerfectTimesTracksClosely(t *testing.T) {
	// Reports at the true times from sensors on the asset's path: the
	// reconstruction error is bounded by the report spacing.
	traj := line(t)
	var reports []Report
	for x := 0.0; x <= 100; x += 10 {
		reports = append(reports, Report{Pos: topology.Position{X: x}, EstimatedAt: x})
	}
	rec, err := Reconstruct(reports)
	if err != nil {
		t.Fatal(err)
	}
	e, err := TrackingError(traj, rec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Max > 5+1e-9 {
		t.Fatalf("max error %v with perfect times, want <= half the 10-unit spacing", e.Max)
	}
	if e.Mean > 3 {
		t.Fatalf("mean error %v with perfect times", e.Mean)
	}
}

func TestReconstructShiftedTimesMislocates(t *testing.T) {
	// A constant +30 time error slides every report 30 time units (=30
	// distance units at unit speed) away from the truth.
	traj := line(t)
	var exact, shifted []Report
	for x := 0.0; x <= 100; x += 5 {
		exact = append(exact, Report{Pos: topology.Position{X: x}, EstimatedAt: x})
		shifted = append(shifted, Report{Pos: topology.Position{X: x}, EstimatedAt: x + 30})
	}
	recExact, err := Reconstruct(exact)
	if err != nil {
		t.Fatal(err)
	}
	recShifted, err := Reconstruct(shifted)
	if err != nil {
		t.Fatal(err)
	}
	eExact, err := TrackingError(traj, recExact, 1)
	if err != nil {
		t.Fatal(err)
	}
	eShifted, err := TrackingError(traj, recShifted, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eShifted.Mean < 5*eExact.Mean+5 {
		t.Fatalf("shifted reconstruction error %v not well above exact %v", eShifted.Mean, eExact.Mean)
	}
	// In the interior the shift displaces the answer by ≈ 30 units.
	if math.Abs(eShifted.Max-30) > 5 {
		t.Fatalf("max shifted error %v, want ≈ 30", eShifted.Max)
	}
}

func TestReconstructValidation(t *testing.T) {
	if _, err := Reconstruct(nil); !errors.Is(err, ErrNoReports) {
		t.Fatalf("empty reports: %v", err)
	}
}

func TestReconstructSortsReports(t *testing.T) {
	rec, err := Reconstruct([]Report{
		{Pos: topology.Position{X: 2}, EstimatedAt: 20},
		{Pos: topology.Position{X: 1}, EstimatedAt: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := rec.PositionAt(11); p.X != 1 {
		t.Fatalf("PositionAt(11) = %+v, want nearest report (x=1)", p)
	}
	if p := rec.PositionAt(19); p.X != 2 {
		t.Fatalf("PositionAt(19) = %+v, want nearest report (x=2)", p)
	}
	if p := rec.PositionAt(-5); p.X != 1 {
		t.Fatalf("PositionAt before all = %+v", p)
	}
	if p := rec.PositionAt(99); p.X != 2 {
		t.Fatalf("PositionAt after all = %+v", p)
	}
}

func TestTrackingErrorValidation(t *testing.T) {
	traj := line(t)
	rec, err := Reconstruct([]Report{{EstimatedAt: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrackingError(traj, rec, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

// Property: the reconstruction's PositionAt always returns the position of
// one of its reports (it never invents locations).
func TestReconstructionReturnsRealReportsProperty(t *testing.T) {
	f := func(raw []uint8, query uint8) bool {
		if len(raw) == 0 {
			return true
		}
		reports := make([]Report, len(raw))
		positions := make(map[topology.Position]bool, len(raw))
		for i, r := range raw {
			p := topology.Position{X: float64(r % 50), Y: float64(r % 7)}
			reports[i] = Report{Pos: p, EstimatedAt: float64(r)}
			positions[p] = true
		}
		rec, err := Reconstruct(reports)
		if err != nil {
			return false
		}
		return positions[rec.PositionAt(float64(query))]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
