package sim

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"tempriv/internal/rng"
)

func TestEmptyRun(t *testing.T) {
	s := NewScheduler()
	if err := s.Run(); err != nil {
		t.Fatalf("Run on empty scheduler: %v", err)
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved on empty run: %v", s.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		s.At(at, func() { order = append(order, at) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired in order %v, want FIFO", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := NewScheduler()
	var seen []float64
	s.At(2, func() { seen = append(seen, s.Now()) })
	s.At(9, func() { seen = append(seen, s.Now()) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if seen[0] != 2 || seen[1] != 9 {
		t.Fatalf("clock inside callbacks: %v, want [2 9]", seen)
	}
	if s.Now() != 9 {
		t.Fatalf("final clock %v, want 9", s.Now())
	}
}

func TestAfterUsesRelativeDelay(t *testing.T) {
	s := NewScheduler()
	var at float64
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 15 {
		t.Fatalf("After(5) from t=10 fired at %v, want 15", at)
	}
}

func TestScheduleFromCallback(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("chained ticks fired %d times, want 100", count)
	}
	if s.Now() != 100 {
		t.Fatalf("clock %v, want 100", s.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(5, func() { fired = true })
	if !s.Cancel(tm) {
		t.Fatal("Cancel returned false for a pending timer")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if s.Cancel(tm) {
		t.Fatal("second Cancel returned true")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.At(1, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Cancel(tm) {
		t.Fatal("Cancel of fired timer returned true")
	}
}

func TestCancelFromCallback(t *testing.T) {
	s := NewScheduler()
	fired := false
	victim := s.At(10, func() { fired = true })
	s.At(5, func() { s.Cancel(victim) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("timer cancelled from an earlier event still fired")
	}
}

func TestReschedule(t *testing.T) {
	s := NewScheduler()
	var at float64
	tm := s.At(5, func() { at = s.Now() })
	if !s.Reschedule(tm, 20) {
		t.Fatal("Reschedule returned false for pending timer")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 20 {
		t.Fatalf("rescheduled timer fired at %v, want 20", at)
	}
}

func TestRescheduleEarlier(t *testing.T) {
	s := NewScheduler()
	var order []string
	tm := s.At(50, func() { order = append(order, "moved") })
	s.At(10, func() { order = append(order, "fixed") })
	s.At(1, func() { s.Reschedule(tm, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "moved" || order[1] != "fixed" {
		t.Fatalf("order = %v, want [moved fixed]", order)
	}
}

func TestRescheduleInactive(t *testing.T) {
	s := NewScheduler()
	tm := s.At(1, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Reschedule(tm, 10) {
		t.Fatal("Reschedule of fired timer returned true")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10, 11} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	if err := s.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("RunUntil(5) fired %d events, want 3", len(fired))
	}
	if s.Now() != 5 {
		t.Fatalf("clock after RunUntil(5) = %v, want 5", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending after RunUntil = %d, want 2", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Fatalf("resume after RunUntil fired %d total, want 5", len(fired))
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(5, func() { fired = true })
	if err := s.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		i := i
		s.At(float64(i), func() {
			count++
			if i == 3 {
				s.Stop()
			}
		})
	}
	err := s.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("events after Stop: fired %d, want 3", count)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestAtInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	if !s.Step() {
		t.Fatal("Step returned false")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestAtNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	NewScheduler().At(1, nil)
}

func TestFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.At(float64(i), func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

// Property: for an arbitrary batch of schedule times, events fire in
// non-decreasing time order and the final clock equals the max time.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewScheduler()
		var fired []float64
		maxT := 0.0
		for _, r := range raw {
			at := float64(r) / 16
			if at > maxT {
				maxT = at
			}
			s.At(at, func() { fired = append(fired, at) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return s.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of timers fires exactly the
// complement.
func TestCancelSubsetProperty(t *testing.T) {
	src := rng.New(99)
	f := func(n uint8) bool {
		count := int(n%50) + 1
		s := NewScheduler()
		firedSet := make(map[int]bool)
		timers := make([]Timer, count)
		for i := 0; i < count; i++ {
			i := i
			timers[i] = s.At(float64(i%10), func() { firedSet[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < count; i++ {
			if src.Bernoulli(0.5) {
				cancelled[i] = true
				s.Cancel(timers[i])
			}
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			if firedSet[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The exponential-interarrival chain below exercises the kernel the way the
// network simulator uses it, and checks the resulting event count against
// the analytic expectation.
func TestPoissonArrivalChain(t *testing.T) {
	s := NewScheduler()
	src := rng.New(7)
	const rate = 2.0
	const horizon = 10000.0
	count := 0
	var arrive func()
	arrive = func() {
		if s.Now() >= horizon {
			return
		}
		count++
		s.After(src.ExponentialRate(rate), arrive)
	}
	s.After(src.ExponentialRate(rate), arrive)
	if err := s.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	want := rate * horizon
	if math.Abs(float64(count)-want) > 4*math.Sqrt(want) {
		t.Fatalf("Poisson chain produced %d events, want ≈ %v", count, want)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := NewScheduler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, func() {})
		s.Step()
	}
}

// TestResetReplaysIdentically is the drain-and-rearm property: a scheduler
// that ran a full workload and was Reset must replay a fresh workload exactly
// as a brand-new scheduler would — same firing order, same clock, same
// counters — with stale Timer handles from before the reset gone inert.
func TestResetReplaysIdentically(t *testing.T) {
	workload := func(s *Scheduler, seed uint64) (order []float64, stale []Timer) {
		src := rng.New(seed)
		for i := 0; i < 40; i++ {
			at := 50 * src.Float64()
			stale = append(stale, s.At(at, func() { order = append(order, at) }))
		}
		// Cancel a deterministic subset so the free list sees churn.
		for i, tm := range stale {
			if i%3 == 0 {
				s.Cancel(tm)
			}
		}
		if err := s.Run(); err != nil {
			t.Fatalf("workload run: %v", err)
		}
		return order, stale
	}

	fresh := NewScheduler()
	wantOrder, _ := workload(fresh, 42)
	wantNow, wantFired := fresh.Now(), fresh.Fired()

	reused := NewScheduler()
	_, stale := workload(reused, 7) // different seed: different churn pattern
	reused.Stop()
	reused.Reset()

	if reused.Now() != 0 || reused.Fired() != 0 || reused.Pending() != 0 || reused.Stopped() {
		t.Fatalf("Reset left state behind: now=%v fired=%d pending=%d stopped=%v",
			reused.Now(), reused.Fired(), reused.Pending(), reused.Stopped())
	}
	gotOrder, _ := workload(reused, 42)
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("reset scheduler fired %d events, fresh fired %d", len(gotOrder), len(wantOrder))
	}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("event %d fired at %v on reset scheduler, %v on fresh", i, gotOrder[i], wantOrder[i])
		}
	}
	if reused.Now() != wantNow || reused.Fired() != wantFired {
		t.Fatalf("reset scheduler clock/counter diverged: now %v vs %v, fired %d vs %d",
			reused.Now(), wantNow, reused.Fired(), wantFired)
	}

	// Handles issued before the reset are inert, even though their nodes were
	// recycled into the replay workload.
	for _, tm := range stale {
		if reused.Cancel(tm) || reused.Reschedule(tm, 99) {
			t.Fatal("stale pre-reset timer handle still live after Reset")
		}
	}
}

// TestResetMidRunDrainsQueue resets with timers still pending (the RunUntil
// case) and verifies the queued events are dropped, not replayed.
func TestResetMidRunDrainsQueue(t *testing.T) {
	s := NewScheduler()
	lateFired := false
	s.At(1, func() {})
	s.At(100, func() { lateFired = true })
	if err := s.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending before reset = %d, want 1", s.Pending())
	}
	s.Reset()
	if s.Pending() != 0 {
		t.Fatalf("pending after reset = %d, want 0", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if lateFired {
		t.Fatal("event queued before Reset fired after it")
	}
}

// BenchmarkResetReuse measures the steady-state cost of the reset cycle the
// engine pays between replicates: schedule a burst, run it, reset.
func BenchmarkResetReuse(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			s.At(float64(j), func() {})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		s.Reset()
	}
}
