package sim

// Differential check of the refactored kernel against the pre-refactor
// container/heap kernel (legacy_kernel_test.go): randomized workloads of
// schedules, cancels, reschedules and periodic probes — including
// same-instant ties and actions taken from inside firing callbacks — must
// produce the identical fired-event sequence on both, and every
// Cancel/Reschedule call must report the identical outcome. This is the
// determinism contract the refactor rides on: identical (time, seq) total
// order means sweep tables, trace goldens and scenario fingerprint cache
// keys stay byte-identical.

import (
	"testing"

	"tempriv/internal/rng"
)

// diffAction is one scripted side effect a firing event performs.
type diffAction struct {
	kind   int // 0 schedule, 1 cancel, 2 reschedule
	target int // timer id for cancel/reschedule
	delay  float64
	newID  int          // id of the timer a schedule action creates
	script []diffAction // the created timer's own script
}

// diffEvent is one initially scheduled timer.
type diffEvent struct {
	id     int
	when   float64
	script []diffAction
}

// diffProgram is a full randomized workload.
type diffProgram struct {
	initial []diffEvent
	probes  []float64 // probe intervals; probe i logs id -(i+1)
}

// diffLog records what a kernel did: the fired sequence and each
// cancel/reschedule outcome in call order.
type diffLog struct {
	firedAt  []float64
	firedID  []int
	outcomes []bool
	finalNow float64
	count    uint64
}

// genProgram derives a random workload from src. Delays come from a
// half-unit grid including zero, so same-instant ties are common.
func genProgram(src *rng.Source) diffProgram {
	var p diffProgram
	nextID := 0
	gridDelay := func() float64 { return float64(src.Intn(9)) * 0.5 }
	var genScript func(depth int) []diffAction
	genScript = func(depth int) []diffAction {
		n := src.Intn(4)
		out := make([]diffAction, 0, n)
		for i := 0; i < n; i++ {
			switch k := src.Intn(3); k {
			case 0:
				if depth >= 2 {
					continue
				}
				a := diffAction{kind: 0, delay: gridDelay(), newID: nextID}
				nextID++
				a.script = genScript(depth + 1)
				out = append(out, a)
			case 1, 2:
				// Target any id allocated so far; some will already have
				// fired or been cancelled, some not created yet — each case
				// must behave identically on both kernels.
				if nextID == 0 {
					continue
				}
				out = append(out, diffAction{kind: k, target: src.Intn(nextID), delay: gridDelay()})
			}
		}
		return out
	}
	for i, n := 0, 5+src.Intn(40); i < n; i++ {
		e := diffEvent{id: nextID, when: gridDelay() + gridDelay()}
		nextID++
		e.script = genScript(0)
		p.initial = append(p.initial, e)
	}
	for i, n := 0, src.Intn(3); i < n; i++ {
		p.probes = append(p.probes, 0.5+float64(src.Intn(4))*0.5)
	}
	return p
}

// runProgramNew replays the workload on the refactored kernel.
func runProgramNew(p diffProgram) diffLog {
	s := NewScheduler()
	var lg diffLog
	handles := make(map[int]Timer)
	var exec func(id int, script []diffAction) func()
	exec = func(id int, script []diffAction) func() {
		return func() {
			lg.firedAt = append(lg.firedAt, s.Now())
			lg.firedID = append(lg.firedID, id)
			for _, a := range script {
				switch a.kind {
				case 0:
					handles[a.newID] = s.After(a.delay, exec(a.newID, a.script))
				case 1:
					h, ok := handles[a.target]
					lg.outcomes = append(lg.outcomes, ok && s.Cancel(h))
				case 2:
					h, ok := handles[a.target]
					lg.outcomes = append(lg.outcomes, ok && s.Reschedule(h, s.Now()+a.delay))
				}
			}
		}
	}
	for _, e := range p.initial {
		handles[e.id] = s.At(e.when, exec(e.id, e.script))
	}
	for i, interval := range p.probes {
		id := -(i + 1)
		s.Every(interval, func(now float64) {
			lg.firedAt = append(lg.firedAt, now)
			lg.firedID = append(lg.firedID, id)
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	lg.finalNow = s.Now()
	lg.count = s.Fired()
	return lg
}

// runProgramLegacy replays the workload on the container/heap kernel.
func runProgramLegacy(p diffProgram) diffLog {
	s := newLegacyScheduler()
	var lg diffLog
	handles := make(map[int]*legacyTimer)
	var exec func(id int, script []diffAction) func()
	exec = func(id int, script []diffAction) func() {
		return func() {
			lg.firedAt = append(lg.firedAt, s.Now())
			lg.firedID = append(lg.firedID, id)
			for _, a := range script {
				switch a.kind {
				case 0:
					handles[a.newID] = s.After(a.delay, exec(a.newID, a.script))
				case 1:
					h, ok := handles[a.target]
					lg.outcomes = append(lg.outcomes, ok && s.Cancel(h))
				case 2:
					h, ok := handles[a.target]
					lg.outcomes = append(lg.outcomes, ok && s.Reschedule(h, s.Now()+a.delay))
				}
			}
		}
	}
	for _, e := range p.initial {
		handles[e.id] = s.At(e.when, exec(e.id, e.script))
	}
	for i, interval := range p.probes {
		id := -(i + 1)
		s.Every(interval, func(now float64) {
			lg.firedAt = append(lg.firedAt, now)
			lg.firedID = append(lg.firedID, id)
		})
	}
	if err := s.Run(); err != nil {
		panic(err)
	}
	lg.finalNow = s.Now()
	lg.count = s.Fired()
	return lg
}

func TestDifferentialKernelEquivalence(t *testing.T) {
	src := rng.New(20260805)
	for trial := 0; trial < 300; trial++ {
		p := genProgram(src.SplitIndexed("trial", trial))
		got := runProgramNew(p)
		want := runProgramLegacy(p)
		if got.count != want.count || got.finalNow != want.finalNow {
			t.Fatalf("trial %d: fired %d events ending at %v, legacy fired %d ending at %v",
				trial, got.count, got.finalNow, want.count, want.finalNow)
		}
		if len(got.firedID) != len(want.firedID) {
			t.Fatalf("trial %d: %d fired log entries vs legacy %d", trial, len(got.firedID), len(want.firedID))
		}
		for i := range got.firedID {
			if got.firedID[i] != want.firedID[i] || got.firedAt[i] != want.firedAt[i] {
				t.Fatalf("trial %d: fire %d = (t=%v, id=%d), legacy (t=%v, id=%d)",
					trial, i, got.firedAt[i], got.firedID[i], want.firedAt[i], want.firedID[i])
			}
		}
		if len(got.outcomes) != len(want.outcomes) {
			t.Fatalf("trial %d: %d op outcomes vs legacy %d", trial, len(got.outcomes), len(want.outcomes))
		}
		for i := range got.outcomes {
			if got.outcomes[i] != want.outcomes[i] {
				t.Fatalf("trial %d: op %d outcome %v, legacy %v", trial, i, got.outcomes[i], want.outcomes[i])
			}
		}
	}
}
