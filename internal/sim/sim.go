// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate underneath every experiment in this
// repository: the paper evaluates RCAD with "a detailed event-driven
// simulator" (§5), and this package is that simulator's engine. It keeps a
// future-event list in a binary heap ordered by (time, sequence number), so
// two events scheduled for the same instant always fire in the order they
// were scheduled — runs are bit-for-bit reproducible.
//
// Simulated time is a float64 in abstract "time units", matching the paper's
// parameterisation (per-hop transmission delay τ = 1 time unit, buffer delay
// mean 1/µ = 30 time units, and so on).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// rather than by draining the event list or reaching the horizon.
var ErrStopped = errors.New("sim: stopped")

// Timer is a handle to a scheduled event. The zero value is not meaningful;
// Timers are created by Scheduler.At and Scheduler.After.
type Timer struct {
	when      float64
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
	fired     bool
	periodic  bool // owned by a Probe; cannot keep the simulation alive
}

// When returns the simulated time at which the timer is (or was) scheduled
// to fire.
func (t *Timer) When() float64 { return t.when }

// Active reports whether the timer is still pending: neither fired nor
// cancelled.
func (t *Timer) Active() bool { return !t.cancelled && !t.fired }

// eventQueue is a min-heap of timers ordered by (when, seq).
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t, ok := x.(*Timer)
	if !ok {
		panic(fmt.Sprintf("sim: eventQueue.Push got %T, want *Timer", x))
	}
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil // let the timer be collected
	t.index = -1
	*q = old[:n-1]
	return t
}

// Scheduler owns the simulation clock and the future-event list. It is not
// safe for concurrent use: a simulation runs on a single goroutine, and the
// sweep harness parallelises across independent Scheduler instances instead.
type Scheduler struct {
	now     float64
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
	host    *processHost // lazily created by Spawn

	// periodicPending counts queued periodic timers. When it equals the
	// queue length, only probes remain and the simulation is over: Step
	// drains them instead of letting them tick forever.
	periodicPending int
}

// NewScheduler returns a Scheduler with the clock at time 0 and an empty
// event list.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() float64 { return s.now }

// Pending returns the number of events still queued (including events that
// were cancelled but not yet removed from the heap — cancellation is lazy).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events that have been executed.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute simulated time when. Scheduling in the
// past (when < Now) is a programmer error and panics; scheduling exactly at
// Now is allowed and fires after all currently queued events at Now with a
// lower sequence number. fn must not be nil.
func (s *Scheduler) At(when float64, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if math.IsNaN(when) {
		panic("sim: At called with NaN time")
	}
	if when < s.now {
		panic(fmt.Sprintf("sim: At called with time %v before now %v", when, s.now))
	}
	t := &Timer{when: when, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, t)
	return t
}

// After schedules fn to run delay time units from now. Negative delays
// panic.
func (s *Scheduler) After(delay float64, fn func()) *Timer {
	return s.At(s.now+delay, fn)
}

// Cancel removes a pending timer. It reports whether the timer was still
// pending (true) or had already fired or been cancelled (false).
// Cancellation is O(log n) and immediate: the timer is removed from the
// heap, not lazily skipped.
func (s *Scheduler) Cancel(t *Timer) bool {
	if t == nil || !t.Active() {
		return false
	}
	t.cancelled = true
	if t.index >= 0 {
		heap.Remove(&s.queue, t.index)
		if t.periodic {
			s.periodicPending--
		}
	}
	return true
}

// Reschedule moves a pending timer to a new absolute time, preserving its
// callback. It reports whether the move happened (false if the timer already
// fired or was cancelled). The rescheduled event receives a fresh sequence
// number, so it fires after same-time events scheduled before the move.
func (s *Scheduler) Reschedule(t *Timer, when float64) bool {
	if t == nil || !t.Active() {
		return false
	}
	if when < s.now {
		panic(fmt.Sprintf("sim: Reschedule to time %v before now %v", when, s.now))
	}
	t.when = when
	t.seq = s.seq
	s.seq++
	heap.Fix(&s.queue, t.index)
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false when the
// queue is empty or the scheduler is stopped).
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	for len(s.queue) > 0 {
		if s.periodicPending == len(s.queue) && s.queue[0].when > s.now {
			// Only periodic probes remain, none due at the current instant:
			// the simulation proper has drained, so retire them rather than
			// ticking forever. Probes due exactly now still fire first, so
			// the final instant of a run gets sampled.
			s.drainPeriodic()
			return false
		}
		t, ok := heap.Pop(&s.queue).(*Timer)
		if !ok {
			panic("sim: event queue held a non-Timer element")
		}
		if t.periodic {
			s.periodicPending--
		}
		if t.cancelled {
			continue // defensive: cancelled timers are removed eagerly
		}
		s.now = t.when
		t.fired = true
		s.fired++
		t.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, then shuts down any spawned
// processes and joins their goroutines. It returns the first process-body
// error if one stopped the simulation, ErrStopped if halted by Stop, and
// nil otherwise.
func (s *Scheduler) Run() error {
	for s.Step() {
	}
	s.Shutdown()
	if err := s.processErr(); err != nil {
		return err
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

// RunUntil executes events with timestamps <= horizon, then advances the
// clock to horizon. Events after the horizon remain queued. It returns
// ErrStopped if halted by Stop.
func (s *Scheduler) RunUntil(horizon float64) error {
	for !s.stopped && len(s.queue) > 0 && s.queue[0].when <= horizon {
		s.Step()
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// drainPeriodic retires every queued timer. It is only called when all
// remaining timers are periodic (periodicPending == len(queue)).
func (s *Scheduler) drainPeriodic() {
	for _, t := range s.queue {
		t.cancelled = true
		t.index = -1
	}
	s.queue = s.queue[:0]
	s.periodicPending = 0
}

// Probe is a handle to a periodic callback created by Every. Probes are
// second-class events: they fire every interval while ordinary events are
// still pending, but once only probes remain in the queue the scheduler
// retires them, so a probe never extends a simulation beyond its last real
// event. Stop cancels the probe early.
type Probe struct {
	s        *Scheduler
	interval float64
	fn       func(now float64)
	timer    *Timer
	stopped  bool
}

// Every schedules fn to run every interval time units, first at Now +
// interval. It panics on a nil fn or a non-positive, NaN or infinite
// interval. The callback receives the firing time.
func (s *Scheduler) Every(interval float64, fn func(now float64)) *Probe {
	if fn == nil {
		panic("sim: Every called with nil fn")
	}
	if !(interval > 0) || math.IsInf(interval, 1) {
		panic(fmt.Sprintf("sim: Every called with invalid interval %v", interval))
	}
	p := &Probe{s: s, interval: interval, fn: fn}
	p.arm()
	return p
}

func (p *Probe) arm() {
	p.timer = p.s.At(p.s.now+p.interval, p.fire)
	p.timer.periodic = true
	p.s.periodicPending++
}

func (p *Probe) fire() {
	p.fn(p.s.now)
	if !p.stopped && !p.s.stopped {
		p.arm()
	}
}

// Stop cancels the probe; it reports whether the probe was still running.
func (p *Probe) Stop() bool {
	if p.stopped {
		return false
	}
	p.stopped = true
	return p.s.Cancel(p.timer)
}

// Active reports whether the probe is still scheduled to fire.
func (p *Probe) Active() bool { return !p.stopped && p.timer.Active() }

// Stop halts the simulation: subsequent Step calls are no-ops and a running
// Run/RunUntil loop returns ErrStopped after the current event completes.
// It is intended to be called from inside an event callback.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }
