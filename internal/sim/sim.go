// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate underneath every experiment in this
// repository: the paper evaluates RCAD with "a detailed event-driven
// simulator" (§5), and this package is that simulator's engine. It keeps the
// future-event list in an implicit 4-ary min-heap ordered by (time, sequence
// number), so two events scheduled for the same instant always fire in the
// order they were scheduled — runs are bit-for-bit reproducible.
//
// The heap stores typed timer nodes directly (no interface boxing, no
// container/heap indirection) and recycles fired or cancelled nodes through
// a per-scheduler free list, so steady-state scheduling — the At/fire/At
// churn every simulated packet generates — allocates nothing. Timer handles
// carry a generation number checked against the node they reference: a
// handle to a fired or cancelled timer can never observe, cancel or
// reschedule the recycled node's next occupant.
//
// Simulated time is a float64 in abstract "time units", matching the paper's
// parameterisation (per-hop transmission delay τ = 1 time unit, buffer delay
// mean 1/µ = 30 time units, and so on).
package sim

import (
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// rather than by draining the event list or reaching the horizon.
var ErrStopped = errors.New("sim: stopped")

// timerNode is the pooled storage behind a Timer handle. Nodes live on the
// scheduler's heap while pending and on its free list afterwards; gen is
// bumped on every release so stale handles go inert.
type timerNode struct {
	when     float64
	seq      uint64
	gen      uint64
	fn       func()
	index    int32 // heap index, -1 when not queued
	periodic bool  // owned by a Probe; cannot keep the simulation alive
}

// Timer is a handle to a scheduled event, created by Scheduler.At and
// Scheduler.After. It is a small value: copy it freely. The zero value is an
// inert handle — Active reports false and Cancel/Reschedule are no-ops.
//
// The handle stays valid across Reschedule. Once the event fires or is
// cancelled its node returns to the scheduler's free list; the handle then
// permanently reports inactive, even after the node is recycled for a new
// timer.
type Timer struct {
	node *timerNode
	gen  uint64
	when float64
}

// When returns the simulated time at which the timer is scheduled to fire
// (tracking Reschedule while the timer is pending). After the timer fires or
// is cancelled it reports the last schedule time the handle observed.
func (t Timer) When() float64 {
	if n := t.node; n != nil && n.gen == t.gen {
		return n.when
	}
	return t.when
}

// Active reports whether the timer is still pending: neither fired nor
// cancelled.
func (t Timer) Active() bool {
	n := t.node
	return n != nil && n.gen == t.gen && n.index >= 0
}

// Scheduler owns the simulation clock and the future-event list. It is not
// safe for concurrent use: a simulation runs on a single goroutine, and the
// sweep harness parallelises across independent Scheduler instances instead.
type Scheduler struct {
	now     float64
	seq     uint64
	queue   []*timerNode // implicit 4-ary min-heap on (when, seq)
	free    []*timerNode // recycled nodes; steady-state At allocates nothing
	stopped bool
	fired   uint64
	host    *processHost // lazily created by Spawn

	// periodicPending counts queued periodic timers. When it equals the
	// queue length, only probes remain and the simulation is over: Step
	// drains them instead of letting them tick forever.
	periodicPending int
}

// NewScheduler returns a Scheduler with the clock at time 0 and an empty
// event list.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() float64 { return s.now }

// Reset drains the scheduler and rearms it for a fresh run: the clock returns
// to 0, the sequence and fired counters restart, any still-queued timers are
// cancelled, and a Stop is cleared. The timer-node free list survives — that
// is the point: a reset scheduler re-enters steady state with its pools warm,
// so the next run's At/fire/At churn allocates nothing from the first event.
// Every Timer handle issued before the reset goes inert (the generation bump
// on release), exactly as if it had been cancelled.
//
// Reset must not be called from inside an event callback; it is a
// between-runs lifecycle operation, the drain half of the engine's
// drain-and-rearm cycle.
func (s *Scheduler) Reset() {
	s.Shutdown() // joins any spawned processes; a no-op without Spawn
	s.host = nil
	for i, t := range s.queue {
		s.queue[i] = nil
		s.release(t)
	}
	s.queue = s.queue[:0]
	s.periodicPending = 0
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.stopped = false
}

// Pending returns the number of events still queued. Cancellation is eager —
// Cancel removes the timer from the heap immediately — so cancelled events
// are never counted here.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events that have been executed.
func (s *Scheduler) Fired() uint64 { return s.fired }

// alloc takes a node from the free list, or grows the pool.
func (s *Scheduler) alloc() *timerNode {
	if n := len(s.free); n > 0 {
		t := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return t
	}
	return &timerNode{index: -1}
}

// release retires a fired or cancelled node to the free list. The generation
// bump is what makes every outstanding handle to it inert.
func (s *Scheduler) release(t *timerNode) {
	t.gen++
	t.fn = nil
	t.periodic = false
	t.index = -1
	s.free = append(s.free, t)
}

// At schedules fn to run at absolute simulated time when. Scheduling in the
// past (when < Now) is a programmer error and panics; scheduling exactly at
// Now is allowed and fires after all currently queued events at Now with a
// lower sequence number. fn must not be nil.
func (s *Scheduler) At(when float64, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if math.IsNaN(when) {
		panic("sim: At called with NaN time")
	}
	if when < s.now {
		panic(fmt.Sprintf("sim: At called with time %v before now %v", when, s.now))
	}
	t := s.alloc()
	t.when = when
	t.seq = s.seq
	t.fn = fn
	s.seq++
	s.heapPush(t)
	return Timer{node: t, gen: t.gen, when: when}
}

// After schedules fn to run delay time units from now. Negative delays
// panic.
func (s *Scheduler) After(delay float64, fn func()) Timer {
	return s.At(s.now+delay, fn)
}

// Cancel removes a pending timer. It reports whether the timer was still
// pending (true) or had already fired or been cancelled (false).
// Cancellation is O(log n) and eager: the timer is removed from the heap
// immediately and its node recycled, not lazily skipped.
func (s *Scheduler) Cancel(t Timer) bool {
	n := t.node
	if n == nil || n.gen != t.gen || n.index < 0 {
		return false
	}
	s.heapRemove(int(n.index))
	if n.periodic {
		s.periodicPending--
	}
	s.release(n)
	return true
}

// Reschedule moves a pending timer to a new absolute time, preserving its
// callback. It reports whether the move happened (false if the timer already
// fired or was cancelled). The rescheduled event receives a fresh sequence
// number, so it fires after same-time events scheduled before the move. The
// handle remains valid for the moved event.
func (s *Scheduler) Reschedule(t Timer, when float64) bool {
	n := t.node
	if n == nil || n.gen != t.gen || n.index < 0 {
		return false
	}
	if when < s.now {
		panic(fmt.Sprintf("sim: Reschedule to time %v before now %v", when, s.now))
	}
	n.when = when
	n.seq = s.seq
	s.seq++
	s.heapFix(int(n.index))
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false when the
// queue is empty or the scheduler is stopped).
func (s *Scheduler) Step() bool {
	if s.stopped || len(s.queue) == 0 {
		return false
	}
	if s.periodicPending == len(s.queue) && s.queue[0].when > s.now {
		// Only periodic probes remain, none due at the current instant:
		// the simulation proper has drained, so retire them rather than
		// ticking forever. Probes due exactly now still fire first, so
		// the final instant of a run gets sampled.
		s.drainPeriodic()
		return false
	}
	t := s.heapPop()
	if t.periodic {
		s.periodicPending--
	}
	s.now = t.when
	fn := t.fn
	s.fired++
	// Release before running fn: the node is immediately reusable, so a
	// callback that re-arms itself (the dominant pattern — traffic chains,
	// buffer releases, probes) recycles its own node without touching the
	// heap's tail. The handle the callback may still hold went inert with
	// the generation bump.
	s.release(t)
	fn()
	return true
}

// Run executes events until the queue is empty, then shuts down any spawned
// processes and joins their goroutines. It returns the first process-body
// error if one stopped the simulation, ErrStopped if halted by Stop, and
// nil otherwise.
func (s *Scheduler) Run() error {
	for s.Step() {
	}
	s.Shutdown()
	if err := s.processErr(); err != nil {
		return err
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

// RunUntil executes events with timestamps <= horizon, then advances the
// clock to horizon. Events after the horizon remain queued. It returns
// ErrStopped if halted by Stop.
func (s *Scheduler) RunUntil(horizon float64) error {
	for !s.stopped && len(s.queue) > 0 && s.queue[0].when <= horizon {
		s.Step()
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// drainPeriodic retires every queued timer. It is only called when all
// remaining timers are periodic (periodicPending == len(queue)).
func (s *Scheduler) drainPeriodic() {
	for i, t := range s.queue {
		s.queue[i] = nil
		s.release(t)
	}
	s.queue = s.queue[:0]
	s.periodicPending = 0
}

// nodeLess orders the heap: earlier time first, scheduling order breaking
// ties. seq is unique, so the order is total and runs are reproducible.
func nodeLess(a, b *timerNode) bool {
	return a.when < b.when || (a.when == b.when && a.seq < b.seq)
}

// The event queue is an implicit 4-ary min-heap: children of i are
// 4i+1..4i+4. Compared with the binary heap it halves the tree depth, so
// the sift loops — the kernel's hottest code — touch fewer cache lines per
// operation; the wider child scan is four pointer compares against adjacent
// slots. All sift loops hole-shift instead of swapping: the moving node is
// written once at its final slot.

// heapPush inserts t and restores heap order.
func (s *Scheduler) heapPush(t *timerNode) {
	i := len(s.queue)
	s.queue = append(s.queue, t)
	t.index = int32(i)
	s.siftUp(i)
}

// heapPop removes and returns the minimum node.
func (s *Scheduler) heapPop() *timerNode {
	q := s.queue
	t := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	s.queue = q[:n]
	if n > 0 {
		q[0].index = 0
		s.siftDown(0)
	}
	t.index = -1
	return t
}

// heapRemove deletes the node at index i (eager cancellation).
func (s *Scheduler) heapRemove(i int) {
	q := s.queue
	t := q[i]
	n := len(q) - 1
	if i != n {
		q[i] = q[n]
		q[n] = nil
		s.queue = q[:n]
		q[i].index = int32(i)
		s.heapFix(i)
	} else {
		q[n] = nil
		s.queue = q[:n]
	}
	t.index = -1
}

// heapFix restores heap order after the node at index i changed key
// (Reschedule) or was replaced (heapRemove).
func (s *Scheduler) heapFix(i int) {
	if !s.siftDown(i) {
		s.siftUp(i)
	}
}

// siftUp moves the node at index i toward the root until its parent is not
// greater.
func (s *Scheduler) siftUp(i int) {
	q := s.queue
	t := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !nodeLess(t, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = int32(i)
		i = p
	}
	q[i] = t
	t.index = int32(i)
}

// siftDown moves the node at index i toward the leaves until no child is
// smaller. It reports whether the node moved.
func (s *Scheduler) siftDown(i int) bool {
	q := s.queue
	n := len(q)
	t := q[i]
	start := i
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if nodeLess(q[j], q[best]) {
				best = j
			}
		}
		if !nodeLess(q[best], t) {
			break
		}
		q[i] = q[best]
		q[i].index = int32(i)
		i = best
	}
	q[i] = t
	t.index = int32(i)
	return i != start
}

// Probe is a handle to a periodic callback created by Every. Probes are
// second-class events: they fire every interval while ordinary events are
// still pending, but once only probes remain in the queue the scheduler
// retires them, so a probe never extends a simulation beyond its last real
// event. Stop cancels the probe early.
type Probe struct {
	s        *Scheduler
	interval float64
	fn       func(now float64)
	fire     func() // pre-bound tick, so periodic re-arming allocates nothing
	timer    Timer
	stopped  bool
}

// Every schedules fn to run every interval time units, first at Now +
// interval. It panics on a nil fn or a non-positive, NaN or infinite
// interval. The callback receives the firing time.
func (s *Scheduler) Every(interval float64, fn func(now float64)) *Probe {
	if fn == nil {
		panic("sim: Every called with nil fn")
	}
	if !(interval > 0) || math.IsInf(interval, 1) {
		panic(fmt.Sprintf("sim: Every called with invalid interval %v", interval))
	}
	p := &Probe{s: s, interval: interval, fn: fn}
	p.fire = p.tick
	p.arm()
	return p
}

func (p *Probe) arm() {
	p.timer = p.s.At(p.s.now+p.interval, p.fire)
	p.timer.node.periodic = true
	p.s.periodicPending++
}

func (p *Probe) tick() {
	p.fn(p.s.now)
	if !p.stopped && !p.s.stopped {
		p.arm()
	}
}

// Stop cancels the probe; it reports whether the probe was still running.
func (p *Probe) Stop() bool {
	if p.stopped {
		return false
	}
	p.stopped = true
	return p.s.Cancel(p.timer)
}

// Active reports whether the probe is still scheduled to fire.
func (p *Probe) Active() bool { return !p.stopped && p.timer.Active() }

// Stop halts the simulation: subsequent Step calls are no-ops and a running
// Run/RunUntil loop returns ErrStopped after the current event completes.
// It is intended to be called from inside an event callback.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }
