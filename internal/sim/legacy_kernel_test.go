package sim

// The pre-refactor kernel — container/heap over interface-boxed *legacyTimer
// with a binary heap and per-event allocation — kept verbatim as a test
// double. The differential tests in differential_test.go replay randomized
// workloads against both kernels and require identical fired-event
// sequences, and the benchmarks in kernel_bench_test.go use it as the
// baseline the 4-ary pooled kernel is measured against.

import (
	"container/heap"
	"fmt"
	"math"
)

type legacyTimer struct {
	when      float64
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
	fired     bool
	periodic  bool
}

func (t *legacyTimer) active() bool { return !t.cancelled && !t.fired }

type legacyQueue []*legacyTimer

func (q legacyQueue) Len() int { return len(q) }

func (q legacyQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q legacyQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *legacyQueue) Push(x any) {
	t, ok := x.(*legacyTimer)
	if !ok {
		panic(fmt.Sprintf("sim: legacyQueue.Push got %T, want *legacyTimer", x))
	}
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *legacyQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}

type legacyScheduler struct {
	now             float64
	seq             uint64
	queue           legacyQueue
	stopped         bool
	fired           uint64
	periodicPending int
}

func newLegacyScheduler() *legacyScheduler { return &legacyScheduler{} }

func (s *legacyScheduler) Now() float64 { return s.now }

func (s *legacyScheduler) Fired() uint64 { return s.fired }

func (s *legacyScheduler) At(when float64, fn func()) *legacyTimer {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if math.IsNaN(when) {
		panic("sim: At called with NaN time")
	}
	if when < s.now {
		panic(fmt.Sprintf("sim: At called with time %v before now %v", when, s.now))
	}
	t := &legacyTimer{when: when, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, t)
	return t
}

func (s *legacyScheduler) After(delay float64, fn func()) *legacyTimer {
	return s.At(s.now+delay, fn)
}

func (s *legacyScheduler) Cancel(t *legacyTimer) bool {
	if t == nil || !t.active() {
		return false
	}
	t.cancelled = true
	if t.index >= 0 {
		heap.Remove(&s.queue, t.index)
		if t.periodic {
			s.periodicPending--
		}
	}
	return true
}

func (s *legacyScheduler) Reschedule(t *legacyTimer, when float64) bool {
	if t == nil || !t.active() {
		return false
	}
	if when < s.now {
		panic(fmt.Sprintf("sim: Reschedule to time %v before now %v", when, s.now))
	}
	t.when = when
	t.seq = s.seq
	s.seq++
	heap.Fix(&s.queue, t.index)
	return true
}

func (s *legacyScheduler) Step() bool {
	if s.stopped {
		return false
	}
	for len(s.queue) > 0 {
		if s.periodicPending == len(s.queue) && s.queue[0].when > s.now {
			s.drainPeriodic()
			return false
		}
		t, ok := heap.Pop(&s.queue).(*legacyTimer)
		if !ok {
			panic("sim: event queue held a non-Timer element")
		}
		if t.periodic {
			s.periodicPending--
		}
		if t.cancelled {
			continue
		}
		s.now = t.when
		t.fired = true
		s.fired++
		t.fn()
		return true
	}
	return false
}

func (s *legacyScheduler) Run() error {
	for s.Step() {
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

func (s *legacyScheduler) drainPeriodic() {
	for _, t := range s.queue {
		t.cancelled = true
		t.index = -1
	}
	s.queue = s.queue[:0]
	s.periodicPending = 0
}

type legacyProbe struct {
	s        *legacyScheduler
	interval float64
	fn       func(now float64)
	timer    *legacyTimer
	stopped  bool
}

func (s *legacyScheduler) Every(interval float64, fn func(now float64)) *legacyProbe {
	if fn == nil {
		panic("sim: Every called with nil fn")
	}
	if !(interval > 0) || math.IsInf(interval, 1) {
		panic(fmt.Sprintf("sim: Every called with invalid interval %v", interval))
	}
	p := &legacyProbe{s: s, interval: interval, fn: fn}
	p.arm()
	return p
}

func (p *legacyProbe) arm() {
	p.timer = p.s.At(p.s.now+p.interval, p.fire)
	p.timer.periodic = true
	p.s.periodicPending++
}

func (p *legacyProbe) fire() {
	p.fn(p.s.now)
	if !p.stopped && !p.s.stopped {
		p.arm()
	}
}

func (p *legacyProbe) Stop() bool {
	if p.stopped {
		return false
	}
	p.stopped = true
	return p.s.Cancel(p.timer)
}
