package sim

// Microbenchmarks for the event kernel's hot paths, each paired with its
// pre-refactor container/heap baseline (legacy_kernel_test.go) so the
// speedup is measurable at any commit:
//
//	go test -bench 'Kernel|Legacy' -benchmem ./internal/sim
//
// The Kernel variants must report 0 B/op in steady state — enforced by
// TestKernelSteadyStateAllocationFree below, which CI runs on every push.

import (
	"testing"

	"tempriv/internal/rng"
)

var noop = func() {}

// BenchmarkKernelScheduleFire measures the tightest loop a simulation
// drives: schedule one event, fire it.
func BenchmarkKernelScheduleFire(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, noop)
		s.Step()
	}
}

// BenchmarkLegacyScheduleFire is the container/heap baseline for
// BenchmarkKernelScheduleFire.
func BenchmarkLegacyScheduleFire(b *testing.B) {
	s := newLegacyScheduler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1, noop)
		s.Step()
	}
}

// benchDelays returns deterministic pseudo-random delays for the drain and
// churn benchmarks, shared by both kernels.
func benchDelays(n int) []float64 {
	src := rng.New(42)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(src.Intn(1000)) / 16
	}
	return out
}

const benchQueueDepth = 1024

// BenchmarkKernelScheduleDrain measures heap behaviour at depth: fill the
// queue with 1024 scattered events, then drain it. Reported per event.
func BenchmarkKernelScheduleDrain(b *testing.B) {
	delays := benchDelays(benchQueueDepth)
	s := NewScheduler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range delays {
			s.After(d, noop)
		}
		for s.Step() {
		}
	}
	b.ReportMetric(float64(b.N*benchQueueDepth)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkLegacyScheduleDrain is the container/heap baseline for
// BenchmarkKernelScheduleDrain.
func BenchmarkLegacyScheduleDrain(b *testing.B) {
	delays := benchDelays(benchQueueDepth)
	s := newLegacyScheduler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range delays {
			s.After(d, noop)
		}
		for s.Step() {
		}
	}
	b.ReportMetric(float64(b.N*benchQueueDepth)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkKernelChurn measures the ARQ/buffer pattern: against a standing
// queue of 256 events, each op cancels one, reschedules one, schedules a
// replacement and fires the earliest.
func BenchmarkKernelChurn(b *testing.B) {
	delays := benchDelays(4096)
	s := NewScheduler()
	const depth = 256
	handles := make([]Timer, depth)
	for i := range handles {
		handles[i] = s.After(delays[i]+1, noop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := delays[i%len(delays)] + 1
		j := i % depth
		s.Cancel(handles[j])
		s.Reschedule(handles[(j+1)%depth], s.Now()+d)
		handles[j] = s.After(d, noop)
		s.Step()
	}
	b.StopTimer()
	for s.Step() {
	}
}

// BenchmarkLegacyChurn is the container/heap baseline for
// BenchmarkKernelChurn.
func BenchmarkLegacyChurn(b *testing.B) {
	delays := benchDelays(4096)
	s := newLegacyScheduler()
	const depth = 256
	handles := make([]*legacyTimer, depth)
	for i := range handles {
		handles[i] = s.After(delays[i]+1, noop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := delays[i%len(delays)] + 1
		j := i % depth
		s.Cancel(handles[j])
		s.Reschedule(handles[(j+1)%depth], s.Now()+d)
		handles[j] = s.After(d, noop)
		s.Step()
	}
	b.StopTimer()
	for s.Step() {
	}
}

// TestKernelSteadyStateAllocationFree pins the kernel's steady-state hot
// paths at zero allocations: once the node pool is warm, schedule/fire,
// schedule/cancel and reschedule churn must not touch the heap allocator.
// This is the regression gate behind the refactor's "engine gets cheap"
// claim — a closure, boxing or pool regression fails it immediately.
func TestKernelSteadyStateAllocationFree(t *testing.T) {
	s := NewScheduler()
	// Warm the pool and the queue's backing array.
	for i := 0; i < 64; i++ {
		s.After(1, noop)
	}
	for s.Step() {
	}

	if allocs := testing.AllocsPerRun(1000, func() {
		s.After(1, noop)
		s.Step()
	}); allocs != 0 {
		t.Errorf("schedule+fire allocates %v per run, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(1000, func() {
		tm := s.After(1, noop)
		s.Cancel(tm)
	}); allocs != 0 {
		t.Errorf("schedule+cancel allocates %v per run, want 0", allocs)
	}

	tm := s.After(100, noop)
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Reschedule(tm, s.Now()+100)
	}); allocs != 0 {
		t.Errorf("reschedule allocates %v per run, want 0", allocs)
	}
	s.Cancel(tm)
}

// TestRecycledTimerHandleSafety pins the generation guard: a handle to a
// fired or cancelled timer must stay inert forever, even after its pooled
// node is recycled for an unrelated event — the double-fire/stale-packet
// hazard the timer pool must never reintroduce.
func TestRecycledTimerHandleSafety(t *testing.T) {
	s := NewScheduler()
	firedOld := 0
	old := s.At(1, func() { firedOld++ })
	if !s.Step() {
		t.Fatal("Step did not fire the first timer")
	}

	// The freed node is recycled for a new, unrelated timer.
	firedNew := 0
	fresh := s.At(2, func() { firedNew++ })
	if fresh.node != old.node {
		t.Fatal("pool did not recycle the fired timer's node (pooling broken)")
	}
	if old.Active() {
		t.Error("stale handle reports active after its node was recycled")
	}
	if s.Cancel(old) {
		t.Error("stale handle cancelled the recycled node's new timer")
	}
	if s.Reschedule(old, 50) {
		t.Error("stale handle rescheduled the recycled node's new timer")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if firedOld != 1 || firedNew != 1 {
		t.Fatalf("fired old=%d new=%d, want 1 and 1 (no double fire, no lost fire)", firedOld, firedNew)
	}

	// Same guard for a cancelled timer's handle.
	cancelled := s.At(s.Now()+1, noop)
	s.Cancel(cancelled)
	replacement := s.At(s.Now()+1, noop)
	if replacement.node != cancelled.node {
		t.Fatal("pool did not recycle the cancelled timer's node")
	}
	if cancelled.Active() || s.Cancel(cancelled) {
		t.Error("cancelled handle still operates on the recycled node")
	}
	if !replacement.Active() {
		t.Error("replacement timer inactive after stale-handle probing")
	}
	s.Cancel(replacement)
}
