package sim

import (
	"errors"
	"fmt"
	"sync"
)

// ErrTerminated is returned by Proc.Wait when the scheduler is shut down
// while the process sleeps. A process receiving it must return promptly.
var ErrTerminated = errors.New("sim: process terminated by shutdown")

// Proc is a process-oriented view of the simulation: a goroutine that
// alternates between running model code and sleeping in simulated time via
// Wait. Exactly one process goroutine runs at any instant — the kernel
// hands control to a process and blocks until it yields — so process-based
// models are as deterministic as callback-based ones.
//
// A process must eventually return from its body; a body that blocks on
// anything other than Wait deadlocks the simulation (and is a bug in the
// model, not the kernel).
type Proc struct {
	sched *Scheduler
	name  string

	resume chan error    // kernel → process: run (nil) or terminate (error)
	yield  chan struct{} // process → kernel: gone to sleep or returned
	timer  Timer
	done   bool
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.sched.Now() }

// Wait suspends the process for delay simulated time units. It returns
// ErrTerminated if the scheduler was shut down while sleeping; the process
// must then return. Negative delays panic (as Scheduler.After does).
func (p *Proc) Wait(delay float64) error {
	p.timer = p.sched.At(p.sched.Now()+delay, p.wake)
	p.yield <- struct{}{}              // hand control back to the kernel
	if err := <-p.resume; err != nil { // sleep until the kernel wakes us
		return err
	}
	return nil
}

// wake is the timer callback: transfer control to the process goroutine and
// block until it yields again (or returns).
func (p *Proc) wake() {
	p.timer = Timer{}
	p.resume <- nil
	<-p.yield
}

// run hosts the process body.
func (p *Proc) run(body func(*Proc) error, wg *sync.WaitGroup, onErr func(error)) {
	defer wg.Done()
	if err := <-p.resume; err != nil {
		// Terminated before first activation.
		p.done = true
		p.yield <- struct{}{}
		return
	}
	err := body(p)
	p.done = true
	if err != nil && !errors.Is(err, ErrTerminated) && onErr != nil {
		onErr(err)
	}
	p.yield <- struct{}{}
}

// processHost tracks the scheduler's spawned processes. It lives on the
// Scheduler lazily so callback-only simulations pay nothing.
type processHost struct {
	wg    sync.WaitGroup
	procs []*Proc
	err   error
}

// Spawn starts a process: body runs on its own goroutine, activated at the
// current simulated time (after already-queued events at this instant). The
// returned Proc is mainly useful for diagnostics; control flow happens
// inside body via Wait. If body returns a non-nil error (other than
// ErrTerminated), the simulation stops and Run/RunUntil reports it.
//
// All spawned goroutines are joined by Shutdown, which Run calls implicitly
// when the event list drains.
func (s *Scheduler) Spawn(name string, body func(*Proc) error) *Proc {
	if body == nil {
		panic("sim: Spawn called with nil body")
	}
	if s.host == nil {
		s.host = &processHost{}
	}
	p := &Proc{
		sched:  s,
		name:   name,
		resume: make(chan error),
		yield:  make(chan struct{}),
	}
	s.host.procs = append(s.host.procs, p)
	s.host.wg.Add(1)
	go p.run(body, &s.host.wg, func(err error) {
		if s.host.err == nil {
			s.host.err = fmt.Errorf("sim: process %q: %w", name, err)
		}
		s.Stop()
	})
	// First activation: enter the body at the current instant.
	p.timer = s.At(s.Now(), func() {
		p.timer = Timer{}
		p.resume <- nil
		<-p.yield
	})
	return p
}

// Shutdown terminates all sleeping processes (their Wait returns
// ErrTerminated) and joins their goroutines. It is idempotent and is called
// automatically when Run finishes; call it explicitly after RunUntil if the
// simulation is being abandoned early.
func (s *Scheduler) Shutdown() {
	if s.host == nil {
		return
	}
	for _, p := range s.host.procs {
		if p.done {
			continue
		}
		s.Cancel(p.timer)
		p.resume <- ErrTerminated
		<-p.yield
	}
	s.host.wg.Wait()
}

// processErr returns the first process-body error, if any.
func (s *Scheduler) processErr() error {
	if s.host == nil {
		return nil
	}
	return s.host.err
}
