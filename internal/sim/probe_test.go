package sim

import (
	"math"
	"testing"
)

func TestProbeFiresEveryInterval(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	s.Every(1.0, func(now float64) { fired = append(fired, now) })
	s.At(5.5, func() {}) // a real event keeps the simulation alive to 5.5
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("probe fired at %v, want %v", fired, want)
	}
	for i, at := range want {
		if fired[i] != at {
			t.Fatalf("probe fired at %v, want %v", fired, want)
		}
	}
	if s.Now() != 5.5 {
		t.Fatalf("clock ended at %v, want 5.5 (probes must not extend the run)", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events still queued after Run", s.Pending())
	}
}

// TestProbeFiresAtExactFinalInstant pins the sample-boundary contract: when
// the last real event lands exactly on a probe's fire time, that tick still
// fires — the final instant of a run gets sampled — and the next tick does
// not (probes never extend a run past its last real event).
func TestProbeFiresAtExactFinalInstant(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	eventRan := false
	s.Every(1.0, func(now float64) {
		fired = append(fired, now)
		if now == 3.0 && !eventRan {
			t.Fatal("boundary tick fired before the same-instant real event")
		}
	})
	s.At(3.0, func() { eventRan = true }) // the run ends exactly on a sample boundary
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	if len(fired) != len(want) {
		t.Fatalf("probe fired at %v, want %v", fired, want)
	}
	for i, at := range want {
		if fired[i] != at {
			t.Fatalf("probe fired at %v, want %v", fired, want)
		}
	}
	if s.Now() != 3.0 {
		t.Fatalf("clock ended at %v, want 3.0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events still queued after Run", s.Pending())
	}
}

func TestProbeAloneDoesNotRunForever(t *testing.T) {
	s := NewScheduler()
	count := 0
	p := s.Every(1.0, func(float64) { count++ })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("probe with no real events fired %d times, want 0", count)
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v on a probe-only run", s.Now())
	}
	if p.Active() {
		t.Fatal("probe still active after drain")
	}
}

func TestMultipleProbesDrainTogether(t *testing.T) {
	s := NewScheduler()
	var a, b int
	s.Every(1.0, func(float64) { a++ })
	s.Every(2.0, func(float64) { b++ })
	s.At(4, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if a != 4 || b != 2 {
		t.Fatalf("probes fired a=%d b=%d, want 4 and 2", a, b)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events still queued", s.Pending())
	}
}

func TestProbeStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	var p *Probe
	p = s.Every(1.0, func(now float64) {
		count++
		if now >= 2 {
			p.Stop()
		}
	})
	s.At(10, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("stopped probe fired %d times, want 2", count)
	}
	if p.Stop() {
		t.Fatal("second Stop reported the probe as still running")
	}
	if p.Active() {
		t.Fatal("stopped probe reports active")
	}
}

func TestProbeSeesStateBetweenEvents(t *testing.T) {
	// A probe samples state mutated by ordinary events: the firing at t=1.5
	// happens between the mutations at t=1 and t=2.
	s := NewScheduler()
	state := 0
	s.At(1, func() { state = 1 })
	s.At(2, func() { state = 2 })
	var seen []int
	s.Every(1.5, func(float64) { seen = append(seen, state) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != 1 {
		t.Fatalf("probe saw %v, want [1]", seen)
	}
}

func TestProbeCountsTowardFired(t *testing.T) {
	s := NewScheduler()
	s.Every(1.0, func(float64) {})
	s.At(2.5, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Fired(); got != 3 { // probe at 1, 2 + the real event
		t.Fatalf("Fired() = %d, want 3", got)
	}
}

func TestProbeSurvivesRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	s.Every(1.0, func(now float64) { fired = append(fired, now) })
	s.At(3.5, func() {})
	s.At(8.5, func() {})
	if err := s.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5 {
		t.Fatalf("probe fired at %v before horizon, want 5 firings", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("clock at %v, want horizon 5", s.Now())
	}
	// The real event beyond the horizon is still pending; resuming fires it.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 8.5 {
		t.Fatalf("clock at %v after resume, want 8.5", s.Now())
	}
}

func TestEveryPanicsOnBadArguments(t *testing.T) {
	s := NewScheduler()
	for _, interval := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Every(%v) did not panic", interval)
				}
			}()
			s.Every(interval, func(float64) {})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Every with nil fn did not panic")
			}
		}()
		s.Every(1, nil)
	}()
}
