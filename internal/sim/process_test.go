package sim

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"tempriv/internal/rng"
)

func TestProcessWaitAdvancesTime(t *testing.T) {
	s := NewScheduler()
	var times []float64
	s.Spawn("ticker", func(p *Proc) error {
		for i := 0; i < 5; i++ {
			if err := p.Wait(10); err != nil {
				return err
			}
			times = append(times, p.Now())
		}
		return nil
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 40, 50}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := NewScheduler()
		var order []string
		for _, cfg := range []struct {
			name string
			gap  float64
		}{{"a", 3}, {"b", 5}} {
			cfg := cfg
			s.Spawn(cfg.name, func(p *Proc) error {
				for i := 0; i < 4; i++ {
					if err := p.Wait(cfg.gap); err != nil {
						return err
					}
					order = append(order, fmt.Sprintf("%s@%g", cfg.name, p.Now()))
				}
				return nil
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	want := []string{"a@3", "b@5", "a@6", "a@9", "b@10", "a@12", "b@15", "b@20"}
	if len(first) != len(want) {
		t.Fatalf("order = %v", first)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
	// Same result on every run (goroutines notwithstanding).
	for trial := 0; trial < 20; trial++ {
		again := run()
		for i := range want {
			if again[i] != want[i] {
				t.Fatalf("trial %d: order = %v", trial, again)
			}
		}
	}
}

func TestProcessesAndCallbacksShareTheClock(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.At(5, func() { order = append(order, "callback@5") })
	s.Spawn("proc", func(p *Proc) error {
		if err := p.Wait(5); err != nil {
			return err
		}
		order = append(order, "proc@5")
		return nil
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The callback was scheduled before the process's wake event.
	if len(order) != 2 || order[0] != "callback@5" || order[1] != "proc@5" {
		t.Fatalf("order = %v", order)
	}
}

func TestProcessBodyErrorStopsSimulation(t *testing.T) {
	s := NewScheduler()
	boom := errors.New("model bug")
	s.Spawn("bad", func(p *Proc) error {
		if err := p.Wait(1); err != nil {
			return err
		}
		return boom
	})
	fired := false
	s.At(100, func() { fired = true })
	err := s.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want the process error", err)
	}
	if fired {
		t.Fatal("events after a process error still fired")
	}
}

func TestShutdownTerminatesSleepers(t *testing.T) {
	s := NewScheduler()
	var sawTerminated bool
	s.Spawn("sleeper", func(p *Proc) error {
		err := p.Wait(1e9)
		sawTerminated = errors.Is(err, ErrTerminated)
		return err
	})
	if err := s.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if !sawTerminated {
		t.Fatal("sleeping process did not observe ErrTerminated")
	}
	// Idempotent.
	s.Shutdown()
}

func TestSpawnFromProcess(t *testing.T) {
	s := NewScheduler()
	var childRan bool
	s.Spawn("parent", func(p *Proc) error {
		if err := p.Wait(5); err != nil {
			return err
		}
		s.Spawn("child", func(c *Proc) error {
			if err := c.Wait(5); err != nil {
				return err
			}
			childRan = c.Now() == 10
			return nil
		})
		return nil
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child process did not run at the expected time")
	}
}

func TestSpawnNilBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn(nil) did not panic")
		}
	}()
	NewScheduler().Spawn("nil", nil)
}

func TestProcName(t *testing.T) {
	s := NewScheduler()
	p := s.Spawn("worker", func(p *Proc) error { return nil })
	if p.Name() != "worker" {
		t.Fatalf("Name = %q", p.Name())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestProcessMMInfMatchesCallbackModel rebuilds the §4 M/M/∞ occupancy
// check in process style — an arrival process spawning one holder process
// per packet — and verifies the same stationary mean ρ, demonstrating the
// two APIs agree.
func TestProcessMMInfMatchesCallbackModel(t *testing.T) {
	const lambda, meanDelay, horizon = 1.0, 5.0, 40000.0
	s := NewScheduler()
	src := rng.New(81)
	occupancy := 0
	area := 0.0
	last := 0.0
	observe := func(delta int) {
		area += float64(occupancy) * (s.Now() - last)
		last = s.Now()
		occupancy += delta
	}
	s.Spawn("arrivals", func(p *Proc) error {
		for p.Now() < horizon {
			if err := p.Wait(src.ExponentialRate(lambda)); err != nil {
				return err
			}
			observe(+1)
			hold := src.Exponential(meanDelay)
			s.Spawn("holder", func(h *Proc) error {
				if err := h.Wait(hold); err != nil {
					return err
				}
				observe(-1)
				return nil
			})
		}
		return nil
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	observe(0)
	avg := area / last
	if math.Abs(avg-lambda*meanDelay) > 0.35 {
		t.Fatalf("process-style M/M/∞ occupancy %v, want ≈ %v", avg, lambda*meanDelay)
	}
}
