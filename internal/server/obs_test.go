package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tempriv/internal/jobs"
	"tempriv/internal/obs"
	"tempriv/internal/resultcache"
	"tempriv/internal/resultstream"
	"tempriv/internal/telemetry"
)

// newTracedServer assembles the full observability stack: cache, chunk
// store, tracer, SLOs — the wiring temprivd ships with.
func newTracedServer(t *testing.T) (*httptest.Server, *obs.Tracer, *telemetry.Registry) {
	t.Helper()
	cache, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := resultstream.Open(t.TempDir(), resultstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := obs.New(obs.Options{})
	cachedSLO, err := obs.NewSLO(reg, obs.SLOOptions{
		Name: "cached_result", Objective: 0.99, Threshold: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	requestSLO, err := obs.NewSLO(reg, obs.SLOOptions{
		Name: "request", Objective: 0.99, Threshold: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunnerConfig(RunnerConfig{
		Cache: cache, Registry: reg, ReplicateWorkers: 1, Chunks: chunks,
		CachedResultSLO: cachedSLO,
	})
	q := jobs.New(runner, jobs.Options{Workers: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	ts := httptest.NewServer(NewConfig(Config{
		Queue: q, Cache: cache, Chunks: chunks, Registry: reg,
		Tracer: tracer, SLOs: obs.SLOSet{requestSLO, cachedSLO}, RequestSLO: requestSLO,
	}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		q.Drain(ctx)
	})
	return ts, tracer, reg
}

// findSpans collects every span named name anywhere in the tree.
func findSpans(root *obs.SpanTree, name string) []*obs.SpanTree {
	var out []*obs.SpanTree
	if root == nil {
		return nil
	}
	if root.Name == name {
		out = append(out, root)
	}
	for _, c := range root.Children {
		out = append(out, findSpans(c, name)...)
	}
	return out
}

func fetchTrace(t *testing.T, ts *httptest.Server, jobID string) *obs.TraceTree {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/traces/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var tree obs.TraceTree
	decodeBody(t, resp, &tree)
	return &tree
}

func TestTraceFollowsJobEndToEnd(t *testing.T) {
	ts, _, _ := newTracedServer(t)

	// Submit with a client-supplied trace ID; it must be echoed back.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(replicatedScenario))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "client-trace-e2e")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "client-trace-e2e" {
		t.Fatalf("X-Trace-Id echoed %q, want client-trace-e2e", got)
	}
	var snap jobs.Snapshot
	decodeBody(t, resp, &snap)
	waitDone(t, ts, snap.ID)

	tree := fetchTrace(t, ts, snap.ID)
	if tree.TraceID != "client-trace-e2e" || tree.JobID != snap.ID {
		t.Fatalf("trace identity: %+v", tree)
	}
	if !tree.Complete {
		t.Fatal("trace still open after the job finished")
	}
	if tree.Root.Name != "job" {
		t.Fatalf("root span %q, want job", tree.Root.Name)
	}
	// Every pipeline stage must appear exactly where the architecture puts
	// it: ingress and queue under the root, cache/engine/chunk under the
	// attempt, one replicate span per replicate under the engine.
	for _, want := range []struct {
		name  string
		count int
	}{
		{"ingress", 1}, {"queue", 1}, {"attempt", 1},
		{"engine", 1}, {"replicate", 3}, {"render", 1}, {"chunk", 3},
	} {
		got := findSpans(tree.Root, want.name)
		if len(got) != want.count {
			t.Errorf("%d %q spans, want %d", len(got), want.name, want.count)
		}
	}
	// The first cache consultation is a miss.
	cacheSpans := findSpans(tree.Root, "cache")
	if len(cacheSpans) != 2 { // get (miss) + put
		t.Fatalf("%d cache spans, want 2 (get+put)", len(cacheSpans))
	}
	if cacheSpans[0].Attrs["outcome"] != "miss" || cacheSpans[0].Attrs["op"] != "get" {
		t.Errorf("first cache span attrs: %v", cacheSpans[0].Attrs)
	}
	if cacheSpans[1].Attrs["op"] != "put" {
		t.Errorf("second cache span attrs: %v", cacheSpans[1].Attrs)
	}
	// Timestamps are monotonic: every span starts at or after its parent
	// and no span is left open.
	var walk func(p *obs.SpanTree)
	var closed int
	walk = func(p *obs.SpanTree) {
		if p.DurationNS < 0 {
			t.Errorf("span %q still open in a complete trace", p.Name)
		}
		closed++
		for _, c := range p.Children {
			if c.StartOffsetNS < p.StartOffsetNS {
				t.Errorf("span %q starts before its parent %q (%d < %d)",
					c.Name, p.Name, c.StartOffsetNS, p.StartOffsetNS)
			}
			walk(c)
		}
	}
	walk(tree.Root)
	if closed != tree.SpanCount {
		t.Errorf("walked %d spans, tree reports %d", closed, tree.SpanCount)
	}
}

func TestTraceCacheHitObservesSLO(t *testing.T) {
	ts, _, reg := newTracedServer(t)
	first := submit(t, ts, replicatedScenario)
	waitDone(t, ts, first.ID)
	second := submit(t, ts, replicatedScenario)
	snap := waitDone(t, ts, second.ID)
	if !snap.CacheHit {
		t.Fatal("second run not served from cache")
	}
	tree := fetchTrace(t, ts, second.ID)
	cacheSpans := findSpans(tree.Root, "cache")
	if len(cacheSpans) != 1 || cacheSpans[0].Attrs["outcome"] != "hit" {
		t.Fatalf("cache-hit trace spans: %d %v", len(cacheSpans), cacheSpans)
	}
	if len(findSpans(tree.Root, "engine")) != 0 {
		t.Error("cache hit ran the engine")
	}
	good := reg.Counter("tempriv_slo_cached_result_good_total").Value()
	bad := reg.Counter("tempriv_slo_cached_result_bad_total").Value()
	if good+bad != 1 {
		t.Fatalf("cached-result SLO observed %d times, want 1", good+bad)
	}
}

func TestTraceNotFound(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	resp, err := http.Get(ts.URL + "/v1/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace status %d, want 404", resp.StatusCode)
	}
}

func TestTracerlessServerServes404Traces(t *testing.T) {
	// The compat constructor has no tracer: submissions work, traces 404.
	ts, _, _ := newTestServer(t, false)
	snap := submit(t, ts, smallScenario)
	waitDone(t, ts, snap.ID)
	resp, err := http.Get(ts.URL + "/v1/traces/" + snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traceless trace status %d, want 404", resp.StatusCode)
	}
}

func TestRejectedSubmissionStillTraced(t *testing.T) {
	ts, tracer, _ := newTracedServer(t)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "rejected-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	tree, ok := tracer.ByID("rejected-trace-1")
	if !ok {
		t.Fatal("rejected submission left no trace")
	}
	if !tree.Complete || tree.JobID != "" {
		t.Fatalf("rejected trace: %+v", tree)
	}
	if tree.Root.Attrs["status"] != "400" {
		t.Fatalf("rejected trace root attrs: %v", tree.Root.Attrs)
	}
}

// TestDebugEndpointsGate covers both settings of the -debug-endpoints flag:
// registered by default, absent (as JSON 404s) when disabled.
func TestDebugEndpointsGate(t *testing.T) {
	paths := []string{"/debug/pprof/", "/debug/vars"}
	for _, disabled := range []bool{false, true} {
		q := jobs.New(func(ctx context.Context, job *jobs.Job, progress func(string, string)) (*jobs.Result, error) {
			return &jobs.Result{}, nil
		}, jobs.Options{Workers: 1})
		srv := httptest.NewServer(NewConfig(Config{Queue: q, DisableDebugEndpoints: disabled}))
		for _, path := range paths {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			wantStatus := http.StatusOK
			if disabled {
				wantStatus = http.StatusNotFound
			}
			if resp.StatusCode != wantStatus {
				t.Errorf("disabled=%v: GET %s = %d, want %d", disabled, path, resp.StatusCode, wantStatus)
			}
			if disabled && !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
				t.Errorf("disabled %s 404 is not the JSON error contract (%s)",
					path, resp.Header.Get("Content-Type"))
			}
			resp.Body.Close()
		}
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		q.Drain(ctx)
		cancel()
	}
}
