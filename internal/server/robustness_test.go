package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"tempriv/internal/faultfs"
	"tempriv/internal/jobs"
	"tempriv/internal/resultcache"
	"tempriv/internal/scenario"
	"tempriv/internal/telemetry"
)

// blockedQueue builds a queue whose runner parks every job until release is
// closed — the tool for exercising backpressure and in-flight shutdown.
func blockedQueue(t *testing.T, workers, depth int) (*jobs.Queue, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	runner := func(ctx context.Context, job *jobs.Job, progress func(stage, message string)) (*jobs.Result, error) {
		progress("run", "parked")
		select {
		case <-release:
			return &jobs.Result{Fingerprint: job.Fingerprint, TableText: []byte("x"), TableCSV: []byte("y"), Manifest: []byte("{}")}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	q := jobs.New(runner, jobs.Options{
		Workers: workers, QueueDepth: depth,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	})
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		q.Drain(ctx)
	})
	return q, release
}

func waitState(t *testing.T, q *jobs.Queue, id string, want jobs.State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s, ok := q.Get(id); ok && s.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	s, _ := q.Get(id)
	t.Fatalf("job %s never reached %s (at %s)", id, want, s.State)
}

func TestReadyzLifecycle(t *testing.T) {
	q, _ := blockedQueue(t, 1, 4)
	srv := New(q, nil, nil, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	check := func(wantStatus int, wantState string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("readyz in %q: status %d, want %d (%s)", wantState, resp.StatusCode, wantStatus, body)
		}
		if wantStatus != http.StatusOK {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("not-ready response missing Retry-After")
			}
			if !strings.Contains(string(body), wantState) {
				t.Fatalf("body %s does not name state %q", body, wantState)
			}
		}
	}

	check(http.StatusServiceUnavailable, ReadyStarting)
	srv.SetReady(ReadyReplaying)
	check(http.StatusServiceUnavailable, ReadyReplaying)
	srv.SetReady(ReadyServing)
	check(http.StatusOK, ReadyServing)
	srv.SetReady(ReadyDraining)
	check(http.StatusServiceUnavailable, ReadyDraining)

	// Liveness never flinched through any of that.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d during drain", resp.StatusCode)
	}
}

// TestErrorContract drives every handler failure mode and asserts the
// uniform JSON error body ({"error":..., "status":...}) plus Retry-After
// on backpressure statuses — including the mux-generated 404/405 that no
// handler ever sees.
func TestErrorContract(t *testing.T) {
	// A full queue: one worker parked on a job, one queued, so the next
	// submission sheds.
	q, _ := blockedQueue(t, 1, 1)
	reg := telemetry.NewRegistry()
	srv := New(q, nil, nil, reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec, err := scenario.Parse([]byte(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	running, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, running.ID, jobs.StateRunning)
	spec2, _ := scenario.Parse([]byte(strings.Replace(smallScenario, `"seed":1`, `"seed":2`, 1)))
	if _, err := q.Submit(spec2); err != nil {
		t.Fatal(err)
	}

	// A drained queue for the 503 mode.
	qDrained, _ := blockedQueue(t, 1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	qDrained.Drain(ctx)
	cancel()
	tsDrained := httptest.NewServer(New(qDrained, nil, nil, nil))
	defer tsDrained.Close()

	shed := strings.Replace(smallScenario, `"seed":1`, `"seed":3`, 1)
	cases := []struct {
		name      string
		method    string
		url       string
		body      string
		status    int
		retryHdr  bool
		errSubstr string
	}{
		{"submit bad json", "POST", ts.URL + "/v1/jobs", "not json", http.StatusBadRequest, false, ""},
		{"submit invalid spec", "POST", ts.URL + "/v1/jobs", `{"version":1}`, http.StatusBadRequest, false, ""},
		{"submit oversized", "POST", ts.URL + "/v1/jobs", strings.Repeat(" ", 1<<20+10), http.StatusRequestEntityTooLarge, false, ""},
		{"submit queue full", "POST", ts.URL + "/v1/jobs", shed, http.StatusTooManyRequests, true, "full"},
		{"submit draining", "POST", tsDrained.URL + "/v1/jobs", shed, http.StatusServiceUnavailable, true, "drain"},
		{"status unknown job", "GET", ts.URL + "/v1/jobs/job-999999", "", http.StatusNotFound, false, "no such job"},
		{"cancel unknown job", "DELETE", ts.URL + "/v1/jobs/job-999999", "", http.StatusNotFound, false, "no such job"},
		{"result unknown job", "GET", ts.URL + "/v1/jobs/job-999999/result", "", http.StatusNotFound, false, "no such job"},
		{"events unknown job", "GET", ts.URL + "/v1/jobs/job-999999/events", "", http.StatusNotFound, false, "no such job"},
		// The in-flight 409 hints Retry-After so pollers back off politely.
		{"result before done", "GET", ts.URL + "/v1/jobs/" + running.ID + "/result", "", http.StatusConflict, true, "no result"},
		{"readyz not ready", "GET", ts.URL + "/readyz", "", http.StatusServiceUnavailable, true, "not ready"},
		{"mux unknown route", "GET", ts.URL + "/v1/nope", "", http.StatusNotFound, false, ""},
		{"mux wrong method", "PUT", ts.URL + "/v1/jobs", "{}", http.StatusMethodNotAllowed, false, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.url, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, raw)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("content type %q, want JSON (%s)", ct, raw)
			}
			var e errorBody
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("non-JSON error body %q: %v", raw, err)
			}
			if e.Error == "" || e.Status != tc.status {
				t.Fatalf("error body %+v, want status %d and a message", e, tc.status)
			}
			if tc.errSubstr != "" && !strings.Contains(e.Error, tc.errSubstr) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.errSubstr)
			}
			if got := resp.Header.Get("Retry-After") != ""; got != tc.retryHdr {
				t.Fatalf("Retry-After present=%v, want %v", got, tc.retryHdr)
			}
		})
	}

	// The rejections were counted as sheds.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// The unified name and its deprecated pre-rename alias move together.
	if !strings.Contains(string(metrics), "tempriv_sheds_total 1") {
		t.Fatalf("metrics missing unified shed count:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "temprivd_sheds_total 1") {
		t.Fatalf("metrics missing deprecated shed alias:\n%s", metrics)
	}
}

func TestRestoredDoneJobServesResultFromCache(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Parse([]byte(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	entry := &resultcache.Entry{
		Fingerprint: fp,
		TableText:   []byte("restored table"),
		TableCSV:    []byte("a,b\n"),
		Manifest:    []byte(`{"kind":"experiment"}`),
	}
	if err := cache.Put(entry); err != nil {
		t.Fatal(err)
	}
	restored := jobs.RestoredJob{
		ID: "job-000042", Spec: spec, Fingerprint: fp,
		State: jobs.StateDone, Attempts: 1,
		Submitted: time.Now().Add(-time.Hour), Finished: time.Now().Add(-time.Hour),
	}
	q := jobs.New(NewRunner(cache, nil, 1, nil), jobs.Options{
		Workers: 1, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		Restore: []jobs.RestoredJob{restored},
	})
	defer q.Drain(context.Background())
	ts := httptest.NewServer(New(q, cache, nil, nil))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/job-000042/result")
	if err != nil {
		t.Fatal(err)
	}
	var res resultBody
	decodeBody(t, resp, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored result status %d", resp.StatusCode)
	}
	if res.Fingerprint != fp || res.TableText != "restored table" {
		t.Fatalf("restored result %+v", res)
	}
}

func TestRestoredDoneJobWithLostCacheEntryIsGone(t *testing.T) {
	cache, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Parse([]byte(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	q := jobs.New(NewRunner(cache, nil, 1, nil), jobs.Options{
		Workers: 1, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
		Restore: []jobs.RestoredJob{{
			ID: "job-000007", Spec: spec, Fingerprint: fp, State: jobs.StateDone, Attempts: 1,
		}},
	})
	defer q.Drain(context.Background())
	ts := httptest.NewServer(New(q, cache, nil, nil))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/job-000007/result")
	if err != nil {
		t.Fatal(err)
	}
	var e errorBody
	decodeBody(t, resp, &e)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("lost restored result: status %d, want 410 (%+v)", resp.StatusCode, e)
	}
	if !strings.Contains(e.Error, "resubmit") {
		t.Fatalf("410 body should tell the client to resubmit: %+v", e)
	}
}

// TestChaosSickDiskKeepsServing is the degradation acceptance check: with
// ENOSPC and EIO injected into the result cache's filesystem, submissions
// still answer 202 (never 5xx) and every job still completes — the breaker
// opens and the service degrades to compute-always instead of failing.
func TestChaosSickDiskKeepsServing(t *testing.T) {
	ff := faultfs.NewFaulty(faultfs.OS{})
	cache, err := resultcache.OpenConfig(resultcache.Config{Dir: t.TempDir(), FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	q := jobs.New(NewRunner(cache, reg, 1, nil), jobs.Options{
		Workers: 2, QueueDepth: 16,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	})
	defer q.Drain(context.Background())
	ts := httptest.NewServer(New(q, cache, nil, reg))
	defer ts.Close()

	// Disk goes fully sick: reads EIO, writes ENOSPC.
	ff.Set(faultfs.OpRead, faultfs.Fault{Err: faultfs.ErrIO})
	ff.Set(faultfs.OpWrite, faultfs.Fault{Err: faultfs.ErrNoSpace})

	var ids []string
	for i := 0; i < 6; i++ {
		doc := strings.Replace(smallScenario, `"seed":1`, fmt.Sprintf(`"seed":%d`, 100+i), 1)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("submission %d answered %d on a sick disk: %s", i, resp.StatusCode, body)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d: %s", i, resp.StatusCode, body)
		}
		var snap jobs.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		deadline := time.Now().Add(15 * time.Second)
		for {
			s, ok := q.Get(id)
			if !ok {
				t.Fatalf("job %s vanished", id)
			}
			if s.State.Terminal() {
				if s.State != jobs.StateDone {
					t.Fatalf("job %s on sick disk: %+v", id, s)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished (state %s)", id, s.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// The breaker opened and started bypassing; nothing corrupt was served.
	st := cache.Stats()
	if st.Breaker == resultcache.BreakerClosed {
		t.Fatalf("sustained disk faults never opened the breaker: %+v", st)
	}
	if st.Hits != 0 {
		t.Fatalf("sick disk produced cache hits: %+v", st)
	}
	if st.Bypassed == 0 {
		t.Fatalf("open breaker never bypassed: %+v", st)
	}
}

// TestShutdownTerminatesEventStreams holds live /events streams open on a
// parked job, stops the server, and asserts every stream ends promptly and
// no handler goroutines are left behind.
func TestShutdownTerminatesEventStreams(t *testing.T) {
	q, _ := blockedQueue(t, 1, 8)
	srv := New(q, nil, nil, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec, err := scenario.Parse([]byte(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, jobs.StateRunning)
	before := runtime.NumGoroutine()

	const streams = 4
	done := make(chan error, streams)
	for i := 0; i < streams; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events status %d", resp.StatusCode)
		}
		go func() {
			_, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			done <- err
		}()
	}
	// Streams are live (the job is parked mid-run, so they would otherwise
	// stay open indefinitely). Stop must end them all.
	srv.Stop()
	for i := 0; i < streams; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("stream %d ended with transport error: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("stream %d still open %d after Stop", i, streams)
		}
	}
	// Handler goroutines wind down (poll: the server needs a moment to
	// retire connections).
	deadline := time.Now().Add(5 * time.Second)
	for {
		// The client keeps idle keep-alive connections (one read + one
		// write goroutine each); drop them so only server-side goroutines
		// can hold the count up.
		http.DefaultClient.CloseIdleConnections()
		if g := runtime.NumGoroutine(); g <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after Stop: before=%d now=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
