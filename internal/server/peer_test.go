package server

// The worker-side peering surface: POST /v1/peer/results accepts a ring
// predecessor's finished result, GET /v1/peer/results/{fp} serves it
// back byte-identical to the job's own /result document — the contract
// the gateway's serve-from-peer handoff and hedged reads depend on.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tempriv/internal/cluster/peering"
	"tempriv/internal/jobs"
	"tempriv/internal/resultcache"
	"tempriv/internal/telemetry"
)

func newPeerServer(t *testing.T) (*httptest.Server, *jobs.Queue, *peering.Store, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	q := jobs.New(NewRunner(nil, reg, 1, nil), jobs.Options{Workers: 1})
	store := peering.NewStore(peering.StoreOptions{})
	ts := httptest.NewServer(NewConfig(Config{Queue: q, Registry: reg, Peers: store}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		q.Drain(ctx)
	})
	return ts, q, store, reg
}

func getBodyStatus(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestPeerRoundTripByteIdentical replicates a real finished result into a
// second worker's store and asserts the peer serves the same bytes the
// owner's /result endpoint does.
func TestPeerRoundTripByteIdentical(t *testing.T) {
	owner, qOwner, _, _ := newPeerServer(t)
	peer, _, peerStore, peerReg := newPeerServer(t)

	snap := submit(t, owner, smallScenario)
	waitState(t, qOwner, snap.ID, jobs.StateDone)
	_, ownerResult := getBodyStatus(t, owner.URL+"/v1/jobs/"+snap.ID+"/result")

	// Replicate the finished result the way the write-behind replicator
	// does: decode the owner's result document, POST it to the peer.
	var res struct {
		Fingerprint string          `json:"fingerprint"`
		TableText   string          `json:"table_text"`
		TableCSV    string          `json:"table_csv"`
		Manifest    json.RawMessage `json:"manifest"`
	}
	if err := json.Unmarshal(ownerResult, &res); err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(peering.Document{
		Fingerprint: res.Fingerprint,
		TableText:   res.TableText,
		TableCSV:    res.TableCSV,
		Manifest:    res.Manifest,
		Complete:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(peer.URL+"/v1/peer/results", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("peer put: HTTP %d", resp.StatusCode)
	}
	if peerStore.Len() != 1 {
		t.Fatalf("peer store holds %d replicas, want 1", peerStore.Len())
	}

	status, peerBody := getBodyStatus(t, peer.URL+"/v1/peer/results/"+res.Fingerprint)
	if status != http.StatusOK {
		t.Fatalf("peer get: HTTP %d: %s", status, peerBody)
	}
	if !bytes.Equal(peerBody, ownerResult) {
		t.Fatalf("peer-served result differs from owner's:\nowner: %s\npeer:  %s", ownerResult, peerBody)
	}

	metrics := getMetrics(t, peerReg)
	if !strings.Contains(metrics, "tempriv_cluster_peer_received_total 1") {
		t.Fatalf("metrics missing peer received count:\n%s", metrics)
	}
	if !strings.Contains(metrics, "tempriv_cluster_peer_replicas_held 1") {
		t.Fatalf("metrics missing replicas-held gauge:\n%s", metrics)
	}
}

func getMetrics(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rec.Body.String()
}

// TestPeerGetFallsBackToOwnWork: a worker that computed a result itself
// answers a peer GET for it even without a replica — hedged reads can
// target any node that finished the job.
func TestPeerGetFallsBackToOwnWork(t *testing.T) {
	reg := telemetry.NewRegistry()
	cache, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	q := jobs.New(NewRunner(cache, reg, 1, nil), jobs.Options{Workers: 1})
	store := peering.NewStore(peering.StoreOptions{})
	ts := httptest.NewServer(NewConfig(Config{Queue: q, Cache: cache, Registry: reg, Peers: store}))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		q.Drain(ctx)
	})

	snap := submit(t, ts, smallScenario)
	waitState(t, q, snap.ID, jobs.StateDone)
	_, ownResult := getBodyStatus(t, ts.URL+"/v1/jobs/"+snap.ID+"/result")

	status, body := getBodyStatus(t, ts.URL+"/v1/peer/results/"+snap.Fingerprint)
	if status != http.StatusOK {
		t.Fatalf("peer get via cache fallback: HTTP %d: %s", status, body)
	}
	if !bytes.Equal(body, ownResult) {
		t.Fatal("cache-fallback peer result differs from /result")
	}
}

func TestPeerPutRejectsBadDocuments(t *testing.T) {
	ts, _, store, _ := newPeerServer(t)
	fp := strings.Repeat("ab", 32)
	for name, doc := range map[string]string{
		"not json":        "{",
		"incomplete":      `{"fingerprint":"` + fp + `","table_text":"t","complete":false}`,
		"bad fingerprint": `{"fingerprint":"zz","table_text":"t","complete":true}`,
		"empty replica":   `{"fingerprint":"` + fp + `","complete":true}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/peer/results", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	if store.Len() != 0 {
		t.Fatalf("store accepted %d bad replicas", store.Len())
	}
}

func TestPeerGetUnknownFingerprintIs404(t *testing.T) {
	ts, _, _, _ := newPeerServer(t)
	status, _ := getBodyStatus(t, ts.URL+"/v1/peer/results/"+strings.Repeat("00", 32))
	if status != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404", status)
	}
}

// TestPeerEndpointsAbsentWithoutStore: a standalone worker (no Peers
// configured) does not expose the replication surface.
func TestPeerEndpointsAbsentWithoutStore(t *testing.T) {
	ts, _, _ := newTestServer(t, false)
	status, _ := getBodyStatus(t, ts.URL+"/v1/peer/results/"+strings.Repeat("00", 32))
	if status != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404", status)
	}
	resp, err := http.Post(ts.URL+"/v1/peer/results", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST: HTTP %d, want 404", resp.StatusCode)
	}
}
