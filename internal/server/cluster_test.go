package server

// Worker-side cluster behaviors: the GET /v1/jobs?state= filter the
// gateway's reconciliation loop depends on, the ring-ownership check, and
// the X-Tempriv-Origin handoff tag.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tempriv/internal/jobs"
	"tempriv/internal/telemetry"
)

func listJobs(t *testing.T, ts *httptest.Server, query string) []jobs.Snapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs" + query)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list%s: HTTP %d", query, resp.StatusCode)
	}
	var body struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	decodeBody(t, resp, &body)
	return body.Jobs
}

func TestListStateFilter(t *testing.T) {
	ts, q, _ := newTestServer(t, false)

	done := submit(t, ts, smallScenario)
	waitState(t, q, done.ID, jobs.StateDone)
	other := submit(t, ts, `{"version":1,"experiment":{"id":"fig2a","packets":10,"interarrivals":[4],"seed":2}}`)
	waitState(t, q, other.ID, jobs.StateDone)

	if got := len(listJobs(t, ts, "")); got != 2 {
		t.Fatalf("unfiltered list has %d jobs, want 2", got)
	}
	if got := len(listJobs(t, ts, "?state=done")); got != 2 {
		t.Fatalf("state=done list has %d jobs, want 2", got)
	}
	if got := len(listJobs(t, ts, "?state=queued,running")); got != 0 {
		t.Fatalf("state=queued,running list has %d jobs, want 0", got)
	}
	if got := len(listJobs(t, ts, "?state=done,failed,canceled")); got != 2 {
		t.Fatalf("terminal filter has %d jobs, want 2", got)
	}

	// Unknown states fail closed.
	resp, err := http.Get(ts.URL + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	var errBody struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}
	decodeBody(t, resp, &errBody)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(errBody.Error, "bogus") {
		t.Fatalf("state=bogus: HTTP %d body %+v", resp.StatusCode, errBody)
	}
}

// TestOwnershipCheck: a worker that knows the ring accepts misdirected
// jobs (availability over placement) but counts them, names the expected
// owner in X-Tempriv-Owner, and stays silent for jobs it owns.
func TestOwnershipCheck(t *testing.T) {
	reg := telemetry.NewRegistry()
	q := jobs.New(NewRunner(nil, reg, 1, nil), jobs.Options{Workers: 1})
	defer drainQueue(t, q)

	owner := "w-self"
	srv := NewConfig(Config{
		Queue:     q,
		Registry:  reg,
		ClusterID: "w-self",
		ClusterOwns: func(fp string) (string, bool) {
			return owner, true
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Owned: no misdirection counted, header still names the owner.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Tempriv-Owner") != "w-self" {
		t.Fatalf("X-Tempriv-Owner = %q, want w-self", resp.Header.Get("X-Tempriv-Owner"))
	}
	resp.Body.Close()
	if got := reg.Counter("tempriv_cluster_misdirected_total").Value(); got != 0 {
		t.Fatalf("misdirected after owned submit = %d", got)
	}

	// Misdirected: accepted (202), counted, expected owner surfaced.
	owner = "w-other"
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("misdirected submit: HTTP %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("X-Tempriv-Owner") != "w-other" {
		t.Fatalf("X-Tempriv-Owner = %q, want w-other", resp.Header.Get("X-Tempriv-Owner"))
	}
	resp.Body.Close()
	if got := reg.Counter("tempriv_cluster_misdirected_total").Value(); got != 1 {
		t.Fatalf("misdirected after misdirected submit = %d, want 1", got)
	}
}

// TestHandoffOriginHeader: X-Tempriv-Origin: handoff tags the job's
// snapshot and queued event; arbitrary origin strings are ignored.
func TestHandoffOriginHeader(t *testing.T) {
	ts, q, _ := newTestServer(t, false)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(smallScenario))
	req.Header.Set("X-Tempriv-Origin", "handoff")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var snap jobs.Snapshot
	decodeBody(t, resp, &snap)
	if snap.Origin != jobs.OriginHandoff {
		t.Fatalf("snapshot origin = %q, want handoff", snap.Origin)
	}
	waitState(t, q, snap.ID, jobs.StateDone)
	if got, _ := q.Get(snap.ID); got.Origin != jobs.OriginHandoff {
		t.Fatalf("final snapshot origin = %q, want handoff", got.Origin)
	}

	// An unrecognized origin token must not pass through.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(
		`{"version":1,"experiment":{"id":"fig2a","packets":10,"interarrivals":[4],"seed":3}}`))
	req.Header.Set("X-Tempriv-Origin", "<script>alert(1)</script>")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var snap2 jobs.Snapshot
	decodeBody(t, resp, &snap2)
	if snap2.Origin != "" {
		t.Fatalf("arbitrary origin passed through: %q", snap2.Origin)
	}
}

func drainQueue(t *testing.T, q *jobs.Queue) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	q.Drain(ctx)
}
