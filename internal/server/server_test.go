package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tempriv/internal/jobs"
	"tempriv/internal/resultcache"
	"tempriv/internal/scenario"
	"tempriv/internal/telemetry"
)

const smallScenario = `{"version":1,"experiment":{"id":"fig2a","packets":10,"interarrivals":[4],"seed":1}}`

func newTestServer(t *testing.T, withCache bool) (*httptest.Server, *jobs.Queue, *resultcache.Cache) {
	t.Helper()
	var cache *resultcache.Cache
	if withCache {
		var err error
		if cache, err = resultcache.Open(t.TempDir(), 0); err != nil {
			t.Fatal(err)
		}
	}
	reg := telemetry.NewRegistry()
	q := jobs.New(NewRunner(cache, reg, 1, nil), jobs.Options{Workers: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	ts := httptest.NewServer(New(q, cache, nil, reg))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		q.Drain(ctx)
	})
	return ts, q, cache
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func submit(t *testing.T, ts *httptest.Server, doc string) jobs.Snapshot {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var snap jobs.Snapshot
	decodeBody(t, resp, &snap)
	return snap
}

func waitDone(t *testing.T, ts *httptest.Server, id string) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap jobs.Snapshot
		decodeBody(t, resp, &snap)
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Snapshot{}
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, body)
	}
	return body
}

func TestSubmitInvalidSpec(t *testing.T) {
	ts, _, _ := newTestServer(t, false)
	cases := []string{
		`not json`,
		`{"version":99,"experiment":{"id":"fig2a"}}`,
		`{"version":1,"experiment":{"id":"fig2a","packets":-1}}`,
		`{"version":1}`,
	}
	for _, doc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		decodeBody(t, resp, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("doc %q: status %d, want 400", doc, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("doc %q: empty error message", doc)
		}
	}
}

func TestSubmitOversizedSpec(t *testing.T) {
	ts, _, _ := newTestServer(t, false)
	huge := strings.Repeat(" ", 1<<20+10) + smallScenario
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestSubmitRunResult(t *testing.T) {
	ts, _, _ := newTestServer(t, false)
	snap := submit(t, ts, smallScenario)
	if snap.ID == "" || snap.Fingerprint == "" {
		t.Fatalf("incomplete snapshot: %+v", snap)
	}
	final := waitDone(t, ts, snap.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %q, want done (error %q)", final.State, final.Error)
	}
	body := fetchResult(t, ts, snap.ID)
	var res struct {
		Fingerprint string          `json:"fingerprint"`
		TableText   string          `json:"table_text"`
		TableCSV    string          `json:"table_csv"`
		Manifest    json.RawMessage `json:"manifest"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != snap.Fingerprint || res.TableText == "" || res.TableCSV == "" || len(res.Manifest) == 0 {
		t.Fatalf("incomplete result: %+v", res)
	}
}

func TestRepeatSubmissionHitsCacheByteIdentical(t *testing.T) {
	ts, _, cache := newTestServer(t, true)

	first := submit(t, ts, smallScenario)
	if s := waitDone(t, ts, first.ID); s.State != jobs.StateDone || s.CacheHit {
		t.Fatalf("first run: %+v", s)
	}
	firstBody := fetchResult(t, ts, first.ID)

	second := submit(t, ts, smallScenario)
	finalSecond := waitDone(t, ts, second.ID)
	if finalSecond.State != jobs.StateDone {
		t.Fatalf("second run failed: %+v", finalSecond)
	}
	if !finalSecond.CacheHit {
		t.Fatal("second identical submission was not a cache hit")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatalf("identical specs fingerprinted differently: %s vs %s", first.Fingerprint, second.Fingerprint)
	}
	secondBody := fetchResult(t, ts, second.ID)
	if string(firstBody) != string(secondBody) {
		t.Fatalf("cache hit not byte-identical:\n%s\nvs\n%s", firstBody, secondBody)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats %+v, want 1 hit / 1 miss", st)
	}

	// A changed seed is a different scenario: distinct fingerprint, fresh run.
	changed := strings.Replace(smallScenario, `"seed":1`, `"seed":2`, 1)
	third := submit(t, ts, changed)
	if third.Fingerprint == first.Fingerprint {
		t.Fatal("seed change did not change the fingerprint")
	}
	if s := waitDone(t, ts, third.ID); s.State != jobs.StateDone || s.CacheHit {
		t.Fatalf("changed-seed run: %+v", s)
	}
}

func TestEventsStreamJSONL(t *testing.T) {
	ts, _, _ := newTestServer(t, false)
	snap := submit(t, ts, smallScenario)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "jsonl") {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var states []jobs.State
	lastSeq := -1
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("events out of order: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		states = append(states, ev.State)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[len(states)-1] != jobs.StateDone {
		t.Fatalf("stream states %v, want trailing done", states)
	}
}

func TestCancelEndpoint(t *testing.T) {
	ts, q, _ := newTestServer(t, false)
	_ = q
	// A replicated scenario is slow enough to catch mid-flight; worst case it
	// finishes first and cancel is a no-op on a terminal job, so accept both.
	doc := `{"version":1,"experiment":{"id":"fig3","packets":300,"interarrivals":[2,4],"replicates":4,"seed":1}}`
	snap := submit(t, ts, doc)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+snap.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	final := waitDone(t, ts, snap.ID)
	if final.State != jobs.StateCanceled && final.State != jobs.StateDone {
		t.Fatalf("state %q after cancel", final.State)
	}
}

func TestNotFoundAndConflict(t *testing.T) {
	ts, _, _ := newTestServer(t, false)
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/result", "/v1/jobs/job-999999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Result of a job that has not finished (or failed) is a 409.
	snap := submit(t, ts, `{"version":1,"experiment":{"id":"fig3","packets":300,"interarrivals":[2,4],"replicates":8,"seed":1}}`)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-completion result status %d, want 409 (or 200 if it already finished)", resp.StatusCode)
	}
}

func TestListAndAuxEndpoints(t *testing.T) {
	ts, _, _ := newTestServer(t, true)
	snap := submit(t, ts, smallScenario)
	waitDone(t, ts, snap.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	decodeBody(t, resp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != snap.ID {
		t.Fatalf("list %+v", list)
	}

	resp, err = http.Get(ts.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	var cs struct {
		Enabled bool `json:"enabled"`
		Stats   struct {
			Misses int64 `json:"misses"`
		} `json:"stats"`
	}
	decodeBody(t, resp, &cs)
	if !cs.Enabled || cs.Stats.Misses != 1 {
		t.Fatalf("cache stats %+v", cs)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"temprivd_cache_misses_total", "temprivd_runs_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %s:\n%s", want, metrics)
		}
	}
}

func TestRunnerWithoutCacheRunsFresh(t *testing.T) {
	// The runner works with no cache at all: every submission simulates.
	runner := NewRunner(nil, nil, 1, nil)
	q := jobs.New(runner, jobs.Options{Workers: 1, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	defer q.Drain(context.Background())
	spec, err := scenario.Parse([]byte(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, _ := q.Get(snap.ID)
		if s.State.Terminal() {
			if s.State != jobs.StateDone || s.CacheHit {
				t.Fatalf("state %q cacheHit=%v: %s", s.State, s.CacheHit, s.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, ok := q.Result(snap.ID)
	if !ok || len(res.TableText) == 0 {
		t.Fatalf("missing result: ok=%v %+v", ok, res)
	}
}
