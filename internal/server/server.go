// Package server exposes the simulation-as-a-service HTTP API served by
// cmd/temprivd:
//
//	POST /v1/jobs           submit a scenario spec; 202 + job snapshot
//	GET  /v1/jobs           list jobs
//	GET  /v1/jobs/{id}        job status snapshot
//	DELETE /v1/jobs/{id}      cancel a job
//	GET  /v1/jobs/{id}/result completed result (tables + manifest);
//	                          ?partial=1 streams per-replicate chunks (JSONL)
//	GET  /v1/jobs/{id}/events progress stream, one JSON object per line
//	GET  /v1/traces/{jobID}   the job's end-to-end trace as a JSON span tree
//	GET  /v1/cache            result-cache effectiveness counters
//	GET  /healthz             liveness probe (always 200 while the process serves)
//	GET  /readyz              readiness probe (503 during journal replay and drain)
//	GET  /metrics             Prometheus text format (telemetry registry)
//	GET  /debug/pprof/...     net/http/pprof (gated by Config.DisableDebugEndpoints)
//
// The server owns no execution logic: submissions validate through
// internal/scenario and execute through the internal/jobs queue, whose
// Runner (built here) consults the internal/resultcache first — so a
// repeated scenario answers from the cache with byte-identical result
// tables instead of re-simulating.
//
// Tracing contract: when a Tracer is configured (internal/obs), every
// accepted submission mints a trace whose span tree follows the job
// end-to-end — ingress parsing, queue wait, retry attempts and backoff
// sleeps, cache consultation, per-replicate engine execution, chunk
// persistence and the cache fill. Clients may supply their own trace ID in
// an X-Trace-Id request header (8–64 chars of [A-Za-z0-9._-]; anything
// else is replaced with a minted ID, never rejected); the effective ID is
// echoed back in the response's X-Trace-Id header and resolvable at
// GET /v1/traces/{jobID} while the trace remains in the flight recorder.
//
// Error contract: every error response is a JSON document
// {"error": "...", "status": N} — including the mux's own 404/405s, which
// are intercepted and rewritten — and every load-shedding response (429,
// 503) carries a Retry-After header so well-behaved clients back off
// instead of hammering a draining or saturated server.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"tempriv/internal/cluster/peering"
	"tempriv/internal/jobs"
	"tempriv/internal/obs"
	"tempriv/internal/resultcache"
	"tempriv/internal/resultstream"
	"tempriv/internal/scenario"
	"tempriv/internal/telemetry"
)

// maxSpecBytes bounds a submitted scenario document.
const maxSpecBytes = 1 << 20

// Readiness states reported by /readyz. Only ReadyServing answers 200;
// the others answer 503 + Retry-After so orchestrators hold traffic while
// the journal replays at boot and route away during drain — without
// /healthz ever going red (the process is alive the whole time).
const (
	ReadyStarting  = "starting"
	ReadyReplaying = "replaying"
	ReadyServing   = "ready"
	ReadyDraining  = "draining"
)

// defaultEventKeepalive is how often an idle /events stream emits a
// keepalive line so intermediaries don't reap the connection and the
// server notices (and drops) clients that went away.
const defaultEventKeepalive = 15 * time.Second

// Config assembles a Server. Every field but Queue is optional; the zero
// value of each optional field disables its feature at no cost.
type Config struct {
	// Queue executes submissions (required).
	Queue *jobs.Queue
	// Cache answers repeated scenarios without re-simulating.
	Cache *resultcache.Cache
	// Chunks serves partial results and makes runs resumable.
	Chunks *resultstream.Store
	// Registry backs /metrics and the server's own counters.
	Registry *telemetry.Registry
	// Tracer mints per-job traces at ingress and serves /v1/traces.
	Tracer *obs.Tracer
	// SLOs are synced (burn-rate gauges recomputed) before every /metrics
	// scrape.
	SLOs obs.SLOSet
	// RequestSLO observes every API request's latency (the all-traffic
	// objective; stage-specific SLOs hang off the runner instead).
	RequestSLO *obs.SLO
	// Log receives structured request records (method, path, status,
	// duration) at debug level, 5xx at error level.
	Log *slog.Logger
	// DisableDebugEndpoints removes /debug/pprof and /debug/vars from the
	// mux. The default (false) keeps them registered — the operational
	// posture every earlier release shipped — while letting deployments
	// that front temprivd to untrusted networks turn them off
	// (temprivd -debug-endpoints=false).
	DisableDebugEndpoints bool
	// Peers, when non-nil, mounts the node-to-node result replication
	// surface (POST /v1/peer/results to accept a ring predecessor's
	// finished result, GET /v1/peer/results/{fingerprint} to serve a
	// replica back — byte-identical to the job's own /result document).
	// The GET side also falls back to this worker's result cache, so a
	// peer (or the gateway's hedged read) can fetch any finished result
	// this node knows about, replicated or computed.
	Peers *peering.Store
	// ClusterID and ClusterOwns give a cluster-member worker its
	// ownership check: when both are set, every submission's fingerprint
	// is looked up on the worker's locally derived consistent-hash ring
	// (internal/cluster/ring, membership from the registry lease client).
	// A submission this worker does not own is still accepted — the job
	// runs correctly anywhere, only cache locality suffers — but it is
	// counted (tempriv_cluster_misdirected_total), annotated on the trace,
	// and answered with an X-Tempriv-Owner header naming the expected
	// owner so the gateway can spot stale routing. ClusterOwns returns
	// the owning worker ID and whether membership is known yet (false
	// during startup = no check).
	ClusterID   string
	ClusterOwns func(fingerprint string) (owner string, known bool)
}

// Server routes the HTTP API onto a job queue and an optional result cache.
type Server struct {
	queue   *jobs.Queue
	cache   *resultcache.Cache
	chunks  *resultstream.Store
	reg     *telemetry.Registry
	tracer  *obs.Tracer
	slos    obs.SLOSet
	reqSLO  *obs.SLO
	log     *slog.Logger
	mux     *http.ServeMux
	// sheds counts load-shedding rejections under the unified tempriv_
	// prefix; shedsDeprecated keeps the pre-rename temprivd_sheds_total
	// series alive for one release so dashboards migrate without a gap.
	sheds           *telemetry.Counter
	shedsDeprecated *telemetry.Counter

	peers        *peering.Store
	peerReceived *telemetry.Counter
	peerHeld     *telemetry.Gauge

	clusterID   string
	clusterOwns func(fingerprint string) (owner string, known bool)
	misdirected *telemetry.Counter

	// EventKeepalive overrides the /events keepalive cadence (default
	// defaultEventKeepalive; set before serving — it is read per request
	// without locking).
	EventKeepalive time.Duration

	stopOnce sync.Once
	stopCh   chan struct{}

	mu        sync.Mutex
	readiness string
}

// New assembles the API from the positional essentials — the pre-tracing
// constructor, kept for callers that need none of the observability
// wiring. Equivalent to NewConfig with only those fields set.
func New(queue *jobs.Queue, cache *resultcache.Cache, chunks *resultstream.Store, reg *telemetry.Registry) *Server {
	return NewConfig(Config{Queue: queue, Cache: cache, Chunks: chunks, Registry: reg})
}

// NewConfig assembles the API. The server starts in the ReadyStarting
// state; the daemon advances it via SetReady as boot proceeds.
func NewConfig(cfg Config) *Server {
	s := &Server{
		queue:     cfg.Queue,
		cache:     cfg.Cache,
		chunks:    cfg.Chunks,
		reg:       cfg.Registry,
		tracer:    cfg.Tracer,
		slos:      cfg.SLOs,
		reqSLO:    cfg.RequestSLO,
		log:       cfg.Log,
		mux:       http.NewServeMux(),
		stopCh:    make(chan struct{}),
		readiness: ReadyStarting,
	}
	s.clusterID = cfg.ClusterID
	s.clusterOwns = cfg.ClusterOwns
	s.peers = cfg.Peers
	if s.reg != nil {
		s.sheds = s.reg.Counter("tempriv_sheds_total")
		s.shedsDeprecated = s.reg.Counter("temprivd_sheds_total")
		if s.clusterOwns != nil {
			s.misdirected = s.reg.Counter("tempriv_cluster_misdirected_total")
		}
		if s.peers != nil {
			s.peerReceived = s.reg.Counter("tempriv_cluster_peer_received_total")
			s.peerHeld = s.reg.Gauge("tempriv_cluster_peer_replicas_held")
		}
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/traces/{jobID}", s.handleTrace)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheStats)
	if s.peers != nil {
		s.mux.HandleFunc("POST /v1/peer/results", s.handlePeerPut)
		s.mux.HandleFunc("GET /v1/peer/results/{fingerprint}", s.handlePeerGet)
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	if s.reg != nil {
		s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			// Burn rates are derived from windowed state, not stored — sync
			// them so every scrape exports rates as fresh as its counters.
			s.slos.Sync()
			s.reg.ServeHTTP(w, r)
		})
	}
	if !cfg.DisableDebugEndpoints {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		s.mux.Handle("/debug/vars", expvar.Handler())
	}
	return s
}

// SetReady moves the readiness state machine (starting → replaying →
// ready → draining). Safe from any goroutine.
func (s *Server) SetReady(state string) {
	s.mu.Lock()
	s.readiness = state
	s.mu.Unlock()
}

// Readiness returns the current /readyz state.
func (s *Server) Readiness() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readiness
}

// Stop tells long-lived handlers (the /events streams) to terminate.
// Called at shutdown before http.Server.Shutdown, which otherwise waits
// forever for streaming clients to hang up on their own. Idempotent.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
}

// ServeHTTP implements http.Handler. Responses are filtered so that any
// plain-text error (the mux's own 404/405) leaves as the JSON error
// contract instead; every request feeds the request SLO and, with a
// logger configured, leaves one structured access record.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	jw := &jsonErrorWriter{rw: w}
	s.mux.ServeHTTP(jw, r)
	jw.finish()
	elapsed := time.Since(start)
	s.reqSLO.Observe(elapsed)
	if s.log != nil {
		status := jw.status
		if status == 0 {
			status = http.StatusOK
		}
		level := slog.LevelDebug
		if status >= http.StatusInternalServerError {
			level = slog.LevelError
		}
		s.log.LogAttrs(r.Context(), level, "http request",
			slog.String("method", r.Method), slog.String("path", r.URL.Path),
			slog.Int("status", status), slog.Duration("elapsed", elapsed))
	}
}

// NewRunner builds the queue Runner that gives the server (and anything
// else sharing the queue) its cache-first execution path: consult the
// result cache by spec fingerprint, re-simulate only on a miss, and store
// the fresh artifacts for the next identical submission.
//
// When chunks is non-nil, every fresh run additionally streams each
// replicate's table into the chunk store (internal/resultstream) as it
// completes: a SIGKILL mid-run loses only the replicate in flight, and the
// re-run (same fingerprint) resumes from the surviving chunks instead of
// recomputing them — with the final artifacts byte-identical either way,
// because the chunks feed the same reduction in the same order. Finished
// chunks are removed once the result is safely in the cache.
//
// Storage sickness never fails a job here: the cache converts corrupt
// entries and I/O errors into misses (quarantining / breaker-bypassing
// internally), a failed Put costs only the cache fill, and a sick chunk
// store degrades to a plain non-resumable run.
func NewRunner(cache *resultcache.Cache, reg *telemetry.Registry, replicateWorkers int, chunks *resultstream.Store) jobs.Runner {
	return NewRunnerConfig(RunnerConfig{
		Cache:            cache,
		Registry:         reg,
		ReplicateWorkers: replicateWorkers,
		Chunks:           chunks,
	})
}

// RunnerConfig parameterises NewRunnerConfig. Cache, Registry, Chunks and
// CachedResultSLO are all optional; their zero values disable the
// corresponding feature.
type RunnerConfig struct {
	Cache            *resultcache.Cache
	Registry         *telemetry.Registry
	ReplicateWorkers int
	Chunks           *resultstream.Store
	// CachedResultSLO observes the latency of every cache-hit answer (the
	// "cached results are fast" objective). Fresh runs don't feed it — their
	// latency is governed by replicate count, not by serving health.
	CachedResultSLO *obs.SLO
}

// NewRunnerConfig is NewRunner with the full option set.
func NewRunnerConfig(cfg RunnerConfig) jobs.Runner {
	cache, reg, chunks := cfg.Cache, cfg.Registry, cfg.Chunks
	replicateWorkers := cfg.ReplicateWorkers
	counter := func(name string) *telemetry.Counter {
		if reg == nil {
			return nil
		}
		return reg.Counter(name)
	}
	inc := func(c *telemetry.Counter) {
		if c != nil {
			c.Inc()
		}
	}
	hits := counter("temprivd_cache_hits_total")
	misses := counter("temprivd_cache_misses_total")
	runs := counter("temprivd_runs_total")
	chunksWritten := counter("tempriv_chunks_written_total")
	chunksQuarantined := counter("tempriv_chunks_quarantined_total")
	replicatesSkipped := counter("tempriv_replicates_skipped_on_resume_total")
	return func(ctx context.Context, job *jobs.Job, progress func(stage, message string)) (*jobs.Result, error) {
		fp := job.Fingerprint
		// The attempt span arrives via ctx (zero when tracing is off); the
		// cache and chunk stages hang off it.
		attempt := obs.SpanFromContext(ctx)
		if cache != nil {
			lookupStart := time.Now()
			cacheSpan := attempt.Child("cache")
			cacheSpan.Annotate("op", "get")
			entry, ok, err := cache.Get(fp)
			if err != nil {
				// Only a malformed fingerprint reaches here (I/O trouble is
				// already a miss); treat it as a miss and recompute.
				progress("cache", "get failed: "+err.Error())
			}
			if ok {
				cacheSpan.Annotate("outcome", "hit")
				cacheSpan.End()
				inc(hits)
				progress("cache", "hit "+fp[:12])
				if chunks != nil {
					// Any chunks for this fingerprint are leftovers from a run
					// that crashed after its cache fill; the cache entry IS
					// the result, so they are no longer needed.
					_ = chunks.Remove(fp)
				}
				cfg.CachedResultSLO.Observe(time.Since(lookupStart))
				return &jobs.Result{
					Fingerprint: fp,
					CacheHit:    true,
					TableText:   entry.TableText,
					TableCSV:    entry.TableCSV,
					Manifest:    entry.Manifest,
				}, nil
			}
			cacheSpan.Annotate("outcome", "miss")
			cacheSpan.EndErr(err)
			inc(misses)
		}
		inc(runs)
		opts := scenario.Options{
			Progress:         progress,
			ReplicateWorkers: replicateWorkers,
		}
		var sink *resultstream.Sink
		if chunks != nil {
			k, err := chunks.Sink(fp, job.Spec.Replicates(), resultstream.SinkHooks{
				Span: attempt,
				Written: func(persisted int) {
					inc(chunksWritten)
					job.NoteChunks(persisted)
				},
				Skipped: func(int) { inc(replicatesSkipped) },
				Quarantined: func(n int) {
					if chunksQuarantined != nil {
						chunksQuarantined.Add(uint64(n))
					}
					progress("chunks", fmt.Sprintf("%d corrupt chunk(s) quarantined; their replicates recompute", n))
				},
				AppendError: func(err error) {
					progress("chunks", "append failed (durability degraded): "+err.Error())
				},
			})
			if err != nil {
				// A sick chunk store must not fail the job: run without
				// streaming durability, exactly as before this feature.
				progress("chunks", "chunk store unavailable: "+err.Error())
			} else {
				sink = k
				// Assigned only when non-nil: a typed-nil ReplicateSink would
				// pass the engine's interface check and then panic on use.
				opts.Sink = k
				if n := k.Persisted(); n > 0 {
					progress("chunks", fmt.Sprintf("resuming: %d replicate chunk(s) survive", n))
					job.NoteChunks(n)
				}
			}
		}
		out, err := scenario.Run(ctx, job.Spec, opts)
		if sink != nil {
			if cerr := sink.Close(); cerr != nil {
				progress("chunks", "closing chunk writer: "+cerr.Error())
			}
		}
		if err != nil {
			// The chunks written so far stay on disk — they are exactly what
			// a retry or a post-crash re-run resumes from.
			return nil, err
		}
		manifest, err := out.ManifestJSON()
		if err != nil {
			return nil, err
		}
		if cache != nil {
			putSpan := attempt.Child("cache")
			putSpan.Annotate("op", "put")
			err := cache.Put(&resultcache.Entry{
				Fingerprint: fp,
				TableText:   out.TableText,
				TableCSV:    out.TableCSV,
				Manifest:    manifest,
			})
			putSpan.EndErr(err)
			if err != nil {
				// The result is in hand; failing to cache it must not fail
				// the job. Surface the problem as a progress event instead.
				progress("cache", "store failed: "+err.Error())
			} else if chunks != nil {
				// The assembled artifact is durable; the per-replicate chunks
				// have served their purpose.
				_ = chunks.Remove(fp)
			}
		}
		return &jobs.Result{
			Fingerprint: fp,
			TableText:   out.TableText,
			TableCSV:    out.TableCSV,
			Manifest:    manifest,
		}, nil
	}
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	state := s.Readiness()
	if state == ReadyServing {
		writeJSON(w, http.StatusOK, map[string]string{"status": state})
		return
	}
	writeError(w, http.StatusServiceUnavailable, fmt.Errorf("not ready: %s", state))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Mint (or adopt via X-Trace-Id) the job's trace at the door: the root
	// span outlives this handler — the queue ends it when the job reaches a
	// terminal state — while the ingress span covers just the parse+submit
	// work done here. With no tracer configured both refs are zero and every
	// call below no-ops.
	ctx, root := s.tracer.StartTrace(r.Context(), r.Header.Get("X-Trace-Id"), "job")
	if root.Enabled() {
		w.Header().Set("X-Trace-Id", root.TraceID())
	}
	ingress := root.Child("ingress")
	rejected := func(status int, err error) {
		// A rejected submission still finishes its trace (it will never
		// bind to a job, so it is only reachable by trace ID).
		ingress.EndErr(err)
		root.AnnotateInt("status", int64(status))
		root.EndErr(err)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		rejected(http.StatusBadRequest, err)
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		err := fmt.Errorf("spec exceeds %d bytes", maxSpecBytes)
		rejected(http.StatusRequestEntityTooLarge, err)
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		rejected(http.StatusBadRequest, err)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Cluster ownership check: a misdirected spec (stale gateway ring,
	// direct submission to the wrong worker) is accepted anyway — it runs
	// correctly here, just without cache locality — but the mismatch is
	// counted, traced and surfaced so the router can correct itself.
	if s.clusterOwns != nil {
		if fp, fpErr := spec.Fingerprint(); fpErr == nil {
			if owner, known := s.clusterOwns(fp); known && owner != "" {
				w.Header().Set("X-Tempriv-Owner", owner)
				if owner != s.clusterID {
					if s.misdirected != nil {
						s.misdirected.Inc()
					}
					root.Annotate("misdirected_owner", owner)
					if s.log != nil {
						s.log.Warn("accepted a job this worker does not own",
							"owner", owner, "self", s.clusterID, "fingerprint", fp)
					}
				}
			}
		}
	}
	snap, err := s.queue.SubmitOrigin(ctx, spec, submitOrigin(r))
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		rejected(http.StatusTooManyRequests, err)
		s.shed(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobs.ErrDraining):
		rejected(http.StatusServiceUnavailable, err)
		s.shed(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		rejected(http.StatusInternalServerError, err)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ingress.End()
	writeJSON(w, http.StatusAccepted, snap)
}

// handleTrace serves a job's span tree from the tracer's flight recorder.
// Live jobs render with Complete=false and open spans at duration -1; a
// trace evicted from the ring (or a boot-restored job, which predates its
// process's tracer) is a 404.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled"))
		return
	}
	jobID := r.PathValue("jobID")
	tree, ok := s.tracer.ByJob(jobID)
	if !ok {
		if _, exists := s.queue.Get(jobID); exists {
			writeError(w, http.StatusNotFound, errors.New("no trace retained for this job (evicted from the flight recorder, or the job predates this process)"))
			return
		}
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, tree)
}

// shed rejects a submission with backpressure semantics: counted in
// telemetry, answered with Retry-After (writeError adds it for 429/503).
// Both the unified tempriv_sheds_total and the deprecated
// temprivd_sheds_total alias move together until the alias retires.
func (s *Server) shed(w http.ResponseWriter, status int, err error) {
	if s.sheds != nil {
		s.sheds.Inc()
	}
	if s.shedsDeprecated != nil {
		s.shedsDeprecated.Inc()
	}
	writeError(w, status, err)
}

// submitOrigin extracts a submission's provenance from the
// X-Tempriv-Origin header. Only known origin tokens are honored — an
// arbitrary client string must not flow into events, logs and the
// journal.
func submitOrigin(r *http.Request) string {
	if r.Header.Get("X-Tempriv-Origin") == jobs.OriginHandoff {
		return jobs.OriginHandoff
	}
	return ""
}

// handleList serves GET /v1/jobs, optionally filtered by ?state= — a
// comma-separated list of job states ("done,failed,canceled"). The
// cluster gateway's reconciliation loop uses exactly that terminal
// filter to refresh its routing table after a worker lease expires, and
// operators use it to find stuck or failed jobs without paging through
// history. An unknown state is a 400 (fail closed, like the rest of the
// validation surface).
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	list := s.queue.List()
	if raw := r.URL.Query().Get("state"); raw != "" {
		want := make(map[jobs.State]bool)
		for _, part := range strings.Split(raw, ",") {
			st := jobs.State(strings.TrimSpace(part))
			switch st {
			case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
				want[st] = true
			default:
				writeError(w, http.StatusBadRequest, fmt.Errorf("unknown state %q (valid: queued, running, done, failed, canceled)", part))
				return
			}
		}
		filtered := make([]jobs.Snapshot, 0, len(list))
		for _, snap := range list {
			if want[snap.State] {
				filtered = append(filtered, snap)
			}
		}
		list = filtered
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": list})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.queue.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// resultBody is the deterministic result document: identical bytes for a
// cache hit and the fresh run that populated it (the cache-or-run flag
// lives on the job snapshot, not here, precisely to keep this body
// content-addressed).
type resultBody struct {
	Fingerprint string          `json:"fingerprint"`
	TableText   string          `json:"table_text"`
	TableCSV    string          `json:"table_csv"`
	Manifest    json.RawMessage `json:"manifest"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if r.URL.Query().Get("partial") == "1" {
		s.servePartialResult(w, snap)
		return
	}
	res, ok := s.queue.Result(id)
	if ok {
		writeJSON(w, http.StatusOK, resultBody{
			Fingerprint: res.Fingerprint,
			TableText:   string(res.TableText),
			TableCSV:    string(res.TableCSV),
			Manifest:    json.RawMessage(res.Manifest),
		})
		return
	}
	if snap.State == jobs.StateDone {
		// The job finished in a previous process life (journal replay keeps
		// it queryable) so its bytes live only in the result cache. Content
		// addressing makes this exact: the cached entry for the job's
		// fingerprint IS the job's result.
		if s.cache != nil && len(snap.Fingerprint) == 64 {
			if entry, hit, err := s.cache.Get(snap.Fingerprint); err == nil && hit {
				writeJSON(w, http.StatusOK, resultBody{
					Fingerprint: entry.Fingerprint,
					TableText:   string(entry.TableText),
					TableCSV:    string(entry.TableCSV),
					Manifest:    json.RawMessage(entry.Manifest),
				})
				return
			}
		}
		writeError(w, http.StatusGone, errors.New("job completed before a restart and its cached result is no longer available; resubmit the spec"))
		return
	}
	// Still in flight: tell the client when to come back, and that the
	// replicates persisted so far are available under ?partial=1.
	w.Header().Set("Retry-After", "2")
	writeError(w, http.StatusConflict, fmt.Errorf("job is %s, no result available yet (persisted partial replicates: ?partial=1)", snap.State))
}

// partialLine is one line of the ?partial=1 JSONL stream: either a
// persisted replicate (Rep + Table set) or the trailing completeness
// marker (Complete et al. set).
type partialLine struct {
	Rep   *int            `json:"rep,omitempty"`
	Table json.RawMessage `json:"table,omitempty"`

	Complete        *bool  `json:"complete,omitempty"`
	State           string `json:"state,omitempty"`
	ReplicatesTotal int    `json:"replicates_total,omitempty"`
	ReplicatesDone  int    `json:"replicates_done,omitempty"`
}

// servePartialResult streams whatever replicate chunks have been persisted
// for the job's fingerprint as JSON Lines — one line per replicate in
// replicate order, then a completeness marker — so a client can consume a
// long sweep's statistics while the job still runs, and knows exactly how
// much is in hand after a crash. Incomplete responses carry Retry-After.
func (s *Server) servePartialResult(w http.ResponseWriter, snap jobs.Snapshot) {
	if s.chunks == nil {
		writeError(w, http.StatusNotFound, errors.New("partial results unavailable: no chunk store configured"))
		return
	}
	rr, err := s.chunks.Read(snap.Fingerprint)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("reading chunks: %w", err))
		return
	}
	byRep := rr.ByRep()
	reps := make([]int, 0, len(byRep))
	for rep := range byRep {
		reps = append(reps, rep)
	}
	sort.Ints(reps)
	complete := snap.State == jobs.StateDone
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	if !complete {
		w.Header().Set("Retry-After", "2")
	}
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, rep := range reps {
		rep := rep
		_ = enc.Encode(partialLine{Rep: &rep, Table: byRep[rep].Payload})
	}
	_ = enc.Encode(partialLine{
		Complete:        &complete,
		State:           string(snap.State),
		ReplicatesTotal: snap.Replicates,
		ReplicatesDone:  len(reps),
	})
}

// handleEvents streams the job's progress as JSON Lines: full history
// first, then live events until the job finishes, the client leaves, or
// the server stops (shutdown closes every stream promptly so Shutdown's
// drain is not hostage to long-lived watchers). Idle streams emit a
// {"keepalive":true} line on a timer, which both holds proxies open and
// detects dead clients — a failed keepalive write ends the handler and
// releases the watcher instead of leaking it until the job finishes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	history, live, stop, ok := s.queue.Watch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev jobs.Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range history {
		if !emit(ev) {
			return
		}
	}
	keepEvery := s.EventKeepalive
	if keepEvery <= 0 {
		keepEvery = defaultEventKeepalive
	}
	keep := time.NewTicker(keepEvery)
	defer keep.Stop()
	for {
		select {
		case ev, open := <-live:
			if !open {
				return
			}
			if !emit(ev) {
				return
			}
			keep.Reset(keepEvery)
		case <-keep.C:
			if _, err := io.WriteString(w, "{\"keepalive\":true}\n"); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-s.stopCh:
			return
		case <-r.Context().Done():
			return
		}
	}
}

// maxPeerDocBytes bounds an accepted peer replica document — generous,
// since result tables scale with sweep size, but still a hard cap so a
// confused peer cannot balloon this process.
const maxPeerDocBytes = 32 << 20

// handlePeerPut accepts a ring predecessor's finished result replica
// (POST /v1/peer/results). Only complete results are admitted; the store
// bounds memory by LRU-evicting cold replicas.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPeerDocBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxPeerDocBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("replica document exceeds %d bytes", maxPeerDocBytes))
		return
	}
	var doc peering.Document
	if err := json.Unmarshal(body, &doc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding replica: %w", err))
		return
	}
	if !doc.Complete {
		writeError(w, http.StatusBadRequest, errors.New("replica is not marked complete; partial results replicate via the chunk store, not peering"))
		return
	}
	if err := s.peers.Put(peering.Replica{
		Fingerprint: doc.Fingerprint,
		TableText:   []byte(doc.TableText),
		TableCSV:    []byte(doc.TableCSV),
		Manifest:    []byte(doc.Manifest),
	}); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.peerReceived != nil {
		s.peerReceived.Inc()
	}
	if s.peerHeld != nil {
		s.peerHeld.Set(float64(s.peers.Len()))
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerGet serves a replicated result by fingerprint, falling back
// to this worker's own result cache — a hedged read or a handoff probe
// is satisfied by any node that holds the finished bytes, replicated or
// computed. The body is the same resultBody document /result serves, so
// a peer-served result is byte-identical to the owner's.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	if rep, ok := s.peers.Get(fp); ok {
		writeJSON(w, http.StatusOK, resultBody{
			Fingerprint: rep.Fingerprint,
			TableText:   string(rep.TableText),
			TableCSV:    string(rep.TableCSV),
			Manifest:    json.RawMessage(rep.Manifest),
		})
		return
	}
	if s.cache != nil && len(fp) == 64 {
		if entry, hit, err := s.cache.Get(fp); err == nil && hit {
			writeJSON(w, http.StatusOK, resultBody{
				Fingerprint: entry.Fingerprint,
				TableText:   string(entry.TableText),
				TableCSV:    string(entry.TableCSV),
				Manifest:    json.RawMessage(entry.Manifest),
			})
			return
		}
	}
	writeError(w, http.StatusNotFound, errors.New("no replica for this fingerprint"))
}

func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	if s.cache == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"enabled": true, "stats": s.cache.Stats()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error document every failing response carries.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeError emits the JSON error contract. Backpressure statuses (429,
// 503) additionally carry Retry-After so clients know the rejection is
// about load, not about their request.
func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorBody{Error: err.Error(), Status: status})
}

// jsonErrorWriter upholds the JSON error contract for responses the
// handlers never see: the mux's built-in 404 (no route) and 405 (wrong
// method) write text/plain bodies, which this wrapper swallows and
// rewrites via writeError. Responses that already declare JSON (all
// handler output) pass through untouched.
type jsonErrorWriter struct {
	rw          http.ResponseWriter
	wroteHeader bool
	intercepted bool
	status      int // the response status, recorded for the access log
}

func (j *jsonErrorWriter) Header() http.Header { return j.rw.Header() }

func (j *jsonErrorWriter) WriteHeader(status int) {
	if j.wroteHeader {
		return
	}
	j.wroteHeader = true
	j.status = status
	ct := j.rw.Header().Get("Content-Type")
	if status >= http.StatusBadRequest && !strings.HasPrefix(ct, "application/json") {
		// Hold the response: finish() rewrites it as the JSON contract.
		j.intercepted = true
		j.status = status
		return
	}
	j.rw.WriteHeader(status)
}

func (j *jsonErrorWriter) Write(p []byte) (int, error) {
	if !j.wroteHeader {
		j.WriteHeader(http.StatusOK)
	}
	if j.intercepted {
		// Discard the plain-text error body; report it written so the
		// originating handler does not see a broken connection.
		return len(p), nil
	}
	return j.rw.Write(p)
}

// Flush implements http.Flusher so the /events stream keeps its live
// semantics through the wrapper.
func (j *jsonErrorWriter) Flush() {
	if j.intercepted {
		return
	}
	if f, ok := j.rw.(http.Flusher); ok {
		f.Flush()
	}
}

// finish emits the rewritten error for an intercepted response.
func (j *jsonErrorWriter) finish() {
	if !j.intercepted {
		return
	}
	h := j.rw.Header()
	h.Del("Content-Length")
	h.Del("X-Content-Type-Options")
	writeError(j.rw, j.status, errors.New(strings.ToLower(http.StatusText(j.status))))
}
