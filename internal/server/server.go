// Package server exposes the simulation-as-a-service HTTP API served by
// cmd/temprivd:
//
//	POST /v1/jobs           submit a scenario spec; 202 + job snapshot
//	GET  /v1/jobs           list jobs
//	GET  /v1/jobs/{id}        job status snapshot
//	DELETE /v1/jobs/{id}      cancel a job
//	GET  /v1/jobs/{id}/result completed result (tables + manifest)
//	GET  /v1/jobs/{id}/events progress stream, one JSON object per line
//	GET  /v1/cache            result-cache effectiveness counters
//	GET  /healthz             liveness probe
//	GET  /metrics             Prometheus text format (telemetry registry)
//	GET  /debug/pprof/...     net/http/pprof (reused from the PR-2 wiring)
//
// The server owns no execution logic: submissions validate through
// internal/scenario and execute through the internal/jobs queue, whose
// Runner (built here) consults the internal/resultcache first — so a
// repeated scenario answers from the cache with byte-identical result
// tables instead of re-simulating.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"

	"tempriv/internal/jobs"
	"tempriv/internal/resultcache"
	"tempriv/internal/scenario"
	"tempriv/internal/telemetry"
)

// maxSpecBytes bounds a submitted scenario document.
const maxSpecBytes = 1 << 20

// Server routes the HTTP API onto a job queue and an optional result cache.
type Server struct {
	queue *jobs.Queue
	cache *resultcache.Cache
	reg   *telemetry.Registry
	mux   *http.ServeMux
}

// New assembles the API. cache may be nil (every submission simulates
// fresh); reg may be nil (no /metrics).
func New(queue *jobs.Queue, cache *resultcache.Cache, reg *telemetry.Registry) *Server {
	s := &Server{queue: queue, cache: cache, reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if reg != nil {
		s.mux.Handle("GET /metrics", reg)
	}
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.Handle("/debug/vars", expvar.Handler())
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// NewRunner builds the queue Runner that gives the server (and anything
// else sharing the queue) its cache-first execution path: consult the
// result cache by spec fingerprint, re-simulate only on a miss, and store
// the fresh artifacts for the next identical submission.
func NewRunner(cache *resultcache.Cache, reg *telemetry.Registry, replicateWorkers int) jobs.Runner {
	counter := func(name string) *telemetry.Counter {
		if reg == nil {
			return nil
		}
		return reg.Counter(name)
	}
	inc := func(c *telemetry.Counter) {
		if c != nil {
			c.Inc()
		}
	}
	hits := counter("temprivd_cache_hits_total")
	misses := counter("temprivd_cache_misses_total")
	runs := counter("temprivd_runs_total")
	return func(ctx context.Context, job *jobs.Job, progress func(stage, message string)) (*jobs.Result, error) {
		fp := job.Fingerprint
		if cache != nil {
			entry, ok, err := cache.Get(fp)
			if err != nil {
				// A sick cache should not take serving down: treat the read
				// failure as transient so the queue retries the whole path.
				return nil, fmt.Errorf("%w: result cache get: %v", jobs.ErrTransient, err)
			}
			if ok {
				inc(hits)
				progress("cache", "hit "+fp[:12])
				return &jobs.Result{
					Fingerprint: fp,
					CacheHit:    true,
					TableText:   entry.TableText,
					TableCSV:    entry.TableCSV,
					Manifest:    entry.Manifest,
				}, nil
			}
			inc(misses)
		}
		inc(runs)
		out, err := scenario.Run(ctx, job.Spec, scenario.Options{
			Progress:         progress,
			ReplicateWorkers: replicateWorkers,
		})
		if err != nil {
			return nil, err
		}
		manifest, err := out.ManifestJSON()
		if err != nil {
			return nil, err
		}
		if cache != nil {
			err := cache.Put(&resultcache.Entry{
				Fingerprint: fp,
				TableText:   out.TableText,
				TableCSV:    out.TableCSV,
				Manifest:    manifest,
			})
			if err != nil {
				// The result is in hand; failing to cache it must not fail
				// the job. Surface the problem as a progress event instead.
				progress("cache", "store failed: "+err.Error())
			}
		}
		return &jobs.Result{
			Fingerprint: fp,
			TableText:   out.TableText,
			TableCSV:    out.TableCSV,
			Manifest:    manifest,
		}, nil
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("spec exceeds %d bytes", maxSpecBytes))
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap, err := s.queue.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.queue.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.queue.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// resultBody is the deterministic result document: identical bytes for a
// cache hit and the fresh run that populated it (the cache-or-run flag
// lives on the job snapshot, not here, precisely to keep this body
// content-addressed).
type resultBody struct {
	Fingerprint string          `json:"fingerprint"`
	TableText   string          `json:"table_text"`
	TableCSV    string          `json:"table_csv"`
	Manifest    json.RawMessage `json:"manifest"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.queue.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	res, ok := s.queue.Result(id)
	if !ok {
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s, no result available", snap.State))
		return
	}
	writeJSON(w, http.StatusOK, resultBody{
		Fingerprint: res.Fingerprint,
		TableText:   string(res.TableText),
		TableCSV:    string(res.TableCSV),
		Manifest:    json.RawMessage(res.Manifest),
	})
}

// handleEvents streams the job's progress as JSON Lines: full history
// first, then live events until the job finishes or the client leaves.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	history, live, stop, ok := s.queue.Watch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev jobs.Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range history {
		if !emit(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-live:
			if !open {
				return
			}
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	if s.cache == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"enabled": true, "stats": s.cache.Stats()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
