package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tempriv/internal/jobs"
	"tempriv/internal/report"
	"tempriv/internal/resultcache"
	"tempriv/internal/resultstream"
	"tempriv/internal/scenario"
	"tempriv/internal/telemetry"
)

const replicatedScenario = `{"version":1,"simulation":{
	"topology":{"kind":"line","hops":3},"packets":20,"replicates":3}}`

// seedChunks persists frames for reps under the spec's fingerprint, as a
// crashed earlier run would have, and returns the fingerprint.
func seedChunks(t *testing.T, store *resultstream.Store, doc string, reps ...int) string {
	t.Helper()
	spec, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	w, err := store.OpenWriter(fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		tab := &report.Table{RowHeader: "x", Columns: []string{"v"}}
		tab.AddRow("only", float64(rep))
		payload, err := resultstream.EncodeTable(tab)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rep, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return fp
}

// readPartial fetches ?partial=1 and splits it into replicate lines and the
// trailing marker.
func readPartial(t *testing.T, url string) (*http.Response, []partialLine, partialLine) {
	t.Helper()
	resp, err := http.Get(url + "?partial=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial status %d", resp.StatusCode)
	}
	var lines []partialLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ln partialLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 || lines[len(lines)-1].Complete == nil {
		t.Fatalf("stream has no completeness marker: %+v", lines)
	}
	return resp, lines[:len(lines)-1], lines[len(lines)-1]
}

func TestPartialResultStreamsPersistedReplicates(t *testing.T) {
	store, err := resultstream.Open(t.TempDir(), resultstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seedChunks(t, store, replicatedScenario, 0, 2)

	q, release := blockedQueue(t, 1, 4)
	ts := httptest.NewServer(New(q, nil, store, nil))
	defer ts.Close()

	snap := submit(t, ts, replicatedScenario)
	waitState(t, q, snap.ID, jobs.StateRunning)

	// In flight: the plain result is 409 + Retry-After, and ?partial=1
	// serves the two surviving replicates plus an incomplete marker.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("in-flight result: status %d Retry-After %q, want 409 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	presp, reps, marker := readPartial(t, ts.URL+"/v1/jobs/"+snap.ID+"/result")
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/jsonl") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if presp.Header.Get("Retry-After") != "2" {
		t.Fatalf("incomplete partial lacks Retry-After (got %q)", presp.Header.Get("Retry-After"))
	}
	if len(reps) != 2 || *reps[0].Rep != 0 || *reps[1].Rep != 2 {
		t.Fatalf("replicate lines = %+v, want reps 0 and 2 in order", reps)
	}
	for _, ln := range reps {
		if _, err := resultstream.DecodeTable(ln.Table); err != nil {
			t.Fatalf("replicate %d table does not decode: %v", *ln.Rep, err)
		}
	}
	if *marker.Complete || marker.ReplicatesTotal != 3 || marker.ReplicatesDone != 2 {
		t.Fatalf("marker = %+v, want incomplete 2/3", marker)
	}

	// After completion the marker flips and the retry hint goes away.
	close(release)
	waitDone(t, ts, snap.ID)
	presp, _, marker = readPartial(t, ts.URL+"/v1/jobs/"+snap.ID+"/result")
	if !*marker.Complete || marker.State != string(jobs.StateDone) {
		t.Fatalf("post-done marker = %+v, want complete", marker)
	}
	if presp.Header.Get("Retry-After") != "" {
		t.Fatal("complete partial still hints Retry-After")
	}
}

func TestPartialResultWithoutChunkStoreIs404(t *testing.T) {
	ts, _, _ := newTestServer(t, false)
	snap := submit(t, ts, smallScenario)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/result?partial=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 when no chunk store is configured", resp.StatusCode)
	}
}

func TestRunnerResumesFromChunksAndCleansUp(t *testing.T) {
	// End-to-end through the real runner: seeded chunks are resumed (skip
	// counter moves), the result matches a chunk-free baseline byte for
	// byte, and the chunks are removed once the result is cached.
	dir := t.TempDir()
	store, err := resultstream.Open(dir, resultstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := resultcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline from a chunk-free server.
	ts0, _, _ := newTestServer(t, false)
	base := submit(t, ts0, replicatedScenario)
	waitDone(t, ts0, base.ID)
	want := fetchResult(t, ts0, base.ID)

	// Seed genuine chunks by running once with a sink, then dropping one
	// frame to fake a mid-job crash.
	spec, err := scenario.Parse([]byte(replicatedScenario))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	sink, err := store.Sink(fp, spec.Replicates(), resultstream.SinkHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Run(t.Context(), spec, scenario.Options{Sink: sink}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fp+".chunks.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames := bytes.SplitAfter(data, []byte("\n"))
	if len(frames) < 3 {
		t.Fatalf("expected 3 chunk frames, got %d", len(frames))
	}
	if err := os.WriteFile(path, bytes.Join(frames[:2], nil), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	q := jobs.New(NewRunner(cache, reg, 1, store), jobs.Options{Workers: 1})
	ts := httptest.NewServer(New(q, cache, store, reg))
	defer func() {
		ts.Close()
		q.Drain(t.Context())
	}()

	snap := submit(t, ts, replicatedScenario)
	final := waitDone(t, ts, snap.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("state %s", final.State)
	}
	if got := fetchResult(t, ts, snap.ID); string(got) != string(want) {
		t.Fatal("resumed result differs from chunk-free baseline")
	}
	if v := reg.Counter("tempriv_replicates_skipped_on_resume_total").Value(); v != 2 {
		t.Fatalf("skipped-on-resume = %d, want 2", v)
	}
	if v := reg.Counter("tempriv_chunks_written_total").Value(); v != 1 {
		t.Fatalf("chunks written = %d, want 1 (only the missing replicate)", v)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("chunk file survives after the result is cached: %v", err)
	}
	if final.ChunksPersisted < 2 {
		t.Fatalf("snapshot ChunksPersisted = %d, want >= 2", final.ChunksPersisted)
	}
}

func TestEventsKeepaliveOnIdleStream(t *testing.T) {
	q, release := blockedQueue(t, 1, 4)
	srv := New(q, nil, nil, nil)
	srv.EventKeepalive = 5 * time.Millisecond
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec, err := scenario.Parse([]byte(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, snap.ID, jobs.StateRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	keepalives := 0
	deadline := time.After(5 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	for keepalives < 2 {
		select {
		case ln, open := <-lines:
			if !open {
				t.Fatal("event stream closed before any keepalive")
			}
			var probe struct {
				Keepalive bool `json:"keepalive"`
			}
			if err := json.Unmarshal([]byte(ln), &probe); err != nil {
				t.Fatalf("non-JSON event line %q: %v", ln, err)
			}
			if probe.Keepalive {
				keepalives++
			}
		case <-deadline:
			t.Fatalf("saw %d keepalive line(s) in 5s, want 2", keepalives)
		}
	}
	close(release)
}
