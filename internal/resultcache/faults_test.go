package resultcache

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tempriv/internal/faultfs"
)

// fakeClock is a manually-advanced clock for breaker cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func openFaulty(t *testing.T, ff *faultfs.Faulty, clk *fakeClock, hooks Hooks) *Cache {
	t.Helper()
	c, err := OpenConfig(Config{
		Dir:              t.TempDir(),
		FS:               ff,
		Clock:            clk.Now,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Second,
		Hooks:            hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorruptEntryQuarantinedAsMiss(t *testing.T) {
	dir := t.TempDir()
	var quarantined []string
	c, err := OpenConfig(Config{Dir: dir, Hooks: Hooks{
		Quarantine: func(fp string) { quarantined = append(quarantined, fp) },
	}})
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(1, 64)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	// Flip bits in a payload behind the cache's back.
	victim := filepath.Join(dir, "v2", e.Fingerprint, "table.txt")
	if err := os.WriteFile(victim, []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(e.Fingerprint); err != nil || ok {
		t.Fatalf("corrupt entry must miss, got ok=%v err=%v", ok, err)
	}
	st := c.Stats()
	if st.Quarantined != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(quarantined) != 1 || quarantined[0] != e.Fingerprint {
		t.Fatalf("quarantine hook saw %v", quarantined)
	}
	// The entry moved aside: gone from the serving tree, preserved for
	// inspection, and a re-Put can land cleanly.
	if _, err := os.Stat(filepath.Join(dir, "v2", e.Fingerprint)); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still in serving tree: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", e.Fingerprint)); err != nil {
		t.Fatalf("quarantine capture missing: %v", err)
	}
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(e.Fingerprint)
	if err != nil || !ok || !bytes.Equal(got.TableText, e.TableText) {
		t.Fatalf("re-Put after quarantine did not serve: ok=%v err=%v", ok, err)
	}
}

func TestCorruptSumsQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(2, 32)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "v2", e.Fingerprint, sumsFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(e.Fingerprint); err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMissingPayloadQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(3, 32)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "v2", e.Fingerprint, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(e.Fingerprint); ok {
		t.Fatal("entry with missing payload served")
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReadErrorsAreMissesNeverErrors(t *testing.T) {
	ff := faultfs.NewFaulty(faultfs.OS{})
	clk := newFakeClock()
	c := openFaulty(t, ff, clk, Hooks{})
	e := testEntry(4, 32)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	ff.Set(faultfs.OpRead, faultfs.Fault{Err: faultfs.ErrIO})
	if _, ok, err := c.Get(e.Fingerprint); err != nil || ok {
		t.Fatalf("sick read must be a miss, got ok=%v err=%v", ok, err)
	}
	ff.Clear(faultfs.OpRead)
	if _, ok, err := c.Get(e.Fingerprint); err != nil || !ok {
		t.Fatalf("healthy read after fault cleared: ok=%v err=%v", ok, err)
	}
	st := c.Stats()
	if st.IOErrors == 0 {
		t.Fatalf("I/O error not counted: %+v", st)
	}
}

func TestBreakerOpensAndBypassesThenRecovers(t *testing.T) {
	ff := faultfs.NewFaulty(faultfs.OS{})
	clk := newFakeClock()
	var transitions []BreakerState
	c := openFaulty(t, ff, clk, Hooks{
		BreakerChange: func(_, to BreakerState) { transitions = append(transitions, to) },
	})
	e := testEntry(5, 32)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}

	ff.Set(faultfs.OpRead, faultfs.Fault{Err: faultfs.ErrIO})
	for i := 0; i < 3; i++ {
		if _, ok, err := c.Get(e.Fingerprint); err != nil || ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
	}
	if got := c.BreakerState(); got != BreakerOpen {
		t.Fatalf("after 3 consecutive I/O errors breaker is %s", got)
	}

	// Open breaker: operations bypass the disk entirely — even though the
	// fault is still armed, no further I/O errors accrue.
	before := c.Stats().IOErrors
	for i := 0; i < 4; i++ {
		if _, ok, err := c.Get(e.Fingerprint); err != nil || ok {
			t.Fatalf("bypass get: ok=%v err=%v", ok, err)
		}
	}
	st := c.Stats()
	if st.IOErrors != before {
		t.Fatalf("open breaker still touched the disk: %+v", st)
	}
	if st.Bypassed < 4 {
		t.Fatalf("bypasses not counted: %+v", st)
	}

	// Cooldown elapses with the disk still sick: the half-open probe fails
	// and the breaker re-opens.
	clk.Advance(6 * time.Second)
	if _, ok, _ := c.Get(e.Fingerprint); ok {
		t.Fatal("probe served from a sick disk")
	}
	if got := c.BreakerState(); got != BreakerOpen {
		t.Fatalf("failed probe left breaker %s", got)
	}

	// Disk heals; after the next cooldown the probe succeeds and closes it.
	ff.Clear(faultfs.OpRead)
	clk.Advance(6 * time.Second)
	if _, ok, err := c.Get(e.Fingerprint); err != nil || !ok {
		t.Fatalf("healed probe: ok=%v err=%v", ok, err)
	}
	if got := c.BreakerState(); got != BreakerClosed {
		t.Fatalf("successful probe left breaker %s", got)
	}

	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
}

func TestPutENOSPCFeedsBreakerThenBypasses(t *testing.T) {
	ff := faultfs.NewFaulty(faultfs.OS{})
	clk := newFakeClock()
	c := openFaulty(t, ff, clk, Hooks{})
	ff.Set(faultfs.OpWrite, faultfs.Fault{Err: faultfs.ErrNoSpace})
	for i := 0; i < 3; i++ {
		if err := c.Put(testEntry(10+i, 32)); err == nil {
			t.Fatalf("Put %d on a full disk should error", i)
		}
	}
	if got := c.BreakerState(); got != BreakerOpen {
		t.Fatalf("full disk did not open breaker: %s", got)
	}
	// With the breaker open, Put degrades to a silent bypass: the serving
	// path sees success, the result just is not cached.
	if err := c.Put(testEntry(20, 32)); err != nil {
		t.Fatalf("bypassed Put must not error: %v", err)
	}
	st := c.Stats()
	if st.Bypassed == 0 {
		t.Fatalf("bypass not counted: %+v", st)
	}
	// After healing + cooldown, writes land again.
	ff.Clear(faultfs.OpWrite)
	clk.Advance(6 * time.Second)
	e := testEntry(21, 32)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(e.Fingerprint); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestTornWriteNeverServesPartialEntry(t *testing.T) {
	ff := faultfs.NewFaulty(faultfs.OS{})
	clk := newFakeClock()
	c := openFaulty(t, ff, clk, Hooks{})
	e := testEntry(30, 256)
	// The first write lands only half its bytes, then the fault clears.
	ff.Set(faultfs.OpWrite, faultfs.Fault{Err: faultfs.ErrIO, Torn: true})
	if err := c.Put(e); err == nil {
		t.Fatal("torn Put should report the write error")
	}
	ff.Clear(faultfs.OpWrite)
	// Nothing partial is visible: the stage directory never got renamed in.
	got, ok, err := c.Get(e.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if ok && !bytes.Equal(got.TableText, e.TableText) {
		t.Fatal("torn write served partial bytes")
	}
	if ok {
		t.Fatal("failed Put published an entry")
	}
	// A clean retry serves full bytes.
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok, err = c.Get(e.Fingerprint)
	if err != nil || !ok || !bytes.Equal(got.TableText, e.TableText) {
		t.Fatalf("retry after torn write: ok=%v err=%v", ok, err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	ff := faultfs.NewFaulty(faultfs.OS{})
	c, err := OpenConfig(Config{Dir: t.TempDir(), FS: ff, BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	ff.Set(faultfs.OpRead, faultfs.Fault{Err: faultfs.ErrIO})
	for i := 0; i < 10; i++ {
		if _, ok, err := c.Get(testFingerprint(1)); err != nil || ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
	}
	if got := c.BreakerState(); got != BreakerClosed {
		t.Fatalf("disabled breaker reports %s", got)
	}
}
