// Package resultcache is a content-addressed on-disk cache for executed
// scenarios, keyed by the canonical-spec SHA-256 fingerprint
// (scenario.Spec.Fingerprint — the same hashing run manifests use). A hit
// returns the stored result bytes without re-simulating; because every run
// is seed-deterministic, cached bytes are identical to what a fresh run
// would produce, so hits are safe at any layer (CLI sweep or HTTP server).
//
// Layout (one directory per entry, one file per artifact):
//
//	<root>/v1/<fingerprint>/table.txt
//	<root>/v1/<fingerprint>/table.csv
//	<root>/v1/<fingerprint>/manifest.json
//
// Writes are atomic: the entry is staged under <root>/tmp and renamed into
// place, so readers never observe a partial entry and concurrent writers of
// the same fingerprint converge on one complete copy. The v1 path segment
// versions the entry format — a future incompatible layout bumps it and
// old entries are simply never hit again.
//
// The cache is size-bounded: after every Put, least-recently-used entries
// (by directory mtime, refreshed on every hit) are evicted until the total
// payload fits the budget.
package resultcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// formatVersion names the on-disk entry layout.
const formatVersion = "v1"

// DefaultMaxBytes bounds the cache payload when Open is given no budget.
const DefaultMaxBytes = 256 << 20

// entryFiles are the artifacts every complete entry holds.
var entryFiles = []string{"table.txt", "table.csv", "manifest.json"}

// Entry is one cached scenario result.
type Entry struct {
	// Fingerprint is the scenario's content address (hex SHA-256).
	Fingerprint string
	// TableText and TableCSV are the rendered result tables.
	TableText []byte
	TableCSV  []byte
	// Manifest is the provenance record (scenario.Manifest JSON).
	Manifest []byte
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	// Hits and Misses count Get outcomes since Open.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries removed by the size bound since Open.
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe the current on-disk population.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Cache is a fingerprint-keyed result store. Safe for concurrent use by
// multiple goroutines; concurrent processes sharing one root are safe too
// (writes are rename-atomic), though their LRU accounting is independent.
type Cache struct {
	root     string
	maxBytes int64

	mu        sync.Mutex
	hits      uint64
	misses    uint64
	evictions uint64
}

// Open prepares a cache rooted at dir, creating it if needed. maxBytes
// bounds the total stored payload; 0 means DefaultMaxBytes, negative means
// unbounded.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("resultcache: empty cache directory")
	}
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	for _, sub := range []string{formatVersion, "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: preparing %s: %w", dir, err)
		}
	}
	return &Cache{root: dir, maxBytes: maxBytes}, nil
}

// Get looks the fingerprint up. A complete entry returns (entry, true);
// absence returns (nil, false) with no error. Hits refresh the entry's
// recency so hot scenarios survive eviction.
func (c *Cache) Get(fingerprint string) (*Entry, bool, error) {
	dir, err := c.entryDir(fingerprint)
	if err != nil {
		return nil, false, err
	}
	e := &Entry{Fingerprint: fingerprint}
	dests := []*[]byte{&e.TableText, &e.TableCSV, &e.Manifest}
	for i, name := range entryFiles {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if errors.Is(err, os.ErrNotExist) {
			c.count(&c.misses)
			return nil, false, nil
		}
		if err != nil {
			return nil, false, fmt.Errorf("resultcache: reading %s/%s: %w", fingerprint, name, err)
		}
		*dests[i] = b
	}
	now := time.Now()
	// Recency refresh is advisory: a failed Chtimes (e.g. read-only FS)
	// only weakens LRU ordering, never correctness.
	_ = os.Chtimes(dir, now, now)
	c.count(&c.hits)
	return e, true, nil
}

// Put stores the entry atomically, then enforces the size bound. Storing a
// fingerprint that already exists is a no-op (content addressing: equal
// keys mean equal bytes).
func (c *Cache) Put(e *Entry) error {
	dir, err := c.entryDir(e.Fingerprint)
	if err != nil {
		return err
	}
	if _, err := os.Stat(dir); err == nil {
		return nil
	}
	stage, err := os.MkdirTemp(filepath.Join(c.root, "tmp"), e.Fingerprint[:8]+"-")
	if err != nil {
		return fmt.Errorf("resultcache: staging entry: %w", err)
	}
	defer os.RemoveAll(stage) // no-op after a successful rename
	payloads := [][]byte{e.TableText, e.TableCSV, e.Manifest}
	for i, name := range entryFiles {
		if err := os.WriteFile(filepath.Join(stage, name), payloads[i], 0o644); err != nil {
			return fmt.Errorf("resultcache: writing %s: %w", name, err)
		}
	}
	if err := os.Rename(stage, dir); err != nil {
		// A concurrent writer may have landed the same fingerprint first;
		// content addressing makes that a success, not a conflict.
		if _, statErr := os.Stat(dir); statErr == nil {
			return nil
		}
		return fmt.Errorf("resultcache: publishing %s: %w", e.Fingerprint, err)
	}
	return c.evict()
}

// Stats returns the effectiveness counters and the current population.
func (c *Cache) Stats() Stats {
	entries, bytes, _ := c.scan()
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(entries), Bytes: bytes,
	}
}

func (c *Cache) count(field *uint64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// entryDir validates the fingerprint (it becomes a path segment, so it must
// be exactly a 64-char lowercase hex string — anything else is rejected to
// make traversal impossible) and returns the entry directory.
func (c *Cache) entryDir(fingerprint string) (string, error) {
	if len(fingerprint) != 64 {
		return "", fmt.Errorf("resultcache: fingerprint %q is not a sha256 hex digest", fingerprint)
	}
	for _, r := range fingerprint {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			return "", fmt.Errorf("resultcache: fingerprint %q is not a sha256 hex digest", fingerprint)
		}
	}
	return filepath.Join(c.root, formatVersion, fingerprint), nil
}

type scanned struct {
	dir   string
	mtime time.Time
	bytes int64
}

// scan walks the entry population, returning per-entry sizes and the total.
func (c *Cache) scan() ([]scanned, int64, error) {
	versionDir := filepath.Join(c.root, formatVersion)
	dirs, err := os.ReadDir(versionDir)
	if err != nil {
		return nil, 0, fmt.Errorf("resultcache: scanning: %w", err)
	}
	var out []scanned
	var total int64
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		entry := scanned{dir: filepath.Join(versionDir, d.Name())}
		if info, err := d.Info(); err == nil {
			entry.mtime = info.ModTime()
		}
		for _, name := range entryFiles {
			if fi, err := os.Stat(filepath.Join(entry.dir, name)); err == nil {
				entry.bytes += fi.Size()
			}
		}
		total += entry.bytes
		out = append(out, entry)
	}
	return out, total, nil
}

// evict removes least-recently-used entries until the payload fits
// maxBytes. At least one entry always survives, so a single oversized
// result cannot wedge the cache into rewriting itself forever.
func (c *Cache) evict() error {
	if c.maxBytes < 0 {
		return nil
	}
	entries, total, err := c.scan()
	if err != nil {
		return err
	}
	if total <= c.maxBytes || len(entries) <= 1 {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries[:len(entries)-1] {
		if total <= c.maxBytes {
			break
		}
		if err := os.RemoveAll(e.dir); err != nil {
			return fmt.Errorf("resultcache: evicting %s: %w", e.dir, err)
		}
		total -= e.bytes
		c.count(&c.evictions)
	}
	return nil
}
