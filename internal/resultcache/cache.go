// Package resultcache is a content-addressed on-disk cache for executed
// scenarios, keyed by the canonical-spec SHA-256 fingerprint
// (scenario.Spec.Fingerprint — the same hashing run manifests use). A hit
// returns the stored result bytes without re-simulating; because every run
// is seed-deterministic, cached bytes are identical to what a fresh run
// would produce, so hits are safe at any layer (CLI sweep or HTTP server).
//
// Layout (one directory per entry, one file per artifact, plus a checksum
// manifest):
//
//	<root>/v2/<fingerprint>/table.txt
//	<root>/v2/<fingerprint>/table.csv
//	<root>/v2/<fingerprint>/manifest.json
//	<root>/v2/<fingerprint>/sums.json
//
// Writes are atomic: the entry is staged under <root>/tmp and renamed into
// place, so readers never observe a partial entry and concurrent writers of
// the same fingerprint converge on one complete copy. The v2 path segment
// versions the entry format — v2 added mandatory per-file SHA-256 sums, so
// v1 entries are simply never hit again.
//
// The cache is built for sick disks, not just healthy ones:
//
//   - Reads are checksum-verified. An entry whose bytes do not match its
//     recorded sums (bit rot, torn write that slipped past rename, manual
//     tampering) is quarantined — moved aside, counted, reported as a miss —
//     and is never served.
//   - I/O errors never propagate to callers as errors. A failed read is a
//     miss; a failed write loses one cache fill. A circuit breaker counts
//     consecutive I/O errors and, once open, bypasses the disk entirely
//     (compute-always) until a cooldown elapses, so a dying volume costs
//     latency, not availability.
//   - Every disk operation goes through faultfs.FS, so ENOSPC, EIO and torn
//     writes are injectable in tests.
//
// The cache is size-bounded: after every Put, least-recently-used entries
// (by directory mtime, refreshed on every hit) are evicted until the total
// payload fits the budget.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tempriv/internal/faultfs"
)

// formatVersion names the on-disk entry layout.
const formatVersion = "v2"

// sumsFile is the per-entry checksum manifest.
const sumsFile = "sums.json"

// DefaultMaxBytes bounds the cache payload when Open is given no budget.
const DefaultMaxBytes = 256 << 20

// Breaker defaults: open after 3 consecutive I/O errors, probe again after
// 5 seconds.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
)

// entryFiles are the artifacts every complete entry holds (sums.json is
// tracked separately — it checksums these).
var entryFiles = []string{"table.txt", "table.csv", "manifest.json"}

// Entry is one cached scenario result.
type Entry struct {
	// Fingerprint is the scenario's content address (hex SHA-256).
	Fingerprint string
	// TableText and TableCSV are the rendered result tables.
	TableText []byte
	TableCSV  []byte
	// Manifest is the provenance record (scenario.Manifest JSON).
	Manifest []byte
}

// Stats is a snapshot of cache effectiveness and health counters.
type Stats struct {
	// Hits and Misses count Get outcomes since Open.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries removed by the size bound since Open.
	Evictions uint64 `json:"evictions"`
	// Quarantined counts corrupt entries moved aside by checksum
	// verification; IOErrors counts disk operations that failed; Bypassed
	// counts operations short-circuited by the open breaker.
	Quarantined uint64 `json:"quarantined"`
	IOErrors    uint64 `json:"io_errors"`
	Bypassed    uint64 `json:"bypassed"`
	// Breaker is the disk-health circuit breaker's current state.
	Breaker BreakerState `json:"breaker"`
	// Entries and Bytes describe the current on-disk population.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Hooks observe cache health events (telemetry wiring). All hooks may be
// nil and must be fast; they are called synchronously.
type Hooks struct {
	// Quarantine fires when a corrupt entry is moved aside.
	Quarantine func(fingerprint string)
	// BreakerChange fires on every breaker transition.
	BreakerChange func(from, to BreakerState)
	// IOError fires on every failed disk operation.
	IOError func(err error)
}

// Config assembles a cache with explicit seams (tests inject a faulty
// filesystem and a fake clock; production uses Open).
type Config struct {
	// Dir is the cache root (required).
	Dir string
	// MaxBytes bounds the stored payload; 0 means DefaultMaxBytes,
	// negative means unbounded.
	MaxBytes int64
	// FS is the filesystem seam (nil = the real OS filesystem).
	FS faultfs.FS
	// Clock feeds the breaker and recency refresh (nil = time.Now).
	Clock func() time.Time
	// BreakerThreshold and BreakerCooldown tune the disk-health breaker
	// (0 = defaults; a negative threshold disables the breaker).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Hooks observe health events.
	Hooks Hooks
}

// Cache is a fingerprint-keyed result store. Safe for concurrent use by
// multiple goroutines; concurrent processes sharing one root are safe too
// (writes are rename-atomic), though their LRU accounting is independent.
type Cache struct {
	root     string
	maxBytes int64
	fs       faultfs.FS
	clock    func() time.Time
	hooks    Hooks
	brk      *breaker

	mu          sync.Mutex
	hits        uint64
	misses      uint64
	evictions   uint64
	quarantined uint64
	ioErrors    uint64
	bypassed    uint64
}

// Open prepares a cache rooted at dir with the default (healthy-disk)
// configuration, creating it if needed. maxBytes bounds the total stored
// payload; 0 means DefaultMaxBytes, negative means unbounded.
func Open(dir string, maxBytes int64) (*Cache, error) {
	return OpenConfig(Config{Dir: dir, MaxBytes: maxBytes})
}

// OpenConfig prepares a cache from an explicit configuration.
func OpenConfig(cfg Config) (*Cache, error) {
	if cfg.Dir == "" {
		return nil, errors.New("resultcache: empty cache directory")
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS{}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	for _, sub := range []string{formatVersion, "tmp", "quarantine"} {
		if err := cfg.FS.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: preparing %s: %w", cfg.Dir, err)
		}
	}
	c := &Cache{
		root:     cfg.Dir,
		maxBytes: cfg.MaxBytes,
		fs:       cfg.FS,
		clock:    cfg.Clock,
		hooks:    cfg.Hooks,
	}
	if cfg.BreakerThreshold > 0 {
		c.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Clock, func(from, to BreakerState) {
			if cfg.Hooks.BreakerChange != nil {
				cfg.Hooks.BreakerChange(from, to)
			}
		})
	}
	return c, nil
}

// sums computes the per-file checksum manifest for an entry's payloads.
func sums(payloads [][]byte) map[string]string {
	out := make(map[string]string, len(entryFiles))
	for i, name := range entryFiles {
		h := sha256.Sum256(payloads[i])
		out[name] = hex.EncodeToString(h[:])
	}
	return out
}

// Get looks the fingerprint up. A complete, checksum-verified entry returns
// (entry, true); anything else — absence, disk errors, corruption — is a
// miss, never an error (the only error is a malformed fingerprint). Corrupt
// entries are quarantined so they cannot be served later; disk errors feed
// the breaker. Hits refresh the entry's recency so hot scenarios survive
// eviction.
func (c *Cache) Get(fingerprint string) (*Entry, bool, error) {
	dir, err := c.entryDir(fingerprint)
	if err != nil {
		return nil, false, err
	}
	if c.brk != nil && !c.brk.allow() {
		c.count(&c.bypassed)
		c.count(&c.misses)
		return nil, false, nil
	}

	sumsRaw, err := c.fs.ReadFile(filepath.Join(dir, sumsFile))
	if errors.Is(err, os.ErrNotExist) {
		c.opOK()
		c.count(&c.misses)
		return nil, false, nil
	}
	if err != nil {
		c.ioError(err)
		c.count(&c.misses)
		return nil, false, nil
	}
	var want map[string]string
	if err := json.Unmarshal(sumsRaw, &want); err != nil {
		c.quarantine(fingerprint, dir)
		c.count(&c.misses)
		return nil, false, nil
	}

	e := &Entry{Fingerprint: fingerprint}
	dests := []*[]byte{&e.TableText, &e.TableCSV, &e.Manifest}
	for i, name := range entryFiles {
		b, err := c.fs.ReadFile(filepath.Join(dir, name))
		if errors.Is(err, os.ErrNotExist) {
			// sums.json exists but a payload is gone: the entry is broken,
			// not merely absent.
			c.quarantine(fingerprint, dir)
			c.count(&c.misses)
			return nil, false, nil
		}
		if err != nil {
			c.ioError(err)
			c.count(&c.misses)
			return nil, false, nil
		}
		h := sha256.Sum256(b)
		if want[name] != hex.EncodeToString(h[:]) {
			c.quarantine(fingerprint, dir)
			c.count(&c.misses)
			return nil, false, nil
		}
		*dests[i] = b
	}
	c.opOK()
	now := c.clock()
	// Recency refresh is advisory: a failed Chtimes (e.g. read-only FS)
	// only weakens LRU ordering, never correctness.
	_ = c.fs.Chtimes(dir, now, now)
	c.count(&c.hits)
	return e, true, nil
}

// Put stores the entry atomically (payloads plus their checksum manifest),
// then enforces the size bound. Storing a fingerprint that already exists
// is a no-op (content addressing: equal keys mean equal bytes). With the
// breaker open, Put is a silent bypass — the result simply is not cached.
func (c *Cache) Put(e *Entry) error {
	dir, err := c.entryDir(e.Fingerprint)
	if err != nil {
		return err
	}
	if c.brk != nil && !c.brk.allow() {
		c.count(&c.bypassed)
		return nil
	}
	if _, err := c.fs.Stat(dir); err == nil {
		c.opOK()
		return nil
	}
	stage, err := c.fs.MkdirTemp(filepath.Join(c.root, "tmp"), e.Fingerprint[:8]+"-")
	if err != nil {
		c.ioError(err)
		return fmt.Errorf("resultcache: staging entry: %w", err)
	}
	defer c.fs.RemoveAll(stage) // no-op after a successful rename
	payloads := [][]byte{e.TableText, e.TableCSV, e.Manifest}
	sumsJSON, err := json.Marshal(sums(payloads))
	if err != nil {
		return fmt.Errorf("resultcache: encoding sums: %w", err)
	}
	names := append(append([]string(nil), entryFiles...), sumsFile)
	contents := append(payloads, sumsJSON)
	for i, name := range names {
		if err := c.fs.WriteFile(filepath.Join(stage, name), contents[i], 0o644); err != nil {
			c.ioError(err)
			return fmt.Errorf("resultcache: writing %s: %w", name, err)
		}
	}
	if err := c.fs.Rename(stage, dir); err != nil {
		// A concurrent writer may have landed the same fingerprint first;
		// content addressing makes that a success, not a conflict.
		if _, statErr := c.fs.Stat(dir); statErr == nil {
			return nil
		}
		c.ioError(err)
		return fmt.Errorf("resultcache: publishing %s: %w", e.Fingerprint, err)
	}
	c.opOK()
	return c.evict()
}

// Stats returns the effectiveness counters and the current population.
func (c *Cache) Stats() Stats {
	entries, bytes, _ := c.scan()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Quarantined: c.quarantined, IOErrors: c.ioErrors, Bypassed: c.bypassed,
		Breaker: BreakerClosed,
		Entries: len(entries), Bytes: bytes,
	}
	if c.brk != nil {
		s.Breaker = c.brk.current()
	}
	return s
}

// BreakerState returns the disk-health breaker's current state.
func (c *Cache) BreakerState() BreakerState {
	if c.brk == nil {
		return BreakerClosed
	}
	return c.brk.current()
}

func (c *Cache) count(field *uint64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// opOK feeds a healthy disk operation to the breaker.
func (c *Cache) opOK() {
	if c.brk != nil {
		c.brk.success()
	}
}

// ioError records a failed disk operation: counted, surfaced to the hook,
// fed to the breaker.
func (c *Cache) ioError(err error) {
	c.count(&c.ioErrors)
	if c.hooks.IOError != nil {
		c.hooks.IOError(err)
	}
	if c.brk != nil {
		c.brk.failure()
	}
}

// quarantine moves a corrupt entry aside so it can never be served, and
// counts it. Quarantined entries live under <root>/quarantine for post-hoc
// inspection; if even the move fails, the entry is deleted outright.
func (c *Cache) quarantine(fingerprint, dir string) {
	dest := filepath.Join(c.root, "quarantine", fingerprint)
	_ = c.fs.RemoveAll(dest) // re-quarantine replaces the old capture
	if err := c.fs.Rename(dir, dest); err != nil {
		_ = c.fs.RemoveAll(dir)
	}
	c.count(&c.quarantined)
	if c.hooks.Quarantine != nil {
		c.hooks.Quarantine(fingerprint)
	}
}

// entryDir validates the fingerprint (it becomes a path segment, so it must
// be exactly a 64-char lowercase hex string — anything else is rejected to
// make traversal impossible) and returns the entry directory.
func (c *Cache) entryDir(fingerprint string) (string, error) {
	if len(fingerprint) != 64 {
		return "", fmt.Errorf("resultcache: fingerprint %q is not a sha256 hex digest", fingerprint)
	}
	for _, r := range fingerprint {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			return "", fmt.Errorf("resultcache: fingerprint %q is not a sha256 hex digest", fingerprint)
		}
	}
	return filepath.Join(c.root, formatVersion, fingerprint), nil
}

type scanned struct {
	dir   string
	mtime time.Time
	bytes int64
}

// scan walks the entry population, returning per-entry sizes and the total.
func (c *Cache) scan() ([]scanned, int64, error) {
	versionDir := filepath.Join(c.root, formatVersion)
	dirs, err := c.fs.ReadDir(versionDir)
	if err != nil {
		return nil, 0, fmt.Errorf("resultcache: scanning: %w", err)
	}
	var out []scanned
	var total int64
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		entry := scanned{dir: filepath.Join(versionDir, d.Name())}
		if info, err := d.Info(); err == nil {
			entry.mtime = info.ModTime()
		}
		for _, name := range entryFiles {
			if fi, err := c.fs.Stat(filepath.Join(entry.dir, name)); err == nil {
				entry.bytes += fi.Size()
			}
		}
		total += entry.bytes
		out = append(out, entry)
	}
	return out, total, nil
}

// evict removes least-recently-used entries until the payload fits
// maxBytes. At least one entry always survives, so a single oversized
// result cannot wedge the cache into rewriting itself forever. Eviction
// errors feed the breaker but never fail the Put that triggered them.
func (c *Cache) evict() error {
	if c.maxBytes < 0 {
		return nil
	}
	entries, total, err := c.scan()
	if err != nil {
		c.ioError(err)
		return nil
	}
	if total <= c.maxBytes || len(entries) <= 1 {
		return nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries[:len(entries)-1] {
		if total <= c.maxBytes {
			break
		}
		if err := c.fs.RemoveAll(e.dir); err != nil {
			c.ioError(err)
			return nil
		}
		total -= e.bytes
		c.count(&c.evictions)
	}
	return nil
}
