package resultcache

import (
	"sync"
	"time"
)

// BreakerState names the circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: the disk is healthy; cache operations run normally.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: too many consecutive I/O errors; every cache operation
	// short-circuits to a bypass (Get reports a miss without touching the
	// disk, Put is a no-op) until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown elapsed; operations probe the disk
	// again. One failure re-opens, one success closes.
	BreakerHalfOpen BreakerState = "half-open"
)

// breaker is the cache's disk-health circuit breaker. The policy follows
// the serving stack's degradation stance: when storage is sick the service
// keeps answering — it just stops relying on the disk (compute-always)
// instead of converting storage errors into request failures.
type breaker struct {
	threshold int
	cooldown  time.Duration
	clock     func() time.Time
	onChange  func(from, to BreakerState)

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
}

func newBreaker(threshold int, cooldown time.Duration, clock func() time.Time, onChange func(from, to BreakerState)) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		clock:     clock,
		onChange:  onChange,
		state:     BreakerClosed,
	}
}

// allow reports whether a disk operation may proceed. In the open state it
// returns false until the cooldown elapses, at which point the breaker
// half-opens and lets probes through.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transitionLocked(BreakerHalfOpen)
		return true
	default:
		return true
	}
}

// success records a healthy disk operation.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if b.state == BreakerHalfOpen {
		b.transitionLocked(BreakerClosed)
	}
}

// failure records a disk I/O error; crossing the threshold (or failing a
// half-open probe) opens the breaker.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.consecutive >= b.threshold) {
		b.openedAt = b.clock()
		b.transitionLocked(BreakerOpen)
	}
}

// current returns the state for Stats, resolving an elapsed cooldown so
// observers never see a stale "open".
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.clock().Sub(b.openedAt) >= b.cooldown {
		b.transitionLocked(BreakerHalfOpen)
	}
	return b.state
}

// transitionLocked moves to next and fires the hook. The hook is invoked
// with the lock held, so it must be fast and must not call back into the
// breaker (in practice it sets a telemetry gauge).
func (b *breaker) transitionLocked(next BreakerState) {
	if b.state == next {
		return
	}
	prev := b.state
	b.state = next
	if next == BreakerOpen {
		b.consecutive = 0
	}
	if b.onChange != nil {
		b.onChange(prev, next)
	}
}
