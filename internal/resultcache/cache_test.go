package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testFingerprint(i int) string {
	return fmt.Sprintf("%064x", i)
}

func testEntry(i, size int) *Entry {
	return &Entry{
		Fingerprint: testFingerprint(i),
		TableText:   bytes.Repeat([]byte{'t'}, size),
		TableCSV:    []byte("a,b\n1,2\n"),
		Manifest:    []byte(`{"kind":"experiment"}`),
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry(1, 100)
	if _, ok, err := c.Get(want.Fingerprint); err != nil || ok {
		t.Fatalf("expected clean miss, got ok=%v err=%v", ok, err)
	}
	if err := c.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(want.Fingerprint)
	if err != nil || !ok {
		t.Fatalf("expected hit, got ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.TableText, want.TableText) ||
		!bytes.Equal(got.TableCSV, want.TableCSV) ||
		!bytes.Equal(got.Manifest, want.Manifest) {
		t.Fatal("cached bytes differ from stored bytes")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("stats bytes not accounted: %+v", st)
	}
}

func TestPutIsIdempotent(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(1, 10)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	// A second Put of the same fingerprint must not disturb the entry.
	e2 := testEntry(1, 10)
	e2.TableText = []byte("different")
	if err := c.Put(e2); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(e.Fingerprint)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.TableText, e.TableText) {
		t.Fatal("second Put overwrote the original entry")
	}
}

func TestInvalidFingerprintRejected(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"",
		"abc",
		strings.Repeat("g", 64),       // not hex
		strings.Repeat("A", 64),       // upper case
		"../../../../etc/passwd",      // traversal
		strings.Repeat("a", 63) + "/", // separator
		strings.Repeat("a", 65),       // wrong length
	}
	for _, fp := range bad {
		if err := c.Put(&Entry{Fingerprint: fp, TableText: []byte("x"), TableCSV: []byte("y"), Manifest: []byte("{}")}); err == nil {
			t.Errorf("Put accepted fingerprint %q", fp)
		}
		if _, ok, err := c.Get(fp); err == nil || ok {
			t.Errorf("Get accepted fingerprint %q (ok=%v err=%v)", fp, ok, err)
		}
	}
	// Nothing escaped the cache root.
	if _, err := os.Stat(filepath.Join(dir, "v2")); err == nil {
		entries, _ := os.ReadDir(filepath.Join(dir, "v2"))
		if len(entries) != 0 {
			t.Fatalf("unexpected entries: %v", entries)
		}
	}
}

func TestPartialEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(1, 10)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "v2", e.Fingerprint, "table.csv")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(e.Fingerprint); err != nil || ok {
		t.Fatalf("partial entry should miss, got ok=%v err=%v", ok, err)
	}
}

func TestEvictionKeepsRecent(t *testing.T) {
	dir := t.TempDir()
	// Each entry is ~4KiB of table text; budget fits roughly three.
	c, err := Open(dir, 13<<10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e := testEntry(i, 4<<10)
		if err := c.Put(e); err != nil {
			t.Fatal(err)
		}
		// Age the directory so mtime ordering is unambiguous even on
		// coarse-grained filesystems.
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, "v2", e.Fingerprint), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Re-run eviction now that mtimes are staggered.
	if err := c.Put(testEntry(6, 4<<10)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions, stats: %+v", st)
	}
	if st.Bytes > 13<<10 {
		t.Fatalf("still over budget: %+v", st)
	}
	// The newest insert survives.
	if _, ok, err := c.Get(testFingerprint(6)); err != nil || !ok {
		t.Fatalf("newest entry evicted: ok=%v err=%v", ok, err)
	}
	// The oldest is gone.
	if _, ok, _ := c.Get(testFingerprint(0)); ok {
		t.Fatal("oldest entry survived eviction")
	}
}

func TestUnboundedCacheNeverEvicts(t *testing.T) {
	c, err := Open(t.TempDir(), -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Put(testEntry(i, 8<<10)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions != 0 || st.Entries != 5 {
		t.Fatalf("unbounded cache evicted: %+v", st)
	}
}

func TestReopenSeesExistingEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(1, 10)
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := c2.Get(e.Fingerprint)
	if err != nil || !ok {
		t.Fatalf("reopened cache missed: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.TableText, e.TableText) {
		t.Fatal("reopened cache returned different bytes")
	}
}

func TestConcurrentSameFingerprint(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(1, 100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Put(testEntry(1, 100)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, ok, err := c.Get(e.Fingerprint)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.TableText, e.TableText) {
		t.Fatal("racing writers corrupted the entry")
	}
}
