package seal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	k := NewKeyring([]byte("master secret"))
	msgs := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("sensor reading at t=42"),
		bytes.Repeat([]byte{0xAB}, 1000),
	}
	for _, msg := range msgs {
		sealed, err := k.Seal(msg)
		if err != nil {
			t.Fatalf("Seal(%d bytes): %v", len(msg), err)
		}
		if len(sealed) != len(msg)+Overhead {
			t.Fatalf("sealed length %d, want %d", len(sealed), len(msg)+Overhead)
		}
		got, err := k.Open(sealed)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip mismatch: got %x want %x", got, msg)
		}
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	k := NewKeyring([]byte("master secret"))
	sealed, err := k.Seal([]byte("the animal was seen at t=17"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(sealed); i++ {
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 0x01
		if _, err := k.Open(tampered); !errors.Is(err, ErrAuthentication) {
			t.Fatalf("flipping byte %d: Open returned %v, want ErrAuthentication", i, err)
		}
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	k := NewKeyring([]byte("master secret"))
	sealed, err := k.Seal([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Open(sealed[:len(sealed)-1]); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("truncated by 1: %v, want ErrAuthentication", err)
	}
	if _, err := k.Open(sealed[:Overhead-1]); !errors.Is(err, ErrTooShort) {
		t.Fatalf("below minimum size: %v, want ErrTooShort", err)
	}
	if _, err := k.Open(nil); !errors.Is(err, ErrTooShort) {
		t.Fatalf("nil input: %v, want ErrTooShort", err)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	k1 := NewKeyring([]byte("key one"))
	k2 := NewKeyring([]byte("key two"))
	sealed, err := k1.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k2.Open(sealed); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("wrong key: %v, want ErrAuthentication", err)
	}
}

func TestDistinctIVsPerMessage(t *testing.T) {
	k := NewKeyring([]byte("master"))
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		sealed, err := k.Seal([]byte("same plaintext"))
		if err != nil {
			t.Fatal(err)
		}
		iv := string(sealed[:16])
		if seen[iv] {
			t.Fatalf("IV reused at message %d", i)
		}
		seen[iv] = true
	}
}

func TestCiphertextDiffersAcrossMessages(t *testing.T) {
	k := NewKeyring([]byte("master"))
	a, err := k.Seal([]byte("identical"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Seal([]byte("identical"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext produced identical output")
	}
}

func TestKeyringDeterministicDerivation(t *testing.T) {
	a := NewKeyring([]byte("shared"))
	b := NewKeyring([]byte("shared"))
	sealed, err := a.Seal([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Open(sealed)
	if err != nil {
		t.Fatalf("keyring derived from same master could not open: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestCiphertextHidesPlaintext(t *testing.T) {
	k := NewKeyring([]byte("master"))
	plaintext := bytes.Repeat([]byte("timestamp=123456789"), 4)
	sealed, err := k.Seal(plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, []byte("timestamp")) {
		t.Fatal("sealed output contains plaintext substring")
	}
}

// Property: round trip holds for arbitrary byte strings.
func TestRoundTripProperty(t *testing.T) {
	k := NewKeyring([]byte("prop"))
	f := func(msg []byte) bool {
		sealed, err := k.Seal(msg)
		if err != nil {
			return false
		}
		got, err := k.Open(sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal(b *testing.B) {
	k := NewKeyring([]byte("bench"))
	msg := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Seal(msg); err != nil {
			b.Fatal(err)
		}
	}
}
