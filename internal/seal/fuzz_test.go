package seal

import (
	"bytes"
	"testing"
)

// FuzzSealOpen checks that Seal/Open round-trips arbitrary payloads and
// that Open never panics or succeeds on mutated ciphertexts.
func FuzzSealOpen(f *testing.F) {
	f.Add([]byte("sensor reading"), []byte("master key"), uint8(0))
	f.Add([]byte{}, []byte{0x01}, uint8(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 200), []byte("k"), uint8(7))
	f.Fuzz(func(t *testing.T, payload, master []byte, flip uint8) {
		k := NewKeyring(master)
		sealed, err := k.Seal(payload)
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		got, err := k.Open(sealed)
		if err != nil {
			t.Fatalf("Open of valid seal: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: %x vs %x", got, payload)
		}
		// Any single-byte mutation must be rejected.
		if len(sealed) > 0 {
			tampered := append([]byte(nil), sealed...)
			tampered[int(flip)%len(tampered)] ^= 0x01
			if _, err := k.Open(tampered); err == nil {
				t.Fatal("Open accepted a tampered ciphertext")
			}
		}
	})
}

// FuzzOpenArbitrary feeds Open arbitrary bytes: it must never panic and
// never authenticate garbage.
func FuzzOpenArbitrary(f *testing.F) {
	f.Add([]byte("not a ciphertext"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, Overhead))
	f.Fuzz(func(t *testing.T, data []byte) {
		k := NewKeyring([]byte("fuzz"))
		if _, err := k.Open(data); err == nil {
			t.Fatal("Open authenticated arbitrary bytes")
		}
	})
}
