// Package seal provides payload confidentiality for sensor packets.
//
// The paper's network model (§2) assumes "Encrypted Payload": the sensor
// reading, application sequence number, and creation timestamp are encrypted
// end-to-end, so the adversary at the sink can read only the cleartext
// routing header. This package makes that assumption executable instead of
// aspirational: payloads are sealed with AES-256-CTR and authenticated with
// HMAC-SHA256 (encrypt-then-MAC), and the adversary code path in package
// adversary is handed only header bytes and arrival times — it never holds a
// keyring.
//
// IVs are derived deterministically from a per-keyring message counter so
// that simulations remain reproducible; with CTR mode a unique IV per
// message is the only requirement, and the counter guarantees uniqueness for
// up to 2^64 messages per keyring.
package seal

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	ivSize  = aes.BlockSize
	tagSize = sha256.Size
	// Overhead is the number of bytes Seal adds to a plaintext.
	Overhead = ivSize + tagSize
)

// ErrAuthentication is returned by Open when the ciphertext fails MAC
// verification: it was truncated, corrupted, or sealed under another key.
var ErrAuthentication = errors.New("seal: message authentication failed")

// ErrTooShort is returned by Open when the input is shorter than the minimum
// sealed-message size.
var ErrTooShort = errors.New("seal: sealed message too short")

// Keyring holds the symmetric keys shared between the sensor sources and the
// network sink. The adversary never receives a Keyring.
type Keyring struct {
	encKey  [32]byte
	macKey  [32]byte
	counter uint64
}

// NewKeyring derives encryption and MAC keys from a master secret using
// HMAC-SHA256 as a key-derivation function with distinct labels. The same
// master secret always yields the same keyring.
func NewKeyring(master []byte) *Keyring {
	k := &Keyring{}
	copy(k.encKey[:], deriveKey(master, "tempriv/enc"))
	copy(k.macKey[:], deriveKey(master, "tempriv/mac"))
	return k
}

func deriveKey(master []byte, label string) []byte {
	mac := hmac.New(sha256.New, master)
	_, _ = mac.Write([]byte(label)) // hash.Write never returns an error
	return mac.Sum(nil)
}

// Seal encrypts and authenticates plaintext, returning iv || ciphertext ||
// tag. Each call consumes one value of the keyring's IV counter.
func (k *Keyring) Seal(plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(k.encKey[:])
	if err != nil {
		return nil, fmt.Errorf("seal: creating cipher: %w", err)
	}

	out := make([]byte, ivSize+len(plaintext)+tagSize)
	iv := out[:ivSize]
	binary.BigEndian.PutUint64(iv[:8], 0x74656d70726976) // "tempriv" domain tag
	binary.BigEndian.PutUint64(iv[8:], k.counter)
	k.counter++

	ct := out[ivSize : ivSize+len(plaintext)]
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)

	mac := hmac.New(sha256.New, k.macKey[:])
	_, _ = mac.Write(out[:ivSize+len(plaintext)])
	mac.Sum(out[ivSize+len(plaintext) : ivSize+len(plaintext)])
	return out, nil
}

// Open verifies and decrypts a message produced by Seal, returning the
// plaintext. It returns ErrAuthentication if the MAC does not verify and
// ErrTooShort if the input cannot contain an IV and tag.
func (k *Keyring) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrTooShort
	}
	body := sealed[:len(sealed)-tagSize]
	tag := sealed[len(sealed)-tagSize:]

	mac := hmac.New(sha256.New, k.macKey[:])
	_, _ = mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrAuthentication
	}

	block, err := aes.NewCipher(k.encKey[:])
	if err != nil {
		return nil, fmt.Errorf("seal: creating cipher: %w", err)
	}
	iv := body[:ivSize]
	plaintext := make([]byte, len(body)-ivSize)
	cipher.NewCTR(block, iv).XORKeyStream(plaintext, body[ivSize:])
	return plaintext, nil
}
