package jobstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tempriv/internal/jobs"
)

func TestChunkRecordsReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 1)
	fp, _ := spec.Fingerprint()
	j.Submitted("job-000001", fp, spec, "", ts(1))
	j.Transition("job-000001", jobs.StateRunning, 1, false, "", ts(2))
	j.Chunk("job-000001", 2, ts(3))
	j.Chunk("job-000001", 5, ts(4))
	j.Chunk("job-000001", 3, ts(5)) // stale mark: replay keeps the max
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Jobs()
	if len(got) != 1 || got[0].ChunkHWM != 5 {
		t.Fatalf("replayed ChunkHWM = %+v, want 5", got)
	}
}

func TestChunkRecordsIgnoredForTerminalOrUnknownJobs(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 2)
	fp, _ := spec.Fingerprint()
	j.Submitted("job-000001", fp, spec, "", ts(1))
	j.Transition("job-000001", jobs.StateDone, 1, false, "", ts(2))
	j.Chunk("job-000001", 4, ts(3)) // after terminal: the result is cached
	j.Chunk("job-000099", 4, ts(4)) // unknown job
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if hwm := j2.Jobs()[0].ChunkHWM; hwm != 0 {
		t.Fatalf("terminal job ChunkHWM = %d, want 0", hwm)
	}
	if st := j2.Stats(); st.OrphanStates != 2 {
		t.Fatalf("orphan records = %d, want 2 (post-terminal + unknown)", st.OrphanStates)
	}
}

func TestChunkRecordRejectsBadHWM(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 3)
	fp, _ := spec.Fingerprint()
	j.Submitted("job-000001", fp, spec, "", ts(1))
	j.Close()

	// A zero/negative HWM line is corruption, not state.
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"chunk","job":"job-000001","hwm":0}` + "\n" +
		`{"t":"chunk","job":"job-000001","hwm":-3}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.Stats(); st.CorruptLines != 2 {
		t.Fatalf("corrupt lines = %d, want 2", st.CorruptLines)
	}
	if hwm := j2.Jobs()[0].ChunkHWM; hwm != 0 {
		t.Fatalf("ChunkHWM = %d, want 0", hwm)
	}
}

func TestCompactionPreservesChunkHighWaterMark(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 4)
	fp, _ := spec.Fingerprint()
	// A live job mid-run with chunks, and a done job (whose chunks are moot).
	j.Submitted("job-000001", fp, spec, "", ts(1))
	j.Transition("job-000001", jobs.StateRunning, 1, false, "", ts(2))
	j.Chunk("job-000001", 7, ts(3))
	j.Submitted("job-000002", fp, spec, "", ts(4))
	j.Transition("job-000002", jobs.StateRunning, 1, false, "", ts(5))
	j.Chunk("job-000002", 1, ts(6))
	j.Transition("job-000002", jobs.StateDone, 1, false, "", ts(7))
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), `"t":"chunk"`); got != 1 {
		t.Fatalf("compacted journal has %d chunk records, want 1 (live job only):\n%s", got, data)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	for _, job := range j2.Jobs() {
		switch job.ID {
		case "job-000001":
			if job.ChunkHWM != 7 {
				t.Fatalf("live job ChunkHWM = %d after compaction, want 7", job.ChunkHWM)
			}
		case "job-000002":
			if job.ChunkHWM != 0 {
				t.Fatalf("done job ChunkHWM = %d after compaction, want 0", job.ChunkHWM)
			}
		}
	}
}
