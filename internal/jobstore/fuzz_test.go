package jobstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes through journal replay. The contract is
// fail-closed: hostile journals (truncated, garbage, duplicated, or
// interleaved records) must never panic, never yield duplicate job IDs, and
// never resurrect a job the journal does not coherently describe.
func FuzzReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"t":"submit","job":"job-000001","fp":"ab","spec":{"version":1}}` + "\n"))
	f.Add([]byte(`{"t":"submit","job":"job-000001","fp":"ab","spec":{}}` + "\n" +
		`{"t":"submit","job":"job-000001","fp":"ab","spec":{}}` + "\n"))
	f.Add([]byte(`{"t":"state","job":"job-000001","state":"done"}` + "\n"))
	f.Add([]byte(`{"t":"state","job":"job-000001","state":"done"`)) // torn tail
	f.Add([]byte(`{"t":"submit","job":"../../../etc/passwd","fp":"x","spec":{}}` + "\n"))
	f.Add([]byte("\x00\xff\xfe garbage\n{\"t\":\"submit\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalFile), data, 0o644); err != nil {
			t.Skip()
		}
		j, err := Open(dir, Options{})
		if err != nil {
			// Open may fail on filesystem grounds, never panic.
			return
		}
		defer j.Close()
		seen := make(map[string]bool)
		for _, job := range j.Jobs() {
			if seen[job.ID] {
				t.Fatalf("duplicate job ID replayed: %s", job.ID)
			}
			seen[job.ID] = true
			if !validJobID.MatchString(job.ID) {
				t.Fatalf("invalid job ID replayed: %q", job.ID)
			}
			if len(job.SpecJSON) == 0 || job.Fingerprint == "" {
				t.Fatalf("incomplete job replayed: %+v", job)
			}
		}
		// Replay must be idempotent: compact + reopen yields the same set.
		if err := j.Compact(); err != nil {
			return
		}
		j.Close()
		j2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after compaction: %v", err)
		}
		defer j2.Close()
		if st := j2.Stats(); st.CorruptLines+st.DuplicateSubmits+st.OrphanStates != 0 {
			t.Fatalf("compacted journal replayed dirty: %+v", st)
		}
		again := j2.Jobs()
		if len(again) != len(seen) {
			t.Fatalf("compaction changed population: %d -> %d", len(seen), len(again))
		}
		for _, job := range again {
			if !seen[job.ID] {
				t.Fatalf("compaction invented job %s", job.ID)
			}
		}
		_ = fmt.Sprintf("%v", again) // exercise stringers on replayed data
	})
}
