// Package jobstore is temprivd's durability layer: an append-only JSONL
// write-ahead journal of every job submission and state transition. A crash
// or redeploy no longer loses the queue — on startup the daemon replays the
// journal, re-enqueues every job that was queued or running at crash time,
// and compacts the log so it does not grow without bound.
//
// Journal format (one JSON object per line, fsynced per append):
//
//	{"t":"submit","job":"job-000001","fp":"<sha256>","spec":{...},"ts":"..."}
//	{"t":"state","job":"job-000001","state":"running","attempt":1,"ts":"..."}
//	{"t":"chunk","job":"job-000001","hwm":3,"ts":"..."}
//	{"t":"state","job":"job-000001","state":"done","cache_hit":true,"ts":"..."}
//
// Chunk records track a running job's persisted result-chunk high-water
// mark (internal/resultstream): after a crash the restored job knows how
// many replicates survive on disk and resumes instead of restarting.
//
// Replay is fail-closed: truncated tails (a crash mid-append), garbage
// lines, duplicate submit records and orphan state records are counted and
// skipped — they can never panic the daemon or double-enqueue a job. The
// spec stored in a submit record is the scenario's canonical JSON, so a
// replayed job re-parses to a spec with the identical fingerprint, and its
// re-run produces byte-identical artifacts (every scenario is
// seed-deterministic).
//
// Compaction rewrites the journal to one submit record (plus one state
// record) per retained job: every non-terminal job survives, and the most
// recent Options.RetainTerminal terminal jobs are kept so their IDs stay
// resolvable across a restart (their result bytes live in the result
// cache, addressed by fingerprint).
//
// All disk access goes through faultfs.FS, so ENOSPC, EIO, torn writes and
// fsync failures are injectable in tests. An append failure degrades to
// lost durability for that record — availability over durability — and is
// surfaced through Options.OnAppendError and Stats, never to the client.
package jobstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"tempriv/internal/faultfs"
	"tempriv/internal/jobs"
	"tempriv/internal/scenario"
)

// journalFile is the journal's filename inside its directory.
const journalFile = "journal.jsonl"

// Record is one journal line.
type Record struct {
	// T discriminates the record type: "submit", "state" or "chunk".
	T string `json:"t"`
	// Job is the queue-assigned job ID.
	Job string `json:"job"`
	// FP and Spec are set on submit records: the scenario fingerprint and
	// its canonical JSON. Origin, when present, is the submission's
	// provenance (jobs.OriginHandoff for a cluster crash handoff).
	FP     string          `json:"fp,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Origin string          `json:"origin,omitempty"`
	// State, Attempt, CacheHit and Error are set on state records.
	State    string `json:"state,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	// HWM is set on chunk records: the persisted result-chunk high-water
	// mark (how many replicates are durable on disk).
	HWM int `json:"hwm,omitempty"`
	// TS is the wall-clock time of the event.
	TS time.Time `json:"ts,omitempty"`
}

// ReplayedJob is the aggregated view of one job after replay: its submit
// record folded with its last valid state transition.
type ReplayedJob struct {
	ID          string
	Fingerprint string
	SpecJSON    []byte
	State       jobs.State
	Attempt     int
	CacheHit    bool
	Error       string
	Submitted   time.Time
	Finished    time.Time
	// ChunkHWM is the job's last journaled result-chunk high-water mark
	// (monotonic across records; 0 when no chunks were recorded).
	ChunkHWM int
	// Origin is the journaled submission provenance (see jobs.Job.Origin).
	Origin string
}

// Stats counts journal health since Open.
type Stats struct {
	// Appends and AppendErrors count journal writes and failed writes.
	Appends      uint64 `json:"appends"`
	AppendErrors uint64 `json:"append_errors"`
	// CorruptLines, DuplicateSubmits and OrphanStates count records
	// rejected during replay (fail-closed skips).
	CorruptLines     int `json:"corrupt_lines"`
	DuplicateSubmits int `json:"duplicate_submits"`
	OrphanStates     int `json:"orphan_states"`
	// LiveJobs and TerminalJobs describe the current aggregate population.
	LiveJobs     int `json:"live_jobs"`
	TerminalJobs int `json:"terminal_jobs"`
	// Compactions counts log rewrites.
	Compactions uint64 `json:"compactions"`
}

// Options configure a Journal.
type Options struct {
	// FS is the filesystem seam (nil = the real OS filesystem).
	FS faultfs.FS
	// RetainTerminal bounds how many terminal jobs compaction keeps
	// (default 1000; negative keeps none).
	RetainTerminal int
	// CompactEvery auto-compacts after this many appends (default 4096;
	// negative disables auto-compaction).
	CompactEvery int
	// OnAppendError observes journal write failures (telemetry hook).
	OnAppendError func(error)
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	if o.RetainTerminal == 0 {
		o.RetainTerminal = 1000
	}
	if o.RetainTerminal < 0 {
		o.RetainTerminal = 0
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 4096
	}
	return o
}

// Journal is the write-ahead log. It implements jobs.JournalSink, so a
// queue constructed with Options{Journal: j} records every submission and
// transition durably. Safe for concurrent use.
type Journal struct {
	dir  string
	path string
	opts Options

	mu    sync.Mutex
	f     faultfs.File
	jobs  map[string]*ReplayedJob
	order []string
	stats Stats
	// sinceCompact counts appends since the last compaction.
	sinceCompact int
	// torn records that the last append may have left a partial line; the
	// next append prepends a newline to restore framing.
	torn bool
}

// validJobID matches queue-assigned IDs; replayed records with other IDs
// are rejected so they can never collide with freshly generated ones.
var validJobID = regexp.MustCompile(`^job-[0-9]{6,}$`)

// validState reports whether s is a known job state.
func validState(s string) bool {
	switch jobs.State(s) {
	case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
		return true
	}
	return false
}

// Open reads (replaying) any existing journal in dir and opens it for
// appending, creating dir as needed.
func Open(dir string, opts Options) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobstore: empty journal directory")
	}
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: preparing %s: %w", dir, err)
	}
	j := &Journal{
		dir:  dir,
		path: filepath.Join(dir, journalFile),
		opts: opts,
		jobs: make(map[string]*ReplayedJob),
	}
	data, err := opts.FS.ReadFile(j.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobstore: reading journal: %w", err)
	}
	j.replay(data)
	f, err := opts.FS.OpenAppend(j.path)
	if err != nil {
		return nil, fmt.Errorf("jobstore: opening journal for append: %w", err)
	}
	j.f = f
	return j, nil
}

// replay folds raw journal bytes into the aggregate map. Every malformed
// record is skipped and counted; nothing here can panic on hostile input
// (see FuzzReplay).
func (j *Journal) replay(data []byte) {
	start := 0
	for start < len(data) {
		end := start
		for end < len(data) && data[end] != '\n' {
			end++
		}
		line := data[start:end]
		// A final line without a trailing newline is a torn append: skip it.
		truncated := end == len(data)
		start = end + 1
		if len(line) == 0 {
			continue
		}
		if truncated {
			j.stats.CorruptLines++
			continue
		}
		j.apply(line)
	}
}

// apply folds one journal line.
func (j *Journal) apply(line []byte) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		j.stats.CorruptLines++
		return
	}
	switch rec.T {
	case "submit":
		if !validJobID.MatchString(rec.Job) || len(rec.Spec) == 0 || rec.FP == "" {
			j.stats.CorruptLines++
			return
		}
		if _, exists := j.jobs[rec.Job]; exists {
			j.stats.DuplicateSubmits++
			return
		}
		j.jobs[rec.Job] = &ReplayedJob{
			ID:          rec.Job,
			Fingerprint: rec.FP,
			SpecJSON:    append([]byte(nil), rec.Spec...),
			State:       jobs.StateQueued,
			Submitted:   rec.TS,
			Origin:      rec.Origin,
		}
		j.order = append(j.order, rec.Job)
	case "state":
		if !validState(rec.State) {
			j.stats.CorruptLines++
			return
		}
		job, ok := j.jobs[rec.Job]
		if !ok {
			j.stats.OrphanStates++
			return
		}
		if job.State.Terminal() {
			// A transition after a terminal record is corruption (or a
			// duplicated tail): fail closed, first terminal state wins.
			j.stats.OrphanStates++
			return
		}
		job.State = jobs.State(rec.State)
		if rec.Attempt > 0 {
			job.Attempt = rec.Attempt
		}
		job.CacheHit = rec.CacheHit
		job.Error = rec.Error
		if job.State.Terminal() {
			job.Finished = rec.TS
		}
	case "chunk":
		if rec.HWM <= 0 {
			j.stats.CorruptLines++
			return
		}
		job, ok := j.jobs[rec.Job]
		if !ok {
			j.stats.OrphanStates++
			return
		}
		if job.State.Terminal() {
			// Chunks after a terminal record are a duplicated tail: the
			// finished result is already cached, ignore them.
			j.stats.OrphanStates++
			return
		}
		// The mark is monotonic; replay keeps the maximum so a reordered or
		// duplicated record can never shrink the surviving-work estimate.
		if rec.HWM > job.ChunkHWM {
			job.ChunkHWM = rec.HWM
		}
	default:
		j.stats.CorruptLines++
	}
}

// Jobs returns the aggregated jobs in submission order.
func (j *Journal) Jobs() []ReplayedJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]ReplayedJob, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, *j.jobs[id])
	}
	return out
}

// Stats returns journal health counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	for _, job := range j.jobs {
		if job.State.Terminal() {
			s.TerminalJobs++
		} else {
			s.LiveJobs++
		}
	}
	return s
}

// Submitted implements jobs.JournalSink: it durably records an accepted
// job before the submission response is sent.
func (j *Journal) Submitted(id, fingerprint string, spec scenario.Spec, origin string, at time.Time) {
	canon, err := spec.CanonicalJSON()
	if err != nil {
		j.noteAppendError(fmt.Errorf("jobstore: canonicalizing spec for %s: %w", id, err))
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, exists := j.jobs[id]; !exists {
		j.jobs[id] = &ReplayedJob{
			ID:          id,
			Fingerprint: fingerprint,
			SpecJSON:    canon,
			State:       jobs.StateQueued,
			Submitted:   at,
			Origin:      origin,
		}
		j.order = append(j.order, id)
	}
	j.appendLocked(Record{T: "submit", Job: id, FP: fingerprint, Spec: canon, Origin: origin, TS: at})
}

// Transition implements jobs.JournalSink: it records a job state change.
func (j *Journal) Transition(id string, state jobs.State, attempt int, cacheHit bool, errMsg string, at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if job, ok := j.jobs[id]; ok {
		job.State = state
		if attempt > 0 {
			job.Attempt = attempt
		}
		job.CacheHit = cacheHit
		job.Error = errMsg
		if state.Terminal() {
			job.Finished = at
		}
	}
	j.appendLocked(Record{T: "state", Job: id, State: string(state), Attempt: attempt, CacheHit: cacheHit, Error: errMsg, TS: at})
}

// Chunk implements jobs.JournalSink: it records a running job's persisted
// result-chunk high-water mark so a post-crash restore resumes from the
// surviving chunks instead of recomputing them.
func (j *Journal) Chunk(id string, hwm int, at time.Time) {
	if hwm <= 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if job, ok := j.jobs[id]; ok && !job.State.Terminal() && hwm > job.ChunkHWM {
		job.ChunkHWM = hwm
	}
	j.appendLocked(Record{T: "chunk", Job: id, HWM: hwm, TS: at})
}

// appendLocked writes one record line and fsyncs it. On failure the record
// is lost (the in-memory aggregate is already updated, so compaction will
// restore consistency if the disk heals) and a best-effort newline
// re-synchronizes line framing after a torn write.
func (j *Journal) appendLocked(rec Record) {
	if j.f == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.noteAppendErrorLocked(err)
		return
	}
	line = append(line, '\n')
	if j.torn {
		line = append([]byte("\n"), line...)
	}
	if _, err := j.f.Write(line); err != nil {
		// The line may have landed partially; re-synchronize framing with a
		// newline now if the disk lets us, or before the next append if not.
		if _, nlErr := j.f.Write([]byte("\n")); nlErr == nil {
			j.torn = false
		} else {
			j.torn = true
		}
		j.noteAppendErrorLocked(fmt.Errorf("jobstore: appending: %w", err))
		return
	}
	j.torn = false
	if err := j.f.Sync(); err != nil {
		j.noteAppendErrorLocked(fmt.Errorf("jobstore: fsync: %w", err))
		return
	}
	j.stats.Appends++
	j.sinceCompact++
	if j.opts.CompactEvery > 0 && j.sinceCompact >= j.opts.CompactEvery {
		// Best effort: a failed auto-compaction leaves the longer (still
		// valid) journal in place and will be retried after the next batch.
		_ = j.compactLocked()
	}
}

func (j *Journal) noteAppendError(err error) {
	j.mu.Lock()
	j.stats.AppendErrors++
	j.mu.Unlock()
	if j.opts.OnAppendError != nil {
		j.opts.OnAppendError(err)
	}
}

func (j *Journal) noteAppendErrorLocked(err error) {
	j.stats.AppendErrors++
	if j.opts.OnAppendError != nil {
		// Release the lock around the hook? The hook is a counter bump in
		// practice; holding the lock keeps error accounting ordered.
		j.opts.OnAppendError(err)
	}
}

// Compact rewrites the journal to its minimal form: one submit (plus one
// state) record per retained job. Non-terminal jobs always survive;
// terminal jobs beyond RetainTerminal (oldest first) are dropped from both
// the log and the aggregate view.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	// Trim terminal jobs beyond the retention bound, oldest first.
	terminal := 0
	for _, id := range j.order {
		if j.jobs[id].State.Terminal() {
			terminal++
		}
	}
	drop := terminal - j.opts.RetainTerminal
	if drop > 0 {
		kept := j.order[:0]
		for _, id := range j.order {
			if drop > 0 && j.jobs[id].State.Terminal() {
				delete(j.jobs, id)
				drop--
				continue
			}
			kept = append(kept, id)
		}
		j.order = kept
	}

	var buf []byte
	for _, id := range j.order {
		job := j.jobs[id]
		sub, err := json.Marshal(Record{T: "submit", Job: id, FP: job.Fingerprint, Spec: job.SpecJSON, Origin: job.Origin, TS: job.Submitted})
		if err != nil {
			return fmt.Errorf("jobstore: compacting %s: %w", id, err)
		}
		buf = append(buf, sub...)
		buf = append(buf, '\n')
		if job.State != jobs.StateQueued {
			st, err := json.Marshal(Record{T: "state", Job: id, State: string(job.State), Attempt: job.Attempt, CacheHit: job.CacheHit, Error: job.Error, TS: job.Finished})
			if err != nil {
				return fmt.Errorf("jobstore: compacting %s: %w", id, err)
			}
			buf = append(buf, st...)
			buf = append(buf, '\n')
		}
		// Live jobs keep their chunk high-water mark across compaction;
		// terminal jobs don't need one (their result is in the cache).
		if !job.State.Terminal() && job.ChunkHWM > 0 {
			ck, err := json.Marshal(Record{T: "chunk", Job: id, HWM: job.ChunkHWM, TS: job.Submitted})
			if err != nil {
				return fmt.Errorf("jobstore: compacting %s: %w", id, err)
			}
			buf = append(buf, ck...)
			buf = append(buf, '\n')
		}
	}

	tmp := j.path + ".tmp"
	if err := j.opts.FS.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("jobstore: writing compacted journal: %w", err)
	}
	if err := j.opts.FS.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("jobstore: publishing compacted journal: %w", err)
	}
	// Swap the append handle onto the new file.
	f, err := j.opts.FS.OpenAppend(j.path)
	if err != nil {
		return fmt.Errorf("jobstore: reopening journal: %w", err)
	}
	if j.f != nil {
		_ = j.f.Close()
	}
	j.f = f
	j.stats.Compactions++
	j.sinceCompact = 0
	return nil
}

// Close releases the append handle. The journal must not be used after.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
