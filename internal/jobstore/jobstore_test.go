package jobstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"tempriv/internal/faultfs"
	"tempriv/internal/jobs"
	"tempriv/internal/scenario"
)

func testSpec(t *testing.T, seed uint64) scenario.Spec {
	t.Helper()
	doc := fmt.Sprintf(`{"version":1,"experiment":{"id":"fig2a","packets":10,"interarrivals":[4],"seed":%d}}`, seed)
	spec, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func ts(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 1)
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	j.Submitted("job-000001", fp, spec, "", ts(1))
	j.Transition("job-000001", jobs.StateRunning, 1, false, "", ts(2))
	j.Submitted("job-000002", fp, spec, "", ts(3))
	j.Transition("job-000001", jobs.StateDone, 1, true, "", ts(4))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh Open replays the same aggregate.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Jobs()
	if len(got) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(got))
	}
	first, second := got[0], got[1]
	if first.ID != "job-000001" || first.State != jobs.StateDone || !first.CacheHit || first.Attempt != 1 {
		t.Fatalf("first = %+v", first)
	}
	if !first.Submitted.Equal(ts(1)) || !first.Finished.Equal(ts(4)) {
		t.Fatalf("first times = %v / %v", first.Submitted, first.Finished)
	}
	if second.ID != "job-000002" || second.State != jobs.StateQueued {
		t.Fatalf("second = %+v", second)
	}
	// The stored spec re-parses to the identical fingerprint.
	reparsed, err := scenario.Parse(first.SpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := reparsed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp {
		t.Fatalf("replayed fingerprint %s, want %s", fp2, fp)
	}
}

func TestReplayTornTailSkipped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 2)
	fp, _ := spec.Fingerprint()
	j.Submitted("job-000001", fp, spec, "", ts(1))
	j.Close()

	// Simulate a crash mid-append: a half record with no trailing newline.
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"state","job":"job-000001","sta`)
	f.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Jobs()
	if len(got) != 1 || got[0].State != jobs.StateQueued {
		t.Fatalf("jobs = %+v", got)
	}
	if st := j2.Stats(); st.CorruptLines != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt line", st)
	}
}

func TestReplayGarbageAndDuplicatesAndOrphans(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 3)
	canon, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := spec.Fingerprint()
	lines := []string{
		`not json at all`,
		fmt.Sprintf(`{"t":"submit","job":"job-000001","fp":%q,"spec":%s}`, fp, canon),
		fmt.Sprintf(`{"t":"submit","job":"job-000001","fp":%q,"spec":%s}`, fp, canon), // duplicate
		`{"t":"state","job":"job-999999","state":"done"}`,                             // orphan
		`{"t":"state","job":"job-000001","state":"no-such-state"}`,                    // invalid state
		`{"t":"state","job":"job-000001","state":"done","cache_hit":true}`,
		`{"t":"state","job":"job-000001","state":"running"}`, // transition after terminal
		`{"t":"mystery","job":"job-000001"}`,                 // unknown record type
		`{"t":"submit","job":"evil/../../etc","fp":"x","spec":{}}`,
		``,
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := j.Jobs()
	if len(got) != 1 {
		t.Fatalf("replayed %d jobs, want 1 (no double-enqueue)", len(got))
	}
	if got[0].State != jobs.StateDone || !got[0].CacheHit {
		t.Fatalf("job = %+v", got[0])
	}
	st := j.Stats()
	if st.DuplicateSubmits != 1 {
		t.Errorf("duplicates = %d, want 1", st.DuplicateSubmits)
	}
	if st.OrphanStates != 2 { // orphan job + post-terminal transition
		t.Errorf("orphans = %d, want 2", st.OrphanStates)
	}
	if st.CorruptLines != 4 { // garbage, invalid state, unknown type, bad job id
		t.Errorf("corrupt = %d, want 4", st.CorruptLines)
	}
}

func TestCompactionDropsOldTerminalKeepsLive(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{RetainTerminal: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 4)
	fp, _ := spec.Fingerprint()
	for i := 1; i <= 5; i++ {
		id := fmt.Sprintf("job-%06d", i)
		j.Submitted(id, fp, spec, "", ts(i))
		if i <= 4 { // first four finish; job 5 stays queued
			j.Transition(id, jobs.StateDone, 1, false, "", ts(10+i))
		}
	}
	before, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", before.Size(), after.Size())
	}
	got := j.Jobs()
	if len(got) != 3 { // 2 retained terminal + 1 live
		t.Fatalf("post-compact jobs = %d, want 3: %+v", len(got), got)
	}
	if got[0].ID != "job-000003" || got[1].ID != "job-000004" || got[2].ID != "job-000005" {
		t.Fatalf("retained %v", []string{got[0].ID, got[1].ID, got[2].ID})
	}
	if got[2].State != jobs.StateQueued {
		t.Fatalf("live job state %q", got[2].State)
	}

	// Appends still work after the handle swap, and a fresh replay of the
	// compacted log matches.
	j.Transition("job-000005", jobs.StateDone, 1, false, "", ts(99))
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Jobs(); len(got) != 3 || got[2].State != jobs.StateDone {
		t.Fatalf("replay after compaction = %+v", got)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{CompactEvery: 10, RetainTerminal: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	spec := testSpec(t, 5)
	fp, _ := spec.Fingerprint()
	for i := 1; i <= 20; i++ {
		id := fmt.Sprintf("job-%06d", i)
		j.Submitted(id, fp, spec, "", ts(i))
		j.Transition(id, jobs.StateDone, 1, false, "", ts(i))
	}
	if st := j.Stats(); st.Compactions == 0 {
		t.Fatalf("no auto-compaction after 40 appends: %+v", st)
	}
	if got := j.Jobs(); len(got) != 1 {
		t.Fatalf("retained %d terminal jobs, want 1", len(got))
	}
}

func TestAppendFaultDegradesNotFails(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(nil)
	var hookErrs int
	j, err := Open(dir, Options{FS: fs, OnAppendError: func(error) { hookErrs++ }})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	spec := testSpec(t, 6)
	fp, _ := spec.Fingerprint()

	fs.Set(faultfs.OpWrite, faultfs.Fault{Err: faultfs.ErrNoSpace})
	j.Submitted("job-000001", fp, spec, "", ts(1)) // append lost, aggregate kept
	if st := j.Stats(); st.AppendErrors != 1 || hookErrs != 1 {
		t.Fatalf("stats = %+v, hook = %d", st, hookErrs)
	}

	// Disk heals: compaction restores the lost record from the aggregate.
	fs.ClearAll()
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Jobs(); len(got) != 1 || got[0].ID != "job-000001" {
		t.Fatalf("post-heal replay = %+v", got)
	}
}

func TestFsyncFaultCounted(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(nil)
	j, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	fs.Set(faultfs.OpSync, faultfs.Fault{Err: faultfs.ErrIO})
	spec := testSpec(t, 7)
	fp, _ := spec.Fingerprint()
	j.Submitted("job-000001", fp, spec, "", ts(1))
	if st := j.Stats(); st.AppendErrors != 1 || st.Appends != 0 {
		t.Fatalf("stats = %+v, want fsync failure counted as append error", st)
	}
}

func TestTornAppendRecoversFraming(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(nil)
	j, err := Open(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 8)
	fp, _ := spec.Fingerprint()
	j.Submitted("job-000001", fp, spec, "", ts(1))

	// One torn append, then a healthy one.
	fs.Set(faultfs.OpWrite, faultfs.Fault{Err: faultfs.ErrNoSpace, Torn: true, After: 0, PathSubstr: journalFile})
	j.Submitted("job-000002", fp, spec, "", ts(2))
	fs.ClearAll()
	j.Submitted("job-000003", fp, spec, "", ts(3))
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Jobs()
	// Jobs 1 and 3 replay; the torn record for job 2 is skipped as corrupt.
	if len(got) != 2 || got[0].ID != "job-000001" || got[1].ID != "job-000003" {
		t.Fatalf("replay after torn append = %+v", got)
	}
	if st := j2.Stats(); st.CorruptLines == 0 {
		t.Fatalf("torn line not counted: %+v", st)
	}
}

func TestOpenFailsClosedOnUnreadableJournal(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.NewFaulty(nil)
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs.Set(faultfs.OpRead, faultfs.Fault{Err: faultfs.ErrIO})
	if _, err := Open(dir, Options{FS: fs}); !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
}

func TestRecordJSONShape(t *testing.T) {
	// The wire format is part of the durability contract: keys must stay
	// stable so old journals replay on new binaries.
	b, err := json.Marshal(Record{T: "submit", Job: "job-000001", FP: "ff", Spec: json.RawMessage(`{}`), TS: ts(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"t":"submit"`, `"job":"job-000001"`, `"fp":"ff"`, `"spec":{}`, `"ts":`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("record %s missing %s", b, key)
		}
	}
}

func TestOriginSurvivesReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(t, 9)
	fp, _ := spec.Fingerprint()
	j.Submitted("job-000001", fp, spec, jobs.OriginHandoff, ts(1))
	j.Submitted("job-000002", fp, spec, "", ts(2))
	j.Transition("job-000001", jobs.StateDone, 1, false, "", ts(3))
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := j2.Jobs()
	if len(got) != 2 || got[0].Origin != jobs.OriginHandoff || got[1].Origin != "" {
		t.Fatalf("replayed origins wrong: %+v", got)
	}

	// Compaction rewrites submit records; origin must not be dropped.
	if err := j2.Compact(); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	got = j3.Jobs()
	if len(got) != 2 || got[0].Origin != jobs.OriginHandoff || got[1].Origin != "" {
		t.Fatalf("post-compaction origins wrong: %+v", got)
	}
}
