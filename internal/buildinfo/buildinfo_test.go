package buildinfo

import (
	"strings"
	"testing"

	"tempriv/internal/telemetry"
)

func TestReadAlwaysHasGoVersion(t *testing.T) {
	i := Read()
	if i.GoVersion == "" {
		t.Fatal("GoVersion empty")
	}
	if i.Version == "" {
		t.Fatal("Version empty (should degrade to \"unknown\", never \"\")")
	}
}

func TestStringIncludesCommandAndVersion(t *testing.T) {
	out := String("temprivd")
	if !strings.HasPrefix(out, "temprivd ") {
		t.Fatalf("String() = %q, want leading command name", out)
	}
	if !strings.Contains(out, Read().GoVersion) {
		t.Fatalf("String() = %q, missing Go version", out)
	}
}

func TestRegisterPublishesInfoMetric(t *testing.T) {
	reg := telemetry.NewRegistry()
	Register(reg)
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "tempriv_build_info{") || !strings.Contains(out, "} 1\n") {
		t.Fatalf("/metrics missing build info metric:\n%s", out)
	}
	for _, label := range []string{"version=", "go_version="} {
		if !strings.Contains(out, label) {
			t.Errorf("build info missing %s label:\n%s", label, out)
		}
	}
}

func TestRegisterNilRegistry(t *testing.T) {
	Register(nil) // must not panic
}
