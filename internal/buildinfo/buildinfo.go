// Package buildinfo surfaces what binary is running: module version, Go
// toolchain and VCS revision, read from the build metadata the Go linker
// embeds (runtime/debug.ReadBuildInfo). Every long-lived command exposes
// it twice — a -version flag for humans and a tempriv_build_info metric
// for scrapers — so an operator can always answer "which build produced
// this behaviour?".
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"tempriv/internal/telemetry"
)

// Info is the build identity of the running binary.
type Info struct {
	// Version is the main module version ("(devel)" for a plain go build).
	Version string
	// GoVersion is the toolchain that compiled the binary.
	GoVersion string
	// Revision is the VCS commit hash ("" when built outside a checkout),
	// with a "+dirty" suffix when the working tree had local edits.
	Revision string
}

// Read extracts the build identity. It degrades gracefully: a binary
// stripped of build info still reports the runtime's Go version.
func Read() Info {
	info := Info{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && info.Revision != "" {
		info.Revision += "+dirty"
	}
	return info
}

// String renders the one-line -version output for a command.
func String(command string) string {
	i := Read()
	out := fmt.Sprintf("%s %s (%s)", command, i.Version, i.GoVersion)
	if i.Revision != "" {
		out += " " + i.Revision
	}
	return out
}

// Register publishes the identity as the tempriv_build_info gauge — the
// Prometheus info-metric idiom: constant value 1, identity in the labels,
// so dashboards can join any series against the build that produced it.
// Nil-registry safe.
func Register(reg *telemetry.Registry) {
	i := Read()
	labels := map[string]string{
		"version":    i.Version,
		"go_version": i.GoVersion,
	}
	if i.Revision != "" {
		labels["revision"] = i.Revision
	}
	reg.Info("tempriv_build_info", labels)
}
