// Package rng provides a deterministic, splittable pseudo-random number
// source together with the distribution samplers used throughout the
// temporal-privacy simulator.
//
// Reproducibility is a first-class requirement for the experiment harness:
// every figure in the paper must be regenerable from an (experiment, seed)
// pair. To keep per-node randomness independent of event interleavings, a
// Source can be split into labelled substreams with Split; each simulated
// node draws only from its own substream.
//
// The generator is xoshiro256**, seeded through SplitMix64, which is the
// combination recommended by the xoshiro authors. It is not cryptographically
// secure and must not be used for key material (see package seal for that).
package rng

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Source is a deterministic stream of pseudo-random numbers. It is not safe
// for concurrent use; give each goroutine (or simulated node) its own Source
// via Split.
type Source struct {
	state [4]uint64
}

// splitMix64 advances x by the SplitMix64 step and returns the next output.
// It is used for seeding and for deriving substream seeds.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	s := &Source{}
	x := seed
	for i := range s.state {
		s.state[i] = splitMix64(&x)
	}
	// xoshiro256** requires a non-zero state; SplitMix64 cannot produce an
	// all-zero block, but guard anyway so the generator can never lock up.
	if s.state[0]|s.state[1]|s.state[2]|s.state[3] == 0 {
		s.state[0] = 0x9e3779b97f4a7c15
	}
	return s
}

// Split derives an independent substream identified by label. Splitting is
// deterministic: the same parent state and label always yield the same
// substream, and drawing from the child does not perturb the parent.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label)) // fnv.Write never returns an error
	x := h.Sum64()
	child := &Source{}
	for i := range child.state {
		// Mix the parent state with the label hash; do not advance the
		// parent so Split is side-effect free.
		seed := s.state[i] ^ x
		child.state[i] = splitMix64(&seed)
	}
	if child.state[0]|child.state[1]|child.state[2]|child.state[3] == 0 {
		child.state[0] = 1
	}
	return child
}

// SplitIndexed is shorthand for Split with a label built from a name and an
// index, e.g. per-node substreams ("node", 17).
func (s *Source) SplitIndexed(name string, index int) *Source {
	return s.Split(fmt.Sprintf("%s/%d", name, index))
}

// SetTo overwrites s's state with o's, reseeding s in place. Long-lived
// components that hold a *Source (a node's buffering policy, a link's channel
// state) can be rewound to a fresh substream between engine runs without
// re-plumbing the pointer: after SetTo, s produces exactly the stream a
// freshly split o would.
func (s *Source) SetTo(o *Source) { s.state = o.state }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits (xoshiro256** step).
func (s *Source) Uint64() uint64 {
	result := rotl(s.state[1]*5, 7) * 9
	t := s.state[1] << 17
	s.state[2] ^= s.state[0]
	s.state[3] ^= s.state[1]
	s.state[1] ^= s.state[2]
	s.state[0] ^= s.state[3]
	s.state[2] ^= t
	s.state[3] = rotl(s.state[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// positiveFloat64 returns a uniform value in (0, 1], suitable as the argument
// of a logarithm.
func (s *Source) positiveFloat64() float64 {
	return 1 - s.Float64()
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0;
// this mirrors math/rand and flags a programmer error, not a runtime
// condition.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire-style rejection sampling to remove modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exponential returns a sample from the exponential distribution with the
// given mean (mean = 1/rate). The exponential is the maximum-entropy
// distribution over non-negative reals with a fixed mean, which is why the
// paper adopts it as the buffering-delay distribution (§3.2). It panics if
// mean <= 0.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential called with non-positive mean")
	}
	return -mean * math.Log(s.positiveFloat64())
}

// ExponentialRate is Exponential parameterised by rate λ instead of mean.
func (s *Source) ExponentialRate(rate float64) float64 {
	if rate <= 0 {
		panic("rng: ExponentialRate called with non-positive rate")
	}
	return -math.Log(s.positiveFloat64()) / rate
}

// Uniform returns a sample uniformly distributed in [lo, hi). It panics if
// hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Erlang returns a sample from the k-stage Erlang distribution with the
// given per-stage mean, i.e. the sum of k independent exponentials. The
// paper's packet-creation times Xj are j-stage Erlangian (§3.2).
func (s *Source) Erlang(k int, stageMean float64) float64 {
	if k <= 0 {
		panic("rng: Erlang called with non-positive stage count")
	}
	// Sum of logs == log of product; one log call instead of k.
	prod := 1.0
	for i := 0; i < k; i++ {
		prod *= s.positiveFloat64()
	}
	if prod <= 0 {
		// Underflow for very large k: fall back to summing individual draws.
		total := 0.0
		for i := 0; i < k; i++ {
			total += s.Exponential(stageMean)
		}
		return total
	}
	return -stageMean * math.Log(prod)
}

// Normal returns a sample from the normal distribution N(mean, stddev²)
// using the Box–Muller transform. It panics if stddev < 0.
func (s *Source) Normal(mean, stddev float64) float64 {
	if stddev < 0 {
		panic("rng: Normal called with negative stddev")
	}
	u1 := s.positiveFloat64()
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pareto returns a sample from the Pareto (type I) distribution with the
// given scale x_m > 0 and shape α > 0. Heavy-tailed delays are used in the
// delay-distribution ablation.
func (s *Source) Pareto(scale, shape float64) float64 {
	if scale <= 0 || shape <= 0 {
		panic("rng: Pareto called with non-positive scale or shape")
	}
	return scale / math.Pow(s.positiveFloat64(), 1/shape)
}

// Poisson returns a sample from the Poisson distribution with the given
// mean. It uses Knuth's product method for small means and a
// normal approximation with continuity correction for large means, which is
// accurate to well under the statistical noise of any experiment here.
func (s *Source) Poisson(mean float64) int {
	if mean < 0 {
		panic("rng: Poisson called with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean > 500 {
		v := math.Floor(s.Normal(mean, math.Sqrt(mean)) + 0.5)
		if v < 0 {
			return 0
		}
		return int(v)
	}
	limit := math.Exp(-mean)
	k := 0
	prod := s.Float64()
	for prod > limit {
		k++
		prod *= s.Float64()
	}
	return k
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}
