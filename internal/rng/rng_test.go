package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sources with different seeds produced %d/100 equal draws", same)
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("node/1")
	c2 := parent.Split("node/1")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("identical splits diverged at draw %d", i)
		}
	}
	// Splitting must not advance the parent.
	fresh := New(7)
	_ = fresh.Split("node/1")
	want := New(7).Uint64()
	if got := fresh.Uint64(); got != want {
		t.Fatalf("Split advanced parent state: got %d want %d", got, want)
	}
}

func TestSplitDistinctLabels(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("node/1")
	c2 := parent.Split("node/2")
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams with different labels produced %d/100 equal draws", same)
	}
}

func TestSplitIndexedMatchesSplit(t *testing.T) {
	parent := New(3)
	a := parent.SplitIndexed("node", 17)
	b := parent.Split("node/17")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitIndexed does not match equivalent Split label")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ≈ 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(17)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(19)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("Intn(%d): value %d drawn %d times, want ≈ %.0f", n, v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestExponentialMoments(t *testing.T) {
	s := New(29)
	const n = 200000
	const mean = 30.0
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(mean)
		if v < 0 {
			t.Fatalf("negative exponential sample: %v", v)
		}
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.02*mean {
		t.Fatalf("exponential mean = %v, want ≈ %v", m, mean)
	}
	if math.Abs(variance-mean*mean) > 0.05*mean*mean {
		t.Fatalf("exponential variance = %v, want ≈ %v", variance, mean*mean)
	}
}

func TestExponentialRateMatchesMean(t *testing.T) {
	a := New(31)
	b := New(31)
	for i := 0; i < 100; i++ {
		if got, want := a.ExponentialRate(0.25), b.Exponential(4); got != want {
			t.Fatalf("ExponentialRate(0.25) = %v, Exponential(4) = %v", got, want)
		}
	}
}

func TestUniformRangeAndMean(t *testing.T) {
	s := New(37)
	const lo, hi, n = 10.0, 50.0, 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Uniform(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("Uniform(%v,%v) = %v out of range", lo, hi, v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-30) > 0.5 {
		t.Fatalf("uniform mean = %v, want ≈ 30", mean)
	}
}

func TestErlangMoments(t *testing.T) {
	s := New(41)
	const k, stageMean, n = 5, 2.0, 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Erlang(k, stageMean)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	wantMean := float64(k) * stageMean
	wantVar := float64(k) * stageMean * stageMean
	if math.Abs(m-wantMean) > 0.02*wantMean {
		t.Fatalf("Erlang mean = %v, want ≈ %v", m, wantMean)
	}
	if math.Abs(variance-wantVar) > 0.05*wantVar {
		t.Fatalf("Erlang variance = %v, want ≈ %v", variance, wantVar)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(43)
	const mean, stddev, n = 5.0, 3.0, 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(mean, stddev)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈ %v", m, mean)
	}
	if math.Abs(variance-stddev*stddev) > 0.2 {
		t.Fatalf("normal variance = %v, want ≈ %v", variance, stddev*stddev)
	}
}

func TestParetoSupportAndMean(t *testing.T) {
	s := New(47)
	const scale, shape, n = 2.0, 3.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Pareto(scale, shape)
		if v < scale {
			t.Fatalf("Pareto sample %v below scale %v", v, scale)
		}
		sum += v
	}
	wantMean := shape * scale / (shape - 1)
	if m := sum / n; math.Abs(m-wantMean) > 0.05*wantMean {
		t.Fatalf("Pareto mean = %v, want ≈ %v", m, wantMean)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 30, 600} {
		s := New(53)
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.03*mean+0.02 {
			t.Fatalf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.08*mean+0.05 {
			t.Fatalf("Poisson(%v) variance = %v", mean, variance)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := New(59)
	for i := 0; i < 100; i++ {
		if v := s.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d, want 0", v)
		}
	}
}

func TestBernoulliProbability(t *testing.T) {
	s := New(61)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(67)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

// Property: exponential samples are always non-negative and finite for any
// positive mean.
func TestExponentialNonNegativeProperty(t *testing.T) {
	s := New(71)
	f := func(seed uint64, meanBits uint16) bool {
		mean := 0.001 + float64(meanBits)/65535*1000
		src := s.Split("prop").Split(string(rune(seed)))
		v := src.Exponential(mean)
		return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn(n) is always within [0, n) for arbitrary positive n.
func TestIntnRangeProperty(t *testing.T) {
	s := New(73)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Float64 stays in [0,1) over arbitrary substreams.
func TestFloat64RangeProperty(t *testing.T) {
	parent := New(79)
	f := func(label string) bool {
		v := parent.Split(label).Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExponential(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exponential(30)
	}
}
