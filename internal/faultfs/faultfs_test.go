package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestOSPassthrough(t *testing.T) {
	fs := OS{}
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	if err := fs.WriteFile(name, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(name)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read %q, %v", b, err)
	}
	if _, err := fs.Stat(name); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "x", "y")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp, err := fs.MkdirTemp(dir, "t-")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, "renamed")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("readdir: %d entries, %v", len(ents), err)
	}
	now := time.Now()
	if err := fs.Chtimes(name, now, now); err != nil {
		t.Fatal(err)
	}
	fh, err := fs.OpenAppend(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write([]byte("line\n")); err != nil {
		t.Fatal(err)
	}
	if err := fh.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(name); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll(filepath.Join(dir, "x")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectReadEIO(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "a")
	if err := os.WriteFile(name, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(OS{})
	f.Set(OpRead, Fault{Err: ErrIO})
	if _, err := f.ReadFile(name); !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
	if n := f.Injected()[OpRead]; n != 1 {
		t.Fatalf("injected reads = %d, want 1", n)
	}
	f.Clear(OpRead)
	if _, err := f.ReadFile(name); err != nil {
		t.Fatalf("healthy read failed: %v", err)
	}
}

func TestInjectAfterCountdown(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{})
	f.Set(OpWrite, Fault{Err: ErrNoSpace, After: 2})
	for i := 0; i < 2; i++ {
		if err := f.WriteFile(filepath.Join(dir, "ok"), []byte("y"), 0o644); err != nil {
			t.Fatalf("write %d failed before countdown: %v", i, err)
		}
	}
	if err := f.WriteFile(filepath.Join(dir, "no"), []byte("y"), 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	// And every write after that keeps failing.
	if err := f.WriteFile(filepath.Join(dir, "no2"), []byte("y"), 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
}

func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "torn")
	f := NewFaulty(OS{})
	f.Set(OpWrite, Fault{Err: ErrNoSpace, Torn: true})
	payload := []byte("0123456789")
	if err := f.WriteFile(name, payload, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "01234" {
		t.Fatalf("torn write left %q, want first half", b)
	}
}

func TestPathSubstrScopesFault(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{})
	f.Set(OpWrite, Fault{Err: ErrIO, PathSubstr: "journal"})
	if err := f.WriteFile(filepath.Join(dir, "other"), []byte("y"), 0o644); err != nil {
		t.Fatalf("unscoped path failed: %v", err)
	}
	if err := f.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte("y"), 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO on scoped path", err)
	}
}

func TestAppendHandleFaults(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "log")
	f := NewFaulty(OS{})
	fh, err := f.OpenAppend(name)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	if _, err := fh.Write([]byte("first\n")); err != nil {
		t.Fatal(err)
	}
	f.Set(OpSync, Fault{Err: ErrIO})
	if err := fh.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync err = %v, want EIO", err)
	}
	f.Clear(OpSync)
	f.Set(OpWrite, Fault{Err: ErrNoSpace, Torn: true})
	if _, err := fh.Write([]byte("secondsecond\n")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write err = %v, want ENOSPC", err)
	}
	f.ClearAll()
	if _, err := fh.Write([]byte("third\n")); err != nil {
		t.Fatalf("healed write failed: %v", err)
	}
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	// The torn write landed half of "secondsecond\n" (6 bytes) between the
	// healthy lines.
	want := "first\nsecondthird\n"
	if string(b) != want {
		t.Fatalf("file = %q, want %q", b, want)
	}
}

func TestOpenFault(t *testing.T) {
	f := NewFaulty(OS{})
	f.Set(OpOpen, Fault{Err: ErrIO})
	if _, err := f.OpenAppend(filepath.Join(t.TempDir(), "log")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
}

func TestNilInnerDefaultsToOS(t *testing.T) {
	f := NewFaulty(nil)
	name := filepath.Join(t.TempDir(), "a")
	if err := f.WriteFile(name, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, err := f.ReadFile(name); err != nil || string(b) != "x" {
		t.Fatalf("read %q, %v", b, err)
	}
}

func TestDirOpsFaults(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS{})
	for _, tc := range []struct {
		op  Op
		run func() error
	}{
		{OpMkdir, func() error { return f.MkdirAll(filepath.Join(dir, "m"), 0o755) }},
		{OpMkdir, func() error { _, err := f.MkdirTemp(dir, "t-"); return err }},
		{OpStat, func() error { _, err := f.Stat(dir); return err }},
		{OpReadDir, func() error { _, err := f.ReadDir(dir); return err }},
		{OpRemove, func() error { return f.RemoveAll(filepath.Join(dir, "m")) }},
		{OpRename, func() error { return f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")) }},
		{OpChtimes, func() error { return f.Chtimes(dir, time.Now(), time.Now()) }},
	} {
		f.Set(tc.op, Fault{Err: ErrIO})
		if err := tc.run(); !errors.Is(err, syscall.EIO) {
			t.Errorf("%s: err = %v, want EIO", tc.op, err)
		}
		f.Clear(tc.op)
	}
}
